"""End-to-end request tracing and SLO monitoring through the service.

Covers the PR's acceptance bar: every served request reconstructs as a
complete span tree (enqueue -> batch -> execute, retries included) even
across worker crashes, and an SLO monitor with a 5 ms p99 target sees an
injected ``dram_stall`` burst (burn rate goes nonzero) while the clean
run, under identical seeds, stays at zero.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import obs
from repro.errors import ServeOverloadError
from repro.faults import FaultPlan, RetryPolicy
from repro.serve import InferenceService


def traced_service(net, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("max_batch", 4)
    return InferenceService(net, trace=True, **kw)


def the_root(tracer, trace_id):
    roots = tracer.span_tree(trace_id)
    assert len(roots) == 1, f"trace {trace_id} has {len(roots)} roots"
    return roots[0]


class TestSpanTrees:
    def test_every_request_is_a_complete_span_tree(self, net, inputs, golden):
        svc = traced_service(net)
        futures = svc.submit_batch(inputs)
        outs = [f.result(timeout=30) for f in futures]
        svc.shutdown()
        tracer = svc.tracer
        assert len(tracer.trace_ids()) == len(inputs)
        for trace_id in tracer.trace_ids():
            assert tracer.complete(trace_id), \
                f"trace {trace_id} has unfinished spans"
            root = the_root(tracer, trace_id)
            assert root.name == "serve.request"
            assert root.attrs["status"] == "ok"
            # the full pipeline is visible: queue wait, batch, execution
            for stage in ("serve.enqueue", "serve.batch", "serve.execute"):
                stages = root.find(stage)
                assert stages, f"trace {trace_id} missing {stage}"
                assert all(s.complete for s in stages)
            # enqueue nests under the root; execute under its batch
            assert all(s.parent_id == root.span_id
                       for s in root.find("serve.enqueue"))
            for exec_span in root.find("serve.execute"):
                parent = [s for s in root.walk()
                          if s.span_id == exec_span.parent_id]
                assert parent and parent[0].name == "serve.batch"
        assert tracer.open_spans == 0
        for out, ref in zip(outs, golden):
            assert np.array_equal(out, ref)

    def test_trace_ids_are_request_ids(self, net, inputs):
        svc = traced_service(net)
        futures = svc.submit_batch(inputs[:4])
        for future in futures:
            future.result(timeout=30)
        svc.shutdown()
        for trace_id in svc.tracer.trace_ids():
            root = the_root(svc.tracer, trace_id)
            assert root.attrs["request"] == trace_id

    def test_rejected_request_closes_its_spans(self, net, inputs):
        svc = traced_service(net, workers=0, max_queue=1)
        svc.submit(inputs[0])
        with pytest.raises(ServeOverloadError):
            svc.submit(inputs[1])
        svc.shutdown(drain=False)
        tracer = svc.tracer
        assert len(tracer.trace_ids()) == 2
        rejected = the_root(tracer, 1)
        assert rejected.attrs["status"] == "rejected"
        for trace_id in tracer.trace_ids():
            assert tracer.complete(trace_id)
        assert tracer.open_spans == 0

    def test_aborted_backlog_closes_its_spans(self, net, inputs):
        svc = traced_service(net, workers=0)
        futures = svc.submit_batch(inputs[:3])
        svc.shutdown(drain=False)
        for future in futures:
            assert future.exception(timeout=1) is not None
        tracer = svc.tracer
        for trace_id in tracer.trace_ids():
            assert tracer.complete(trace_id)
            assert the_root(tracer, trace_id).attrs["status"] == "failed"
        assert tracer.open_spans == 0

    def test_tracing_disabled_records_nothing(self, net, inputs):
        svc = InferenceService(net, workers=1)
        for future in svc.submit_batch(inputs[:2]):
            future.result(timeout=30)
        svc.shutdown()
        assert svc.tracer is None


class TestCrashPropagation:
    def test_trace_survives_worker_crash_and_requeue(self, net, inputs,
                                                     golden):
        svc = traced_service(net, workers=1, max_batch=4)
        crashed = []

        def fail_once(wid, batch):
            if not crashed:
                crashed.append([r.id for r in batch])
                raise RuntimeError("synthetic worker death")

        svc.pool.fail_hook = fail_once
        futures = svc.submit_batch(inputs[:6])
        outs = [f.result(timeout=30) for f in futures]
        svc.shutdown()
        assert crashed
        tracer = svc.tracer
        for trace_id in crashed[0]:
            assert tracer.complete(trace_id)
            root = the_root(tracer, trace_id)
            # the crashed attempt leaves a "crashed" batch span behind ...
            batches = root.find("serve.batch")
            assert [s.attrs.get("status") for s in batches].count("crashed") \
                == 1
            # ... a requeue marker on the root ...
            assert [e.name for e in root.events].count("serve.requeue") == 1
            # ... and a second enqueue for the second trip through the queue
            enqueues = root.find("serve.enqueue")
            assert len(enqueues) == 2
            assert enqueues[1].attrs.get("requeued") is True
            # the retried execution still completed
            assert root.attrs["status"] == "ok"
        # requests never near the crash are untouched by it
        for trace_id in tracer.trace_ids():
            assert tracer.complete(trace_id)
        for out, ref in zip(outs, golden):
            assert np.array_equal(out, ref)

    def test_retry_instants_attach_to_execute_span(self, net, inputs):
        injector = FaultPlan.parse("transfer_corrupt:p=0.5",
                                   seed=11).injector()
        svc = traced_service(net, workers=1, max_batch=4, faults=injector,
                             retry=RetryPolicy(max_attempts=16))
        for future in svc.submit_batch(inputs[:8]):
            future.result(timeout=60)
        svc.shutdown()
        assert injector.counts.get("transfer_corrupt", 0) > 0
        tracer = svc.tracer
        retries = 0
        for trace_id in tracer.trace_ids():
            assert tracer.complete(trace_id)
            for span in the_root(tracer, trace_id).find("serve.execute"):
                retries += sum(1 for e in span.events
                               if e.name == "serve.retry")
        assert retries == injector.counts["transfer_corrupt"]


class TestSLOAcceptance:
    def serve(self, net, inputs, faults):
        svc = InferenceService(net, workers=2, max_batch=8, slo=5.0,
                               faults=faults)
        for future in svc.submit_batch(inputs + inputs):  # 32 requests
            future.result(timeout=60)
        svc.shutdown()
        assert len(svc.stats.slos) == 1
        return svc.stats.slos[0]

    def test_dram_stall_burst_trips_burn_rate_clean_run_stays_zero(
            self, net, inputs):
        # identical request stream and seeds; only the fault plan differs
        injector = FaultPlan.parse("dram_stall:p=0.3,cycles=64",
                                   seed=3).injector()
        stalled = self.serve(net, inputs, injector)
        clean = self.serve(net, inputs, None)

        # the injected stalls sleep ~6.4 ms per hit: over the 5 ms target
        assert injector.counts.get("dram_stall", 0) > 0
        assert stalled.violations > 0
        assert stalled.burn_rate() > 0.0
        assert stalled.alerts > 0
        assert "ALERT" in stalled.render()

        assert clean.violations == 0
        assert clean.burn_rate() == 0.0
        assert clean.alerts == 0
        assert not clean.breached()

    def test_monitor_sees_every_request(self, net, inputs):
        monitor = self.serve(net, inputs, None)
        assert monitor.observed == 32
        assert "burn-rate" in monitor.render()


class TestDisabledOverhead:
    def test_disabled_obs_overhead_under_one_percent(self, net, monkeypatch):
        """Regression bound: with the registry disabled, the obs calls an
        explore sweep makes must cost < 1% of the sweep's wall time."""
        from repro.core import explore

        obs.disable()

        # 1. how many obs calls one sweep issues (span enter counts as one)
        calls = {"n": 0}
        for name in ("add_counter", "set_gauge", "emit_event", "span"):
            real = getattr(obs, name)

            def counted(*args, _real=real, **kwargs):
                calls["n"] += 1
                return _real(*args, **kwargs)

            monkeypatch.setattr(obs, name, counted)
        explore(net)
        monkeypatch.undo()
        assert calls["n"] > 0  # the sweep is actually instrumented

        # 2. the sweep's wall time without the counting shims
        sweep_s = min(self.timed(lambda: explore(net)) for _ in range(3))

        # 3. disabled per-call cost, generously taking the slower API
        def per_call(fn):
            def batch():
                for _ in range(2000):
                    fn("obs.overhead_probe", 1.0)
            return min(self.timed(batch) for _ in range(5)) / 2000

        cost = max(per_call(obs.add_counter), per_call(obs.emit_event))
        overhead = calls["n"] * cost
        assert overhead < 0.01 * sweep_s, (
            f"{calls['n']} obs calls x {cost * 1e9:.0f} ns = "
            f"{overhead * 1e3:.3f} ms vs sweep {sweep_s * 1e3:.1f} ms")

    @staticmethod
    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0
