"""Shared serving fixtures: ToyNet, integer inputs, golden outputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.zoo import toynet
from repro.sim import NetworkExecutor


@pytest.fixture
def net():
    return toynet()


@pytest.fixture
def inputs(net):
    """16 deterministic integer-valued inputs in ToyNet's input shape."""
    shape = net.input_shape
    rng = np.random.default_rng(42)
    dims = (shape.channels, shape.height, shape.width)
    return [np.round(rng.uniform(-4.0, 4.0, size=dims))
            for _ in range(16)]


@pytest.fixture
def golden(net, inputs):
    """Direct per-item NetworkExecutor outputs (the bit-exactness oracle)."""
    executor = NetworkExecutor(net, seed=0, integer=True)
    return [executor.run(x) for x in inputs]


@pytest.fixture(scope="session", autouse=True)
def _sanitizer_session_gate():
    """Under REPRO_SANITIZE=1 the whole serve suite doubles as a race
    harness: fail the session if any serving-stack lock tripped the
    runtime sanitizer (tests exercising violations on purpose use
    private LockSanitizer instances, not the global one)."""
    yield
    from repro.serve import get_sanitizer, sanitize_enabled

    if sanitize_enabled():
        violations = get_sanitizer().violations
        assert not violations, [v.render() for v in violations]
