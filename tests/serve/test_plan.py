"""Compiled plans and the plan cache: keys, LRU, persistence, warm path."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import Strategy
from repro.errors import ConfigError
from repro.faults import ExplorationBudget
from repro.nn.zoo import toynet, nin_cifar
from repro.obs import Registry, capture
from repro.serve import (
    CompiledPlan,
    PlanCache,
    compile_plan,
    make_plan_key,
)


class TestPlanKey:
    def test_same_knobs_same_key(self, net):
        assert make_plan_key(net) == make_plan_key(toynet())

    def test_each_knob_changes_the_key(self, net):
        base = make_plan_key(net)
        assert make_plan_key(net, strategy=Strategy.RECOMPUTE) != base
        assert make_plan_key(net, tip=2) != base
        assert make_plan_key(net, storage_budget_bytes=4096) != base
        assert make_plan_key(net, precision="float") != base
        assert make_plan_key(net, seed=1) != base
        assert make_plan_key(nin_cifar()) != base

    def test_round_trips_through_dict(self, net):
        key = make_plan_key(net, storage_budget_bytes=4096)
        assert type(key).from_dict(key.to_dict()) == key

    def test_rejects_bad_knobs(self, net):
        with pytest.raises(ConfigError):
            make_plan_key(net, precision="fp16")
        with pytest.raises(ConfigError):
            make_plan_key(net, tip=0)


class TestCompilePlan:
    def test_explored_plan_covers_all_units(self, net):
        plan = compile_plan(net)
        assert sum(plan.partition_sizes) >= 1
        assert plan.num_groups == len(plan.geometry)
        assert not plan.degraded

    def test_explicit_partition_skips_exploration(self, net):
        registry = Registry()
        with capture() as registry:
            plan = compile_plan(net, partition_sizes=(1, 1))
        assert plan.partition_sizes == (1, 1)
        assert registry.counter("explore.partitions_scored") == 0

    def test_invalid_explicit_partition_is_diagnosed(self, net):
        with pytest.raises(ConfigError):
            compile_plan(net, partition_sizes=(7,))

    def test_storage_budget_prefers_cheapest_fitting_partition(self, net):
        unconstrained = compile_plan(net)
        tight = compile_plan(net, storage_budget_bytes=0)
        assert tight.key != unconstrained.key
        # zero extra storage admits only the layer-by-layer partition
        assert all(size == 1 for size in tight.partition_sizes)

    def test_budget_truncated_search_marks_degraded(self, net):
        plan = compile_plan(net, budget=ExplorationBudget(max_evaluations=1))
        assert plan.degraded

    def test_execute_matches_direct_runs(self, net, inputs, golden):
        plan = compile_plan(net)
        outs = plan.execute(inputs)
        for out, ref in zip(outs, golden):
            assert out.dtype == ref.dtype
            assert np.array_equal(out, ref)

    def test_lrn_network_falls_back_to_per_item_and_stays_exact(self):
        from repro import ConvSpec, Network, ReLUSpec, TensorShape
        from repro.nn.layers import LRNSpec

        network = Network("lrn-net", TensorShape(3, 8, 8), [
            ConvSpec("c1", kernel=3, stride=1, out_channels=4, padding=1),
            ReLUSpec("r1"),
            LRNSpec("n1"),
            ConvSpec("c2", kernel=3, stride=1, out_channels=4, padding=1),
        ])
        plan = compile_plan(network)
        assert plan.batched is None  # LRN breaks exact integer arithmetic
        rng = np.random.default_rng(5)
        xs = [np.round(rng.uniform(-4.0, 4.0, size=(3, 8, 8)))
              for _ in range(3)]
        for x, out in zip(xs, plan.execute(xs)):
            assert np.array_equal(out, plan.executor.run(x))

    def test_float_precision_plan_serves_via_per_item_loop(self, net, inputs):
        plan = compile_plan(net, precision="float")
        assert plan.batched is None
        outs = plan.execute(inputs[:3])
        refs = [plan.executor.run(x) for x in inputs[:3]]
        for out, ref in zip(outs, refs):
            assert np.array_equal(out, ref)


class TestPlanCache:
    def test_miss_then_hit(self, net):
        cache = PlanCache()
        first = cache.get_or_compile(net)
        second = cache.get_or_compile(net)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_warm_hits_do_zero_exploration_work(self, net):
        cache = PlanCache()
        cache.get_or_compile(net)
        with capture() as registry:
            for _ in range(3):
                cache.get_or_compile(net)
        assert registry.counter("explore.partitions_scored") == 0
        assert registry.counter("serve.plan_cache.hits") == 3

    def test_lru_eviction_by_count(self):
        cache = PlanCache(max_plans=2)
        a = cache.get_or_compile(toynet())
        cache.get_or_compile(toynet(), tip=2)
        cache.get_or_compile(toynet(), tip=3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert a.key not in cache  # oldest evicted first

    def test_lru_order_follows_use_not_insertion(self):
        cache = PlanCache(max_plans=2)
        a = cache.get_or_compile(toynet())
        b = cache.get_or_compile(toynet(), tip=2)
        cache.get_or_compile(toynet())  # refresh a
        cache.get_or_compile(toynet(), tip=3)
        assert a.key in cache and b.key not in cache

    def test_byte_budget_eviction_keeps_newest(self, net):
        plan = compile_plan(net)
        cache = PlanCache(max_bytes=plan.byte_size)  # room for exactly one
        cache.put(plan)
        other = compile_plan(net, tip=2)
        cache.put(other)
        assert len(cache) == 1 and other.key in cache

    def test_save_load_round_trip(self, net, inputs, golden, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache()
        original = cache.get_or_compile(net)
        cache.save(path)

        restored_cache = PlanCache()
        assert restored_cache.load(path) == 1
        restored = restored_cache.lookup(original.key)
        assert restored is not None
        assert restored.partition_sizes == original.partition_sizes
        assert restored.network.fingerprint() == net.fingerprint()
        for out, ref in zip(restored.execute(inputs), golden):
            assert np.array_equal(out, ref)

    def test_load_is_zero_exploration(self, net, tmp_path):
        path = tmp_path / "plans.json"
        cache = PlanCache()
        cache.get_or_compile(net)
        cache.save(path)
        with capture() as registry:
            PlanCache().load(path)
        assert registry.counter("explore.partitions_scored") == 0
        assert registry.counter("serve.plan_cache.loads") == 1

    def test_load_rejects_non_cache_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigError):
            PlanCache().load(path)

    def test_degraded_plan_survives_persistence(self, net, tmp_path):
        cache = PlanCache()
        plan = cache.get_or_compile(
            net, budget=ExplorationBudget(max_evaluations=1))
        assert plan.degraded
        path = tmp_path / "plans.json"
        cache.save(path)
        restored = PlanCache()
        restored.load(path)
        assert restored.lookup(plan.key).degraded

    def test_rejects_bad_limits(self):
        with pytest.raises(ConfigError):
            PlanCache(max_plans=0)
        with pytest.raises(ConfigError):
            PlanCache(max_bytes=0)


class TestPlanCacheConcurrency:
    """Many threads hammering one cache must not corrupt its state."""

    def test_concurrent_get_or_compile_single_key(self, net):
        cache = PlanCache(max_plans=4)
        threads, results, errors = 8, [], []
        barrier = threading.Barrier(threads)

        def worker():
            try:
                barrier.wait()
                for _ in range(5):
                    results.append(cache.get_or_compile(net))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        assert not errors
        # every caller saw an equivalent plan and the cache holds one entry
        keys = {plan.key for plan in results}
        assert len(keys) == 1
        assert len(cache) == 1
        # each call is accounted exactly once, as a hit or a miss
        assert cache.hits + cache.misses == threads * 5
        assert cache.lookup(next(iter(keys))) is not None

    def test_concurrent_puts_respect_the_entry_budget(self, net):
        plans = [compile_plan(toynet(), seed=s) for s in range(6)]
        cache = PlanCache(max_plans=2)
        barrier = threading.Barrier(len(plans))

        def worker(plan):
            barrier.wait()
            cache.put(plan)

        pool = [threading.Thread(target=worker, args=(p,)) for p in plans]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        assert len(cache) == 2
        assert cache.evictions == len(plans) - 2
        assert cache.total_bytes == sum(
            p.byte_size for p in cache._plans.values())
