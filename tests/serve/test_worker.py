"""The worker pool: bit-exactness, fault retries, crash recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SimFaultError
from repro.faults import FaultPlan, RetryPolicy
from repro.serve import AutoscalePolicy, InferenceService, ManualClock


class TestBitExactness:
    def test_served_outputs_match_direct_runs(self, net, inputs, golden):
        with InferenceService(net, workers=2, max_batch=4) as svc:
            outs = [f.result(timeout=30)
                    for f in svc.submit_batch(inputs)]
        for out, ref in zip(outs, golden):
            assert out.dtype == ref.dtype
            assert np.array_equal(out, ref)

    def test_results_stay_paired_with_their_requests(self, net, inputs, golden):
        # distinct inputs produce distinct outputs, so any batching or
        # sharding mix-up shows up as a cross-pairing
        with InferenceService(net, workers=4, max_batch=3,
                              max_wait_ms=0.5) as svc:
            futures = svc.submit_batch(inputs)
            for future, ref in zip(futures, golden):
                assert np.array_equal(future.result(timeout=30), ref)

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_modes_agree(self, net, inputs, golden, mode):
        with InferenceService(net, workers=2, max_batch=4, mode=mode) as svc:
            outs = [f.result(timeout=60)
                    for f in svc.submit_batch(inputs[:8])]
        for out, ref in zip(outs, golden):
            assert np.array_equal(out, ref)


class TestFaultRetries:
    def test_bit_identical_under_transfer_corrupt(self, net, inputs, golden):
        """The acceptance criterion: a fault plan corrupting ~half of all
        deliveries changes nothing about the served values."""
        injector = FaultPlan.parse("transfer_corrupt:p=0.5", seed=11).injector()
        with InferenceService(net, workers=2, max_batch=4, faults=injector,
                              retry=RetryPolicy(max_attempts=16)) as svc:
            outs = [f.result(timeout=60)
                    for f in svc.submit_batch(inputs)]
        assert injector.total_injected > 0  # the plan actually fired
        for out, ref in zip(outs, golden):
            assert out.dtype == ref.dtype
            assert np.array_equal(out, ref)

    def test_fault_decisions_are_deterministic_per_request(self, net, inputs):
        def retries_with(workers, max_batch):
            injector = FaultPlan.parse("transfer_corrupt:p=0.5",
                                       seed=11).injector()
            with InferenceService(net, workers=workers, max_batch=max_batch,
                                  faults=injector,
                                  retry=RetryPolicy(max_attempts=16)) as svc:
                for f in svc.submit_batch(inputs):
                    f.result(timeout=60)
            return injector.total_injected

        # fault sites key on request id, not batch/worker placement
        assert retries_with(1, 1) == retries_with(4, 8)

    def test_retry_exhaustion_fails_only_that_request(self, net, inputs):
        injector = FaultPlan.parse("transfer_corrupt:p=1.0", seed=0).injector()
        with InferenceService(net, workers=1, max_batch=4, faults=injector,
                              retry=RetryPolicy(max_attempts=2)) as svc:
            futures = svc.submit_batch(inputs[:4])
            for future in futures:
                with pytest.raises(SimFaultError):
                    future.result(timeout=30)
        assert svc.stats.failed == 4


class TestCrashRecovery:
    def test_dead_worker_is_respawned_and_batch_requeued(
            self, net, inputs, golden):
        svc = InferenceService(net, workers=1, max_batch=4)
        crashed = []

        def fail_once(wid, batch):
            if not crashed:
                crashed.append(wid)
                raise RuntimeError("synthetic worker death")

        svc.pool.fail_hook = fail_once
        outs = [f.result(timeout=30) for f in svc.submit_batch(inputs[:6])]
        svc.shutdown()
        assert crashed  # the hook actually fired
        assert svc.pool.respawns == 1
        for out, ref in zip(outs, golden):
            assert np.array_equal(out, ref)

    def test_repeated_crashes_each_respawn(self, net, inputs):
        svc = InferenceService(net, workers=1, max_batch=2)
        crashes = {"n": 0}

        def fail_twice(wid, batch):
            if crashes["n"] < 2:
                crashes["n"] += 1
                raise RuntimeError("synthetic worker death")

        svc.pool.fail_hook = fail_twice
        futures = svc.submit_batch(inputs[:4])
        for future in futures:
            future.result(timeout=30)
        svc.shutdown()
        assert svc.pool.respawns == 2


class TestAutoscaling:
    def test_manual_clock_pool_scales_only_on_explicit_ticks(self, net,
                                                             inputs):
        """With a ManualClock no supervisor thread runs: scaling is
        driven (deterministically) by explicit scale_tick calls."""
        clock = ManualClock()
        policy = AutoscalePolicy(min_workers=1, max_workers=4,
                                 backlog_per_worker=1.0, sustain_s=0.5,
                                 cooldown_s=0.0)
        svc = InferenceService(net, workers=1, max_wait_ms=60_000,
                               max_batch=16, autoscale=policy, clock=clock)
        svc.start()
        assert not any(t.name == "serve-autoscaler"
                       for t in svc.pool._threads)
        for x in inputs[:8]:
            svc.submit(x)
        assert svc.pool.scale_tick() is None          # pressure starts
        clock.advance(0.6)
        event = svc.pool.scale_tick()                 # sustained: scale up
        assert event is not None and event.action == "up"
        assert svc.pool.workers == 2
        assert svc.stats.scale_ups == 1
        svc.shutdown()

    def test_live_pool_scales_up_under_backlog_and_stays_exact(
            self, net, inputs, golden):
        policy = AutoscalePolicy(min_workers=1, max_workers=4,
                                 backlog_per_worker=1.0, sustain_s=0.0,
                                 cooldown_s=0.0, idle_s=30.0)
        with InferenceService(net, workers=1, max_batch=2,
                              autoscale=policy) as svc:
            futures = svc.submit_batch(inputs)
            outs = [f.result(timeout=60) for f in futures]
        for out, ref in zip(outs, golden):
            assert np.array_equal(out, ref)
        events = svc.pool.scale_events
        for event in events:
            assert policy.min_workers <= event.workers_to \
                <= policy.max_workers

    def test_scale_down_retires_worker_seats(self, net, inputs):
        clock = ManualClock()
        policy = AutoscalePolicy(min_workers=1, max_workers=4,
                                 idle_s=0.5, cooldown_s=0.0)
        svc = InferenceService(net, workers=2, autoscale=policy, clock=clock)
        svc.start()
        assert svc.pool.scale_tick() is None    # idle trend begins
        clock.advance(1.0)
        event = svc.pool.scale_tick()           # idle the whole virtual second
        assert event is not None and event.action == "down"
        assert svc.pool.workers == 1
        assert svc.stats.scale_downs == 1
        svc.shutdown()

    def test_bad_tick_is_diagnosed(self):
        from repro.serve.worker import WorkerPool

        with pytest.raises(ConfigError):
            WorkerPool(None, None, tick_s=0.0)


class TestValidation:
    def test_bad_pool_knobs_are_diagnosed(self, net):
        with pytest.raises(ConfigError):
            InferenceService(net, workers=-1)
        with pytest.raises(ConfigError):
            InferenceService(net, mode="fiber")
