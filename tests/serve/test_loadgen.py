"""Open-loop load generation: seeded, shaped, byte-identical per seed."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.serve import (GUARANTEED, SHEDDABLE, TRACE_KINDS, burst_trace,
                         diurnal_trace, make_trace, poisson_trace)


class TestDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_same_trace(self, kind):
        a = make_trace(kind, 500, 100.0, seed=7, networks=3)
        b = make_trace(kind, 500, 100.0, seed=7, networks=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = poisson_trace(200, 100.0, seed=1)
        b = poisson_trace(200, 100.0, seed=2)
        assert a != b


class TestShapes:
    def test_arrival_times_strictly_increase(self):
        trace = poisson_trace(1000, 500.0, seed=3)
        times = [a.t for a in trace]
        assert times == sorted(times)
        assert times[0] > 0

    def test_poisson_mean_rate_is_close(self):
        trace = poisson_trace(20_000, 1000.0, seed=0)
        observed = len(trace) / trace[-1].t
        assert observed == pytest.approx(1000.0, rel=0.05)

    def test_diurnal_rate_swings_with_the_period(self):
        period = 10.0
        trace = diurnal_trace(40_000, 1000.0, seed=0, period_s=period,
                              depth=0.8)
        # count arrivals in the peak vs trough quarter of each period
        peak = trough = 0
        for arrival in trace:
            phase = (arrival.t % period) / period
            if 0.125 <= phase < 0.375:      # around sin max
                peak += 1
            elif 0.625 <= phase < 0.875:    # around sin min
                trough += 1
        assert peak > 3 * trough

    def test_burst_packs_arrivals_into_burst_windows(self):
        trace = burst_trace(20_000, 500.0, seed=0, burst_every_s=5.0,
                            burst_len_s=1.0, burst_factor=8.0)
        in_burst = sum(1 for a in trace if (a.t % 5.0) < 1.0)
        # burst windows are 20% of the time but see 8x the rate:
        # expect 8 / (8 + 4) = 2/3 of arrivals inside them
        assert in_burst / len(trace) == pytest.approx(2 / 3, abs=0.05)

    def test_guaranteed_fraction_is_respected(self):
        trace = poisson_trace(20_000, 1000.0, seed=1,
                              guaranteed_fraction=0.25)
        guaranteed = sum(1 for a in trace if a.klass == GUARANTEED)
        assert guaranteed / len(trace) == pytest.approx(0.25, abs=0.02)
        assert all(a.klass in (GUARANTEED, SHEDDABLE) for a in trace)

    def test_networks_are_covered(self):
        trace = poisson_trace(1000, 100.0, seed=0, networks=3)
        assert {a.network for a in trace} == {0, 1, 2}


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"n": 0},
        {"rate_rps": 0.0},
        {"rate_rps": -5.0},
        {"guaranteed_fraction": 1.5},
        {"networks": 0},
    ])
    def test_bad_arguments_are_diagnosed(self, kwargs):
        base = {"n": 10, "rate_rps": 10.0}
        base.update(kwargs)
        with pytest.raises(ConfigError):
            poisson_trace(base.pop("n"), base.pop("rate_rps"), **base)

    def test_unknown_kind_is_diagnosed(self):
        with pytest.raises(ConfigError):
            make_trace("sawtooth", 10, 10.0)

    def test_burst_longer_than_period_is_diagnosed(self):
        with pytest.raises(ConfigError):
            burst_trace(10, 10.0, burst_every_s=1.0, burst_len_s=2.0)

    def test_diurnal_depth_must_stay_below_one(self):
        with pytest.raises(ConfigError):
            diurnal_trace(10, 10.0, depth=1.0)

    def test_arrival_serializes(self):
        arrival = poisson_trace(1, 10.0, seed=0)[0]
        data = arrival.to_dict()
        assert set(data) == {"t", "klass", "network"}
        assert math.isfinite(data["t"])
