"""Clock abstraction: virtual time for deterministic serving replay."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigError
from repro.serve import ManualClock, SystemClock
from repro.serve.clock import SYSTEM_CLOCK, Clock


class TestManualClock:
    def test_starts_at_given_origin(self):
        assert ManualClock().now() == 0.0
        assert ManualClock(start=5.0).now() == 5.0

    def test_advance_accumulates(self):
        clock = ManualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_advance_to_is_monotone(self):
        clock = ManualClock()
        clock.advance_to(3.0)
        clock.advance_to(1.0)  # going backwards is a no-op
        assert clock.now() == pytest.approx(3.0)

    def test_sleep_advances_virtual_time(self):
        clock = ManualClock()
        start = time.perf_counter()
        clock.sleep(10.0)  # must NOT sleep for real
        assert time.perf_counter() - start < 1.0
        assert clock.now() == pytest.approx(10.0)

    def test_negative_advance_is_diagnosed(self):
        with pytest.raises(ConfigError):
            ManualClock().advance(-0.1)


class TestSystemClock:
    def test_tracks_real_time(self):
        clock = SystemClock()
        t0 = clock.now()
        time.sleep(0.01)
        assert clock.now() > t0

    def test_module_singleton_is_a_system_clock(self):
        assert isinstance(SYSTEM_CLOCK, SystemClock)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Clock().now()
