"""InferenceService edge cases: lifecycles, overload, stats, multi-network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (ConfigError, ServeOverloadError, ServeShedError,
                          SimFaultError)
from repro.nn.zoo import nin_cifar
from repro.obs.slo import SLOTarget
from repro.serve import (GUARANTEED, AdmissionPolicy, AutoscalePolicy,
                         InferenceService, PlanCache, ServeStats, percentile)


class TestEdgeCases:
    def test_zero_requests_shutdown_is_clean(self, net):
        svc = InferenceService(net, workers=2)
        svc.start()
        svc.shutdown()
        assert svc.stats.summary()["submitted"] == 0

    def test_zero_workers_zero_requests(self, net):
        svc = InferenceService(net, workers=0)
        svc.shutdown()  # must not hang waiting for a drain
        assert svc.stats.pending == 0

    def test_zero_workers_queued_requests_abort_at_shutdown(self, net, inputs):
        svc = InferenceService(net, workers=0)
        futures = svc.submit_batch(inputs[:3])
        svc.shutdown(drain=True)  # drain impossible: forced abort
        for future in futures:
            with pytest.raises(SimFaultError):
                future.result(timeout=1)
        assert svc.stats.pending == 0

    def test_shutdown_with_drain_serves_the_backlog(self, net, inputs, golden):
        svc = InferenceService(net, workers=1, max_batch=4,
                               max_wait_ms=60_000)
        futures = svc.submit_batch(inputs[:4])
        svc.shutdown(drain=True)
        for future, ref in zip(futures, golden):
            assert np.array_equal(future.result(timeout=1), ref)

    def test_shutdown_without_drain_aborts_the_backlog(self, net, inputs):
        svc = InferenceService(net, workers=0, max_wait_ms=60_000)
        futures = svc.submit_batch(inputs[:4])
        svc.shutdown(drain=False)
        aborted = 0
        for future in futures:
            if isinstance(future.exception(timeout=1), SimFaultError):
                aborted += 1
        assert aborted == 4

    def test_shutdown_is_idempotent(self, net):
        svc = InferenceService(net, workers=1)
        svc.shutdown()
        svc.shutdown()

    def test_submit_after_shutdown_is_diagnosed(self, net, inputs):
        svc = InferenceService(net, workers=1)
        svc.shutdown()
        with pytest.raises(SimFaultError):
            svc.submit(inputs[0])

    def test_no_network_registered_is_diagnosed(self, inputs):
        svc = InferenceService(workers=0)
        with pytest.raises(ConfigError):
            svc.submit(inputs[0])


class TestOverload:
    def test_fast_fail_and_backpressure_counters(self, net, inputs):
        svc = InferenceService(net, workers=0, max_queue=2)
        svc.submit(inputs[0])
        svc.submit(inputs[1])
        with pytest.raises(ServeOverloadError):
            svc.submit(inputs[2])
        assert svc.stats.rejected == 1
        assert svc.stats.submitted == 3
        svc.shutdown()

    def test_error_carries_queue_diagnostics(self, net, inputs):
        svc = InferenceService(net, workers=0, max_queue=1)
        svc.submit(inputs[0])
        with pytest.raises(ServeOverloadError) as excinfo:
            svc.submit(inputs[1])
        assert "max_queue=1" in str(excinfo.value)
        svc.shutdown()


class TestShedding:
    def _svc(self, net) -> InferenceService:
        return InferenceService(
            net, workers=0, max_queue=4,
            admission=AdmissionPolicy(max_queue=4, shed_depth_fraction=0.5))

    def test_sheddable_requests_shed_at_the_watermark(self, net, inputs):
        svc = self._svc(net)
        svc.submit(inputs[0])
        svc.submit(inputs[1])
        with pytest.raises(ServeShedError) as info:
            svc.submit(inputs[2])
        assert info.value.retry_after_s >= 0.0
        assert svc.stats.shed == 1
        assert svc.stats.rejected == 1  # sheds are a kind of rejection
        svc.shutdown()

    def test_guaranteed_requests_ride_past_the_watermark(self, net, inputs):
        svc = self._svc(net)
        for x in inputs[:4]:
            svc.submit(x, klass=GUARANTEED)
        with pytest.raises(ServeOverloadError) as info:
            svc.submit(inputs[4], klass=GUARANTEED)
        assert not isinstance(info.value, ServeShedError)
        assert svc.stats.shed == 0
        svc.shutdown()

    def test_shed_requests_are_not_counted_pending(self, net, inputs):
        svc = self._svc(net)
        svc.submit(inputs[0])
        svc.submit(inputs[1])
        with pytest.raises(ServeShedError):
            svc.submit(inputs[2])
        assert svc.stats.pending == 2
        svc.shutdown()


class TestDeadlinesAndScaling:
    def test_deadline_ms_defaults_from_the_slo_target(self, net):
        svc = InferenceService(net, workers=0, slo=SLOTarget(latency_ms=40.0))
        assert svc.scheduler.default_deadline_ms == pytest.approx(40.0)
        svc.shutdown()

    def test_explicit_deadline_overrides_the_slo(self, net):
        svc = InferenceService(net, workers=0, deadline_ms=15.0,
                               slo=SLOTarget(latency_ms=40.0))
        assert svc.scheduler.default_deadline_ms == pytest.approx(15.0)
        svc.shutdown()

    def test_per_request_deadline_reaches_the_scheduler(self, net, inputs):
        svc = InferenceService(net, workers=0, max_wait_ms=60_000)
        svc.submit(inputs[0], deadline_ms=30.0)
        shard = next(iter(svc.scheduler._shards.values()))
        assert shard[0].deadline_ms == pytest.approx(30.0)
        svc.shutdown()

    def test_autoscaled_service_serves_bit_exact(self, net, inputs, golden):
        policy = AutoscalePolicy(min_workers=1, max_workers=3,
                                 sustain_s=0.01, cooldown_s=0.01,
                                 idle_s=10.0)
        with InferenceService(net, workers=1, max_batch=2,
                              autoscale=policy) as svc:
            futures = svc.submit_batch(inputs)
            outs = [f.result(timeout=60) for f in futures]
        for out, ref in zip(outs, golden):
            assert np.array_equal(out, ref)
        assert 1 <= svc.pool.workers <= 3

    def test_report_mentions_autoscaling_after_an_event(self, net, inputs):
        policy = AutoscalePolicy(min_workers=1, max_workers=4,
                                 backlog_per_worker=1.0, sustain_s=0.0,
                                 cooldown_s=0.0)
        with InferenceService(net, workers=1, max_batch=2,
                              autoscale=policy) as svc:
            futures = svc.submit_batch(inputs)
            for future in futures:
                future.result(timeout=60)
        if svc.pool.scale_events:
            assert "autoscale:" in svc.report()


class TestMultiNetwork:
    def test_requests_route_to_their_network(self, net, inputs, golden):
        other = nin_cifar()
        with InferenceService(net, networks=[other], workers=2,
                              max_batch=4) as svc:
            other_key = svc.register(other)
            shape = other.input_shape
            other_x = np.round(np.ones(
                (shape.channels, shape.height, shape.width)))
            toy_future = svc.submit(inputs[0])
            other_future = svc.submit(other_x, key=other_key)
            assert np.array_equal(toy_future.result(timeout=30), golden[0])
            out = other_future.result(timeout=60)
        assert out.shape != golden[0].shape

    def test_shared_cache_across_services(self, net, inputs, golden):
        cache = PlanCache()
        with InferenceService(net, workers=1, cache=cache) as svc:
            svc.infer(inputs[0], timeout=30)
        with InferenceService(net, workers=1, cache=cache) as svc:
            out = svc.infer(inputs[0], timeout=30)
        assert np.array_equal(out, golden[0])
        assert cache.hits == 1  # the second service reused the plan


class TestStats:
    def test_counts_and_histogram(self, net, inputs):
        with InferenceService(net, workers=1, max_batch=4,
                              max_wait_ms=60_000) as svc:
            futures = svc.submit_batch(inputs[:8])
            for future in futures:
                future.result(timeout=30)
            summary = svc.stats.summary()
        assert summary["submitted"] == 8
        assert summary["completed"] == 8
        assert summary["pending"] == 0
        assert summary["batch_size_histogram"] == {"4": 2}
        assert summary["requests_per_s"] > 0

    def test_report_renders(self, net, inputs):
        with InferenceService(net, workers=1) as svc:
            svc.infer(inputs[0], timeout=30)
            report = svc.report()
        assert "requests/s" in report and "plan cache" in report

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile([], 50) == 0.0

    def test_aborts_count_as_failed(self):
        stats = ServeStats()
        stats.record_submit(3)
        stats.record_aborts(3)
        assert stats.pending == 0
        assert stats.failed == 3
