"""The micro-batching scheduler: flush rules, admission control, shutdown."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (ConfigError, ServeOverloadError, ServeShedError,
                          SimFaultError)
from repro.serve import (GUARANTEED, SHEDDABLE, AdmissionPolicy,
                         BatchScheduler, ManualClock, ServeRequest)


def _request(rid: int, key: str = "k", klass: str = SHEDDABLE,
             deadline_ms=None) -> ServeRequest:
    return ServeRequest(id=rid, key=key, x=None, klass=klass,
                        deadline_ms=deadline_ms)


class TestAdmission:
    def test_overload_fast_fails(self):
        sched = BatchScheduler(max_queue=2, max_wait_ms=1000)
        sched.submit(_request(0))
        sched.submit(_request(1))
        with pytest.raises(ServeOverloadError):
            sched.submit(_request(2))
        assert sched.depth == 2

    def test_submit_after_close_is_diagnosed(self):
        sched = BatchScheduler()
        sched.close()
        with pytest.raises(SimFaultError):
            sched.submit(_request(0))

    def test_requeue_bypasses_admission_and_goes_first(self):
        sched = BatchScheduler(max_batch=4, max_queue=2, max_wait_ms=0)
        sched.submit(_request(0))
        sched.submit(_request(1))
        sched.requeue([_request(10), _request(11)])  # over max_queue: allowed
        batch = sched.next_batch(timeout=1.0)
        assert [r.id for r in batch] == [10, 11, 0, 1]


class TestWatermarkShedding:
    def _sched(self, **kwargs) -> BatchScheduler:
        policy = AdmissionPolicy(max_queue=4, shed_depth_fraction=0.5,
                                 **kwargs)
        return BatchScheduler(max_batch=8, max_wait_ms=1000, admission=policy)

    def test_sheddable_sheds_at_depth_watermark(self):
        sched = self._sched()
        sched.submit(_request(0))
        sched.submit(_request(1))  # depth watermark = ceil(0.5 * 4) = 2
        with pytest.raises(ServeShedError) as info:
            sched.submit(_request(2))
        assert info.value.context["watermark"] == "depth_watermark"
        assert sched.shed == 1

    def test_shed_error_is_an_overload_error_with_retry_after(self):
        sched = self._sched()
        sched.note_service(10, 0.5)  # 50 ms per request
        sched.submit(_request(0))
        sched.submit(_request(1))
        with pytest.raises(ServeOverloadError) as info:  # subclass contract
            sched.submit(_request(2))
        assert isinstance(info.value, ServeShedError)
        assert info.value.retry_after_s == pytest.approx(0.1, rel=1e-3)

    def test_guaranteed_admitted_past_watermark_until_hard_full(self):
        sched = self._sched()
        for rid in range(4):
            sched.submit(_request(rid, klass=GUARANTEED))
        with pytest.raises(ServeOverloadError) as info:
            sched.submit(_request(4, klass=GUARANTEED))
        assert not isinstance(info.value, ServeShedError)
        assert "serving queue full" in str(info.value)

    def test_wait_watermark_sheds_on_estimated_delay(self):
        policy = AdmissionPolicy(max_queue=100, shed_wait_ms=10.0)
        sched = BatchScheduler(max_wait_ms=1000, admission=policy)
        sched.note_service(1, 0.02)  # 20 ms per request
        sched.submit(_request(0))    # est. wait at depth 0 is 0: admitted
        with pytest.raises(ServeShedError) as info:  # 1 * 20ms > 10ms
            sched.submit(_request(1))
        assert info.value.context["watermark"] == "wait_watermark"

    def test_unknown_class_is_diagnosed(self):
        sched = BatchScheduler()
        with pytest.raises(ConfigError):
            sched.submit(_request(0, klass="bronze"))

    def test_default_policy_reproduces_legacy_hard_cap(self):
        sched = BatchScheduler(max_queue=2, max_wait_ms=1000)
        sched.submit(_request(0))
        sched.submit(_request(1))
        with pytest.raises(ServeOverloadError) as info:
            sched.submit(_request(2))
        assert not isinstance(info.value, ServeShedError)
        assert sched.shed == 0


class TestDeadlineBatching:
    def test_deadline_sets_flush_before_budget_expiry(self):
        clock = ManualClock()
        sched = BatchScheduler(max_batch=8, max_wait_ms=60_000, clock=clock,
                               deadline_margin=0.5)
        sched.submit(_request(0, deadline_ms=100.0))
        request = sched._shards["k"][0]
        assert request.deadline_s == pytest.approx(0.1)
        assert request.flush_at_s == pytest.approx(0.05)  # budget - margin

    def test_no_deadline_keeps_fixed_max_wait(self):
        clock = ManualClock()
        sched = BatchScheduler(max_wait_ms=7.0, clock=clock)
        sched.submit(_request(0))
        assert sched._shards["k"][0].flush_at_s == pytest.approx(0.007)

    def test_default_deadline_applies_to_all_requests(self):
        clock = ManualClock()
        sched = BatchScheduler(max_batch=4, max_wait_ms=60_000,
                               default_deadline_ms=20.0, clock=clock)
        sched.submit(_request(0))
        assert sched._shards["k"][0].flush_at_s == pytest.approx(0.01)

    def test_partial_batch_flushes_when_slack_runs_out(self):
        clock = ManualClock()
        sched = BatchScheduler(max_batch=8, max_wait_ms=60_000, clock=clock)
        sched.submit(_request(0, deadline_ms=10.0))
        assert sched.poll() is None          # slack remains: keep batching
        clock.advance(0.004)
        assert sched.poll() is None
        clock.advance(0.002)                 # past flush_at = 5 ms
        batch = sched.poll()
        assert [r.id for r in batch] == [0]
        assert sched.deadline_flushes == 1

    def test_measured_service_time_reserves_execute_headroom(self):
        clock = ManualClock()
        sched = BatchScheduler(max_batch=4, max_wait_ms=60_000, clock=clock,
                               deadline_margin=0.1)
        sched.note_service(1, 0.01)  # 10 ms/item -> 40 ms per full batch
        sched.submit(_request(0, deadline_ms=100.0))
        # flush at deadline - max(10ms margin, 40ms estimate) = 60 ms
        assert sched._shards["k"][0].flush_at_s == pytest.approx(0.06)

    def test_negative_deadline_is_diagnosed(self):
        sched = BatchScheduler()
        with pytest.raises(ConfigError):
            sched.submit(_request(0, deadline_ms=-1.0))


class TestPromotionGuard:
    def test_requeued_shard_preempts_full_shards(self):
        clock = ManualClock()
        sched = BatchScheduler(max_batch=2, max_wait_ms=5.0, clock=clock)
        # simulate the crash path: a request went out and came back
        victim = _request(0, key="crashed")
        sched.requeue([victim])
        # meanwhile a busier plan keeps producing full batches
        sched.submit(_request(1, key="busy"))
        sched.submit(_request(2, key="busy"))
        # the requeued head ages past promotion_factor * planned delay
        clock.advance(1.0)
        batch = sched.next_batch(timeout=0.01)
        assert [r.id for r in batch] == [0]  # promoted over the full shard

    def test_fresh_overdue_head_does_not_preempt_full_shard(self):
        clock = ManualClock()
        sched = BatchScheduler(max_batch=2, max_wait_ms=5.0, clock=clock,
                               promotion_factor=2.0)
        sched.submit(_request(0, key="slow"))
        clock.advance(0.006)   # overdue, but aged < 2x planned 5 ms delay
        sched.submit(_request(1, key="busy"))
        sched.submit(_request(2, key="busy"))
        batch = sched.next_batch(timeout=0.01)
        assert [r.id for r in batch] == [1, 2]  # full shard still wins

    def test_starved_shard_is_promoted_without_a_requeue(self):
        clock = ManualClock()
        sched = BatchScheduler(max_batch=2, max_wait_ms=5.0, clock=clock,
                               promotion_factor=2.0)
        sched.submit(_request(0, key="starved"))
        clock.advance(0.05)  # 10x the planned flush delay
        sched.submit(_request(1, key="busy"))
        sched.submit(_request(2, key="busy"))
        batch = sched.next_batch(timeout=0.01)
        assert [r.id for r in batch] == [0]


class TestBatching:
    def test_flushes_immediately_at_max_batch(self):
        sched = BatchScheduler(max_batch=3, max_wait_ms=60_000)
        for rid in range(3):
            sched.submit(_request(rid))
        start = time.perf_counter()
        batch = sched.next_batch(timeout=5.0)
        assert len(batch) == 3
        assert time.perf_counter() - start < 1.0  # did not wait for the timer

    def test_flushes_partial_batch_after_max_wait(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=10)
        sched.submit(_request(0))
        batch = sched.next_batch(timeout=5.0)
        assert [r.id for r in batch] == [0]

    def test_batches_never_mix_plan_keys(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=0)
        sched.submit(_request(0, key="a"))
        sched.submit(_request(1, key="b"))
        sched.submit(_request(2, key="a"))
        first = sched.next_batch(timeout=1.0)
        second = sched.next_batch(timeout=1.0)
        assert {len(first), len(second)} == {1, 2}
        for batch in (first, second):
            assert len({r.key for r in batch}) == 1

    def test_oversize_shard_drains_in_max_batch_chunks(self):
        sched = BatchScheduler(max_batch=4, max_wait_ms=0)
        for rid in range(10):
            sched.submit(_request(rid))
        sizes = [len(sched.next_batch(timeout=1.0)) for _ in range(3)]
        assert sizes == [4, 4, 2]

    def test_timeout_returns_empty_batch(self):
        sched = BatchScheduler()
        assert sched.next_batch(timeout=0.01) == []

    def test_consumer_wakes_on_cross_thread_submit(self):
        sched = BatchScheduler(max_batch=1)
        got = []
        consumer = threading.Thread(
            target=lambda: got.append(sched.next_batch(timeout=5.0)))
        consumer.start()
        time.sleep(0.05)
        sched.submit(_request(7))
        consumer.join(timeout=5.0)
        assert [r.id for r in got[0]] == [7]


class TestShutdown:
    def test_drain_close_serves_the_backlog_then_signals_none(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=60_000)
        sched.submit(_request(0))
        assert sched.close(drain=True) == []
        batch = sched.next_batch(timeout=1.0)  # closed: flush without waiting
        assert [r.id for r in batch] == [0]
        assert sched.next_batch(timeout=1.0) is None

    def test_abort_close_returns_the_backlog(self):
        sched = BatchScheduler()
        sched.submit(_request(0))
        sched.submit(_request(1))
        aborted = sched.close(drain=False)
        assert sorted(r.id for r in aborted) == [0, 1]
        assert sched.depth == 0
        assert sched.next_batch(timeout=1.0) is None


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_wait_ms": -1.0},
        {"max_queue": 0},
    ])
    def test_bad_knobs_are_diagnosed(self, kwargs):
        with pytest.raises(ConfigError):
            BatchScheduler(**kwargs)


class TestSchedulerStress:
    """Producers and consumers racing on one scheduler: every request is
    served exactly once and shutdown wakes every parked worker."""

    def test_producers_and_consumers_drain_everything(self):
        sched = BatchScheduler(max_batch=4, max_queue=10_000,
                               max_wait_ms=1.0)
        producers, per_producer, consumers = 4, 50, 3
        served, lock = [], threading.Lock()
        start = threading.Barrier(producers + consumers)

        def produce(base):
            start.wait()
            for i in range(per_producer):
                sched.submit(_request(base + i, klass=GUARANTEED))

        def consume():
            start.wait()
            while True:
                batch = sched.next_batch(timeout=5.0)
                if batch is None:
                    return
                with lock:
                    served.extend(r.id for r in batch)

        threads = [threading.Thread(target=produce, args=(k * 1000,))
                   for k in range(producers)]
        threads += [threading.Thread(target=consume)
                    for _ in range(consumers)]
        for t in threads:
            t.start()
        for t in threads[:producers]:
            t.join(timeout=10.0)
        sched.close()  # notify_all: every parked consumer must wake
        for t in threads[producers:]:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)

        expected = sorted(k * 1000 + i for k in range(producers)
                          for i in range(per_producer))
        assert sorted(served) == expected  # exactly once, none lost
        assert sched.depth == 0
