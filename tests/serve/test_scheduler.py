"""The micro-batching scheduler: flush rules, admission control, shutdown."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError, ServeOverloadError, SimFaultError
from repro.serve import BatchScheduler, ServeRequest


def _request(rid: int, key: str = "k") -> ServeRequest:
    return ServeRequest(id=rid, key=key, x=None)


class TestAdmission:
    def test_overload_fast_fails(self):
        sched = BatchScheduler(max_queue=2, max_wait_ms=1000)
        sched.submit(_request(0))
        sched.submit(_request(1))
        with pytest.raises(ServeOverloadError):
            sched.submit(_request(2))
        assert sched.depth == 2

    def test_submit_after_close_is_diagnosed(self):
        sched = BatchScheduler()
        sched.close()
        with pytest.raises(SimFaultError):
            sched.submit(_request(0))

    def test_requeue_bypasses_admission_and_goes_first(self):
        sched = BatchScheduler(max_batch=4, max_queue=2, max_wait_ms=0)
        sched.submit(_request(0))
        sched.submit(_request(1))
        sched.requeue([_request(10), _request(11)])  # over max_queue: allowed
        batch = sched.next_batch(timeout=1.0)
        assert [r.id for r in batch] == [10, 11, 0, 1]


class TestBatching:
    def test_flushes_immediately_at_max_batch(self):
        sched = BatchScheduler(max_batch=3, max_wait_ms=60_000)
        for rid in range(3):
            sched.submit(_request(rid))
        start = time.perf_counter()
        batch = sched.next_batch(timeout=5.0)
        assert len(batch) == 3
        assert time.perf_counter() - start < 1.0  # did not wait for the timer

    def test_flushes_partial_batch_after_max_wait(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=10)
        sched.submit(_request(0))
        batch = sched.next_batch(timeout=5.0)
        assert [r.id for r in batch] == [0]

    def test_batches_never_mix_plan_keys(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=0)
        sched.submit(_request(0, key="a"))
        sched.submit(_request(1, key="b"))
        sched.submit(_request(2, key="a"))
        first = sched.next_batch(timeout=1.0)
        second = sched.next_batch(timeout=1.0)
        assert {len(first), len(second)} == {1, 2}
        for batch in (first, second):
            assert len({r.key for r in batch}) == 1

    def test_oversize_shard_drains_in_max_batch_chunks(self):
        sched = BatchScheduler(max_batch=4, max_wait_ms=0)
        for rid in range(10):
            sched.submit(_request(rid))
        sizes = [len(sched.next_batch(timeout=1.0)) for _ in range(3)]
        assert sizes == [4, 4, 2]

    def test_timeout_returns_empty_batch(self):
        sched = BatchScheduler()
        assert sched.next_batch(timeout=0.01) == []

    def test_consumer_wakes_on_cross_thread_submit(self):
        sched = BatchScheduler(max_batch=1)
        got = []
        consumer = threading.Thread(
            target=lambda: got.append(sched.next_batch(timeout=5.0)))
        consumer.start()
        time.sleep(0.05)
        sched.submit(_request(7))
        consumer.join(timeout=5.0)
        assert [r.id for r in got[0]] == [7]


class TestShutdown:
    def test_drain_close_serves_the_backlog_then_signals_none(self):
        sched = BatchScheduler(max_batch=8, max_wait_ms=60_000)
        sched.submit(_request(0))
        assert sched.close(drain=True) == []
        batch = sched.next_batch(timeout=1.0)  # closed: flush without waiting
        assert [r.id for r in batch] == [0]
        assert sched.next_batch(timeout=1.0) is None

    def test_abort_close_returns_the_backlog(self):
        sched = BatchScheduler()
        sched.submit(_request(0))
        sched.submit(_request(1))
        aborted = sched.close(drain=False)
        assert sorted(r.id for r in aborted) == [0, 1]
        assert sched.depth == 0
        assert sched.next_batch(timeout=1.0) is None


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_wait_ms": -1.0},
        {"max_queue": 0},
    ])
    def test_bad_knobs_are_diagnosed(self, kwargs):
        with pytest.raises(ConfigError):
            BatchScheduler(**kwargs)
