"""The autoscaler state machine: hysteresis, cooldown, determinism."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.serve import Autoscaler, AutoscalePolicy


def _policy(**kwargs) -> AutoscalePolicy:
    base = dict(min_workers=1, max_workers=4, backlog_per_worker=4.0,
                sustain_s=0.2, idle_s=0.5, cooldown_s=0.3)
    base.update(kwargs)
    return AutoscalePolicy(**base)


class TestScaleUp:
    def test_sustained_backlog_scales_up(self):
        scaler = Autoscaler(_policy())
        assert scaler.observe(10, 0.0) is None     # pressure starts
        assert scaler.observe(10, 0.1) is None     # not sustained yet
        event = scaler.observe(10, 0.25)
        assert event is not None and event.action == "up"
        assert (event.workers_from, event.workers_to) == (1, 2)
        assert event.reason == "sustained_backlog"
        assert scaler.workers == 2

    def test_transient_burst_does_not_scale(self):
        scaler = Autoscaler(_policy())
        scaler.observe(10, 0.0)
        scaler.observe(2, 0.1)    # pressure relents: trend resets
        assert scaler.observe(10, 0.25) is None
        assert scaler.workers == 1

    def test_never_exceeds_max_workers(self):
        scaler = Autoscaler(_policy(max_workers=2), workers=2)
        scaler.observe(100, 0.0)
        assert scaler.observe(100, 1.0) is None
        assert scaler.workers == 2

    def test_pressure_threshold_scales_with_worker_count(self):
        scaler = Autoscaler(_policy(), workers=2)
        scaler.observe(7, 0.0)                  # 7 < 4.0 * 2: no pressure
        assert scaler.observe(7, 1.0) is None
        scaler.observe(8, 2.0)                  # 8 >= 4.0 * 2: pressure
        assert scaler.observe(8, 2.3).action == "up"


class TestScaleDown:
    def test_sustained_idle_scales_down(self):
        scaler = Autoscaler(_policy(), workers=3)
        scaler.observe(0, 0.0)
        assert scaler.observe(0, 0.4) is None   # idle_s not reached
        event = scaler.observe(0, 0.6)
        assert event.action == "down" and event.reason == "idle"
        assert scaler.workers == 2

    def test_never_drops_below_min_workers(self):
        scaler = Autoscaler(_policy(min_workers=2), workers=2)
        scaler.observe(0, 0.0)
        assert scaler.observe(0, 10.0) is None
        assert scaler.workers == 2

    def test_midband_depth_resets_the_idle_trend(self):
        scaler = Autoscaler(_policy(), workers=3)
        scaler.observe(0, 0.0)
        scaler.observe(2, 0.3)   # neither idle nor pressured: hysteresis
        assert scaler.observe(0, 0.6) is None   # idle clock restarted
        assert scaler.workers == 3


class TestCooldown:
    def test_actions_respect_the_cooldown_gap(self):
        scaler = Autoscaler(_policy(cooldown_s=1.0))
        scaler.observe(100, 0.0)
        first = scaler.observe(100, 0.25)
        assert first.action == "up"
        assert scaler.observe(100, 0.5) is None      # cooling down
        assert scaler.observe(100, 0.9) is None
        second = scaler.observe(100, 1.5)
        assert second is not None and second.workers_to == 3

    def test_event_log_chains_and_counts(self):
        scaler = Autoscaler(_policy(cooldown_s=0.0, sustain_s=0.0,
                                    idle_s=0.0))
        scaler.observe(100, 0.1)
        scaler.observe(100, 0.2)
        scaler.observe(0, 0.3)
        assert [e.action for e in scaler.events] == ["up", "up", "down"]
        assert scaler.scale_ups == 2 and scaler.scale_downs == 1
        for prev, cur in zip(scaler.events, scaler.events[1:]):
            assert cur.workers_from == prev.workers_to


class TestDeterminism:
    def test_identical_observations_identical_events(self):
        observations = [(int(abs(10 - i % 20) * 1.5), i * 0.05)
                        for i in range(200)]
        runs = []
        for _ in range(2):
            scaler = Autoscaler(_policy())
            for depth, now in observations:
                scaler.observe(depth, now)
            runs.append([e.to_dict() for e in scaler.events])
        assert runs[0] == runs[1]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_workers": -1},
        {"max_workers": 0},
        {"min_workers": 5, "max_workers": 3},
        {"backlog_per_worker": 0.0},
        {"sustain_s": -1.0},
        {"cooldown_s": -0.1},
        {"step": 0},
    ])
    def test_bad_policy_is_diagnosed(self, kwargs):
        with pytest.raises(ConfigError):
            AutoscalePolicy(**kwargs)

    def test_initial_workers_clamped_to_bounds(self):
        assert Autoscaler(_policy(), workers=100).workers == 4
        assert Autoscaler(_policy(min_workers=2), workers=0).workers == 2
        assert Autoscaler(_policy()).workers == 1
