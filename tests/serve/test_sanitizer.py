"""The runtime lock sanitizer: order DAG, blocking waits, hold times."""

from __future__ import annotations

import threading

import pytest

from repro.serve import InferenceService
from repro.serve.sanitizer import (
    DEFAULT_MAX_HOLD_S,
    LockSanitizer,
    SanitizedCondition,
    SanitizedLock,
    get_sanitizer,
    make_condition,
    make_lock,
    sanitize_enabled,
)


@pytest.fixture
def san():
    """A private sanitizer so tests never touch the process-global one."""
    return LockSanitizer(max_hold_s=10.0)


class TestLockOrder:
    def test_consistent_order_is_clean(self, san):
        a = SanitizedLock("serve.test.a", sanitizer=san)
        b = SanitizedLock("serve.test.b", sanitizer=san)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert san.violations == []
        assert san.order["serve.test.a"] == {"serve.test.b"}

    def test_inverted_order_trips_lock_order(self, san):
        a = SanitizedLock("serve.test.a", sanitizer=san)
        b = SanitizedLock("serve.test.b", sanitizer=san)
        with a:
            with b:
                pass
        with b:
            with a:  # reverse edge: a->b already observed
                pass
        kinds = [v.kind for v in san.violations]
        assert kinds == ["lock_order"]
        violation = san.violations[0]
        assert violation.lock == "serve.test.a"
        assert violation.held == ("serve.test.b",)
        assert "cycle" in violation.detail

    def test_reacquiring_the_same_lock_name_is_not_a_cycle(self, san):
        a = SanitizedLock("serve.test.a", sanitizer=san)
        with a:
            pass
        with a:
            pass
        assert san.violations == []


class TestBlockingUnderLock:
    def test_wait_while_holding_another_lock_trips(self, san):
        outer = SanitizedLock("serve.test.outer", sanitizer=san)
        cond = SanitizedCondition("serve.test.cond", sanitizer=san)

        def waker():
            with cond:
                cond.notify_all()

        with outer:
            with cond:
                threading.Timer(0.05, waker).start()
                cond.wait(timeout=2.0)
        kinds = [v.kind for v in san.violations]
        assert "blocking_under_lock" in kinds
        violation = next(v for v in san.violations
                         if v.kind == "blocking_under_lock")
        assert violation.lock == "serve.test.cond"
        assert violation.held == ("serve.test.outer",)

    def test_bare_wait_is_clean(self, san):
        cond = SanitizedCondition("serve.test.cond", sanitizer=san)
        with cond:
            cond.wait(timeout=0.01)
        assert san.violations == []


class TestLongHold:
    def test_hold_over_threshold_trips(self):
        san = LockSanitizer(max_hold_s=0.0)  # any hold is too long
        lock = SanitizedLock("serve.test.slow", sanitizer=san)
        with lock:
            pass
        kinds = [v.kind for v in san.violations]
        assert kinds == ["long_hold"]
        assert "threshold" in san.violations[0].detail

    def test_idle_condition_wait_does_not_count_as_hold(self):
        san = LockSanitizer(max_hold_s=0.05)
        cond = SanitizedCondition("serve.test.cond", sanitizer=san)
        with cond:
            cond.wait(timeout=0.2)  # parked 4x the threshold
        assert san.violations == []

    def test_threshold_defaults_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE_MAX_HOLD_S", raising=False)
        assert LockSanitizer().max_hold_s == DEFAULT_MAX_HOLD_S
        monkeypatch.setenv("REPRO_SANITIZE_MAX_HOLD_S", "1.5")
        assert LockSanitizer().max_hold_s == 1.5


class TestMetrics:
    def test_metrics_dict_shape(self, san):
        lock = SanitizedLock("serve.test.a", sanitizer=san)
        with lock:
            pass
        with lock:
            pass
        data = san.metrics_dict()
        assert data["violations"] == 0
        assert set(data) == {"locks", "violations", "lock_wait_s",
                             "max_hold_s"}
        m = data["locks"]["serve.test.a"]
        assert m["acquisitions"] == 2
        assert m["max_hold_s"] >= 0.0
        assert set(m) == {"acquisitions", "contended", "lock_wait_s",
                          "hold_s", "max_hold_s"}

    def test_render_names_every_lock(self, san):
        with SanitizedLock("serve.test.a", sanitizer=san):
            pass
        text = san.render()
        assert "serve.test.a" in text
        assert "0 violations" in text

    def test_reset_clears_everything(self, san):
        a = SanitizedLock("serve.test.a", sanitizer=san)
        b = SanitizedLock("serve.test.b", sanitizer=san)
        with b:
            with a:
                pass
        with a:
            with b:
                pass
        assert san.violations
        san.reset()
        assert san.violations == []
        assert san.metrics == {}
        assert san.order == {}


class TestFactories:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        assert isinstance(make_lock("serve.test.x"), type(threading.Lock()))
        assert isinstance(make_condition("serve.test.x"),
                          threading.Condition)

    def test_enabled_by_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        assert isinstance(make_lock("serve.test.x"), SanitizedLock)
        assert isinstance(make_condition("serve.test.x"),
                          SanitizedCondition)


class TestLiveServeSanitized:
    def test_thread_pool_mini_soak_is_violation_free(self, monkeypatch,
                                                     net, inputs):
        """A real thread-mode pool under REPRO_SANITIZE=1: the serving
        stack's locks must show a clean order graph and no blocking
        waits under foreign locks."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        get_sanitizer().reset()
        with InferenceService(net, workers=3, max_batch=4,
                              max_wait_ms=1.0) as svc:
            outs = [svc.infer(x) for x in inputs * 2]
        assert len(outs) == len(inputs) * 2
        san = get_sanitizer()
        assert [v.render() for v in san.violations] == []
        data = san.metrics_dict()
        # the named serving locks actually went through the sanitizer
        assert "serve.scheduler.cond" in data["locks"]
        assert "serve.plan_cache.state" in data["locks"]
        assert data["locks"]["serve.scheduler.cond"]["acquisitions"] > 0
