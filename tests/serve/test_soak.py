"""The virtual-time soak harness: determinism, resilience, correctness."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.serve import AutoscalePolicy, PlanCache, run_soak
from repro.serve.soak import SoakReport


@pytest.fixture(scope="module")
def cache():
    """One compiled-plan cache shared across the module's soak runs."""
    return PlanCache()


def _soak(net, cache, requests=4000, **kwargs):
    defaults = dict(trace="burst", rate_rps=1500.0, seed=11, max_queue=64,
                    spot_check_every=0, cache=cache)
    defaults.update(kwargs)
    return run_soak([net], requests, **defaults)


class TestDeterminism:
    def test_same_seed_replays_shed_and_scale_sequences(self, net, cache):
        a = _soak(net, cache)
        b = _soak(net, cache)
        assert a.shed_log == b.shed_log
        assert a.scale_events == b.scale_events
        assert a.counts == b.counts
        assert a.latency_ms == b.latency_ms
        assert a.to_dict() == b.to_dict()

    def test_different_seed_changes_the_run(self, net, cache):
        a = _soak(net, cache)
        b = _soak(net, cache, seed=12)
        assert a.shed_log != b.shed_log


class TestResilience:
    def test_burst_is_absorbed_by_scaling_and_shedding(self, net, cache):
        report = _soak(net, cache, requests=8000, rate_rps=1000.0,
                       trace_kwargs={"burst_every_s": 2.0,
                                     "burst_len_s": 0.5,
                                     "burst_factor": 8.0},
                       autoscale=AutoscalePolicy(min_workers=1,
                                                 max_workers=8,
                                                 sustain_s=0.1,
                                                 cooldown_s=0.2))
        counts = report.counts
        # every request resolves exactly once, nothing hangs
        assert counts["completed"] + counts["shed"] + counts["rejected"] \
            == counts["submitted"] == 8000
        # overload is shed, not silently absorbed ...
        assert counts["shed"] > 0
        # ... but bounded: the pool still serves most of the load
        assert report.shed_rate < 0.9
        # the autoscaler reacted to the bursts
        assert sum(1 for e in report.scale_events if e.action == "up") >= 1
        # and the guaranteed class was never shed
        assert counts["guaranteed_shed"] == 0

    def test_guaranteed_class_only_fails_when_hard_full(self, net, cache):
        report = _soak(net, cache, guaranteed_fraction=0.3)
        assert report.counts["guaranteed_shed"] == 0

    def test_faults_are_injected_and_answers_stay_right(self, net, cache):
        plan = FaultPlan.parse("dram_stall:p=0.2;transfer_corrupt:p=0.1",
                               seed=5)
        report = _soak(net, cache, requests=3000, spot_check_every=250,
                       faults=plan.injector())
        assert report.faults_injected.get("dram_stall", 0) > 0
        assert report.faults_injected.get("transfer_corrupt", 0) > 0
        assert report.counts["spot_checks"] > 0
        assert report.counts["wrong_answers"] == 0

    def test_deadline_flushes_happen_under_light_load(self, net, cache):
        report = _soak(net, cache, requests=200, rate_rps=50.0,
                       trace="poisson", deadline_ms=10.0)
        # light load never fills batches: flushes come from deadlines
        assert report.counts["deadline_flushes"] > 0
        assert report.shed_rate == 0.0


class TestReport:
    def test_report_passes_its_own_checker(self, net, cache):
        from repro.check import check_soak_report_dict

        report = _soak(net, cache, requests=2000, spot_check_every=500)
        assert check_soak_report_dict(report.to_dict()) == []

    def test_report_round_trips_through_json(self, net, cache, tmp_path):
        import json

        report = _soak(net, cache, requests=1000)
        path = tmp_path / "soak.json"
        report.save(path)
        data = json.loads(path.read_text())
        assert data["bench"] == "serve_soak"
        assert data["counts"] == report.counts
        assert data["scale_ups"] == sum(1 for e in report.scale_events
                                        if e.action == "up")
        assert set(data["latency_ms"]) == {"p50", "p99", "p999", "max",
                                           "mean"}

    def test_percentiles_are_monotone(self, net, cache):
        report = _soak(net, cache)
        q = report.latency_ms
        assert q["p50"] <= q["p99"] <= q["p999"] <= q["max"]

    def test_render_carries_the_ci_greppable_lines(self, net, cache):
        report = _soak(net, cache, requests=1000, spot_check_every=100)
        text = report.render()
        assert "wrong answers: 0" in text
        assert "shed rate:" in text
        assert "guaranteed shed: 0" in text

    def test_isinstance_of_report(self, net, cache):
        assert isinstance(_soak(net, cache, requests=100), SoakReport)


class TestValidation:
    def test_no_networks_is_diagnosed(self):
        with pytest.raises(ConfigError):
            run_soak([], 10)

    def test_bad_request_count_is_diagnosed(self, net, cache):
        with pytest.raises(ConfigError):
            run_soak([net], 0, cache=cache)

    def test_bad_service_model_is_diagnosed(self, net, cache):
        with pytest.raises(ConfigError):
            _soak(net, cache, mean_service_ms=0.0)
        with pytest.raises(ConfigError):
            _soak(net, cache, spot_check_every=-1)
