"""Objective parsing, canonicalization, and scalarization."""

import pytest

from repro.errors import ConfigError
from repro.tune import Objective


class TestParse:
    def test_single_metric(self):
        obj = Objective.parse("cycles")
        assert obj.is_single
        assert obj.spec() == "cycles"

    def test_aliases(self):
        assert Objective.parse("latency").spec() == "cycles"
        assert Objective.parse("throughput").spec() == "interval"
        assert Objective.parse("transfer").spec() == "bytes"

    def test_weighted(self):
        obj = Objective.parse("cycles=0.7,energy=0.3")
        assert not obj.is_single
        assert obj.metrics == ("cycles", "energy")
        assert obj.spec() == "cycles=0.7,energy=0.3"

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigError):
            Objective.parse("luck")

    def test_duplicate_metric_rejected(self):
        with pytest.raises(ConfigError):
            Objective.parse("cycles=1,cycles=2")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError):
            Objective.parse("cycles=0")

    def test_bad_weight_text_rejected(self):
        with pytest.raises(ConfigError):
            Objective.parse("cycles=fast")


class TestValue:
    def test_single_returns_raw_metric(self):
        obj = Objective.parse("cycles")
        assert obj.value({"cycles": 123.0}) == 123.0

    def test_weighted_normalizes_by_baseline(self):
        obj = Objective.parse("cycles=0.5,bytes=0.5")
        base = {"cycles": 100.0, "bytes": 200.0}
        # at the baseline itself, every term is exactly its weight
        assert obj.value(base, base) == pytest.approx(1.0)
        half = {"cycles": 50.0, "bytes": 100.0}
        assert obj.value(half, base) == pytest.approx(0.5)

    def test_weighted_without_baseline_rejected(self):
        obj = Objective.parse("cycles=0.5,bytes=0.5")
        with pytest.raises(ConfigError):
            obj.value({"cycles": 1.0, "bytes": 1.0})

    def test_describe(self):
        assert Objective.parse("cycles").describe() == "minimize cycles"
        assert "baseline" in Objective.parse("cycles=1,energy=2").describe()
