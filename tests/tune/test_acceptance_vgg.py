"""The ISSUE acceptance criterion, as a test.

On the first five convolutional layers of VGGNet-E, a bounded
``tune --objective cycles`` run must find a configuration whose
simulated multi-pyramid cycles are <= the best result of a
partition-only exploration with default ``optimize_fused`` tiling —
i.e. the joint search never loses to the marginal search it subsumes —
while staying seed-deterministic and resumable with zero re-evaluations.
"""

import pytest

from repro.core.partition import compositions
from repro.hw.multi import design_partition
from repro.nn.stages import extract_levels
from repro.nn.zoo import vggnet_e
from repro.tune import tune

EVALS = 120
SEED = 7


@pytest.fixture(scope="module")
def partition_only_best():
    """Exhaustive partition sweep with default tiling (the old tool)."""
    levels = extract_levels(vggnet_e().prefix(5))
    best = None
    for sizes in compositions(len(levels)):
        try:
            design = design_partition(levels, sizes, dsp_budget=3600)
        except Exception:
            continue
        if best is None or design.latency_cycles < best:
            best = design.latency_cycles
    assert best is not None
    return best


@pytest.fixture(scope="module")
def tuned(tmp_path_factory):
    db = str(tmp_path_factory.mktemp("acceptance") / "db.json")
    result = tune(vggnet_e(), num_convs=5, objective="cycles",
                  evals=EVALS, seed=SEED, db=db)
    return result, db


class TestAcceptance:
    def test_joint_search_matches_or_beats_partition_only(
            self, tuned, partition_only_best):
        result, _ = tuned
        assert result.incumbent.value <= partition_only_best

    def test_candidate_count_is_bounded(self, tuned):
        result, _ = tuned
        assert result.considered == EVALS

    def test_trajectory_is_seed_deterministic(self, tuned):
        result, _ = tuned
        again = tune(vggnet_e(), num_convs=5, objective="cycles",
                     evals=EVALS, seed=SEED)
        assert again.incumbent.candidate == result.incumbent.candidate
        assert again.incumbent.value == result.incumbent.value

    def test_resume_from_db_needs_zero_reevaluations(self, tuned):
        result, db = tuned
        warm = tune(vggnet_e(), num_convs=5, objective="cycles",
                    evals=EVALS, seed=SEED, db=db)
        assert warm.fresh == 0
        assert warm.incumbent.value == result.incumbent.value

    def test_big_improvement_over_layer_by_layer(self, tuned):
        result, _ = tuned
        # the paper's core claim in cycles: fusion wins by a wide margin
        assert result.improvement > 2
