"""TuningDB persistence and the TunedRecord hand-off."""

import json

import pytest

from repro.errors import ConfigError
from repro.tune import (
    Candidate,
    EvalResult,
    TunedRecord,
    TuningDB,
    space_key,
)

KEY = space_key("ab12cd34", "XC7V690T", 3600, "cycles")


def result(sizes=(2,), value=100.0):
    cand = Candidate(sizes=sizes, tiles=(None,) * len(sizes))
    return EvalResult(candidate=cand, valid=True,
                      metrics={"cycles": value, "interval": value,
                               "energy": 0.1, "bytes": 64.0})


class TestTuningDB:
    def test_space_key_shape(self):
        assert KEY == "ab12cd34/XC7V690T/dsp3600/cycles"

    def test_record_and_lookup(self):
        db = TuningDB()
        r = result()
        db.record_eval(KEY, r)
        assert db.lookup(KEY, r.candidate) == r
        assert db.lookup(KEY, Candidate(sizes=(1, 1),
                                        tiles=(None, None))) is None
        assert db.num_evals(KEY) == 1

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "db.json"
        db = TuningDB(path=str(path))
        r = result()
        db.record_eval(KEY, r)
        db.set_incumbent(KEY, r.candidate, 100.0)
        db.record_run(KEY, {"seed": 7, "fresh": 1})
        db.save()

        again = TuningDB(path=str(path))
        assert again.lookup(KEY, r.candidate) == r
        stored, value = again.incumbent(KEY)
        assert stored == r and value == 100.0
        assert again.runs(KEY) == [{"seed": 7, "fresh": 1}]

    def test_ephemeral_save_is_noop(self):
        TuningDB().save()  # no path: nothing to write, nothing raised

    def test_open_coercions(self, tmp_path):
        db = TuningDB()
        assert TuningDB.open(db) is db
        assert TuningDB.open(None).path is None
        path_db = TuningDB.open(str(tmp_path / "x.json"))
        assert path_db.path is not None

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"surprise": True}))
        with pytest.raises(ConfigError):
            TuningDB(path=str(path))

    def test_incumbent_missing_eval_is_none(self):
        db = TuningDB()
        db.set_incumbent(KEY, result().candidate, 5.0)
        assert db.incumbent(KEY) is None


class TestTunedRecord:
    def test_from_result_and_back(self):
        r = result(sizes=(2, 1))
        record = TunedRecord.from_result("ab12cd34", "cycles", 100.0, r)
        assert record.partition_sizes == (2, 1)
        assert record.candidate == r.candidate
        assert record.value == 100.0

    def test_tuned_record_via_db(self):
        db = TuningDB()
        r = result()
        db.record_eval(KEY, r)
        db.set_incumbent(KEY, r.candidate, 100.0)
        record = db.tuned_record(KEY, "ab12cd34", "cycles")
        assert record is not None
        assert record.fingerprint == "ab12cd34"
        assert record.candidate == r.candidate
        assert db.tuned_record("other/key", "x", "cycles") is None
