"""The tuner's devices axis: device-count x partition co-search.

Opened by ``tune(..., device_counts=...)``: every candidate carries a
device count, pipeline metrics ride along in the eval, the DB key
grows a ``/devicesK-L`` suffix so historical single-device spaces stay
warm caches, and the winning record round-trips its device count into
the serving stack's auto-shard.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.nn.zoo import toynet
from repro.tune import Candidate, EvalResult, TunedRecord, tune
from repro.tune.db import TuningDB, space_key
from repro.tune.space import SearchSpace


class TestSpaceKeySuffix:
    def test_multi_count_spaces_get_a_suffix(self):
        key = space_key("ab12cd34", "XC7V690T", 3600, "interval_dsp",
                        device_counts=(1, 2, 4))
        assert key == "ab12cd34/XC7V690T/dsp3600/interval_dsp/devices1-2-4"

    def test_single_device_keys_stay_historical(self):
        # pre-devices DBs must remain warm caches: no suffix at (1,)
        key = space_key("ab12cd34", "XC7V690T", 3600, "cycles")
        assert key == "ab12cd34/XC7V690T/dsp3600/cycles"
        assert key == space_key("ab12cd34", "XC7V690T", 3600, "cycles",
                                device_counts=(1,))


class TestCoSearch:
    def test_candidates_stay_inside_the_counts(self):
        result = tune(toynet(), objective="interval_dsp",
                      device_counts=(1, 2), evals=12, seed=3, batch=4)
        assert result.incumbent.candidate.devices in (1, 2)
        assert result.record.metrics["pipe_interval"] > 0
        assert result.record.metrics["interval_dsp"] > 0

    def test_same_seed_same_verdict(self):
        a = tune(toynet(), objective="interval_dsp", device_counts=(1, 2),
                 evals=10, seed=11, batch=4)
        b = tune(toynet(), objective="interval_dsp", device_counts=(1, 2),
                 evals=10, seed=11, batch=4)
        assert a.incumbent.candidate == b.incumbent.candidate
        assert a.incumbent.value == b.incumbent.value

    def test_explicit_space_and_counts_conflict(self):
        space = SearchSpace.from_network(toynet())
        with pytest.raises(ConfigError):
            tune(toynet(), space=space, device_counts=(1, 2))

    def test_pipeline_metrics_priced_for_any_device_count(self):
        from repro.tune.evaluate import EvalContext, evaluate_candidate

        ctx = EvalContext.from_space(SearchSpace.from_network(toynet()))
        for devices in (1, 2):
            candidate = Candidate(sizes=(1, 1), tiles=(None, None),
                                  devices=devices)
            res = evaluate_candidate(ctx, candidate)
            assert res.valid
            assert res.metrics["pipe_interval"] > 0
            assert res.metrics["interval_dsp"] > 0

    def test_more_devices_than_groups_is_invalid_not_fatal(self):
        from repro.tune.evaluate import EvalContext, evaluate_candidate

        ctx = EvalContext.from_space(SearchSpace.from_network(toynet()))
        res = evaluate_candidate(ctx, Candidate(sizes=(2,), tiles=(None,),
                                                devices=2))
        assert not res.valid
        assert res.reason


class TestRecordRoundtrip:
    def test_record_carries_devices(self):
        result = tune(toynet(), objective="interval_dsp",
                      device_counts=(2,), evals=8, seed=0, batch=4)
        record = result.record
        assert record.devices == 2
        assert record.candidate.devices == 2

    def test_db_roundtrip_preserves_devices(self, tmp_path):
        path = str(tmp_path / "db.json")
        first = tune(toynet(), objective="interval_dsp",
                     device_counts=(1, 2), evals=10, seed=5, db=path)
        again = tune(toynet(), objective="interval_dsp",
                     device_counts=(1, 2), evals=10, seed=5, db=path)
        assert again.cached >= 1
        assert (again.incumbent.candidate.devices
                == first.incumbent.candidate.devices)

    def test_legacy_records_default_to_one_device(self):
        record = TunedRecord(fingerprint="ab12cd34", objective="cycles",
                             partition_sizes=(2,), tiles=(None,),
                             strategy="reuse", tip=1, value=9.0, metrics={})
        assert record.devices == 1
        assert record.candidate.devices == 1

    def test_checker_rejects_impossible_device_counts(self):
        from repro.check import check_tuned_record

        bad = TunedRecord(fingerprint="ab12cd34", objective="interval_dsp",
                          partition_sizes=(1, 1), tiles=(None, None),
                          strategy="reuse", tip=1, value=9.0, metrics={},
                          devices=5)
        codes = {d.code for d in check_tuned_record(bad, fingerprint="ab12cd34")}
        assert "RC407" in codes
