"""Candidate evaluation against the hardware simulators."""

import pytest

from repro.hw.multi import design_partition
from repro.nn.stages import extract_levels
from repro.nn.zoo import toynet, vggnet_e
from repro.tune import (
    Candidate,
    EvalContext,
    SearchSpace,
    candidate_design,
    candidate_resources,
    evaluate_batch,
    evaluate_candidate,
    lower_bounds,
)


@pytest.fixture(scope="module")
def vgg_ctx():
    return EvalContext.from_space(
        SearchSpace.from_network(vggnet_e(), num_convs=5))


@pytest.fixture(scope="module")
def toy_ctx():
    return EvalContext.from_space(SearchSpace.from_network(toynet()))


def auto_candidate(ctx, sizes, **kwargs):
    return Candidate(sizes=sizes, tiles=(None,) * len(sizes), **kwargs)


class TestCandidateDesign:
    def test_all_auto_matches_design_partition(self, vgg_ctx):
        """With every group on auto tiling, the candidate design is
        exactly what hw.multi.design_partition builds."""
        sizes = (4, 3)
        cand = auto_candidate(vgg_ctx, sizes)
        ours = candidate_design(vgg_ctx.levels, cand,
                                dsp_budget=vgg_ctx.dsp_budget)
        reference = design_partition(list(vgg_ctx.levels), sizes,
                                     dsp_budget=vgg_ctx.dsp_budget)
        assert ours.latency_cycles == reference.latency_cycles
        assert ours.throughput_interval == reference.throughput_interval
        assert ours.dsp == reference.dsp

    def test_explicit_tile_caps_modules(self, vgg_ctx):
        cand = Candidate(sizes=(7,), tiles=((8, 4),))
        design = candidate_design(vgg_ctx.levels, cand,
                                  dsp_budget=vgg_ctx.dsp_budget)
        for module in design.engines[0].modules:
            assert module.tm <= 8
            assert module.tn <= 4

    def test_recompute_costs_more_cycles(self, vgg_ctx):
        reuse = evaluate_candidate(
            vgg_ctx, auto_candidate(vgg_ctx, (7,), tip=4))
        recompute = evaluate_candidate(
            vgg_ctx, auto_candidate(vgg_ctx, (7,), strategy="recompute",
                                    tip=4))
        assert reuse.valid
        # recompute re-derives every shared value per pyramid: strictly
        # more cycles than reuse at the same tip.
        assert recompute.metrics["cycles"] > reuse.metrics["cycles"]

    def test_recompute_drops_reuse_buffers(self, vgg_ctx):
        cand = auto_candidate(vgg_ctx, (7,), tip=4)
        design = candidate_design(vgg_ctx.levels, cand,
                                  dsp_budget=vgg_ctx.dsp_budget)
        reuse_bram = candidate_resources(design, "reuse").bram18
        recompute_bram = candidate_resources(design, "recompute").bram18
        assert recompute_bram < reuse_bram


class TestEvaluateCandidate:
    def test_fused_beats_layer_by_layer_on_toynet(self, toy_ctx):
        base = evaluate_candidate(toy_ctx, auto_candidate(toy_ctx, (1, 1)))
        fused = evaluate_candidate(toy_ctx, auto_candidate(toy_ctx, (2,)))
        assert base.valid and fused.valid
        assert fused.metrics["cycles"] < base.metrics["cycles"]
        assert fused.metrics["bytes"] < base.metrics["bytes"]

    def test_metrics_present_for_valid(self, toy_ctx):
        result = evaluate_candidate(toy_ctx, auto_candidate(toy_ctx, (2,)))
        for key in ("cycles", "interval", "energy", "bytes", "dsp", "bram18"):
            assert key in result.metrics

    def test_bram_budget_invalidates(self):
        space = SearchSpace.from_network(vggnet_e(), num_convs=5,
                                         bram_budget=100)
        ctx = EvalContext.from_space(space)
        result = evaluate_candidate(ctx, auto_candidate(ctx, (7,)))
        assert not result.valid
        assert "BRAM18" in result.reason
        # metrics computed before the check survive for diagnostics
        assert "cycles" in result.metrics

    def test_infeasible_dsp_invalidates_with_reason(self):
        space = SearchSpace.from_network(vggnet_e(), num_convs=5,
                                         dsp_budget=500)
        ctx = EvalContext.from_space(space)
        # 7 layer-by-layer conv engines need 7 * 400 DSP floors
        result = evaluate_candidate(
            ctx, Candidate(sizes=(1,) * 7, tiles=(None,) * 7))
        assert not result.valid
        assert result.reason

    def test_round_trips_through_dict(self, toy_ctx):
        result = evaluate_candidate(toy_ctx, auto_candidate(toy_ctx, (2,)))
        from repro.tune import EvalResult

        again = EvalResult.from_dict(result.to_dict())
        assert again == result


class TestLowerBounds:
    @pytest.mark.parametrize("sizes", [(7,), (1,) * 7, (4, 3), (2, 2, 3)])
    def test_bounds_never_exceed_actual(self, vgg_ctx, sizes):
        cand = auto_candidate(vgg_ctx, sizes)
        result = evaluate_candidate(vgg_ctx, cand)
        assert result.valid
        lb = lower_bounds(vgg_ctx, cand)
        assert lb["cycles"] <= result.metrics["cycles"]
        assert lb["interval"] <= result.metrics["interval"]
        assert lb["energy"] <= result.metrics["energy"]
        # the bytes model is exact: the bound IS the metric
        assert lb["bytes"] == result.metrics["bytes"]

    def test_bounds_hold_under_recompute(self, vgg_ctx):
        cand = auto_candidate(vgg_ctx, (7,), strategy="recompute", tip=2)
        result = evaluate_candidate(vgg_ctx, cand)
        assert result.valid
        lb = lower_bounds(vgg_ctx, cand)
        assert lb["cycles"] <= result.metrics["cycles"]


class TestEvaluateBatch:
    def test_parallel_matches_serial(self, toy_ctx):
        cands = [
            auto_candidate(toy_ctx, (2,)),
            auto_candidate(toy_ctx, (1, 1)),
            Candidate(sizes=(2,), tiles=((4, 2),)),
            auto_candidate(toy_ctx, (2,), strategy="recompute"),
        ]
        serial = evaluate_batch(toy_ctx, cands, jobs=1)
        parallel = evaluate_batch(toy_ctx, cands, jobs=2)
        assert parallel == serial
