"""Seeded-determinism properties of the tuner (ISSUE satellite).

The contract: the (seed, budget) pair fully determines a tuning run —
the same incumbent, the same trajectory, and byte-identical database
contents. Nothing wall-clock-dependent may leak into the DB, or warm
resume and reproducibility both break.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nn.zoo import toynet
from repro.tune import tune

_SETTINGS = dict(max_examples=8, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestSeedDeterminism:
    @given(seed=st.integers(0, 2**32 - 1), evals=st.integers(5, 40))
    @settings(**_SETTINGS)
    def test_same_seed_and_budget_same_incumbent(self, seed, evals):
        a = tune(toynet(), evals=evals, seed=seed)
        b = tune(toynet(), evals=evals, seed=seed)
        assert a.incumbent.candidate == b.incumbent.candidate
        assert a.incumbent.value == b.incumbent.value
        assert a.history == b.history
        assert (a.fresh, a.cached, a.pruned) == (b.fresh, b.cached, b.pruned)

    @given(seed=st.integers(0, 2**16), evals=st.integers(5, 30))
    @settings(**_SETTINGS)
    def test_same_seed_produces_identical_db_files(self, seed, evals,
                                                   tmp_path_factory):
        paths = []
        for tag in ("a", "b"):
            path = str(tmp_path_factory.mktemp(tag) / "db.json")
            tune(toynet(), evals=evals, seed=seed, db=path)
            paths.append(path)
        blobs = [open(p, "rb").read() for p in paths]
        assert blobs[0] == blobs[1]

    @given(seed=st.integers(0, 2**16))
    @settings(**_SETTINGS)
    def test_db_contains_no_wallclock_fields(self, seed, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("db") / "db.json")
        tune(toynet(), evals=10, seed=seed, db=path)
        with open(path) as handle:
            data = json.load(handle)
        text = json.dumps(data)
        for forbidden in ("elapsed", "seconds", "time", "wall"):
            assert forbidden not in text
