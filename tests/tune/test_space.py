"""Candidate encoding and the seeded SearchSpace generators."""

import random

import pytest

from repro.errors import ConfigError
from repro.nn.zoo import toynet, vggnet_e
from repro.tune import Candidate, SearchSpace


def vgg_space():
    return SearchSpace.from_network(vggnet_e(), num_convs=5)


class TestCandidate:
    def test_key_is_canonical(self):
        c = Candidate(sizes=(2, 1), tiles=((8, 4), None), strategy="reuse",
                      tip=1)
        assert c.key() == "2+1|8x4,auto|reuse|tip1"

    def test_dict_round_trip(self):
        c = Candidate(sizes=(3, 4), tiles=(None, (16, 2)),
                      strategy="recompute", tip=4)
        assert Candidate.from_dict(c.to_dict()) == c

    def test_tile_count_must_match_groups(self):
        with pytest.raises(ConfigError):
            Candidate(sizes=(2, 1), tiles=(None,))

    def test_bad_strategy_rejected(self):
        with pytest.raises(ConfigError):
            Candidate(sizes=(1,), tiles=(None,), strategy="teleport")

    def test_counts(self):
        c = Candidate(sizes=(2, 3), tiles=(None, None))
        assert c.num_units == 5
        assert c.num_groups == 2


class TestSearchSpace:
    def test_baseline_is_layer_by_layer_auto(self):
        space = vgg_space()
        base = space.baseline()
        assert base.sizes == (1,) * space.num_units
        assert all(t is None for t in base.tiles)
        assert base.strategy == "reuse" and base.tip == 1

    def test_validate_rejects_wrong_unit_count(self):
        space = vgg_space()
        with pytest.raises(ConfigError):
            space.validate(Candidate(sizes=(1,), tiles=(None,)))

    def test_validate_rejects_off_menu_tile(self):
        space = vgg_space()
        n = space.num_units
        cand = Candidate(sizes=(n,), tiles=((5, 3),))
        with pytest.raises(ConfigError):
            space.validate(cand)

    def test_random_candidates_are_deterministic_and_in_space(self):
        space = vgg_space()
        a = [space.random_candidate(random.Random(11)) for _ in range(20)]
        b = [space.random_candidate(random.Random(11)) for _ in range(20)]
        assert a == b
        for cand in a:
            assert space.validate(cand) is cand

    def test_mutations_stay_in_space(self):
        space = vgg_space()
        rng = random.Random(5)
        cand = space.baseline()
        for _ in range(200):
            cand = space.mutate(rng, cand)
            space.validate(cand)
            assert cand.num_units == space.num_units

    def test_mutation_reaches_every_axis(self):
        space = vgg_space()
        rng = random.Random(1)
        seen_sizes, seen_tiles, seen_strategies, seen_tips = (
            set(), set(), set(), set())
        cand = space.baseline()
        for _ in range(400):
            cand = space.mutate(rng, cand)
            seen_sizes.add(cand.sizes)
            seen_tiles.add(cand.tiles)
            seen_strategies.add(cand.strategy)
            seen_tips.add(cand.tip)
        assert len(seen_sizes) > 5
        assert len(seen_tiles) > 5
        assert seen_strategies == {"reuse", "recompute"}
        assert seen_tips == set(space.tips)

    def test_from_network_prefix_matches_units(self):
        space = SearchSpace.from_network(toynet())
        assert space.num_units == 2
