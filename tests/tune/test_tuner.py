"""The tuning loop: budgets, determinism, warm resume, degradation."""

import json

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.nn.zoo import toynet, vggnet_e
from repro.tune import TuningDB, tune


class TestTuneLoop:
    def test_incumbent_beats_baseline_on_toynet(self):
        result = tune(toynet(), evals=50, seed=7)
        assert result.incumbent.value < result.baseline.value
        assert result.improvement > 1
        assert result.considered == 50

    def test_budget_charges_every_considered_candidate(self):
        result = tune(toynet(), evals=30, seed=1)
        assert result.considered == 30
        assert (result.fresh + result.cached + result.pruned
                == result.considered)

    def test_same_seed_same_trajectory(self):
        a = tune(toynet(), evals=40, seed=5)
        b = tune(toynet(), evals=40, seed=5)
        assert a.incumbent.candidate == b.incumbent.candidate
        assert a.incumbent.value == b.incumbent.value
        assert a.history == b.history

    def test_different_seeds_may_differ(self):
        # not guaranteed per-pair, but the trajectory must depend on the
        # seed: over several seeds the fresh-evaluation counts vary.
        counts = {tune(toynet(), evals=40, seed=s).fresh for s in range(4)}
        assert len(counts) > 1

    def test_warm_resume_zero_fresh(self, tmp_path):
        db = str(tmp_path / "db.json")
        first = tune(toynet(), evals=40, seed=7, db=db)
        assert first.fresh > 0
        second = tune(toynet(), evals=40, seed=7, db=db)
        assert second.fresh == 0
        assert second.cached == second.considered - second.pruned
        assert second.incumbent.candidate == first.incumbent.candidate
        assert second.incumbent.value == first.incumbent.value

    def test_random_strategy_also_works(self):
        result = tune(toynet(), strategy="random", evals=30, seed=2)
        assert result.incumbent.value <= result.baseline.value

    def test_jobs_do_not_change_the_result(self):
        serial = tune(toynet(), evals=30, seed=3, jobs=1)
        parallel = tune(toynet(), evals=30, seed=3, jobs=2)
        assert parallel.incumbent.candidate == serial.incumbent.candidate
        assert parallel.history == serial.history

    def test_seconds_budget_degrades(self):
        # an absurdly small wall-clock budget: the guarantee is at least
        # the baseline evaluation and a degraded=True result, not a crash
        result = tune(vggnet_e(), num_convs=5, seconds=1e-6, seed=0)
        assert result.degraded
        assert result.considered >= 1
        assert result.incumbent is not None

    def test_eval_budget_is_not_degraded(self):
        result = tune(toynet(), evals=20, seed=0)
        assert not result.degraded

    def test_bad_batch_rejected(self):
        with pytest.raises(ConfigError):
            tune(toynet(), evals=10, batch=0)

    def test_result_to_dict_is_json_ready(self):
        result = tune(toynet(), evals=20, seed=4)
        blob = json.dumps(result.to_dict(), sort_keys=True)
        data = json.loads(blob)
        assert data["incumbent"]["value"] == result.incumbent.value
        assert data["considered"] == 20

    def test_obs_counters_mirror_the_loop(self):
        with obs.capture() as registry:
            result = tune(toynet(), evals=30, seed=7)
        counters = registry.to_dict()["counters"]
        assert counters["tune.candidates_evaluated"] == result.fresh
        assert counters.get("tune.cached_hits", 0) == result.cached
        assert counters.get("tune.incumbent_updates", 0) >= 1
        names = [s["name"] for s in registry.to_dict()["spans"]]
        assert "tune" in names
        assert "tune.generation" in names

    def test_weighted_objective(self):
        result = tune(toynet(), objective="cycles=0.7,energy=0.3",
                      evals=30, seed=7)
        # normalized: the baseline scores exactly the weight sum
        assert result.baseline.value == pytest.approx(1.0)
        assert result.incumbent.value < result.baseline.value

    def test_record_property_round_trips(self):
        result = tune(toynet(), evals=30, seed=7)
        record = result.record
        assert record.fingerprint == result.fingerprint
        assert record.candidate == result.incumbent.candidate
