"""Tuned records flowing into the serving layer."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve.plan import PlanCache, PlanKey, compile_plan
from repro.nn.zoo import toynet, vggnet_e
from repro.sim.network_exec import NetworkExecutor
from repro.tune import tune


@pytest.fixture(scope="module")
def toy_result():
    return tune(toynet(), evals=40, seed=7)


class TestCompileTuned:
    def test_plan_freezes_the_tuned_configuration(self, toy_result):
        network = toynet().feature_extractor()
        plan = compile_plan(network, tuned=toy_result.record)
        assert plan.partition_sizes == toy_result.incumbent.candidate.sizes
        assert plan.key.tip == toy_result.incumbent.candidate.tip
        assert plan.key.variant == "tuned:cycles"

    def test_tuned_plan_executes_correctly(self, toy_result):
        network = toynet().feature_extractor()
        plan = compile_plan(network, tuned=toy_result.record)
        shape = network.input_shape
        rng = np.random.default_rng(0)
        x = np.round(rng.uniform(-4, 4, size=(shape.channels, shape.height,
                                              shape.width)))
        direct = NetworkExecutor(network, seed=0, integer=True).run(x)
        out = plan.execute([x])[0]
        assert np.array_equal(out, direct)

    def test_fingerprint_mismatch_rejected(self, toy_result):
        with pytest.raises(ConfigError):
            compile_plan(vggnet_e().feature_extractor(),
                         tuned=toy_result.record)

    def test_tuned_and_default_plans_do_not_alias(self, toy_result):
        network = toynet().feature_extractor()
        cache = PlanCache()
        tuned = cache.get_or_compile(network, tuned=toy_result.record)
        again = cache.get_or_compile(network, tuned=toy_result.record)
        assert again is tuned
        assert cache.hits == 1
        default = cache.get_or_compile(network)
        assert default is not tuned
        assert len(cache) == 2


class TestPlanKeyVariant:
    def test_round_trip_with_variant(self):
        key = PlanKey(fingerprint="ff", strategy="REUSE", tip=2,
                      storage_budget_bytes=None, precision="int",
                      variant="tuned:bytes")
        assert PlanKey.from_dict(key.to_dict()) == key
        assert "tuned:bytes" in str(key)

    def test_legacy_dict_without_variant_still_loads(self):
        key = PlanKey(fingerprint="ff", strategy="REUSE", tip=1,
                      storage_budget_bytes=None, precision="int")
        data = key.to_dict()
        data.pop("variant")
        assert PlanKey.from_dict(data) == key

    def test_default_variant_hidden_from_str(self):
        key = PlanKey(fingerprint="ff", strategy="REUSE", tip=1,
                      storage_budget_bytes=None, precision="int")
        assert "default" not in str(key)
