"""Search strategies and the Pareto archive."""

import math
import random

import pytest

from repro.errors import ConfigError
from repro.nn.zoo import vggnet_e
from repro.tune import (
    Candidate,
    EvalResult,
    EvolutionarySearch,
    RandomSearch,
    Scored,
    SearchSpace,
    make_strategy,
    pareto_insert,
)


def scored(value, cycles=None, energy=1.0, nbytes=1.0, valid=True, tag=1):
    """A Scored wrapper around synthetic metrics."""
    cand = Candidate(sizes=(tag,), tiles=(None,))
    metrics = {"cycles": value if cycles is None else cycles,
               "energy": energy, "bytes": nbytes}
    return Scored(result=EvalResult(candidate=cand, valid=valid,
                                    metrics=metrics),
                  value=value)


@pytest.fixture(scope="module")
def space():
    return SearchSpace.from_network(vggnet_e(), num_convs=5)


class TestStrategies:
    def test_registry(self):
        assert isinstance(make_strategy("random"), RandomSearch)
        assert isinstance(make_strategy("evolve"), EvolutionarySearch)
        with pytest.raises(ConfigError):
            make_strategy("oracle")

    def test_random_is_seed_deterministic(self, space):
        a = RandomSearch().propose(random.Random(3), space, 12)
        b = RandomSearch().propose(random.Random(3), space, 12)
        assert a == b

    def test_evolve_first_generation_starts_from_anchors(self, space):
        strat = EvolutionarySearch()
        out = strat.propose(random.Random(3), space, 6)
        assert len(out) == 6
        anchors = space.anchors()
        assert out[:len(anchors)] == anchors[:6]
        # fully fused at the smallest tip leads the batch
        assert out[0].sizes == (space.num_units,)

    def test_anchors_are_deterministic_and_valid(self, space):
        anchors = space.anchors()
        assert anchors == space.anchors()
        assert len(anchors) == len(set(anchors))
        for cand in anchors:
            space.validate(cand)

    def test_evolve_trajectory_is_seed_deterministic(self, space):
        def run(seed):
            rng = random.Random(seed)
            strat = EvolutionarySearch(population=4, immigrants=1)
            history = []
            for gen in range(5):
                batch = strat.propose(rng, space, 6)
                history.append([c.key() for c in batch])
                strat.observe(rng, [scored(float(100 + i + gen), tag=7)
                                    for i in range(len(batch))])
            return history

        assert run(9) == run(9)
        assert run(9) != run(10)

    def test_evolve_pool_keeps_best(self, space):
        rng = random.Random(0)
        strat = EvolutionarySearch(population=2, immigrants=0,
                                   temperature=0.0)
        strat.observe(rng, [scored(50.0, tag=7), scored(10.0, tag=7),
                            scored(90.0, tag=7)])
        values = sorted(v for v, _, _ in strat._pool)
        assert values == [10.0, 50.0]

    def test_evolve_ignores_invalid(self, space):
        rng = random.Random(0)
        strat = EvolutionarySearch()
        strat.observe(rng, [scored(math.inf, valid=False, tag=7)])
        assert strat._pool == []

    def test_evolve_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            EvolutionarySearch(population=0)
        with pytest.raises(ConfigError):
            EvolutionarySearch(decay=0)


class TestParetoInsert:
    def test_non_dominated_points_accumulate(self):
        archive = []
        assert pareto_insert(archive, scored(1, cycles=1, energy=9, nbytes=5))
        assert pareto_insert(archive, scored(2, cycles=9, energy=1, nbytes=5))
        assert len(archive) == 2

    def test_dominated_point_rejected(self):
        archive = []
        pareto_insert(archive, scored(1, cycles=1, energy=1, nbytes=1))
        assert not pareto_insert(archive,
                                 scored(2, cycles=2, energy=2, nbytes=2))
        assert len(archive) == 1

    def test_dominating_point_evicts(self):
        archive = []
        pareto_insert(archive, scored(5, cycles=5, energy=5, nbytes=5))
        pareto_insert(archive, scored(9, cycles=1, energy=9, nbytes=9))
        assert pareto_insert(archive, scored(1, cycles=1, energy=1, nbytes=1))
        assert len(archive) == 1
        assert archive[0].value == 1

    def test_duplicate_metrics_rejected(self):
        archive = []
        pareto_insert(archive, scored(3, cycles=3, energy=3, nbytes=3))
        assert not pareto_insert(archive,
                                 scored(3, cycles=3, energy=3, nbytes=3))
        assert len(archive) == 1

    def test_invalid_never_enters(self):
        archive = []
        assert not pareto_insert(archive, scored(1, valid=False))
        assert archive == []
