"""Fault injection in the DRAM channel and pipeline simulators."""

import pytest

from repro import obs
from repro.errors import SimFaultError
from repro.faults import FaultPlan, RetryPolicy
from repro.hw.memory_sim import ComputeStage, MemStage, simulate_with_channel
from repro.hw.pipeline import StageTiming, simulate_pipeline

STAGES = [MemStage("load", 64), ComputeStage("conv", 10), MemStage("store", 32)]


def run(plan=None, retry=None, items=12, wpc=8.0):
    faults = plan.injector() if plan is not None else None
    return simulate_with_channel(STAGES, items, words_per_cycle=wpc,
                                 faults=faults, retry=retry)


class TestChannelFaults:
    def test_empty_injector_matches_fault_free(self):
        clean = run()
        inert = run(FaultPlan())  # no specs: injector enabled but inert
        assert inert.makespan == clean.makespan
        assert inert.stalls == inert.retries == inert.stall_cycles == 0

    def test_dram_stalls_slow_the_channel(self):
        clean = run()
        faulty = run(FaultPlan.parse("dram_stall:p=0.3,cycles=50", seed=1))
        assert faulty.stalls > 0
        assert faulty.retries == faulty.stalls
        assert faulty.stall_cycles > 0
        assert faulty.makespan > clean.makespan
        assert faulty.channel_busy > clean.channel_busy

    def test_deterministic_across_runs(self):
        plan = FaultPlan.parse("dram_stall:p=0.3", seed=5)
        assert run(plan).makespan == run(plan).makespan

    def test_retry_budget_exhaustion_is_diagnosed(self):
        plan = FaultPlan.parse("dram_stall:p=1", seed=0)
        with pytest.raises(SimFaultError) as err:
            run(plan, retry=RetryPolicy(max_attempts=2))
        assert err.value.context["kind"] == "dram_stall"
        assert err.value.context["max_attempts"] == 2
        assert "channel[" in err.value.context["site"]

    def test_bandwidth_degrade_scales_transfers(self):
        clean = run()
        halved = run(FaultPlan.parse("bandwidth_degrade:factor=0.5"))
        assert halved.makespan > clean.makespan
        # Transfers take exactly twice as long, so channel busy doubles.
        assert halved.channel_busy == 2 * clean.channel_busy

    def test_bandwidth_degrade_after_horizon_is_noop(self):
        clean = run()
        late = run(FaultPlan.parse(
            "bandwidth_degrade:factor=0.5,after_cycle=100000000"))
        assert late.makespan == clean.makespan

    def test_memory_bound_stays_nominal(self):
        """The roofline bound reports the healthy machine; faults only
        move the simulated makespan."""
        clean = run()
        faulty = run(FaultPlan.parse("dram_stall:p=0.3,cycles=50", seed=1))
        assert faulty.memory_bound == clean.memory_bound
        assert faulty.compute_bound == clean.compute_bound

    def test_stall_counters_mirrored_to_obs(self):
        plan = FaultPlan.parse("dram_stall:p=0.3,cycles=50", seed=1)
        with obs.capture() as registry:
            schedule = run(plan)
        counters = registry.to_dict()["counters"]
        assert counters["faults.injected[dram_stall]"] == schedule.stalls
        assert counters["faults.retries"] == schedule.retries
        assert counters["faults.stall_cycles"] == 50 * schedule.stalls


class TestPipelineStageStalls:
    TIMINGS = [StageTiming("conv1", 4), StageTiming("conv2", 6),
               StageTiming("pool", 2)]

    def test_universal_stall_stretches_every_stage(self):
        clean = simulate_pipeline(self.TIMINGS, 5)
        plan = FaultPlan.parse("stage_stall:p=1,cycles=3")
        faulty = simulate_pipeline(self.TIMINGS, 5, faults=plan.injector())
        # Every (item, stage) execution gains 3 cycles, so the bottleneck
        # interval grows from 6 to 9.
        assert faulty.makespan > clean.makespan
        assert faulty.stage_finish[0][0] == clean.stage_finish[0][0] + 3

    def test_stage_filter(self):
        plan = FaultPlan.parse("stage_stall:p=1,cycles=100,stage=pool")
        faulty = simulate_pipeline(self.TIMINGS, 3, faults=plan.injector())
        # conv1 of item 0 is untouched; pool is stretched.
        assert faulty.stage_finish[0][0] == 4

    def test_no_faults_identical(self):
        clean = simulate_pipeline(self.TIMINGS, 7)
        inert = simulate_pipeline(self.TIMINGS, 7, faults=FaultPlan().injector())
        assert inert.makespan == clean.makespan
        assert inert.stage_finish == clean.stage_finish

    def test_stall_cycles_counted(self):
        plan = FaultPlan.parse("stage_stall:p=1,cycles=3")
        with obs.capture() as registry:
            simulate_pipeline(self.TIMINGS, 5, faults=plan.injector())
        counters = registry.to_dict()["counters"]
        assert counters["faults.stage_stall_cycles"] == 3 * 5 * len(self.TIMINGS)
