"""Precision rescaling of the paper's fp32 designs."""

import pytest

from repro import extract_levels, vggnet_e
from repro.core.costs import group_transfer, reuse_storage_bytes
from repro.hw.precision import (
    FP16,
    FP32,
    INT16,
    Precision,
    equivalent_dsp_budget,
    precision_summary,
    scale_bytes,
)

KB = 2 ** 10
MB = 2 ** 20


class TestPrecision:
    def test_paper_fp32_costs(self):
        """DSPmul = 3, DSPadd = 2 (Section IV-B)."""
        assert FP32.dsp_per_mac == 5
        assert FP32.bytes_per_word == 4

    def test_fp16_halves_bytes(self):
        assert scale_bytes(1024, FP16) == 512
        assert scale_bytes(1024, FP32) == 1024

    def test_int16_single_dsp_mac(self):
        assert INT16.dsp_per_mac == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Precision("bad", bytes_per_word=0, dsp_per_mul=1, dsp_per_add=1)
        with pytest.raises(ValueError):
            Precision("bad", bytes_per_word=2, dsp_per_mul=-1, dsp_per_add=1)


class TestEquivalentBudget:
    def test_same_lanes_cheaper_dsp(self):
        # 2880 fp32 DSPs = 576 lanes = 1152 fp16 DSPs = 576 int16 DSPs.
        assert equivalent_dsp_budget(2880, FP16) == 1152
        assert equivalent_dsp_budget(2880, INT16) == 576
        assert equivalent_dsp_budget(2880, FP32) == 2880


class TestTable2AtOtherPrecisions:
    def test_fp16_point_c(self):
        """The headline at fp16: 1.82 MB/image for 181 KB of buffers —
        everything halves, the trade-off shape is unchanged."""
        levels = extract_levels(vggnet_e().prefix(5))
        transfer = group_transfer(levels).feature_map_bytes
        storage = reuse_storage_bytes(levels)
        summary = precision_summary(transfer, storage, 2880, FP16)
        assert summary.transfer_mb == pytest.approx(3.64 / 2, abs=0.01)
        assert summary.storage_kb == pytest.approx(363 / 2, abs=1)
        assert summary.dsp_for_same_lanes == 1152

    def test_ordering_across_precisions(self):
        levels = extract_levels(vggnet_e().prefix(5))
        transfer = group_transfer(levels).feature_map_bytes
        storage = reuse_storage_bytes(levels)
        summaries = [precision_summary(transfer, storage, 2880, p)
                     for p in (FP32, FP16, INT16)]
        transfers = [s.feature_transfer_bytes for s in summaries]
        assert transfers[0] > transfers[1] == transfers[2]
        dsps = [s.dsp_for_same_lanes for s in summaries]
        assert dsps[0] > dsps[1] > dsps[2]
