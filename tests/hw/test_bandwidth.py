"""Bandwidth and roofline performance model."""

import pytest

from repro.hw.bandwidth import (
    bandwidth_sweep,
    memory_bound_threshold,
    performance_under_bandwidth,
    required_bandwidth_bytes_per_sec,
)

MB = 2 ** 20


class TestRequiredBandwidth:
    def test_footnote4_example(self):
        """'if an accelerator targets 50 images/second, and the graph
        shows an off-chip transfer of 100MB, this would require
        5 GB/sec. bandwidth.'"""
        bw = required_bandwidth_bytes_per_sec(100 * MB, 50)
        assert bw / 2**30 == pytest.approx(4.88, abs=0.01)  # 5 "GB/s"

    def test_zero_rate(self):
        assert required_bandwidth_bytes_per_sec(100, 0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            required_bandwidth_bytes_per_sec(100, -1)


class TestPerformanceUnderBandwidth:
    def test_compute_bound(self):
        perf = performance_under_bandwidth(1000, 100, bytes_per_cycle=10)
        assert perf.bound == "compute"
        assert perf.effective_cycles == 1000
        assert perf.compute_utilization == 1.0

    def test_memory_bound(self):
        perf = performance_under_bandwidth(1000, 100_000, bytes_per_cycle=10)
        assert perf.bound == "memory"
        assert perf.effective_cycles == 10_000
        assert perf.compute_utilization == pytest.approx(0.1)

    def test_images_per_second(self):
        perf = performance_under_bandwidth(1000, 100, bytes_per_cycle=10)
        assert perf.images_per_second(100e6) == pytest.approx(100e3)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            performance_under_bandwidth(10, 10, 0)


class TestSweep:
    def test_fused_wins_at_low_bandwidth(self):
        """The crossover the paper's design targets: with scarce
        bandwidth the low-traffic (fused) design wins even if its compute
        is slightly slower."""
        points = bandwidth_sweep(
            fused_compute=1100, fused_bytes=1_000,
            baseline_compute=1000, baseline_bytes=50_000,
            bandwidths=[1, 5, 50, 1000],
        )
        assert points[0].speedup > 1      # starved: fused much faster
        assert points[-1].speedup < 1     # abundant: baseline's compute edge wins
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups, reverse=True)

    def test_threshold(self):
        assert memory_bound_threshold(1000, 50_000) == 50.0
        perf = performance_under_bandwidth(1000, 50_000, 50.0)
        assert perf.bound == "compute"
        perf = performance_under_bandwidth(1000, 50_000, 49.0)
        assert perf.bound == "memory"

    def test_threshold_invalid(self):
        with pytest.raises(ValueError):
            memory_bound_threshold(0, 100)
