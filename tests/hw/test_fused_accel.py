"""Fused accelerator: per-module unrolls, pipeline balance, resources."""

import pytest

from repro import alexnet, extract_levels, vggnet_e
from repro.hw.device import DSP_PER_MAC
from repro.hw.fused_accel import FusedDesign, module_cycles, optimize_fused

MB = 2 ** 20


@pytest.fixture(scope="module")
def vgg5_levels():
    return extract_levels(vggnet_e().prefix(5))


@pytest.fixture(scope="module")
def vgg_design(vgg5_levels):
    return optimize_fused(vgg5_levels, dsp_budget=2987)


class TestModuleCycles:
    def test_formula(self, vgg5_levels):
        conv1_1 = vgg5_levels[0]
        # ceil(64/8) * ceil(3/1) * 4*4 * 9
        assert module_cycles(conv1_1, tm=8, tn=1, fresh_h=4, fresh_w=4) == 8 * 3 * 16 * 9

    def test_grouped(self):
        conv2 = extract_levels(alexnet().prefix(2))[2]
        # groups=2: 2 * ceil(128/64) * ceil(48/48) * 1*1 * 25
        assert module_cycles(conv2, tm=64, tn=48, fresh_h=1, fresh_w=1) == 2 * 2 * 1 * 25

    def test_monotone_in_unroll(self, vgg5_levels):
        level = vgg5_levels[1]
        assert (module_cycles(level, 16, 16, 4, 4)
                <= module_cycles(level, 8, 8, 4, 4))


class TestOptimizeFused:
    def test_one_module_per_conv(self, vgg_design, vgg5_levels):
        convs = [l for l in vgg5_levels if l.is_conv]
        assert len(vgg_design.modules) == len(convs)
        assert [m.level.name for m in vgg_design.modules] == [l.name for l in convs]

    def test_dsp_budget_respected(self, vgg_design):
        assert vgg_design.dsp <= 2987

    def test_constraint_formula(self, vgg_design):
        """sum_i Tm_i * Tn_i * (DSPadd + DSPmul) <= available DSPs."""
        lanes = sum(m.tm * m.tn for m in vgg_design.modules)
        assert lanes * DSP_PER_MAC <= 2987

    def test_pipeline_roughly_balanced(self, vgg_design):
        cycles = [m.cycles for m in vgg_design.modules]
        assert max(cycles) < 2 * min(cycles)

    def test_infeasible_budget_rejected(self, vgg5_levels):
        with pytest.raises(ValueError):
            optimize_fused(vgg5_levels, dsp_budget=30)

    def test_no_convs_rejected(self, vgg5_levels):
        pools = [l for l in vgg5_levels if l.is_pool]
        with pytest.raises(ValueError):
            optimize_fused(pools, dsp_budget=1000)

    def test_more_budget_not_slower(self, vgg5_levels):
        small = optimize_fused(vgg5_levels, dsp_budget=1500)
        large = optimize_fused(vgg5_levels, dsp_budget=3000)
        assert large.total_cycles <= small.total_cycles


class TestFusedDesignMetrics:
    def test_transfer_is_input_plus_output(self, vgg_design, vgg5_levels):
        expected = (vgg5_levels[0].in_shape.bytes + vgg5_levels[-1].out_shape.bytes)
        assert vgg_design.feature_transfer_bytes == expected
        assert vgg_design.feature_transfer_bytes / MB == pytest.approx(3.64, abs=0.01)

    def test_cycles_within_paper_envelope(self, vgg_design):
        """Paper: 11,665k cycles (6.5% over its baseline); we land within
        15% of that."""
        assert vgg_design.total_cycles / 1e3 == pytest.approx(11_665, rel=0.15)

    def test_simulated_equals_analytic(self, vgg_design):
        assert vgg_design.simulate_cycles() == vgg_design.total_cycles

    def test_stage_ordering(self, vgg_design, vgg5_levels):
        names = [s.name for s in vgg_design.stage_timings()]
        assert names[0] == "load" and names[-1] == "store"
        assert names[1:-1] == [l.name for l in vgg5_levels]

    def test_num_pyramids(self, vgg_design):
        assert vgg_design.num_pyramids == 56 * 56

    def test_batch_amortizes_fill(self, vgg_design):
        one = vgg_design.cycles_for_images(1)
        ten = vgg_design.cycles_for_images(10)
        bottleneck = max(s.cycles for s in vgg_design.stage_timings())
        # Ten images cost less than ten separate runs (fill paid once)...
        assert ten < 10 * one
        # ...and exactly nine more steady-state image intervals.
        assert ten - one == 9 * vgg_design.num_pyramids * bottleneck

    def test_images_per_second(self, vgg_design):
        ips = vgg_design.images_per_second(100e6)
        bottleneck = max(s.cycles for s in vgg_design.stage_timings())
        assert ips == pytest.approx(100e6 / (bottleneck * vgg_design.num_pyramids))

    def test_negative_batch_rejected(self, vgg_design):
        with pytest.raises(ValueError):
            vgg_design.cycles_for_images(-1)

    def test_imbalance_consistent(self, vgg_design):
        cycles = [m.cycles for m in vgg_design.modules]
        assert vgg_design.cycle_imbalance == max(cycles) - min(cycles)

    def test_resources_include_reuse_buffers(self, vgg_design):
        res = vgg_design.resources()
        names = [b.name for b in res.buffers]
        assert any(n.startswith("BL[") for n in names)
        assert any(n.startswith("BT[") for n in names)
        assert any(n.startswith("weights[") for n in names)
        assert res.bram18 > 0

    def test_empty_modules_rejected(self, vgg5_levels, vgg_design):
        with pytest.raises(ValueError):
            FusedDesign(levels=tuple(vgg5_levels), modules=(),
                        tip_h=1, tip_w=1, device=vgg_design.device)


class TestAlexNetFused:
    def test_alexnet_design(self):
        levels = extract_levels(alexnet().prefix(2))
        design = optimize_fused(levels, dsp_budget=2450)
        assert design.dsp <= 2450
        assert design.num_pyramids == 27 * 27
        assert design.feature_transfer_bytes < 2 * MB


class TestDeviceFit:
    def test_table2_design_fits_the_690t(self, vgg5_levels):
        # The paper's five-conv fusion fits its Virtex-7 target.
        design = optimize_fused(vgg5_levels, dsp_budget=2987, check_fits=True)
        assert design.resources().bram18 <= design.device.bram18

    def test_oversize_fusion_rejected_with_reason(self):
        """Fusing nine VGG convs needs more BRAM than the 690T has; the
        check names the exhausted resource instead of silently designing
        unbuildable hardware."""
        from repro import vggnet_e
        from repro.nn.stages import extract_levels as ex

        levels = ex(vggnet_e().prefix(9))
        with pytest.raises(ValueError, match="BRAM18"):
            optimize_fused(levels, dsp_budget=2987, check_fits=True)
