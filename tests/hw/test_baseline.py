"""Zhang-style baseline accelerator model against paper-checkable numbers."""

import pytest

from repro import alexnet, extract_levels, vggnet_e
from repro.hw.baseline import group_stages, optimize_baseline, stage_cost

MB = 2 ** 20


@pytest.fixture(scope="module")
def vgg5_levels():
    return extract_levels(vggnet_e().prefix(5))


class TestGroupStages:
    def test_pool_merges_into_conv(self, vgg5_levels):
        stages = group_stages(vgg5_levels)
        assert [s.name for s in stages] == [
            "conv1_1", "conv1_2+pool1", "conv2_1", "conv2_2+pool2", "conv3_1"]

    def test_stored_shape_is_pooled(self, vgg5_levels):
        stages = group_stages(vgg5_levels)
        assert stages[1].stored_shape.height == 112

    def test_leading_pool_rejected(self, vgg5_levels):
        with pytest.raises(ValueError):
            group_stages(vgg5_levels[2:])  # starts at pool1


class TestStageCost:
    def test_cycle_formula(self, vgg5_levels):
        """Cycles = ceil(M/Tm) * ceil(N/Tn) * outW * outH * K^2."""
        stages = group_stages(vgg5_levels)
        cost = stage_cost(stages[0], tm=64, tn=9, tr=224, tc=224)
        assert cost.cycles == 1 * 1 * 224 * 224 * 9

    def test_cycle_formula_with_ceils(self, vgg5_levels):
        stages = group_stages(vgg5_levels)
        cost = stage_cost(stages[4], tm=64, tn=9, tr=56, tc=56)  # conv3_1
        # ceil(256/64)=4, ceil(128/9)=15.
        assert cost.cycles == 4 * 15 * 56 * 56 * 9

    def test_output_written_once(self, vgg5_levels):
        stages = group_stages(vgg5_levels)
        cost = stage_cost(stages[0], tm=64, tn=9, tr=56, tc=56)
        assert cost.output_words == 64 * 224 * 224

    def test_input_rereads_per_m_tile(self, vgg5_levels):
        stages = group_stages(vgg5_levels)
        one_pass = stage_cost(stages[4], tm=256, tn=9, tr=56, tc=56).input_words
        four_pass = stage_cost(stages[4], tm=64, tn=9, tr=56, tc=56).input_words
        assert four_pass == 4 * one_pass

    def test_halo_grows_with_smaller_tiles(self, vgg5_levels):
        stages = group_stages(vgg5_levels)
        big = stage_cost(stages[0], tm=64, tn=3, tr=224, tc=224).input_words
        small = stage_cost(stages[0], tm=64, tn=3, tr=28, tc=28).input_words
        assert small > big
        # Whole-map tile = input read exactly once (pad is free).
        assert big == 3 * 224 * 224

    def test_grouped_conv(self):
        levels = extract_levels(alexnet().prefix(2))
        stages = group_stages(levels)
        conv2 = stages[1]
        cost = stage_cost(conv2, tm=64, tn=48, tr=27, tc=27)
        # Two groups of ceil(128/64) x ceil(48/48).
        assert cost.cycles == 2 * 2 * 1 * 27 * 27 * 25

    def test_weights_counted_once(self, vgg5_levels):
        stages = group_stages(vgg5_levels)
        cost = stage_cost(stages[0], tm=64, tn=9, tr=56, tc=56)
        assert cost.weight_words == 64 * 27 + 64
        assert cost.weights_resident

    def test_weight_streaming_multiplies_by_tiles(self, vgg5_levels):
        """A non-resident filter set is re-read once per spatial tile."""
        stages = group_stages(vgg5_levels)
        resident = stage_cost(stages[0], tm=64, tn=9, tr=56, tc=56)
        streamed = stage_cost(stages[0], tm=64, tn=9, tr=56, tc=56,
                              weights_resident=False)
        tiles = (224 // 56) ** 2
        assert streamed.weight_words == resident.weight_words * tiles
        assert streamed.feature_words == resident.feature_words
        assert streamed.cycles == resident.cycles

    def test_streaming_dominates_late_vgg_layers(self):
        """Figure 2's crossover, in traffic terms: a late VGG layer that
        must stream weights becomes weight-bound."""
        from repro import vggnet_e

        levels = extract_levels(vggnet_e().feature_extractor())
        # conv5_1: 512x512x3x3 weights (9.4 MB), 14x14 maps.
        conv5_1 = next(l for l in levels if l.name == "conv5_1")
        stages = group_stages([conv5_1])
        streamed = stage_cost(stages[0], tm=64, tn=9, tr=7, tc=7,
                              weights_resident=False)
        assert streamed.weight_words > 3 * streamed.feature_words


class TestOptimizeBaseline:
    def test_vgg5_matches_table2_exactly(self, vgg5_levels):
        """The jointly-optimized VGG baseline lands on Tm=64, Tn=9 and
        10,951k cycles — Table II's baseline cycle count exactly."""
        design = optimize_baseline(vgg5_levels, dsp_budget=2880)
        assert (design.tm, design.tn) == (64, 9)
        assert design.dsp == 2880
        assert design.total_cycles == pytest.approx(10_951_000, rel=0.001)

    def test_vgg5_transfer_near_paper(self, vgg5_levels):
        """Paper baseline: 77.14 MB/image; our halo model gives ~65 MB
        (same order, see EXPERIMENTS.md)."""
        design = optimize_baseline(vgg5_levels, dsp_budget=2880)
        assert 55 * MB < design.feature_transfer_bytes < 90 * MB

    def test_budget_respected(self, vgg5_levels):
        design = optimize_baseline(vgg5_levels, dsp_budget=1000)
        assert design.dsp <= 1000

    def test_more_dsp_never_slower(self, vgg5_levels):
        small = optimize_baseline(vgg5_levels, dsp_budget=1000)
        large = optimize_baseline(vgg5_levels, dsp_budget=2880)
        assert large.total_cycles <= small.total_cycles

    def test_tiny_budget_rejected(self, vgg5_levels):
        with pytest.raises(ValueError):
            optimize_baseline(vgg5_levels, dsp_budget=4)

    def test_resources_reported(self, vgg5_levels):
        design = optimize_baseline(vgg5_levels, dsp_budget=2880)
        res = design.resources()
        assert res.bram18 > 0
        assert res.dsp == design.dsp
        # Within ~10% of the paper's 2085 BRAMs.
        assert res.bram18 == pytest.approx(2085, rel=0.1)

    def test_alexnet_baseline(self):
        levels = extract_levels(alexnet().prefix(2))
        design = optimize_baseline(levels, dsp_budget=2240,
                                   tile_candidates=(5, 11, 13, 27, 55))
        assert design.dsp <= 2240
        assert design.total_cycles > 0
        assert design.feature_transfer_bytes > 0
