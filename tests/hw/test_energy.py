"""Energy model: DRAM vs SRAM vs arithmetic."""

import pytest

from repro import extract_levels, vggnet_e
from repro.core.costs import group_transfer, one_pass_ops
from repro.hw.energy import EnergyModel, estimate_energy

MB = 2 ** 20


class TestEnergyModel:
    def test_dram_dwarfs_sram_per_word(self):
        model = EnergyModel()
        assert model.dram_access_pj / model.sram_access_pj > 100

    def test_dram_energy(self):
        model = EnergyModel()
        # 1M words -> 1M * 640 pJ = 0.64 mJ.
        assert model.dram_energy_j(4 * 10**6) == pytest.approx(640e-6)

    def test_compute_energy(self):
        model = EnergyModel()
        assert model.compute_energy_j(10**6) == pytest.approx(4.6e-6)

    def test_custom_constants(self):
        model = EnergyModel(dram_access_pj=100.0)
        assert model.dram_energy_j(4) == pytest.approx(100e-12)


class TestEstimateEnergy:
    def test_breakdown_sums(self):
        breakdown = estimate_energy("d", transfer_bytes=4 * 10**6,
                                    total_ops=2 * 10**6)
        assert breakdown.total_j == pytest.approx(
            breakdown.dram_j + breakdown.sram_j + breakdown.compute_j)
        assert 0 < breakdown.dram_fraction < 1

    def test_fusion_energy_win_on_vgg(self):
        """Fusing VGG's first five convs removes ~96% of feature-map DRAM
        energy; compute/SRAM energy is identical, so total energy drops."""
        levels = extract_levels(vggnet_e().prefix(5))
        ops = one_pass_ops(levels)
        fused_bytes = group_transfer(levels).feature_map_bytes
        baseline_bytes = sum(l.in_shape.bytes + l.out_shape.bytes for l in levels)
        fused = estimate_energy("fused", fused_bytes, ops)
        baseline = estimate_energy("baseline", baseline_bytes, ops)
        assert fused.dram_j < 0.1 * baseline.dram_j
        assert fused.compute_j == baseline.compute_j
        assert fused.total_j < baseline.total_j

    def test_zero_everything(self):
        breakdown = estimate_energy("z", 0, 0)
        assert breakdown.total_j == 0
        assert breakdown.dram_fraction == 0
