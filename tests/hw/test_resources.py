"""FPGA resource estimation: BRAM rounding, banking, double buffering."""

import pytest

from repro.hw.device import DSP_PER_MAC, VIRTEX7_485T, VIRTEX7_690T, WORDS_PER_BRAM18
from repro.hw.resources import BufferSpec, ResourceEstimate


class TestBufferSpec:
    def test_one_block_minimum(self):
        assert BufferSpec("b", words=1).bram18 == 1

    def test_exact_block(self):
        assert BufferSpec("b", words=WORDS_PER_BRAM18).bram18 == 1
        assert BufferSpec("b", words=WORDS_PER_BRAM18 + 1).bram18 == 2

    def test_banking_rounds_per_bank(self):
        # 10 banks of 100 words each round to 1 BRAM18 apiece.
        assert BufferSpec("b", words=1000, banks=10).bram18 == 10

    def test_double_buffering_doubles(self):
        single = BufferSpec("b", words=700)
        double = BufferSpec("b", words=700, double_buffered=True)
        assert double.bram18 == 2 * single.bram18
        assert double.bytes == 2 * single.bytes

    def test_zero_words_costs_nothing(self):
        assert BufferSpec("b", words=0).bram18 == 0

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            BufferSpec("b", words=-1)
        with pytest.raises(ValueError):
            BufferSpec("b", words=10, banks=0)


class TestResourceEstimate:
    def test_dsp_from_lanes(self):
        est = ResourceEstimate(mac_lanes=448)
        assert est.dsp == 448 * DSP_PER_MAC == 2240

    def test_extra_dsp_added(self):
        est = ResourceEstimate(mac_lanes=10, extra_dsp=16)
        assert est.dsp == 50 + 16

    def test_bram_sums_buffers(self):
        est = ResourceEstimate()
        est.add_buffer("a", 600)
        est.add_buffer("b", 600, double_buffered=True)
        assert est.bram18 == 2 + 4

    def test_luts_ffs_scale_with_stages(self):
        small = ResourceEstimate(mac_lanes=100, control_complexity=2)
        big = ResourceEstimate(mac_lanes=100, control_complexity=9)
        assert big.luts > small.luts and big.ffs > small.ffs

    def test_fits_device(self):
        est = ResourceEstimate(mac_lanes=100)
        est.add_buffer("a", 10_000)
        assert est.fits(VIRTEX7_690T)
        huge = ResourceEstimate(mac_lanes=10_000)
        assert not huge.fits(VIRTEX7_690T)


class TestDevices:
    def test_virtex7_690t(self):
        assert VIRTEX7_690T.dsp_slices == 3600
        assert VIRTEX7_690T.mac_lanes() == 720

    def test_485t_smaller(self):
        assert VIRTEX7_485T.dsp_slices < VIRTEX7_690T.dsp_slices
