"""Deterministic tie-breaking in optimize_fused (ISSUE satellite).

A 4-in/4-out-channel conv offers several (Tm, Tn) shapes with identical
cycles and identical DSP cost — (1, 2) and (2, 1), for instance. The
optimizer must resolve such ties deterministically: prefer the lower-DSP
config, then the lexicographically smallest (Tm, Tn), never the
enumeration order of an internal dict or candidate list.
"""

from repro.hw.fused_accel import module_cycles, optimize_fused
from repro.nn.layers import ConvSpec
from repro.nn.network import Network
from repro.nn.shapes import TensorShape
from repro.nn.stages import extract_levels


def square_conv_level(channels=4, extent=8):
    net = Network("tie", TensorShape(channels, extent, extent),
                  [ConvSpec(name="c", kernel=3, stride=1,
                            out_channels=channels, padding=1)])
    return extract_levels(net)[0]


class TestTieBreak:
    def test_equal_cycle_equal_dsp_tie_prefers_lexicographic(self):
        level = square_conv_level()
        # lane budget (63 - 16*3) // 5 = 3: (1,2) and (2,1) both give
        # ceil(4/1)*ceil(4/2) = ceil(4/2)*ceil(4/1) = 8 channel rounds
        # at the same 10-DSP cost; (1,3)/(3,1) tie on cycles but cost
        # 15 DSPs, so cheapest-DSP eliminates them first.
        design = optimize_fused([level], dsp_budget=63)
        module = design.modules[0]
        assert (module.tm, module.tn) == (1, 2)

    def test_tie_landscape_is_as_assumed(self):
        """Guard the fixture itself: the shapes really do tie."""
        level = square_conv_level()
        c12 = module_cycles(level, 1, 2, 8, 8)
        c21 = module_cycles(level, 2, 1, 8, 8)
        c13 = module_cycles(level, 1, 3, 8, 8)
        assert c12 == c21 == c13

    def test_repeated_runs_identical(self):
        level = square_conv_level()
        picks = {
            tuple((m.tm, m.tn) for m in
                  optimize_fused([level], dsp_budget=63).modules)
            for _ in range(5)
        }
        assert len(picks) == 1

    def test_multi_level_design_is_deterministic(self):
        net = Network("tie2", TensorShape(4, 16, 16), [
            ConvSpec(name="c1", kernel=3, stride=1, out_channels=4,
                     padding=1),
            ConvSpec(name="c2", kernel=3, stride=1, out_channels=4,
                     padding=1),
        ])
        levels = extract_levels(net)
        shapes = {
            tuple((m.tm, m.tn) for m in
                  optimize_fused(levels, dsp_budget=150).modules)
            for _ in range(5)
        }
        assert len(shapes) == 1
        # every equal-dsp module tie resolved toward the smaller tm
        for tm, tn in next(iter(shapes)):
            assert (tm, tn) <= (tn, tm)
