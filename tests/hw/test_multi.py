"""Multi-pyramid partition designs (Figure 4's single vs multi)."""

import pytest

from repro import extract_levels, vggnet_e
from repro.core.partition import analyze_partition
from repro.hw.multi import PartitionDesign, PoolEngine, design_partition
from repro.nn.stages import independent_units

MB = 2 ** 20


@pytest.fixture(scope="module")
def vgg5_levels():
    return extract_levels(vggnet_e().prefix(5))


class TestDesignPartition:
    def test_single_group_matches_fused(self, vgg5_levels):
        design = design_partition(vgg5_levels, (7,), dsp_budget=2880)
        assert len(design.engines) == 1
        assert design.latency_cycles == design.throughput_interval

    def test_transfer_matches_analysis(self, vgg5_levels):
        """The hardware view and the exploration tool agree on traffic."""
        units = independent_units(vgg5_levels)
        for sizes in [(7,), (3, 4), (3, 1, 3), (1,) * 7]:
            design = design_partition(vgg5_levels, sizes, dsp_budget=2880)
            analysis = analyze_partition(units, sizes)
            assert design.feature_transfer_bytes == analysis.feature_transfer_bytes

    def test_figure4_tradeoff(self, vgg5_levels):
        """Single pyramid: least traffic. Multi pyramid: more traffic,
        smaller per-engine buffers (the Figure 4 narrative)."""
        single = design_partition(vgg5_levels, (7,), dsp_budget=2880)
        multi = design_partition(vgg5_levels, (3, 4), dsp_budget=2880)
        assert single.feature_transfer_bytes < multi.feature_transfer_bytes
        # The multi design's largest single engine needs less buffering
        # than the monolithic pyramid engine.
        single_bram = single.engines[0].resources().bram18
        assert all(e.resources().bram18 < single_bram for e in multi.engines)

    def test_latency_sums_interval_maxes(self, vgg5_levels):
        design = design_partition(vgg5_levels, (3, 4), dsp_budget=2880)
        cycles = [engine.total_cycles for engine in design.engines]
        assert design.latency_cycles == sum(cycles)
        assert design.throughput_interval == max(cycles)

    def test_pool_only_group(self, vgg5_levels):
        design = design_partition(vgg5_levels, (2, 1, 4), dsp_budget=2880)
        assert isinstance(design.engines[1], PoolEngine)
        assert design.engines[1].dsp == 0
        assert design.engines[1].total_cycles > 0

    def test_budget_split_respects_total(self, vgg5_levels):
        design = design_partition(vgg5_levels, (3, 4), dsp_budget=2000)
        lanes = sum(
            sum(m.tm * m.tn for m in engine.modules)
            for engine in design.engines if hasattr(engine, "modules")
        )
        assert lanes * 5 <= 2000

    def test_bad_sizes_rejected(self, vgg5_levels):
        with pytest.raises(ValueError):
            design_partition(vgg5_levels, (3, 3), dsp_budget=2880)
        with pytest.raises(ValueError):
            design_partition(vgg5_levels, (7, 0), dsp_budget=2880)

    def test_tiny_budget_rejected(self, vgg5_levels):
        with pytest.raises(ValueError):
            design_partition(vgg5_levels, (1,) * 7, dsp_budget=900)
