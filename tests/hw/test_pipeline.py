"""Discrete-event pipeline simulation (Figure 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.pipeline import StageTiming, analytic_makespan, simulate_pipeline


def stages(*cycles):
    return [StageTiming(f"s{i}", c) for i, c in enumerate(cycles)]


class TestSimulatePipeline:
    def test_single_item(self):
        schedule = simulate_pipeline(stages(3, 5, 2), 1)
        assert schedule.makespan == 10
        assert schedule.stage_finish[0] == (3, 8, 10)

    def test_steady_state_bottleneck(self):
        schedule = simulate_pipeline(stages(3, 5, 2), 4)
        # fill (10) + 3 more items x bottleneck (5).
        assert schedule.makespan == 10 + 3 * 5

    def test_figure6_shape(self):
        """Pyramid 2's first stage starts as soon as pyramid 1 leaves it."""
        schedule = simulate_pipeline(stages(4, 4), 2)
        assert schedule.stage_finish[0][0] == 4
        assert schedule.stage_finish[1][0] == 8
        assert schedule.stage_finish[1][1] == 12

    def test_zero_items(self):
        assert simulate_pipeline(stages(3, 5), 0).makespan == 0

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            simulate_pipeline(stages(1), -1)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            StageTiming("s", -1)

    def test_bottleneck_property(self):
        schedule = simulate_pipeline(stages(1, 9, 2), 5)
        assert schedule.bottleneck.cycles == 9
        assert schedule.steady_state_interval == 9
        assert schedule.fill_cycles == 12

    def test_utilization_bottleneck_near_one(self):
        schedule = simulate_pipeline(stages(1, 9, 2), 50)
        util = schedule.utilization
        assert util[1] == pytest.approx(1.0, rel=0.05)
        assert util[0] < util[1]

    @given(cycles=st.lists(st.integers(0, 20), min_size=1, max_size=6),
           items=st.integers(1, 12))
    def test_matches_analytic_for_identical_items(self, cycles, items):
        """For identical items the closed form is exact."""
        timing = stages(*cycles)
        assert simulate_pipeline(timing, items).makespan == analytic_makespan(
            timing, items)

    @given(cycles=st.lists(st.integers(1, 20), min_size=1, max_size=6),
           items=st.integers(1, 12))
    def test_finish_times_monotone(self, cycles, items):
        schedule = simulate_pipeline(stages(*cycles), items)
        for earlier, later in zip(schedule.stage_finish, schedule.stage_finish[1:]):
            assert all(a < b for a, b in zip(earlier, later))


class TestEdgeCases:
    """Degenerate schedules: no items, one stage, zero-cycle stages."""

    def test_zero_items_empty_schedule(self):
        schedule = simulate_pipeline(stages(3, 5), 0)
        assert schedule.makespan == 0
        assert schedule.stage_finish == ()
        assert schedule.utilization == [0.0, 0.0]
        assert schedule.idle_cycles(0) == 0

    def test_single_stage(self):
        """One stage degenerates to sequential execution: n * cycles."""
        schedule = simulate_pipeline(stages(7), 5)
        assert schedule.makespan == 5 * 7
        assert schedule.makespan == analytic_makespan(stages(7), 5)
        assert schedule.stage_finish == ((7,), (14,), (21,), (28,), (35,))
        assert schedule.utilization == [1.0]

    def test_zero_cycle_stage_allowed(self):
        """cycles == 0 is a legal pass-through stage (only negatives are
        rejected); the analytic fill + (n-1) * bottleneck still holds."""
        timing = stages(3, 0, 5)
        schedule = simulate_pipeline(timing, 4)
        assert schedule.makespan == (3 + 0 + 5) + 3 * 5
        assert schedule.makespan == analytic_makespan(timing, 4)
        assert schedule.busy_cycles(1) == 0
        assert schedule.idle_cycles(1) == schedule.makespan
        assert schedule.utilization[1] == 0.0

    def test_all_zero_cycles(self):
        timing = stages(0, 0)
        schedule = simulate_pipeline(timing, 3)
        assert schedule.makespan == 0
        assert schedule.makespan == analytic_makespan(timing, 3)
        assert schedule.utilization == [0.0, 0.0]

    def test_busy_idle_partition_makespan(self):
        schedule = simulate_pipeline(stages(3, 5, 2), 4)
        for i in range(3):
            assert schedule.busy_cycles(i) + schedule.idle_cycles(i) == schedule.makespan
        assert schedule.busy_cycles(1) == 4 * 5


class TestAnalyticMakespan:
    def test_zero_items(self):
        assert analytic_makespan(stages(5), 0) == 0

    def test_formula(self):
        assert analytic_makespan(stages(3, 5, 2), 4) == 10 + 3 * 5

    def test_single_stage_formula(self):
        assert analytic_makespan(stages(9), 6) == 9 + 5 * 9
