"""Generated HLS C++ structure."""

import pytest

from repro import extract_levels, toynet, vggnet_e
from repro.hw import generate_baseline, generate_compute_module, generate_fused, optimize_fused


@pytest.fixture(scope="module")
def vgg_code():
    levels = extract_levels(vggnet_e().prefix(5))
    design = optimize_fused(levels, dsp_budget=2987)
    return design, generate_fused(design)


class TestComputeModule:
    def test_listing1_structure(self):
        code = generate_compute_module()
        assert "#pragma HLS UNROLL" in code
        assert "#pragma HLS PIPELINE II=1" in code
        assert "weights[m + tm][n + tn][i][j]" in code
        assert "in[n + tn][S * r + i][S * c + j]" in code
        assert "out[m + tm][r][c] = 0;  // ReLU" in code


class TestGenerateFused:
    def test_one_compute_per_conv(self, vgg_code):
        design, code = vgg_code
        assert code.count("compute<") >= 1
        calls = [line for line in code.splitlines()
                 if line.strip().startswith("compute<") and "(" in line]
        assert len(calls) == len(design.modules)

    def test_unroll_factors_embedded(self, vgg_code):
        design, code = vgg_code
        for module in design.modules:
            assert f"compute<{module.tm}, {module.tn}," in code

    def test_calcparams_constants(self, vgg_code):
        design, code = vgg_code
        geometry = design.geometry
        assert f"static const int X = {geometry.tiles[0].in_w};" in code
        assert f"static const int Sx = {geometry.tiles[0].step_w};" in code
        rows, cols = geometry.num_positions
        assert f"PYR_ROWS = {rows};" in code
        assert f"PYR_COLS = {cols};" in code

    def test_pool_and_reuse_calls(self, vgg_code):
        _, code = vgg_code
        assert code.count("pool<") >= 2  # two pooling layers + template
        assert "reuse<" in code
        assert "BL" in code and "BT" in code

    def test_reuse_module_listing4_cases(self, vgg_code):
        _, code = vgg_code
        assert "if (row == 0 && col == 0)" in code
        assert "else if (row == 0)" in code
        assert "else if (col == 0)" in code

    def test_braces_balanced(self, vgg_code):
        _, code = vgg_code
        assert code.count("{") == code.count("}")

    def test_load_store_present(self, vgg_code):
        _, code = vgg_code
        assert "load(in1" in code
        assert "store(out" in code


class TestGenerateBaseline:
    def test_listing2_structure(self):
        levels = extract_levels(toynet())
        code = generate_baseline(levels, tm=4, tn=2)
        assert "baseline_accelerator" in code
        assert "run_layer<4, 2," in code
        assert code.count("run_layer<") == 2


class TestGroupedFused:
    def test_alexnet_groups_emit_per_group_compute(self):
        from repro import alexnet
        from repro.hw import optimize_fused

        levels = extract_levels(alexnet().prefix(2))
        design = optimize_fused(levels, dsp_budget=2450)
        code = generate_fused(design)
        # conv2 has two groups of 128 x 48: one compute call per group.
        assert "(group 1/2)" in code and "(group 2/2)" in code
        assert ", 128, 48>" in code
        # conv1 is ungrouped: a single plain call.
        assert code.count("// conv1,") == 1


class TestCalcParamsEmission:
    def test_calcparams_body_present(self, vgg_code):
        design, code = vgg_code
        assert "void calcparams(int row, int col)" in code
        assert "rowt = row == 0 ? 0 : Y + (row - 1) * Sy - (K1 - S1);" in code
        geometry = design.geometry
        first = design.levels[0]
        assert f"const int K1 = {first.kernel}, S1 = {first.stride};" in code
