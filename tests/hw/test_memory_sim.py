"""Shared-DRAM-channel pipeline simulation vs the analytic roofline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import extract_levels, vggnet_e
from repro.hw import optimize_fused
from repro.hw.memory_sim import (
    ComputeStage,
    MemStage,
    fused_design_stages,
    simulate_with_channel,
)


class TestSimulateWithChannel:
    def test_compute_bound_regime(self):
        stages = [MemStage("ld", 10), ComputeStage("c", 1000), MemStage("st", 10)]
        schedule = simulate_with_channel(stages, 20, words_per_cycle=100)
        assert schedule.bound == "compute"
        # Steady state: one item per 1000 cycles.
        assert schedule.makespan == pytest.approx(20 * 1000, rel=0.01)

    def test_memory_bound_regime(self):
        stages = [MemStage("ld", 1000), ComputeStage("c", 10), MemStage("st", 1000)]
        schedule = simulate_with_channel(stages, 20, words_per_cycle=1)
        assert schedule.bound == "memory"
        assert schedule.makespan >= schedule.memory_bound
        assert schedule.channel_utilization > 0.95

    def test_makespan_lower_bounds(self):
        stages = [MemStage("ld", 64), ComputeStage("c", 80), MemStage("st", 32)]
        schedule = simulate_with_channel(stages, 50, words_per_cycle=2)
        assert schedule.makespan >= schedule.compute_bound
        assert schedule.makespan >= schedule.memory_bound

    def test_channel_serializes_load_and_store(self):
        # Load and store each need the full channel: together they can
        # exceed the compute stage even though each alone would not.
        stages = [MemStage("ld", 60), ComputeStage("c", 100), MemStage("st", 60)]
        schedule = simulate_with_channel(stages, 50, words_per_cycle=1)
        assert schedule.bound == "memory"
        assert schedule.makespan >= 50 * 120

    def test_zero_items(self):
        assert simulate_with_channel([MemStage("ld", 1)], 0, 1).makespan == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_with_channel([MemStage("ld", 1)], -1, 1)
        with pytest.raises(ValueError):
            simulate_with_channel([MemStage("ld", 1)], 1, 0)
        with pytest.raises(TypeError):
            simulate_with_channel(["bogus"], 1, 1)
        with pytest.raises(ValueError):
            MemStage("m", -1)
        with pytest.raises(ValueError):
            ComputeStage("c", -1)

    @given(
        mem=st.lists(st.integers(0, 50), min_size=1, max_size=3),
        compute=st.integers(1, 100),
        items=st.integers(1, 20),
        bw=st.sampled_from([1, 2, 8, 64]),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_always_hold(self, mem, compute, items, bw):
        stages = [MemStage(f"m{i}", w) for i, w in enumerate(mem)]
        stages.insert(len(stages) // 2, ComputeStage("c", compute))
        schedule = simulate_with_channel(stages, items, bw)
        assert schedule.makespan >= schedule.compute_bound
        assert schedule.makespan + len(stages) >= schedule.memory_bound
        assert 0 <= schedule.channel_utilization <= 1.0 + 1e-9


class TestFusedDesignChannel:
    @pytest.fixture(scope="class")
    def design(self):
        levels = extract_levels(vggnet_e().prefix(5))
        return optimize_fused(levels, dsp_budget=2987)

    def test_stage_conversion(self, design):
        stages = fused_design_stages(design)
        assert isinstance(stages[0], MemStage)
        assert isinstance(stages[-1], MemStage)
        assert all(isinstance(s, ComputeStage) for s in stages[1:-1])

    def test_ample_bandwidth_matches_pipeline(self, design):
        """With a fat channel the simulation reduces to the pure pipeline
        model (within the small load/store stage effects)."""
        stages = fused_design_stages(design)
        schedule = simulate_with_channel(stages, design.num_pyramids, 1024)
        assert schedule.makespan == pytest.approx(design.total_cycles, rel=0.01)

    def test_starved_bandwidth_goes_memory_bound(self, design):
        stages = fused_design_stages(design)
        schedule = simulate_with_channel(stages, design.num_pyramids, 0.01)
        assert schedule.bound == "memory"
        assert schedule.makespan > design.total_cycles
