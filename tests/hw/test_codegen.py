"""Standalone C++ codegen: compile with g++, run, cross-check NumPy.

These tests machine-verify the generated fused dataflow with a real
compiler: the program asserts every feature-map element is produced
exactly once and nothing is read before being produced, then compares
the fused output against its own layer-by-layer reference. The printed
checksum is cross-checked against the NumPy simulator.
"""

import re
import shutil
import subprocess

import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape, extract_levels, toynet
from repro.hw.codegen import generate_standalone
from repro.sim import ReferenceExecutor, make_input
from repro.sim.weights import make_level_weights

gpp = shutil.which("g++")
needs_gpp = pytest.mark.skipif(gpp is None, reason="g++ not available")


def compile_and_run(levels, tip=(1, 1), tmp_path=None):
    params = make_level_weights(levels, integer=True)
    x = make_input(levels[0].in_shape, integer=True)
    code = generate_standalone(levels, params=params, x=x,
                               tip_h=tip[0], tip_w=tip[1])
    src = tmp_path / "fused_check.cpp"
    binary = tmp_path / "fused_check"
    src.write_text(code)
    subprocess.run([gpp, "-O2", "-std=c++17", "-o", str(binary), str(src)],
                   check=True, capture_output=True)
    result = subprocess.run([str(binary)], capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    assert "FUSED_OK" in result.stdout
    checksum = float(re.search(r"checksum=([-\d.]+)", result.stdout).group(1))
    expected = ReferenceExecutor(levels, params=params).run(x)
    assert checksum == pytest.approx(float(expected.sum()), abs=1e-3)
    return result.stdout


@needs_gpp
class TestCompileAndRun:
    def test_toynet(self, tmp_path):
        levels = extract_levels(toynet(n=3, m=4, p=5, with_relu=True))
        out = compile_and_run(levels, tmp_path=tmp_path)
        assert "pyramids=9" in out

    def test_mini_vgg_with_pool_and_pad(self, tmp_path):
        net = Network("mini", TensorShape(3, 16, 16), [
            ConvSpec("c11", out_channels=4, kernel=3, stride=1, padding=1),
            ReLUSpec("r11"),
            ConvSpec("c12", out_channels=4, kernel=3, stride=1, padding=1),
            ReLUSpec("r12"),
            PoolSpec("p1", kernel=2, stride=2),
            ConvSpec("c21", out_channels=8, kernel=3, stride=1, padding=1),
            ReLUSpec("r21"),
        ])
        compile_and_run(extract_levels(net), tmp_path=tmp_path)

    def test_strided_grouped(self, tmp_path):
        net = Network("alexish", TensorShape(3, 19, 19), [
            ConvSpec("c1", out_channels=4, kernel=7, stride=2),
            ReLUSpec("r1"),
            PoolSpec("p1", kernel=3, stride=2),
            ConvSpec("c2", out_channels=6, kernel=3, stride=1, padding=1, groups=2),
        ])
        compile_and_run(extract_levels(net), tmp_path=tmp_path)

    def test_larger_tip(self, tmp_path):
        levels = extract_levels(toynet(n=2, m=3, p=4, size=11))
        out = compile_and_run(levels, tip=(7, 7), tmp_path=tmp_path)
        assert "pyramids=1" in out


class TestGeneration:
    def test_refuses_huge_embeds(self):
        from repro import vggnet_e

        levels = extract_levels(vggnet_e().prefix(5))
        with pytest.raises(ValueError):
            generate_standalone(levels)

    def test_contains_boundary_tables(self):
        levels = extract_levels(toynet())
        code = generate_standalone(levels)
        assert "OB_R0[]" in code and "OB_C1[]" in code
        assert "GRID_ROWS = 3" in code

    def test_deterministic(self):
        levels = extract_levels(toynet())
        assert generate_standalone(levels) == generate_standalone(levels)
