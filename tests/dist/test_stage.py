"""Group atoms and the stage/link cost model."""

import pytest

from repro.dist import (
    DEFAULT_LINK,
    LinkSpec,
    balance_stages,
    enumerate_boundaries,
    plan_atoms,
    price_stages,
    split_device,
)
from repro.errors import ConfigError
from repro.hw.device import DEFAULT_DEVICE
from repro.nn.zoo import toynet, vggnet_e
from repro.serve import compile_plan


@pytest.fixture(scope="module")
def toy_plan():
    return compile_plan(toynet(), partition_sizes=(1, 1), validate=False)


@pytest.fixture(scope="module")
def toy_atoms(toy_plan):
    return plan_atoms(toy_plan)


class TestPlanAtoms:
    def test_one_atom_per_fused_group(self, toy_plan, toy_atoms):
        assert len(toy_atoms) == toy_plan.num_groups

    def test_atoms_chain_tensors(self, toy_atoms):
        for upstream, downstream in zip(toy_atoms, toy_atoms[1:]):
            produced = {name for name, _ in upstream.writes}
            consumed = {name for name, _, _ in downstream.reads}
            assert produced & consumed

    def test_vgg_partition_matches_groups(self):
        plan = compile_plan(vggnet_e().prefix(5), partition_sizes=(3, 4),
                            validate=False)
        assert len(plan_atoms(plan)) == 2

    def test_atom_costs_positive(self, toy_atoms):
        for atom in toy_atoms:
            assert atom.ops > 0
            assert atom.dsp_floor > 0
            assert atom.bram_words > 0


class TestPriceStages:
    def test_stage_cycles_is_max_of_compute_and_dram(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 2)
        estimate = price_stages(toy_atoms, (1, 1), fleet, DEFAULT_LINK)
        for stage in estimate.stages:
            assert stage.stage_cycles == max(stage.compute_cycles,
                                             stage.dram_cycles)
            assert stage.cost == stage.stage_cycles + stage.link_cycles

    def test_interval_is_max_stage_cost(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 2)
        estimate = price_stages(toy_atoms, (1, 1), fleet, DEFAULT_LINK)
        assert estimate.interval_cycles == max(s.cost
                                               for s in estimate.stages)
        assert estimate.latency_cycles == sum(s.cost
                                              for s in estimate.stages)

    def test_last_stage_has_no_link_out(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 2)
        estimate = price_stages(toy_atoms, (1, 1), fleet, DEFAULT_LINK)
        assert estimate.stages[-1].link_out_bytes == 0
        assert estimate.stages[-1].link_cycles == 0

    def test_link_cycles_follow_link_model(self, toy_atoms):
        link = LinkSpec(latency_cycles=7, bytes_per_cycle=2.0)
        fleet = split_device(DEFAULT_DEVICE, 2)
        estimate = price_stages(toy_atoms, (1, 1), fleet, link)
        first = estimate.stages[0]
        assert first.link_cycles == link.transfer_cycles(first.link_out_bytes)

    def test_slower_link_never_shrinks_interval(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 2)
        fast = price_stages(toy_atoms, (1, 1), fleet,
                            LinkSpec(latency_cycles=0, bytes_per_cycle=64.0))
        slow = price_stages(toy_atoms, (1, 1), fleet,
                            LinkSpec(latency_cycles=900, bytes_per_cycle=0.5))
        assert slow.interval_cycles >= fast.interval_cycles


class TestBalanceStages:
    def test_covers_every_atom_exactly_once(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 2)
        estimate = balance_stages(toy_atoms, fleet, DEFAULT_LINK)
        assert sum(estimate.boundaries) == len(toy_atoms)
        assert all(b >= 1 for b in estimate.boundaries)

    def test_balanced_split_is_optimal_over_enumeration(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 2)
        best = balance_stages(toy_atoms, fleet, DEFAULT_LINK)
        for boundaries in enumerate_boundaries(len(toy_atoms), 2):
            priced = price_stages(toy_atoms, boundaries, fleet, DEFAULT_LINK)
            assert best.interval_cycles <= priced.interval_cycles

    def test_more_devices_than_groups_rejected(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 4)
        with pytest.raises(ConfigError):
            balance_stages(toy_atoms, fleet, DEFAULT_LINK)

    def test_explicit_boundaries_are_repriced_not_searched(self, toy_atoms):
        fleet = split_device(DEFAULT_DEVICE, 2)
        estimate = balance_stages(toy_atoms, fleet, DEFAULT_LINK,
                                  boundaries=(1, 1))
        assert estimate.boundaries == (1, 1)


class TestEnumerateBoundaries:
    def test_counts_compositions(self):
        # C(n-1, k-1) contiguous splits of n atoms into k stages
        assert len(list(enumerate_boundaries(5, 2))) == 4
        assert len(list(enumerate_boundaries(6, 3))) == 10

    def test_single_stage(self):
        assert list(enumerate_boundaries(4, 1)) == [(4,)]
