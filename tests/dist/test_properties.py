"""Property tests for repro.dist (ISSUE satellite).

Invariants the subsystem promises regardless of configuration: spec
round-trips are lossless, the partitioner covers every atom exactly
once, the micro-batch scheduler's makespan always decomposes into
fill/drain plus a steady-state interval, and plan keys are pure
functions of their inputs.
"""

from math import comb

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dist import (
    DEFAULT_LINK,
    LinkSpec,
    PipelinePlan,
    balance_stages,
    enumerate_boundaries,
    pipeline_plan_key,
    plan_atoms,
    simulate_microbatches,
    split_device,
)
from repro.hw.device import DEFAULT_DEVICE, DeviceSpec
from repro.nn.zoo import toynet, vggnet_e
from repro.serve import CompiledPlan, compile_plan

_SETTINGS = dict(max_examples=8, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(scope="module")
def vgg_atoms():
    plan = compile_plan(vggnet_e().prefix(5), partition_sizes=(1,) * 7,
                        validate=False)
    return plan_atoms(plan)


class TestDeviceSpecRoundtrip:
    @given(dsp=st.integers(5, 10_000), bram=st.integers(1, 8_000),
           clock=st.floats(10.0, 800.0, allow_nan=False),
           channel=st.floats(0.25, 64.0, allow_nan=False))
    @settings(**_SETTINGS)
    def test_to_dict_from_dict_lossless(self, dsp, bram, clock, channel):
        spec = DeviceSpec(name="prop", dsp=dsp, bram18=bram,
                          clock_mhz=clock, dram_bytes_per_cycle=channel)
        again = DeviceSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()


class TestPartitionCoverage:
    @given(n=st.integers(1, 8), k=st.integers(1, 8))
    @settings(**_SETTINGS)
    def test_enumeration_is_the_complete_composition_set(self, n, k):
        if k > n:
            return
        seen = set()
        for boundaries in enumerate_boundaries(n, k):
            assert len(boundaries) == k
            assert sum(boundaries) == n
            assert all(b >= 1 for b in boundaries)
            seen.add(boundaries)
        assert len(seen) == comb(n - 1, k - 1)

    @given(k=st.integers(1, 7))
    @settings(**_SETTINGS)
    def test_balancer_covers_every_atom_exactly_once(self, k, vgg_atoms):
        fleet = split_device(DEFAULT_DEVICE, k)
        estimate = balance_stages(vgg_atoms, fleet, DEFAULT_LINK)
        assert sum(estimate.boundaries) == len(vgg_atoms)
        assert all(b >= 1 for b in estimate.boundaries)
        assert estimate.num_stages == k
        starts = [s.atom_start for s in estimate.stages]
        counts = [s.atom_count for s in estimate.stages]
        assert starts[0] == 0
        for prev_start, prev_count, start in zip(starts, counts, starts[1:]):
            assert start == prev_start + prev_count


class TestSchedulerInvariants:
    stages = st.lists(st.integers(1, 1000), min_size=1, max_size=5)

    @given(stages=stages, data=st.data(),
           num_items=st.integers(1, 40), queue_depth=st.integers(1, 8))
    @settings(**_SETTINGS)
    def test_makespan_decomposition_and_queue_bound(self, stages, data,
                                                    num_items, queue_depth):
        links = data.draw(st.lists(st.integers(0, 200),
                                   min_size=len(stages),
                                   max_size=len(stages)))
        run = simulate_microbatches(stages, links, num_items=num_items,
                                    queue_depth=queue_depth)
        assert run.makespan_cycles == (run.fill_drain_cycles
                                       + num_items * run.steady_interval)
        assert run.steady_interval == max(run.stage_service)
        if len(stages) > 1:
            assert max(run.max_queue[1:]) <= queue_depth
        again = simulate_microbatches(stages, links, num_items=num_items,
                                      queue_depth=queue_depth)
        assert again.to_dict() == run.to_dict()


class TestPlanKeyPurity:
    @given(devices=st.integers(1, 2),
           latency=st.integers(0, 2000),
           bandwidth=st.floats(0.5, 64.0, allow_nan=False),
           weight_items=st.integers(1, 16))
    @settings(**_SETTINGS)
    def test_key_is_a_pure_function_of_its_inputs(self, devices, latency,
                                                  bandwidth, weight_items):
        base = compile_plan(toynet(), partition_sizes=(1, 1))
        fleet = split_device(DEFAULT_DEVICE, devices)
        link = LinkSpec(latency_cycles=latency, bytes_per_cycle=bandwidth)
        a = pipeline_plan_key(base.key, fleet, link, weight_items)
        b = pipeline_plan_key(base.key, fleet, link, weight_items)
        assert a == b
        assert a.family == "pipeline"
        other = pipeline_plan_key(base.key, fleet, link, weight_items + 1)
        assert other != a


class TestPlanRoundtrip:
    @given(latency=st.integers(0, 2000),
           bandwidth=st.floats(0.5, 64.0, allow_nan=False))
    @settings(**_SETTINGS)
    def test_serialized_plan_restores_key_and_interval(self, latency,
                                                       bandwidth):
        link = LinkSpec(latency_cycles=latency, bytes_per_cycle=bandwidth)
        plan = compile_plan(toynet(), partition_sizes=(1, 1),
                            devices=split_device(DEFAULT_DEVICE, 2),
                            link=link)
        restored = CompiledPlan.from_dict(plan.to_dict())
        assert isinstance(restored, PipelinePlan)
        assert restored.key == plan.key
        assert (restored.estimate.interval_cycles
                == plan.estimate.interval_cycles)
        assert restored.boundaries == plan.boundaries
