"""Sharded plans through the serving stack: bit-identity, trace lanes,
tuned-record auto-sharding, soak spot checks."""

import numpy as np
import pytest

from repro.dist import split_device
from repro.hw.device import DEFAULT_DEVICE
from repro.nn.zoo import toynet
from repro.serve import InferenceService, PlanCache, compile_plan
from repro.serve.soak import run_soak


@pytest.fixture(scope="module")
def fleet():
    return split_device(DEFAULT_DEVICE, 2)


class TestServedBitIdentity:
    def test_outputs_match_golden(self, net, inputs, golden, fleet):
        svc = InferenceService(net, devices=fleet, partition_sizes=(1, 1))
        try:
            futures = [svc.submit(x) for x in inputs]
            outs = [f.result(timeout=60) for f in futures]
        finally:
            svc.shutdown()
        for out, ref in zip(outs, golden):
            np.testing.assert_array_equal(out, ref)

    def test_service_serves_pipeline_family(self, net, fleet):
        svc = InferenceService(net, devices=fleet, partition_sizes=(1, 1))
        try:
            assert svc.plan().key.family == "pipeline"
        finally:
            svc.shutdown()


class TestPlanCache:
    def test_warm_cache_hits_pipeline_key(self, net, fleet):
        cache = PlanCache()
        first = cache.get_or_compile(net, devices=fleet,
                                     partition_sizes=(1, 1))
        again = cache.get_or_compile(net, devices=fleet,
                                     partition_sizes=(1, 1))
        assert again is first
        assert cache.hits >= 1

    def test_sharded_and_unsharded_coexist(self, net, fleet):
        cache = PlanCache()
        sharded = cache.get_or_compile(net, devices=fleet,
                                       partition_sizes=(1, 1))
        plain = cache.get_or_compile(net, partition_sizes=(1, 1))
        assert sharded.key != plain.key

    def test_save_load_roundtrip(self, net, fleet, tmp_path):
        cache = PlanCache()
        plan = cache.get_or_compile(net, devices=fleet,
                                    partition_sizes=(1, 1))
        path = tmp_path / "plans.json"
        cache.save(path)
        fresh = PlanCache()
        assert fresh.load(path) >= 1
        restored = fresh.lookup(plan.key)
        assert restored is not None
        assert restored.key == plan.key


class TestTraceLanes:
    def test_stage_spans_and_device_lanes(self, net, inputs, fleet):
        svc = InferenceService(net, devices=fleet, partition_sizes=(1, 1),
                               trace=True)
        try:
            [svc.submit(x).result(timeout=60) for x in inputs[:4]]
        finally:
            svc.shutdown()
        spans = [s for tid in svc.tracer.trace_ids()
                 for s in svc.tracer.spans(tid) if s.name == "serve.stage"]
        assert spans, "sharded serving must emit serve.stage spans"
        devices = {s.attrs.get("device") for s in spans}
        assert devices == {d.name for d in fleet}
        events = svc.tracer.chrome_events()
        lane_names = {e["args"]["name"] for e in events
                      if e.get("ph") == "M"
                      and e.get("name") == "thread_name"}
        for d in fleet:
            assert f"device {d.name}" in lane_names


class TestTunedAutoShard:
    def test_record_with_devices_serves_sharded(self, net, inputs, golden):
        from repro.tune import tune

        record = tune(net, objective="interval_dsp", device_counts=(2,),
                      evals=8, seed=0, batch=4).record
        assert record.devices == 2
        plan = compile_plan(net, tuned=record)
        assert plan.key.family == "pipeline"
        svc = InferenceService(net, tuned=record)
        try:
            outs = [svc.submit(x).result(timeout=60) for x in inputs[:4]]
        finally:
            svc.shutdown()
        for out, ref in zip(outs, golden):
            np.testing.assert_array_equal(out, ref)

    def test_explicit_empty_devices_forces_unsharded(self, net):
        from repro.tune import tune

        record = tune(net, objective="interval_dsp", device_counts=(2,),
                      evals=8, seed=0, batch=4).record
        plan = compile_plan(net, tuned=record, devices=())
        assert plan.key.family == "linear"


class TestSoak:
    def test_soak_spot_checks_sharded_plans(self, fleet):
        report = run_soak([toynet()], requests=300, rate_rps=2000.0,
                          seed=7, devices=fleet, partition_sizes=(1, 1),
                          spot_check_every=10)
        assert report.config["devices"] == [d.name for d in fleet]
        assert report.wrong_answers == 0
        assert report.counts["spot_checks"] > 0
