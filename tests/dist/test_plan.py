"""PipelinePlan: keys, compilation, persistence, bit-identity."""

import numpy as np
import pytest

from repro.dist import (
    DEFAULT_LINK,
    DEFAULT_WEIGHT_ITEMS,
    LinkSpec,
    PipelinePlan,
    compile_pipeline_plan,
    pipeline_plan_key,
    split_device,
)
from repro.errors import ConfigError
from repro.hw.device import DEFAULT_DEVICE
from repro.nn.zoo import toynet
from repro.serve import CompiledPlan, compile_plan


@pytest.fixture(scope="module")
def fleet():
    return split_device(DEFAULT_DEVICE, 2)


@pytest.fixture(scope="module")
def plan(fleet):
    return compile_plan(toynet(), partition_sizes=(1, 1), devices=fleet)


@pytest.fixture(scope="module")
def inputs():
    net = toynet()
    shape = net.input_shape
    rng = np.random.default_rng(42)
    dims = (shape.channels, shape.height, shape.width)
    return [np.round(rng.uniform(-4.0, 4.0, size=dims)) for _ in range(6)]


class TestPlanKey:
    def test_family_is_pipeline(self, plan):
        assert plan.key.family == "pipeline"
        assert plan.key.variant.startswith("pipe:d2:")

    def test_key_computable_without_compiling(self, plan, fleet):
        base = compile_plan(toynet(), partition_sizes=(1, 1))
        derived = pipeline_plan_key(base.key, fleet, DEFAULT_LINK,
                                    DEFAULT_WEIGHT_ITEMS)
        assert derived == plan.key

    def test_different_fleets_never_alias(self, plan):
        other = compile_plan(toynet(), partition_sizes=(1, 1),
                             devices=split_device(DEFAULT_DEVICE, 2),
                             link=LinkSpec(latency_cycles=1,
                                           bytes_per_cycle=1.0))
        assert other.key != plan.key

    def test_pipeline_never_aliases_base(self, plan):
        base = compile_plan(toynet(), partition_sizes=(1, 1))
        assert plan.key != base.key


class TestExecution:
    def test_bit_identical_to_base_plan(self, plan, inputs):
        base = compile_plan(toynet(), partition_sizes=(1, 1))
        for x in inputs:
            sharded = plan.execute([x])[0]
            direct = base.execute([x])[0]
            np.testing.assert_array_equal(sharded, direct)

    def test_execute_records_micro_batch_run(self, plan, inputs):
        plan.execute(inputs)
        assert plan.last_run is not None
        assert plan.last_run.num_items == len(inputs)

    def test_stage_report_covers_every_device(self, plan, inputs):
        plan.execute(inputs[:2])
        report = plan.last_stage_report
        assert report is not None
        assert [entry["device"] for entry in report] == [
            d.name for d in plan.devices]
        for entry in report:
            assert entry["end_s"] >= entry["start_s"]


class TestPersistence:
    def test_roundtrip_preserves_key_and_boundaries(self, plan):
        restored = CompiledPlan.from_dict(plan.to_dict())
        assert isinstance(restored, PipelinePlan)
        assert restored.key == plan.key
        assert restored.boundaries == plan.boundaries
        assert (restored.estimate.interval_cycles
                == plan.estimate.interval_cycles)

    def test_roundtrip_execution_identical(self, plan, inputs):
        restored = CompiledPlan.from_dict(plan.to_dict())
        for x in inputs[:3]:
            np.testing.assert_array_equal(restored.execute([x])[0],
                                          plan.execute([x])[0])


class TestCompile:
    def test_needs_at_least_one_device(self):
        with pytest.raises(ConfigError):
            compile_pipeline_plan(toynet(), devices=())

    def test_more_devices_than_groups_rejected(self):
        with pytest.raises(ConfigError):
            compile_plan(toynet(), partition_sizes=(2,),
                         devices=split_device(DEFAULT_DEVICE, 2))

    def test_wrapping_an_existing_base_plan(self, fleet):
        base = compile_plan(toynet(), partition_sizes=(1, 1))
        wrapped = compile_pipeline_plan(base=base, devices=fleet)
        assert wrapped.key.family == "pipeline"
        assert wrapped.base is base
