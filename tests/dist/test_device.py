"""DeviceSpec: budgets, fingerprints, and the resource-neutral split."""

import pytest

from repro.errors import ConfigError
from repro.hw.device import (
    DEFAULT_DEVICE,
    DeviceSpec,
    replicate_device,
    split_device,
)


class TestDeviceSpec:
    def test_default_device_is_the_virtex7_part(self):
        assert DEFAULT_DEVICE.dsp == 3600
        assert DEFAULT_DEVICE.bram18 == 2940

    def test_roundtrip_preserves_fingerprint(self):
        spec = DeviceSpec(name="a", dsp=100, bram18=50, clock_mhz=200.0,
                          dram_bytes_per_cycle=4.0)
        again = DeviceSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_fingerprint_distinguishes_devices(self):
        a = DeviceSpec(name="a", dsp=100, bram18=50)
        b = DeviceSpec(name="a", dsp=101, bram18=50)
        assert a.fingerprint() != b.fingerprint()

    def test_ops_per_cycle_follows_dsp(self):
        spec = DeviceSpec(name="x", dsp=50, bram18=10)
        assert spec.mac_lanes == 10
        assert spec.ops_per_cycle == 20

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ConfigError):
            DeviceSpec(name="bad", dsp=0, bram18=10)
        with pytest.raises(ConfigError):
            DeviceSpec(name="bad", dsp=10, bram18=0)


class TestSplitDevice:
    def test_split_conserves_dsp(self):
        for count in (1, 2, 3, 4, 8):
            fleet = split_device(DEFAULT_DEVICE, count)
            assert len(fleet) == count
            assert sum(d.dsp for d in fleet) <= DEFAULT_DEVICE.dsp
            assert all(d.dsp == DEFAULT_DEVICE.dsp // count for d in fleet)

    def test_split_names_are_unique(self):
        fleet = split_device(DEFAULT_DEVICE, 4)
        assert len({d.name for d in fleet}) == 4

    def test_split_keeps_clock_and_channel(self):
        fleet = split_device(DEFAULT_DEVICE, 2)
        for d in fleet:
            assert d.clock_mhz == DEFAULT_DEVICE.clock_mhz
            assert d.dram_bytes_per_cycle == DEFAULT_DEVICE.dram_bytes_per_cycle

    def test_replicate_gives_full_copies(self):
        fleet = replicate_device(DEFAULT_DEVICE, 3)
        assert len(fleet) == 3
        assert all(d.dsp == DEFAULT_DEVICE.dsp for d in fleet)
        assert len({d.name for d in fleet}) == 3

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            split_device(DEFAULT_DEVICE, 0)
