"""Micro-batch pipeline scheduler: steady state, fill/drain, backpressure."""

import pytest

from repro.dist import simulate_microbatches
from repro.errors import ConfigError


class TestSteadyState:
    def test_single_stage_interval_is_service_time(self):
        run = simulate_microbatches([100], [0], num_items=10)
        assert run.steady_interval == 100
        assert run.makespan_cycles == 1000

    def test_bottleneck_sets_the_interval(self):
        run = simulate_microbatches([100, 300, 50], [0, 0, 0], num_items=20)
        assert run.steady_interval == 300
        assert run.bottleneck_stage == 1

    def test_link_cycles_count_toward_the_stage(self):
        without = simulate_microbatches([100, 100], [0, 0], num_items=16)
        with_link = simulate_microbatches([100, 100], [40, 0], num_items=16)
        assert (with_link.steady_interval
                >= without.steady_interval)

    def test_makespan_decomposes_into_fill_drain_plus_steady(self):
        run = simulate_microbatches([100, 300, 50], [0, 0, 0], num_items=25)
        assert run.makespan_cycles == (run.fill_drain_cycles
                                       + 25 * run.steady_interval)


class TestBackpressure:
    def test_shallow_queue_blocks_fast_upstream(self):
        deep = simulate_microbatches([10, 500], [0, 0], num_items=32,
                                     queue_depth=64)
        shallow = simulate_microbatches([10, 500], [0, 0], num_items=32,
                                        queue_depth=1)
        assert shallow.blocked_cycles >= deep.blocked_cycles
        # backpressure never changes the bottleneck's verdict
        assert (shallow.steady_interval
                == deep.steady_interval)

    def test_queue_occupancy_bounded_by_depth(self):
        # stage 0 reads the unbounded ingress; the depth caps the
        # inter-stage queues
        run = simulate_microbatches([10, 500], [0, 0], num_items=32,
                                    queue_depth=2)
        assert max(run.max_queue[1:]) <= 2


class TestValidation:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            simulate_microbatches([], [], num_items=4)

    def test_zero_items_rejected(self):
        with pytest.raises(ConfigError):
            simulate_microbatches([10], [0], num_items=0)

    def test_link_length_must_match(self):
        with pytest.raises(ConfigError):
            simulate_microbatches([10, 10], [0, 0, 0], num_items=2)

    def test_zero_queue_depth_rejected(self):
        with pytest.raises(ConfigError):
            simulate_microbatches([10], [0], num_items=2, queue_depth=0)


class TestDeterminism:
    def test_identical_runs_identical_verdicts(self):
        a = simulate_microbatches([75, 120, 40], [10, 5, 0], num_items=50)
        b = simulate_microbatches([75, 120, 40], [10, 5, 0], num_items=50)
        assert a.to_dict() == b.to_dict()
