"""Shared dist fixtures: ToyNet, integer inputs, golden outputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.zoo import toynet
from repro.sim import NetworkExecutor


@pytest.fixture
def net():
    return toynet()


@pytest.fixture
def inputs(net):
    """16 deterministic integer-valued inputs in ToyNet's input shape."""
    shape = net.input_shape
    rng = np.random.default_rng(42)
    dims = (shape.channels, shape.height, shape.width)
    return [np.round(rng.uniform(-4.0, 4.0, size=dims))
            for _ in range(16)]


@pytest.fixture
def golden(net, inputs):
    """Direct per-item NetworkExecutor outputs (the bit-exactness oracle)."""
    executor = NetworkExecutor(net, seed=0, integer=True)
    return [executor.run(x) for x in inputs]
