"""CSV export of analysis artifacts."""

import csv
import io

from repro import toynet, vggnet_e
from repro.analysis.export import (
    comparison_csv,
    figure2_csv,
    figure7_csv,
    strategy_csv,
)
from repro.analysis import figure2_series, figure7_data, reuse_vs_recompute
from repro.nn.stages import extract_levels


def parse_csv(text):
    return list(csv.reader(io.StringIO(text)))


class TestExports:
    def test_figure2_csv(self):
        rows = parse_csv(figure2_csv(figure2_series()))
        assert rows[0] == ["index", "stage", "input_mb", "output_mb", "weights_mb"]
        assert len(rows) == 17
        assert rows[1][1] == "conv1_1"
        assert float(rows[1][2]) > 0.5

    def test_figure7_csv(self):
        data = figure7_data(vggnet_e(), num_convs=5)
        rows = parse_csv(figure7_csv(data))
        assert len(rows) == 65
        labels = {r[4] for r in rows[1:]}
        assert {"A", "B", "C"} <= labels
        pareto_flags = {r[3] for r in rows[1:]}
        assert pareto_flags == {"0", "1"}

    def test_comparison_csv(self, mini_vgg_levels):
        from repro.analysis import compare_designs

        table = compare_designs("mini", mini_vgg_levels, baseline_dsp=300,
                                fused_dsp=330, tile_candidates=(8, 16, 32))
        rows = parse_csv(comparison_csv(table))
        metrics = [r[0] for r in rows[1:]]
        assert metrics == ["transfer_kb", "kilo_cycles", "bram", "dsp", "luts", "ffs"]
        assert float(rows[1][1]) < float(rows[1][2])  # fused transfers less

    def test_strategy_csv(self):
        levels = extract_levels(toynet())
        rows = parse_csv(strategy_csv(reuse_vs_recompute(levels, "toy", tips=(1, 3))))
        assert len(rows) == 3
        assert rows[1][0] == "toy"
