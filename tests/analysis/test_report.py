"""Text rendering of analysis artifacts."""

from repro import vggnet_e
from repro.analysis import (
    figure2_series,
    figure7_data,
    render_figure2,
    render_figure7,
    render_table,
)


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["a", "bb"], [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[2] or "333" in lines[3]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row padded to the same width

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text


class TestRenderFigures:
    def test_figure2_text(self):
        text = render_figure2(figure2_series())
        assert "conv1_1" in text
        assert "12.25" in text

    def test_figure7_text(self):
        data = figure7_data(vggnet_e(), num_convs=5)
        text = render_figure7(data)
        assert "64 partitions" in text
        assert "3.64" in text
        front_text = render_figure7(data, front_only=True)
        assert len(front_text.splitlines()) < len(text.splitlines())
        # B and C are Pareto-optimal; A (layer-by-layer) appears in the
        # full scatter but is dominated by the free pool-merge designs.
        for label in ("B", "C"):
            assert any(line.strip().startswith(label)
                       for line in front_text.splitlines())
        assert any(line.strip().startswith("A") for line in text.splitlines())
