"""ASCII scatter rendering."""

import pytest

from repro import vggnet_e
from repro.analysis import figure7_data, plot_figure7
from repro.analysis.plot import ascii_scatter


class TestAsciiScatter:
    def test_corners_land_on_edges(self):
        text = ascii_scatter([(0, 0, "a"), (10, 10, "b")], width=10, height=5)
        lines = text.splitlines()
        body = [l[1:] for l in lines if l.startswith("|")]
        assert len(body) == 5
        assert body[0][9] == "b"   # max y, max x -> top right
        assert body[-1][0] == "a"  # min y, min x -> bottom left

    def test_axis_annotations(self):
        text = ascii_scatter([(1, 2, "*"), (3, 4, "*")],
                             x_label="KB", y_label="MB")
        assert "KB" in text and "MB" in text
        assert "(1 .. 3)" in text and "(2 .. 4)" in text

    def test_degenerate_single_point(self):
        text = ascii_scatter([(5, 5, "x")])
        assert "x" in text

    def test_empty(self):
        assert ascii_scatter([]) == "(no points)"

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter([(0, 0, "*")], width=4, height=2)

    def test_later_points_overwrite(self):
        text = ascii_scatter([(0, 0, "a"), (0, 0, "b")], width=10, height=5)
        assert "b" in text and "a" not in text


class TestPlotFigure7:
    def test_labels_visible(self):
        data = figure7_data(vggnet_e(), num_convs=5)
        text = plot_figure7(data)
        for label in ("A", "B", "C"):
            assert label in text
        assert "*" in text and "." in text
