"""Figure data generators against the paper's in-text numbers."""

import pytest

from repro import alexnet, vggnet_e
from repro.analysis.figures import (
    figure2_series,
    figure3_walkthrough,
    figure6_timeline,
    figure7_data,
)


class TestFigure2:
    def test_sixteen_stages(self):
        assert len(figure2_series()) == 16

    def test_first_layer_matches_prose(self):
        """'the first convolutional layer requires 0.6MB of input and 7KB
        of weights; it produces 12.3MB of output feature maps.'"""
        first = figure2_series()[0]
        assert first.input_mb == pytest.approx(0.574, abs=0.01)
        assert first.weights_mb * 1024 == pytest.approx(7, abs=0.3)
        assert first.output_mb == pytest.approx(12.25, abs=0.05)

    def test_layer4_includes_pooling(self):
        """'layer 4 encompasses one convolutional and one pooling layer.'"""
        rows = figure2_series()
        assert rows[3].name == "conv2_2+pool2"

    def test_feature_maps_dominate_first_eight(self):
        """'In the first eight layers, the sum of the inputs and outputs
        is much higher than the weights; beyond that, the weights
        dominate.'"""
        rows = figure2_series()
        for row in rows[:8]:
            assert row.feature_mb > row.weights_mb
        for row in rows[8:]:
            assert row.weights_mb > row.feature_mb

    def test_custom_network(self):
        rows = figure2_series(alexnet())
        assert len(rows) == 5  # 5 conv stages (pools merged)


class TestFigure3:
    def test_walkthrough_geometry(self):
        rows = figure3_walkthrough(n=4, m=6, p=8)
        layer1, layer2 = rows
        assert layer1.in_tile == (5, 5)
        assert layer1.out_tile == (3, 3)
        assert layer2.out_tile == (1, 1)
        assert (layer1.channels_in, layer1.channels_out) == (4, 6)
        assert (layer2.channels_in, layer2.channels_out) == (6, 8)

    def test_six_blue_circles(self):
        """'the 6M blue values in the intermediate feature maps'."""
        rows = figure3_walkthrough()
        assert rows[0].overlap_points_per_map == 6
        assert rows[1].overlap_points_per_map == 0  # tip outputs are unique


class TestFigure7:
    @pytest.fixture(scope="class")
    def vgg(self):
        return figure7_data(vggnet_e(), num_convs=5)

    def test_point_labels_present(self, vgg):
        assert vgg.labeled("A").storage_kb == 0
        assert vgg.labeled("C").transfer_mb == pytest.approx(3.64, abs=0.01)
        b = vgg.labeled("B")
        assert 0 < b.storage_kb < vgg.labeled("C").storage_kb

    def test_partition_counts(self, vgg):
        assert vgg.num_partitions == 64
        assert len(vgg.points) == 64
        alex = figure7_data(alexnet())
        assert alex.num_partitions == 128

    def test_front_flags_consistent(self, vgg):
        front = vgg.front
        assert front
        # No point beats a front member on transfer without paying storage.
        for f in front:
            dominators = [p for p in vgg.points
                          if p.storage_kb <= f.storage_kb
                          and p.transfer_mb < f.transfer_mb]
            assert not dominators

    def test_unknown_label_raises(self, vgg):
        with pytest.raises(KeyError):
            vgg.labeled("Z")


class TestFigure6:
    def test_timeline_entries(self):
        from repro.hw import optimize_fused
        from repro.nn.stages import extract_levels

        levels = extract_levels(vggnet_e().prefix(2))
        design = optimize_fused(levels, dsp_budget=600)
        entries = figure6_timeline(design, num_pyramids=3)
        stages = design.stage_timings()
        assert len(entries) == 3 * len(stages)
        # Later pyramids finish later at every stage.
        first = [e.finish_cycle for e in entries if e.pyramid == 1]
        second = [e.finish_cycle for e in entries if e.pyramid == 2]
        assert all(a < b for a, b in zip(first, second))
