"""Table I / Table II comparisons and the Section III-C strategy table."""

import pytest

from repro import extract_levels, toynet
from repro.analysis.tables import (
    compare_designs,
    reuse_vs_recompute,
    section3c,
    table1,
    table2,
)


@pytest.fixture(scope="module")
def t1():
    return table1()


@pytest.fixture(scope="module")
def t2():
    return table2()


class TestTable1:
    def test_fused_transfers_less(self, t1):
        """Paper: 688 vs 962 KB — 'a 28% savings in off-chip data
        transfer, even when applied only to two layers'."""
        assert t1.fused.transfer_kb < t1.baseline.transfer_kb
        assert 0.2 < t1.transfer_reduction < 0.45

    def test_fused_faster_on_alexnet(self, t1):
        """In Table I the fused design also wins cycles (422 vs 621)."""
        assert t1.cycle_ratio < 1.0

    def test_dsp_budgets(self, t1):
        assert t1.baseline.dsp <= 2240
        assert t1.fused.dsp <= 2450

    def test_fused_needs_more_logic(self, t1):
        """'an approximately 50% increase in the FPGA's LUTs and FFs' —
        the fused design's extra control shows up in our LUT/FF model."""
        assert t1.fused.luts > t1.baseline.luts
        assert t1.fused.ffs > t1.baseline.ffs


class TestTable2:
    def test_95_percent_reduction(self, t2):
        """'The fused-layer accelerator drastically reduces this memory
        transfer down to 3.6MB, a 95% decrease.'"""
        assert t2.fused.transfer_kb / 1024 == pytest.approx(3.64, abs=0.01)
        assert t2.transfer_reduction > 0.9

    def test_fused_marginally_slower(self, t2):
        """'our fused-layer design is marginally slower, requiring 6.5%
        more clock cycles' — ours lands within a similar envelope."""
        assert 1.0 < t2.cycle_ratio < 1.25

    def test_baseline_cycles_match_paper(self, t2):
        assert t2.baseline.kilo_cycles == pytest.approx(10_951, rel=0.001)

    def test_dsp_shape(self, t2):
        """Fused uses slightly more DSP per lane-budget parity."""
        assert t2.baseline.dsp == 2880
        assert t2.fused.dsp <= 2987


class TestCompareDesigns:
    def test_custom_levels(self, mini_vgg_levels):
        table = compare_designs("mini", mini_vgg_levels, baseline_dsp=300,
                                fused_dsp=330, tile_candidates=(8, 16, 32))
        assert table.fused.transfer_kb < table.baseline.transfer_kb
        assert table.fused_design.dsp <= 330


class TestStrategyRows:
    def test_section3c_keys(self):
        data = section3c()
        assert set(data) == {"alexnet-fuse2", "vgg-fuse-all"}

    def test_alexnet_factor(self):
        rows = section3c()["alexnet-fuse2"]
        assert rows[0].adjacent_factor == pytest.approx(8.6, rel=0.02)

    def test_vgg_reuse_storage_under_recompute_cost(self):
        """The paper's point: reuse costs ~MBs of SRAM while recompute
        costs hundreds of billions of extra ops."""
        rows = section3c()["vgg-fuse-all"]
        row = rows[0]
        assert row.reuse_storage_kb < 4096  # a few MB
        assert row.recompute_extra_exact > 100e9

    def test_tip_sweep(self):
        levels = extract_levels(toynet(size=11))
        rows = reuse_vs_recompute(levels, "toy", tips=(1, 7))
        assert [r.tip for r in rows] == [1, 7]
        # Redundancy vanishes as the tip approaches the whole map.
        assert rows[-1].recompute_extra_exact == 0
        assert rows[0].recompute_extra_exact > 0

    def test_factors_consistent(self):
        levels = extract_levels(toynet())
        (row,) = reuse_vs_recompute(levels, "toy")
        assert row.exact_factor == pytest.approx(
            (row.baseline_ops + row.recompute_extra_exact) / row.baseline_ops)
