"""Cross-cutting invariants of the fusion model, property-tested."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConvSpec, Network, PoolSpec, Strategy, TensorShape, extract_levels
from repro.core.costs import (
    intermediate_transfer_saved,
    recompute_overhead_adjacent,
    recompute_overhead_ops,
    reuse_storage_bytes,
)
from repro.core.partition import analyze_partition, compositions
from repro.nn.stages import independent_units


@st.composite
def conv_pool_stack(draw):
    """Small random conv/pool stacks with valid geometry."""
    channels = draw(st.integers(1, 3))
    size = draw(st.sampled_from([16, 24, 32]))
    specs = []
    height = size
    for i in range(draw(st.integers(2, 5))):
        if draw(st.booleans()) or height < 4 or height % 2:
            kernel = draw(st.sampled_from([1, 3, 5]))
            pad = kernel // 2 if draw(st.booleans()) else 0
            if height + 2 * pad < kernel:
                continue
            specs.append(ConvSpec(f"c{i}", out_channels=draw(st.integers(1, 4)),
                                  kernel=kernel, stride=1, padding=pad))
            height = height + 2 * pad - kernel + 1
        else:
            specs.append(PoolSpec(f"p{i}", kernel=2, stride=2))
            height //= 2
    if not specs:
        specs = [ConvSpec("c", out_channels=2, kernel=3, stride=1, padding=1)]
    return Network("rand", TensorShape(channels, size, size), specs)


class TestPartitionInvariants:
    @given(net=conv_pool_stack())
    @settings(max_examples=30, deadline=None)
    def test_transfer_decomposes_over_boundaries(self, net):
        """Any partition's traffic = network input + network output + two
        passes over every group-boundary map."""
        levels = extract_levels(net)
        units = independent_units(levels)
        for sizes in list(compositions(len(units)))[:16]:
            analysis = analyze_partition(units, sizes)
            boundary_bytes = sum(
                2 * group.output_shape.bytes for group in analysis.groups[:-1])
            expected = (levels[0].in_shape.bytes + levels[-1].out_shape.bytes
                        + boundary_bytes)
            assert analysis.feature_transfer_bytes == expected

    @given(net=conv_pool_stack())
    @settings(max_examples=30, deadline=None)
    def test_full_fusion_minimizes_transfer(self, net):
        levels = extract_levels(net)
        units = independent_units(levels)
        scores = [analyze_partition(units, sizes).feature_transfer_bytes
                  for sizes in compositions(len(units))]
        fused = analyze_partition(units, (len(units),)).feature_transfer_bytes
        assert fused == min(scores)

    @given(net=conv_pool_stack())
    @settings(max_examples=20, deadline=None)
    def test_ops_identical_across_partitions_under_reuse(self, net):
        """Reuse never changes arithmetic, however the net is partitioned."""
        levels = extract_levels(net)
        units = independent_units(levels)
        baselines = {
            analyze_partition(units, sizes, strategy=Strategy.REUSE).baseline_ops
            for sizes in list(compositions(len(units)))[:16]
        }
        assert len(baselines) == 1


class TestCostInvariants:
    @given(net=conv_pool_stack(), tip=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_recompute_overhead_nonnegative(self, net, tip):
        levels = extract_levels(net)
        final = levels[-1].out_shape
        tip = min(tip, final.height, final.width)
        assert recompute_overhead_ops(levels, tip, tip) >= 0
        assert recompute_overhead_adjacent(levels, tip, tip) >= 0

    @given(net=conv_pool_stack())
    @settings(max_examples=30, deadline=None)
    def test_whole_map_tip_has_no_overhead(self, net):
        levels = extract_levels(net)
        final = levels[-1].out_shape
        assert recompute_overhead_ops(levels, final.height, final.width) == 0

    @given(net=conv_pool_stack())
    @settings(max_examples=30, deadline=None)
    def test_reuse_storage_nonnegative_and_bounded(self, net):
        """Reuse buffers never exceed the intermediate maps they shadow."""
        levels = extract_levels(net)
        storage = reuse_storage_bytes(levels)
        assert storage >= 0
        total_intermediate = sum(l.out_shape.bytes for l in levels[:-1])
        assert storage <= 2 * total_intermediate or total_intermediate == 0

    @given(net=conv_pool_stack())
    @settings(max_examples=30, deadline=None)
    def test_saved_transfer_consistent(self, net):
        levels = extract_levels(net)
        saved = intermediate_transfer_saved(levels)
        assert saved == 2 * sum(l.out_shape.bytes for l in levels[:-1])
