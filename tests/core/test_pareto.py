"""Pareto-frontier extraction properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pareto import is_dominated, knee_point, pareto_front

points_strategy = st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 100)), min_size=0, max_size=40)


def x(p):
    return p[0]


def y(p):
    return p[1]


class TestParetoFront:
    def test_simple_front(self):
        pts = [(0, 10), (1, 8), (2, 9), (3, 3), (5, 3), (6, 1)]
        assert pareto_front(pts, x, y) == [(0, 10), (1, 8), (3, 3), (6, 1)]

    def test_empty(self):
        assert pareto_front([], x, y) == []

    def test_single(self):
        assert pareto_front([(5, 5)], x, y) == [(5, 5)]

    def test_duplicate_x_keeps_best_y(self):
        assert pareto_front([(1, 5), (1, 3)], x, y) == [(1, 3)]

    @given(points_strategy)
    def test_front_sorted_and_strictly_improving(self, pts):
        front = pareto_front(pts, x, y)
        for a, b in zip(front, front[1:]):
            assert a[0] <= b[0]
            assert a[1] > b[1]

    @given(points_strategy)
    def test_front_members_not_dominated(self, pts):
        front = pareto_front(pts, x, y)
        for member in front:
            assert not is_dominated(member, pts, x, y) or pts.count(member) > 1

    @given(points_strategy)
    def test_every_point_dominated_by_or_on_front(self, pts):
        front = pareto_front(pts, x, y)
        for point in pts:
            covered = any(f[0] <= point[0] and f[1] <= point[1] for f in front)
            assert covered


class TestIsDominated:
    def test_strict_domination(self):
        assert is_dominated((5, 5), [(1, 1)], x, y)

    def test_equal_not_dominated(self):
        assert not is_dominated((5, 5), [(5, 5)], x, y)

    def test_partial_not_dominated(self):
        assert not is_dominated((5, 5), [(1, 9), (9, 1)], x, y)

    def test_self_excluded_by_identity(self):
        p = (3, 3)
        assert not is_dominated(p, [p], x, y)


class TestKneePoint:
    def test_obvious_knee(self):
        front = [(0, 100), (10, 20), (100, 0)]
        assert knee_point(front, x, y) == (10, 20)

    def test_short_fronts(self):
        assert knee_point([(1, 1)], x, y) == (1, 1)
        assert knee_point([(0, 9), (9, 0)], x, y) == (0, 9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            knee_point([], x, y)
