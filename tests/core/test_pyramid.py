"""Pyramid geometry: the backward tile computation of Section III-B."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConvSpec, Network, PoolSpec, TensorShape, extract_levels, toynet
from repro.core.pyramid import (
    backward_range,
    build_pyramid,
    clamped_range,
    position_footprint,
)
from repro.nn.shapes import ShapeError, input_extent_for


class TestBuildPyramid:
    def test_figure3_tiles(self):
        """The walkthrough: tip 1x1 needs a 3x3 intermediate region and a
        5x5 input tile."""
        levels = extract_levels(toynet())
        geometry = build_pyramid(levels, 1, 1)
        layer2 = geometry.tiles[1]
        layer1 = geometry.tiles[0]
        assert (layer2.out_h, layer2.out_w) == (1, 1)
        assert (layer2.in_h, layer2.in_w) == (3, 3)
        assert (layer1.out_h, layer1.out_w) == (3, 3)
        assert (layer1.in_h, layer1.in_w) == (5, 5)
        assert geometry.base_h == geometry.base_w == 5

    def test_positions_cover_output(self):
        levels = extract_levels(toynet())
        geometry = build_pyramid(levels, 1, 1)
        assert geometry.num_positions == (3, 3)

    def test_vgg5_base_tile(self):
        """Backward through conv3_1, pool2, conv2_2, conv2_1, pool1,
        conv1_2, conv1_1: 1 -> 3 -> 6 -> 8 -> 10 -> 20 -> 22 -> 24."""
        from repro import vggnet_e

        levels = extract_levels(vggnet_e().prefix(5))
        geometry = build_pyramid(levels, 1, 1)
        expected_in = [24, 22, 20, 10, 8, 6, 3]
        assert [t.in_h for t in geometry.tiles] == expected_in

    def test_steps_are_stride_products(self):
        from repro import vggnet_e

        levels = extract_levels(vggnet_e().prefix(5))
        geometry = build_pyramid(levels, 1, 1)
        # Strides: 1,1,2,1,1,2,1 bottom-up; the base advances by 4.
        assert geometry.tiles[0].step_h == 4
        assert geometry.tiles[-1].step_h == 1

    def test_tile_clamps_to_map(self):
        net = Network("deep", TensorShape(1, 8, 8), [
            ConvSpec(f"c{i}", out_channels=1, kernel=3, stride=1, padding=1)
            for i in range(10)
        ])
        geometry = build_pyramid(extract_levels(net), 1, 1)
        # Unclamped the base would be 21 wide; the padded map is only 10.
        assert geometry.base_h == 10

    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            build_pyramid([], 1, 1)

    def test_oversized_tip_rejected(self):
        levels = extract_levels(toynet())
        with pytest.raises(ShapeError):
            build_pyramid(levels, 4, 4)

    def test_nonpositive_tip_rejected(self):
        levels = extract_levels(toynet())
        with pytest.raises(ShapeError):
            build_pyramid(levels, 0, 1)

    def test_larger_tip_larger_base(self):
        levels = extract_levels(toynet())
        assert build_pyramid(levels, 3, 3).base_h == 7
        assert build_pyramid(levels, 1, 1).base_h == 5

    @given(tip=st.integers(1, 3), k=st.integers(1, 5), s=st.integers(1, 3))
    @settings(max_examples=50)
    def test_single_level_matches_formula(self, tip, k, s):
        extent = s * 16 + k - s  # guarantees everything fits
        net = Network("n", TensorShape(1, extent, extent),
                      [ConvSpec("c", out_channels=2, kernel=k, stride=s)])
        geometry = build_pyramid(extract_levels(net), tip, tip)
        assert geometry.base_h == input_extent_for(tip, k, s)


class TestRanges:
    def test_backward_range(self):
        assert backward_range(0, 1, 3, 1) == (0, 3)
        assert backward_range(2, 5, 3, 2) == (4, 11)
        assert backward_range(3, 3, 3, 1) == (3, 3)  # empty stays empty

    def test_clamped_range(self):
        assert clamped_range(-2, 5, 4) == (0, 4)
        assert clamped_range(3, 10, 4) == (3, 4)
        assert clamped_range(6, 10, 4) == (4, 4)  # fully out -> empty


class TestPositionFootprint:
    def test_tip_footprints_partition_output(self):
        """Across all positions, tip ranges tile the final output exactly."""
        levels = extract_levels(toynet())
        final = levels[-1].out_shape
        covered = set()
        for r in range(3):
            for c in range(3):
                fp = position_footprint(levels, r, c, 1, 1)
                r0, r1, c0, c1 = fp.out_ranges[-1]
                for i in range(r0, r1):
                    for j in range(c0, c1):
                        assert (i, j) not in covered
                        covered.add((i, j))
        assert len(covered) == final.height * final.width

    def test_intermediate_footprints_overlap(self):
        """Adjacent pyramids share intermediate points (the blue circles)."""
        levels = extract_levels(toynet())
        a = position_footprint(levels, 0, 0, 1, 1).out_ranges[0]
        b = position_footprint(levels, 0, 1, 1, 1).out_ranges[0]
        # Layer-1 output tiles: cols [0,3) and [1,4): two shared columns.
        assert a == (0, 3, 0, 3)
        assert b == (0, 3, 1, 4)

    def test_border_clamping(self):
        levels = extract_levels(toynet())
        fp = position_footprint(levels, 2, 2, 1, 1)
        r0, r1, c0, c1 = fp.out_ranges[0]
        assert r1 <= levels[0].out_shape.height
        assert c1 <= levels[0].out_shape.width

    def test_strided_footprint(self, mini_alex):
        levels = extract_levels(mini_alex)
        fp = position_footprint(levels, 0, 0, 1, 1)
        # conv2 (K5 S1 pad2): 1x1 out needs 5x5 padded -> 3x3 real at pool1
        # out; pool1 (K3 S2): 3 -> 7; conv1 (K7 S2): 7 -> 19.
        assert fp.out_ranges[2] == (0, 1, 0, 1)
        assert fp.out_ranges[1] == (0, 3, 0, 3)
        assert fp.out_ranges[0] == (0, 7, 0, 7)
