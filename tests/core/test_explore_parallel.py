"""Parallel exploration and tie-break determinism."""

from __future__ import annotations

import pytest

from repro.core import Strategy, explore
from repro.core.explorer import ExplorationResult
from repro.errors import ConfigError
from repro.faults import ExplorationBudget
from repro.nn.zoo import alexnet, toynet


def _snapshot(result):
    return [(p.sizes, p.feature_transfer_bytes, p.extra_storage_bytes)
            for p in result.points]


class TestParallelSweep:
    @pytest.mark.parametrize("strategy", [Strategy.REUSE, Strategy.RECOMPUTE])
    def test_parallel_frontier_identical_to_serial(self, strategy):
        network = alexnet()
        serial = explore(network, num_convs=5, strategy=strategy, jobs=1)
        parallel = explore(network, num_convs=5, strategy=strategy, jobs=2)
        assert _snapshot(serial) == _snapshot(parallel)
        assert ([p.sizes for p in serial.front]
                == [p.sizes for p in parallel.front])

    def test_jobs_one_is_the_serial_path(self):
        result = explore(toynet(), jobs=1)
        assert result.num_partitions == 2

    def test_budget_forces_the_serial_path(self):
        # a budget needs per-evaluation charging, so the sweep stays
        # serial (and still degrades correctly) whatever jobs says
        result = explore(alexnet(), num_convs=5,
                         budget=ExplorationBudget(max_evaluations=3), jobs=4)
        assert result.degraded
        assert result.num_partitions == 3

    def test_invalid_jobs_is_diagnosed(self):
        with pytest.raises(ConfigError):
            explore(toynet(), jobs=0)


class _TiedPoint:
    """Stand-in scored partition with explicit, directly-set costs."""

    def __init__(self, sizes, transfer, storage):
        self.sizes = sizes
        self.feature_transfer_bytes = transfer
        self.extra_storage_bytes = storage


def _result(points):
    return ExplorationResult(network_name="tied", units=(),
                             strategy=Strategy.REUSE,
                             points=tuple(points), front=())


class TestTieBreakDeterminism:
    """Regression: equal-cost partitions used to resolve by whatever
    ``min`` saw first after cost comparison — which is stable in CPython
    but unspecified across reorderings. The partition index is now the
    final sort key."""

    def test_best_under_storage_picks_earliest_of_tied_points(self):
        tied_a = _TiedPoint((2, 1), transfer=100, storage=50)
        tied_b = _TiedPoint((1, 2), transfer=100, storage=50)
        result = _result([_TiedPoint((1, 1, 1), 200, 0), tied_a, tied_b])
        assert result.best_under_storage(1000) is tied_a

    def test_best_under_transfer_picks_earliest_of_tied_points(self):
        tied_a = _TiedPoint((3,), transfer=80, storage=40)
        tied_b = _TiedPoint((1, 2), transfer=80, storage=40)
        result = _result([tied_a, tied_b, _TiedPoint((1, 1, 1), 10, 300)])
        assert result.best_under_transfer(90) is tied_a

    def test_secondary_cost_still_breaks_primary_ties(self):
        cheap_storage = _TiedPoint((2,), transfer=100, storage=10)
        result = _result([_TiedPoint((1, 1), transfer=100, storage=50),
                          cheap_storage])
        assert result.best_under_storage(1000) is cheap_storage

    def test_infeasible_budget_returns_none(self):
        result = _result([_TiedPoint((1,), transfer=100, storage=50)])
        assert result.best_under_storage(10) is None
        assert result.best_under_transfer(10) is None
