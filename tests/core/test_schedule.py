"""The Section IV-B calcparams formulas against the executor's schedule.

The paper publishes closed-form tile equations; the fused executor
derives its schedule from backward boundary tables with border clamping.
These tests prove they describe the same dataflow at every interior
position — and quantify exactly where the closed form over-covers (map
borders, where outputs depend only on padding).
"""

import pytest

from repro import extract_levels, toynet, vggnet_e
from repro.core.schedule import FusedSchedule
from repro.nn.shapes import ShapeError
from repro.sim.fused import plan_levels


@pytest.fixture(scope="module")
def vgg5_levels():
    return extract_levels(vggnet_e().prefix(5))


class TestDesignConstants:
    def test_vgg_base_and_stride(self, vgg5_levels):
        schedule = FusedSchedule(vgg5_levels)
        assert (schedule.Y, schedule.X) == (24, 24)
        assert (schedule.Sy, schedule.Sx) == (4, 4)
        assert (schedule.rows, schedule.cols) == (56, 56)

    def test_toynet_constants(self):
        schedule = FusedSchedule(extract_levels(toynet()))
        assert (schedule.X, schedule.Sx) == (5, 1)


class TestFormulas:
    def test_first_position_loads_full_base(self, vgg5_levels):
        params = FusedSchedule(vgg5_levels).position(0, 0)
        assert (params.rowt, params.colt) == (0, 0)
        assert (params.load_h, params.load_w) == (24, 24)

    def test_interior_load_is_sliver_plus_overlap(self, vgg5_levels):
        schedule = FusedSchedule(vgg5_levels)
        params = schedule.position(3, 7)
        # Sy + K - S = 4 + 3 - 1 = 6 fresh-plus-overlap rows.
        assert (params.load_h, params.load_w) == (6, 6)
        # rowt = Y + (row-1)Sy - (K-S).
        assert params.rowt == 24 + 2 * 4 - 2
        assert params.colt == 24 + 6 * 4 - 2

    def test_tile_chain_through_layers(self, vgg5_levels):
        """Steady state: 6 -> 4 (conv1_1) -> ... mirrors the pyramid."""
        params = FusedSchedule(vgg5_levels).steady_state()
        dims = [(l.in_h, l.out_h) for l in params.layers]
        assert dims == [(6, 4), (6, 4), (4, 2), (4, 2), (4, 2), (2, 1), (3, 1)]

    def test_out_of_grid_rejected(self, vgg5_levels):
        schedule = FusedSchedule(vgg5_levels)
        with pytest.raises(ShapeError):
            schedule.position(56, 0)

    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            FusedSchedule([])


class TestAgreementWithExecutorPlan:
    """calcparams vs the executor's backward boundary tables."""

    @pytest.mark.parametrize("net_levels, tip", [
        ("vgg5_levels", 1),
        ("vgg5_levels", 2),
    ])
    def test_interior_windows_match(self, net_levels, tip, request):
        levels = request.getfixturevalue(net_levels)
        schedule = FusedSchedule(levels, tip, tip)
        plans = plan_levels(levels, tip, tip)
        # Interior positions: away from the first row/col (formula's
        # special case) and the last (where clamping at the padded border
        # shrinks the executor's fresh blocks).
        for p, q in [(1, 1), (2, 5), (10, 3)]:
            params = schedule.position(p, q)
            for plan, layer in zip(plans, params.layers):
                level = plan.level
                window_h = plan.ib_r[p + 1] - plan.ob_r[p] * level.stride
                window_w = plan.ib_c[q + 1] - plan.ob_c[q] * level.stride
                fresh_h = plan.ob_r[p + 1] - plan.ob_r[p]
                fresh_w = plan.ob_c[q + 1] - plan.ob_c[q]
                assert (layer.in_h, layer.in_w) == (window_h, window_w), level.name
                assert (layer.out_h, layer.out_w) == (fresh_h, fresh_w), level.name

    def test_pad_free_group_matches_everywhere(self):
        """On padding-free groups the printed formulas are border-exact.

        The load origin/extent correspond to re-fetching the window halo
        from DRAM (the executor's ``input_reuse=False`` mode): colt is
        the *window* start and inW1 the full window width.
        """
        levels = extract_levels(toynet(n=2, m=3, p=4, size=11))
        schedule = FusedSchedule(levels)
        plans = plan_levels(levels, 1, 1)
        for p in range(schedule.rows):
            for q in range(schedule.cols):
                params = schedule.position(p, q)
                for plan, layer in zip(plans, params.layers):
                    level = plan.level
                    window_h = plan.ib_r[p + 1] - plan.ob_r[p] * level.stride
                    window_w = plan.ib_c[q + 1] - plan.ob_c[q] * level.stride
                    fresh_h = plan.ob_r[p + 1] - plan.ob_r[p]
                    fresh_w = plan.ob_c[q + 1] - plan.ob_c[q]
                    assert (layer.in_h, layer.in_w) == (window_h, window_w)
                    assert (layer.out_h, layer.out_w) == (fresh_h, fresh_w)
                # Load origin = start of the first level's input window.
                stride = levels[0].stride
                assert params.rowt == plans[0].ob_r[p] * stride
                assert params.colt == plans[0].ob_c[q] * stride

    def test_pad_free_total_load_equals_halo_traffic(self):
        """The formulas' load total equals the executed DRAM reads of the
        halo-re-reading executor — and exceeds reading the input once."""
        from repro.sim import FusedExecutor, TrafficTrace, make_input

        levels = extract_levels(toynet(n=2, m=3, p=4, size=11))
        schedule = FusedSchedule(levels)
        x = make_input(levels[0].in_shape, integer=True)
        executor = FusedExecutor(levels, integer=True, input_reuse=False)
        trace = TrafficTrace()
        executor.run(x, trace)
        assert schedule.total_load_words() == trace.reads_for("input")
        assert schedule.total_load_words() > levels[0].in_shape.elements

    def test_padded_group_origin_drift_documented(self, vgg5_levels):
        """For padded groups the literal formulas' origins drift by the
        accumulated padding (here 9 rows for the five-conv VGG fusion):
        the paper's equations omit the pad absorption at map borders."""
        schedule = FusedSchedule(vgg5_levels)
        plans = plan_levels(vgg5_levels, 1, 1)
        drifts = {schedule.position(p, 1).rowt - plans[0].ib_r[p]
                  for p in range(1, 10)}
        assert drifts == {7}  # constant drift: 9 pad rows - (K - S)


class TestScheduleProperty:
    def test_formulas_match_plan_on_random_padfree_stacks(self):
        """On any padding-free conv/pool stack, the printed Section IV-B
        equations reproduce the executor's boundary tables everywhere."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro import ConvSpec, Network, PoolSpec, TensorShape

        @st.composite
        def padfree(draw):
            size = draw(st.sampled_from([15, 21, 25]))
            specs = []
            height = size
            for i in range(draw(st.integers(1, 3))):
                if draw(st.booleans()):
                    k = draw(st.sampled_from([1, 3, 5]))
                    if height < k:
                        continue
                    specs.append(ConvSpec(f"c{i}", out_channels=2, kernel=k,
                                          stride=1))
                    height = height - k + 1
                else:
                    if height < 3 or (height - 3) % 2:
                        continue
                    specs.append(PoolSpec(f"p{i}", kernel=3, stride=2))
                    height = (height - 3) // 2 + 1
            if not specs:
                specs = [ConvSpec("c", out_channels=2, kernel=3, stride=1)]
            return Network("pf", TensorShape(1, size, size), specs)

        @given(net=padfree())
        @settings(max_examples=25, deadline=None)
        def check(net):
            levels = extract_levels(net)
            schedule = FusedSchedule(levels)
            plans = plan_levels(levels, 1, 1)
            for p in range(schedule.rows):
                for q in range(schedule.cols):
                    params = schedule.position(p, q)
                    for plan, layer in zip(plans, params.layers):
                        s = plan.level.stride
                        window_h = plan.ib_r[p + 1] - plan.ob_r[p] * s
                        window_w = plan.ib_c[q + 1] - plan.ob_c[q] * s
                        assert (layer.in_h, layer.in_w) == (window_h, window_w)

        check()
