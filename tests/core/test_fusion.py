"""Fusion-group analysis under both intermediate-data strategies."""

import pytest

from repro import Strategy, analyze_group, extract_levels, toynet, vggnet_e
from repro.core.fusion import units_to_levels
from repro.nn.shapes import ShapeError
from repro.nn.stages import independent_units, pooling_merged_units


class TestAnalyzeGroup:
    def test_reuse_has_storage_no_ops(self):
        levels = extract_levels(vggnet_e().prefix(2))
        analysis = analyze_group(levels, Strategy.REUSE)
        assert analysis.extra_storage_bytes > 0
        assert analysis.extra_ops == 0
        assert analysis.ops_increase_factor == 1.0

    def test_recompute_has_ops_no_storage(self):
        levels = extract_levels(toynet())
        analysis = analyze_group(levels, Strategy.RECOMPUTE)
        assert analysis.extra_storage_bytes == 0
        assert analysis.extra_ops > 0
        assert analysis.ops_increase_factor > 1.0

    def test_single_level_group_costs_nothing(self):
        levels = extract_levels(vggnet_e().prefix(1))
        for strategy in Strategy:
            analysis = analyze_group(levels, strategy)
            assert analysis.extra_storage_bytes == 0
            assert analysis.extra_ops == 0
            assert not analysis.is_fused

    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            analyze_group([])

    def test_shapes_and_name(self):
        levels = extract_levels(toynet(n=2, m=3, p=4))
        analysis = analyze_group(levels)
        assert analysis.name == "layer1+layer2"
        assert analysis.input_shape.channels == 2
        assert analysis.output_shape.channels == 4
        assert analysis.num_levels == 2 and analysis.is_fused

    def test_baseline_ops_matches_levels(self):
        levels = extract_levels(toynet())
        analysis = analyze_group(levels)
        assert analysis.baseline_ops == sum(l.total_ops for l in levels)

    def test_transfer_saved_counts_intermediates_twice(self):
        levels = extract_levels(toynet(n=1, m=2, p=3))
        analysis = analyze_group(levels)
        assert analysis.transfer_saved_bytes == 2 * levels[0].out_shape.bytes


class TestUnitsToLevels:
    def test_flattening_preserves_order(self, mini_vgg_levels):
        units = pooling_merged_units(mini_vgg_levels)
        assert units_to_levels(units) == list(mini_vgg_levels)

    def test_independent_roundtrip(self, mini_vgg_levels):
        units = independent_units(mini_vgg_levels)
        assert units_to_levels(units) == list(mini_vgg_levels)
