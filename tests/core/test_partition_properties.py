"""Property tests for the partition composition enumerator (ISSUE satellite).

``compositions(n)`` underlies both the explorer's exhaustive sweep and
the tuner's design space: it must emit exactly ``2^(n-1)`` compositions,
each summing to ``n``, in one deterministic order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import compositions

sizes = st.integers(1, 12)


class TestCompositionProperties:
    @given(n=sizes)
    @settings(max_examples=50, deadline=None)
    def test_count_is_two_to_n_minus_one(self, n):
        assert sum(1 for _ in compositions(n)) == 2 ** (n - 1)

    @given(n=sizes)
    @settings(max_examples=50, deadline=None)
    def test_every_composition_sums_to_n(self, n):
        for sizes_tuple in compositions(n):
            assert sum(sizes_tuple) == n
            assert all(s >= 1 for s in sizes_tuple)

    @given(n=sizes)
    @settings(max_examples=50, deadline=None)
    def test_no_duplicates(self, n):
        seen = list(compositions(n))
        assert len(seen) == len(set(seen))

    @given(n=sizes)
    @settings(max_examples=25, deadline=None)
    def test_order_is_deterministic(self, n):
        assert list(compositions(n)) == list(compositions(n))

    @given(n=sizes)
    @settings(max_examples=50, deadline=None)
    def test_extremes_are_first_and_last(self, n):
        seen = list(compositions(n))
        assert seen[0] == (n,)
        assert seen[-1] == (1,) * n

    @given(n=sizes)
    @settings(max_examples=25, deadline=None)
    def test_ordered_by_ascending_cut_count(self, n):
        cuts = [len(sizes_tuple) - 1 for sizes_tuple in compositions(n)]
        assert cuts == sorted(cuts)
