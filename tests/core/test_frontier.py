"""The DP Pareto frontier vs brute-force enumeration."""

import pytest

from repro import alexnet, extract_levels, vggnet_e
from repro.core.explorer import explore
from repro.core.frontier import pareto_frontier_dp
from repro.nn.stages import extract_levels as _extract, independent_units

MB = 2 ** 20
KB = 2 ** 10


def brute_force_front(network, num_convs=None):
    result = explore(network, num_convs=num_convs)
    return {(p.extra_storage_bytes, p.feature_transfer_bytes)
            for p in result.front}


class TestAgainstBruteForce:
    def test_vgg5_front_identical(self):
        units = independent_units(extract_levels(vggnet_e().prefix(5)))
        dp = pareto_frontier_dp(units)
        assert {(p.storage_bytes, p.transfer_bytes) for p in dp} == \
            brute_force_front(vggnet_e(), num_convs=5)

    def test_alexnet_front_identical(self):
        units = independent_units(extract_levels(alexnet()))
        dp = pareto_frontier_dp(units)
        assert {(p.storage_bytes, p.transfer_bytes) for p in dp} == \
            brute_force_front(alexnet())

    def test_sizes_are_valid_partitions(self):
        units = independent_units(extract_levels(vggnet_e().prefix(5)))
        for point in pareto_frontier_dp(units):
            assert sum(point.sizes) == len(units)
            assert all(s > 0 for s in point.sizes)


class TestFullVgg:
    def test_full_network_tractable(self):
        """All 21 windowed levels: 2^20 partitions by enumeration; the DP
        finds the exact front directly."""
        units = independent_units(extract_levels(vggnet_e().feature_extractor()))
        assert len(units) == 21
        front = pareto_frontier_dp(units)
        assert front
        # Endpoints: layer-by-layer storage 0; full fusion's transfer is
        # network input + final pooled output.
        assert front[0].storage_bytes == 0
        levels = extract_levels(vggnet_e().feature_extractor())
        fused_transfer = levels[0].in_shape.bytes + levels[-1].out_shape.bytes
        assert front[-1].transfer_bytes == fused_transfer
        # Monotone trade-off along the front.
        for a, b in zip(front, front[1:]):
            assert a.storage_bytes < b.storage_bytes
            assert a.transfer_bytes > b.transfer_bytes

    def test_empty_units(self):
        assert pareto_frontier_dp([]) == []


class TestFrontierProperty:
    def test_dp_equals_brute_force_on_random_nets(self):
        """The DP's Pareto set matches enumeration on arbitrary stacks."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro import ConvSpec, Network, PoolSpec, TensorShape
        from repro.core.pareto import pareto_front
        from repro.core.partition import enumerate_partitions

        @st.composite
        def stack(draw):
            size = draw(st.sampled_from([16, 24, 32]))
            specs = []
            height = size
            for i in range(draw(st.integers(2, 6))):
                if draw(st.booleans()) or height < 4 or height % 2:
                    k = draw(st.sampled_from([1, 3]))
                    pad = k // 2 if draw(st.booleans()) else 0
                    if height + 2 * pad < k:
                        continue
                    specs.append(ConvSpec(f"c{i}", out_channels=draw(st.integers(1, 6)),
                                          kernel=k, stride=1, padding=pad))
                    height = height + 2 * pad - k + 1
                else:
                    specs.append(PoolSpec(f"p{i}", kernel=2, stride=2))
                    height //= 2
            if not specs:
                specs = [ConvSpec("c", out_channels=2, kernel=3, stride=1)]
            return Network("fr", TensorShape(draw(st.integers(1, 3)), size, size),
                           specs)

        @given(net=stack())
        @settings(max_examples=25, deadline=None)
        def check(net):
            units = independent_units(extract_levels(net))
            dp = {(p.storage_bytes, p.transfer_bytes)
                  for p in pareto_frontier_dp(units)}
            brute = pareto_front(
                enumerate_partitions(units),
                cost_x=lambda p: p.extra_storage_bytes,
                cost_y=lambda p: p.feature_transfer_bytes,
            )
            assert dp == {(p.extra_storage_bytes, p.feature_transfer_bytes)
                          for p in brute}

        check()
