"""Graceful degradation of the partition explorer under budgets."""

import pytest

from repro import explore, obs, vggnet_e
from repro.errors import BudgetExceeded, ConfigError
from repro.faults import ExplorationBudget


class TestDegradedSearch:
    def test_budget_truncates_but_never_empties(self, mini_vgg):
        result = explore(mini_vgg, budget=ExplorationBudget(max_evaluations=3))
        assert result.degraded
        assert result.num_partitions == 3
        assert len(result.front) > 0

    def test_fully_fused_survives_truncation(self, mini_vgg):
        """compositions() yields the all-fused extreme first, so even a
        one-evaluation budget keeps the paper's point C."""
        result = explore(mini_vgg, budget=ExplorationBudget(max_evaluations=1))
        assert result.degraded
        assert result.fully_fused.is_fully_fused

    def test_generous_budget_not_degraded(self, mini_vgg):
        unbounded = explore(mini_vgg)
        bounded = explore(mini_vgg, budget=ExplorationBudget(
            max_evaluations=10 ** 6, max_seconds=3600))
        assert not unbounded.degraded
        assert not bounded.degraded
        assert bounded.num_partitions == unbounded.num_partitions

    def test_degraded_front_is_subset_invariantly_pareto(self, mini_vgg):
        result = explore(mini_vgg, budget=ExplorationBudget(max_evaluations=5))
        transfers = [p.feature_transfer_bytes for p in result.front]
        storages = [p.extra_storage_bytes for p in result.front]
        for i, (t_i, s_i) in enumerate(zip(transfers, storages)):
            for j, (t_j, s_j) in enumerate(zip(transfers, storages)):
                if i != j:
                    assert not (t_j <= t_i and s_j < s_i) or t_j == t_i

    def test_degradation_counted_in_obs(self, mini_vgg):
        with obs.capture() as registry:
            explore(mini_vgg, budget=ExplorationBudget(max_evaluations=2))
        counters = registry.to_dict()["counters"]
        assert counters["explore.degraded_searches"] == 1
        assert counters["faults.budget_trips"] == 1


class TestRaiseMode:
    def test_on_budget_raise(self):
        with pytest.raises(BudgetExceeded) as err:
            explore(vggnet_e(), num_convs=5,
                    budget=ExplorationBudget(max_evaluations=4),
                    on_budget="raise")
        assert err.value.context["scored"] == 4
        assert "evaluations" in err.value.context["budget"]

    def test_on_budget_validated(self, mini_vgg):
        with pytest.raises(ConfigError):
            explore(mini_vgg, on_budget="explode")

    def test_raise_mode_without_trip_is_silent(self, mini_vgg):
        result = explore(mini_vgg,
                         budget=ExplorationBudget(max_evaluations=10 ** 6),
                         on_budget="raise")
        assert not result.degraded


class TestBudgetReuse:
    def test_budget_rearmed_per_explore_call(self, mini_vgg):
        """explore() restarts the budget, so one object can be reused."""
        budget = ExplorationBudget(max_evaluations=3)
        first = explore(mini_vgg, budget=budget)
        second = explore(mini_vgg, budget=budget)
        assert first.degraded and second.degraded
        assert first.num_partitions == second.num_partitions == 3
