"""The Section V-A exploration tool against the paper's Figure 7 numbers."""

import pytest

from repro import Strategy, alexnet, explore, vggnet_e

KB = 2 ** 10
MB = 2 ** 20


@pytest.fixture(scope="module")
def vgg_result():
    return explore(vggnet_e(), num_convs=5)


@pytest.fixture(scope="module")
def alex_result():
    return explore(alexnet())


class TestVggExploration:
    def test_partition_count(self, vgg_result):
        assert vgg_result.num_partitions == 64

    def test_point_a(self, vgg_result):
        """'point A ... transfers 86MB of data' at zero extra storage."""
        a = vgg_result.layer_by_layer
        assert a.extra_storage_bytes == 0
        assert a.feature_transfer_bytes / MB == pytest.approx(86.3, abs=0.2)

    def test_point_c(self, vgg_result):
        """'This design transfers only 3.6MB per image, a 24x reduction
        in DRAM traffic, but requires 362KB of on-chip memory.'"""
        c = vgg_result.fully_fused
        assert c.feature_transfer_bytes / MB == pytest.approx(3.64, abs=0.01)
        assert c.extra_storage_bytes / KB == pytest.approx(362, rel=0.01)
        a = vgg_result.layer_by_layer
        reduction = a.feature_transfer_bytes / c.feature_transfer_bytes
        assert reduction == pytest.approx(24, rel=0.02)

    def test_point_b_on_front(self, vgg_result):
        """'point B transfers 25MB of data, but requires only 118KB'."""
        match = [
            p for p in vgg_result.front
            if p.feature_transfer_bytes / MB == pytest.approx(25.1, abs=0.2)
        ]
        assert match, "no ~25MB Pareto point found"
        assert match[0].extra_storage_bytes / KB == pytest.approx(118, rel=0.05)

    def test_front_is_subset_of_points(self, vgg_result):
        ids = {id(p) for p in vgg_result.points}
        assert all(id(p) in ids for p in vgg_result.front)

    def test_front_monotone(self, vgg_result):
        front = vgg_result.front
        for a, b in zip(front, front[1:]):
            assert a.extra_storage_bytes <= b.extra_storage_bytes
            assert a.feature_transfer_bytes > b.feature_transfer_bytes

    def test_best_under_storage(self, vgg_result):
        pick = vgg_result.best_under_storage(128 * KB)
        assert pick is not None
        assert pick.extra_storage_bytes <= 128 * KB
        # Nothing cheaper on transfer within the budget.
        for p in vgg_result.points:
            if p.extra_storage_bytes <= 128 * KB:
                assert pick.feature_transfer_bytes <= p.feature_transfer_bytes

    def test_best_under_transfer(self, vgg_result):
        pick = vgg_result.best_under_transfer(20 * MB)
        assert pick is not None
        assert pick.feature_transfer_bytes <= 20 * MB

    def test_infeasible_budget_returns_none(self, vgg_result):
        assert vgg_result.best_under_transfer(1) is None


class TestAlexNetExploration:
    def test_partition_count(self, alex_result):
        """'there are 128 possible combinations' for AlexNet."""
        assert alex_result.num_partitions == 128

    def test_extremes_ordering(self, alex_result):
        assert (alex_result.fully_fused.feature_transfer_bytes
                < alex_result.layer_by_layer.feature_transfer_bytes)


class TestExplorerOptions:
    def test_merge_pooling_shrinks_space(self):
        merged = explore(vggnet_e(), num_convs=5, merge_pooling=True)
        assert len(merged.units) == 5
        assert merged.num_partitions == 16

    def test_merged_extremes_match_independent(self):
        merged = explore(vggnet_e(), num_convs=5, merge_pooling=True)
        independent = explore(vggnet_e(), num_convs=5)
        assert (merged.fully_fused.feature_transfer_bytes
                == independent.fully_fused.feature_transfer_bytes)

    def test_recompute_strategy_front(self):
        result = explore(vggnet_e(), num_convs=2, strategy=Strategy.RECOMPUTE)
        assert result.strategy is Strategy.RECOMPUTE
        assert all(p.extra_storage_bytes == 0 for p in result.points)
        fused = result.fully_fused
        assert fused.extra_ops > 0

    def test_whole_network_default(self):
        result = explore(alexnet())
        assert result.network_name == "AlexNet"
