"""Cost models: reuse storage, recompute overhead, DRAM transfer."""

import pytest

from repro import alexnet, extract_levels, toynet, vggnet_e
from repro.core.costs import (
    group_transfer,
    intermediate_transfer_saved,
    one_pass_ops,
    recompute_ops,
    recompute_overhead_adjacent,
    recompute_overhead_ops,
    reuse_buffer_plans,
    reuse_storage_bytes,
)

KB = 2 ** 10
MB = 2 ** 20


class TestReuseStorage:
    def test_vgg5_matches_papers_362kb(self):
        """The headline: fusing VGGNet-E's first five conv layers costs
        362 KB of on-chip reuse storage (we compute 363 KB)."""
        levels = extract_levels(vggnet_e().prefix(5))
        storage = reuse_storage_bytes(levels)
        assert storage / KB == pytest.approx(362, rel=0.01)

    def test_pooling_boundaries_cost_nothing(self):
        """2x2/s2 pooling has K - S = 0: no reuse buffers at its input."""
        levels = extract_levels(vggnet_e().prefix(5))
        plans = reuse_buffer_plans(levels)
        consumers = {p.consumer_name for p in plans}
        assert "pool1" not in consumers and "pool2" not in consumers
        assert consumers == {"conv1_2", "conv2_1", "conv2_2", "conv3_1"}

    def test_plan_shapes(self):
        levels = extract_levels(vggnet_e().prefix(5))
        plans = reuse_buffer_plans(levels)
        by_consumer = {p.consumer_name: p for p in plans}
        conv1_2 = by_consumer["conv1_2"]
        # BL: 22-row tile x 2 cols x 64 ch; BT: 2 rows x 224 x 64.
        assert conv1_2.bl_elements == 22 * 2 * 64
        assert conv1_2.bt_elements == 2 * 224 * 64
        assert conv1_2.overlap == 2

    def test_input_level_adds_small_buffer(self):
        levels = extract_levels(vggnet_e().prefix(5))
        without = reuse_storage_bytes(levels, include_input_level=False)
        with_input = reuse_storage_bytes(levels, include_input_level=True)
        extra = with_input - without
        assert 0 < extra < 10 * KB  # a few KB of 3-channel rows

    def test_single_level_no_storage(self):
        levels = extract_levels(vggnet_e().prefix(1))
        assert reuse_storage_bytes(levels) == 0

    def test_larger_tip_larger_bl(self):
        levels = extract_levels(toynet(size=11))
        assert reuse_storage_bytes(levels, 3, 3) > reuse_storage_bytes(levels, 1, 1)

    def test_alexnet_fuse2_storage_order_of_magnitude(self):
        """Paper: 55.86 KB; our general BL/BT model gives ~73 KB (the
        paper's accounting for the merged pool stage is not fully
        specified — documented in EXPERIMENTS.md)."""
        levels = extract_levels(alexnet().prefix(2))
        storage = reuse_storage_bytes(levels) / KB
        assert 40 < storage < 90


class TestRecompute:
    def test_exact_equals_one_pass_for_single_pyramid(self):
        # A tip covering the whole output -> one pyramid -> no redundancy.
        levels = extract_levels(toynet())
        assert recompute_ops(levels, 3, 3) == one_pass_ops(levels)
        assert recompute_overhead_ops(levels, 3, 3) == 0

    def test_exact_toynet_by_hand(self):
        """9 pyramids, each computing a full 3x3 layer-1 tile: layer-1
        work is 9x what one pass needs; layer-2 work is not redundant."""
        levels = extract_levels(toynet(n=4, m=6, p=8))
        l1_ops_per_point = levels[0].ops_per_output
        l2_total = levels[1].total_ops
        expected = 9 * (9 * 6 * l1_ops_per_point) + l2_total
        assert recompute_ops(levels, 1, 1) == expected

    def test_adjacent_matches_papers_example(self):
        """Section III-C: 6M shared points, each costing 18N ops ->
        108MN per pyramid, 9 pyramids."""
        n, m = 4, 6
        levels = extract_levels(toynet(n=n, m=m, p=8))
        assert recompute_overhead_adjacent(levels, 1, 1) == 108 * m * n * 9

    def test_adjacent_le_exact_on_deep_nets(self):
        levels = extract_levels(vggnet_e().prefix(5))
        # The adjacent estimate ignores vertical and cross-level
        # compounding on multi-level pyramids... but single-direction
        # overlap can also overcount edges; on real networks exact is
        # larger for deep fusion.
        exact = recompute_overhead_ops(levels, 8, 8)
        adjacent = recompute_overhead_adjacent(levels, 8, 8)
        assert exact > 0 and adjacent > 0

    def test_alexnet_factor_matches_paper(self):
        """Paper: fusing AlexNet conv1-conv2 with recompute is 'an 8.6x
        increase in the overall number of arithmetic operations'."""
        levels = extract_levels(alexnet().prefix(2))
        base = one_pass_ops(levels)
        adjacent = recompute_overhead_adjacent(levels, 1, 1)
        factor = (base + adjacent) / base
        assert factor == pytest.approx(8.6, rel=0.02)

    def test_recompute_shrinks_with_tip(self):
        levels = extract_levels(alexnet().prefix(2))
        small = recompute_overhead_ops(levels, 1, 1)
        large = recompute_overhead_ops(levels, 9, 9)
        assert large < small

    def test_single_level_has_no_overhead(self):
        levels = extract_levels(vggnet_e().prefix(1))
        assert recompute_overhead_adjacent(levels) == 0


class TestTransfer:
    def test_group_transfer_vgg5(self):
        """Point C: 0.57 MB in + 3.06 MB out = 3.64 MB feature maps."""
        levels = extract_levels(vggnet_e().prefix(5))
        transfer = group_transfer(levels)
        assert transfer.input_bytes / MB == pytest.approx(0.574, abs=0.01)
        assert transfer.output_bytes / MB == pytest.approx(3.0625, abs=0.01)
        assert transfer.feature_map_bytes / MB == pytest.approx(3.64, abs=0.01)

    def test_weights_counted_separately(self):
        levels = extract_levels(vggnet_e().prefix(5))
        transfer = group_transfer(levels)
        weight_words = sum(l.weight_count for l in levels)
        assert transfer.weight_bytes == weight_words * 4
        assert transfer.total_bytes == transfer.feature_map_bytes + transfer.weight_bytes

    def test_intermediate_saved(self):
        levels = extract_levels(toynet(n=1, m=2, p=3))
        # One intermediate map (2x5x5), written + read back = 2 passes.
        assert intermediate_transfer_saved(levels) == 2 * 2 * 5 * 5 * 4

    def test_one_pass_ops_additive(self, mini_vgg_levels):
        assert one_pass_ops(mini_vgg_levels) == sum(
            l.total_ops for l in mini_vgg_levels)


class TestStorageConventions:
    def test_literal_formula_is_lower_bound(self):
        levels = extract_levels(vggnet_e().prefix(5))
        full = reuse_storage_bytes(levels, bt_full_width=True)
        literal = reuse_storage_bytes(levels, bt_full_width=False)
        assert literal < full

    def test_conventions_agree_when_tile_spans_map(self):
        """When the pyramid tile is the whole row, the two BT conventions
        coincide."""
        levels = extract_levels(vggnet_e().prefix(5))
        final = levels[-1].out_shape
        full = reuse_storage_bytes(levels, final.height, final.width,
                                   bt_full_width=True)
        literal = reuse_storage_bytes(levels, final.height, final.width,
                                      bt_full_width=False)
        # Tiles clamp to the padded map (slightly wider than the map), so
        # the literal convention can only exceed by the padding columns.
        assert literal >= full

    def test_plan_exposes_convention(self):
        levels = extract_levels(vggnet_e().prefix(5))
        full = reuse_buffer_plans(levels, bt_full_width=True)
        literal = reuse_buffer_plans(levels, bt_full_width=False)
        assert full[0].bt_elements > literal[0].bt_elements
        assert full[0].bl_elements == literal[0].bl_elements
