"""Partition enumeration and scoring (Section V-B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Strategy, extract_levels, vggnet_e
from repro.core.partition import analyze_partition, compositions, enumerate_partitions
from repro.nn.stages import independent_units

MB = 2 ** 20


@pytest.fixture(scope="module")
def vgg5_units():
    return independent_units(extract_levels(vggnet_e().prefix(5)))


class TestCompositions:
    def test_papers_three_layer_example(self):
        # "(1, 1, 1), (1, 2), (2, 1), or (3)"
        assert set(compositions(3)) == {(1, 1, 1), (1, 2), (2, 1), (3,)}

    @given(n=st.integers(0, 10))
    def test_count_is_2_to_n_minus_1(self, n):
        expected = 1 if n == 0 else 2 ** (n - 1)
        assert sum(1 for _ in compositions(n)) == expected

    @given(n=st.integers(1, 10))
    def test_all_sum_to_n_and_positive(self, n):
        for sizes in compositions(n):
            assert sum(sizes) == n
            assert all(s > 0 for s in sizes)

    @given(n=st.integers(1, 9))
    def test_all_distinct(self, n):
        everything = list(compositions(n))
        assert len(everything) == len(set(everything))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(compositions(-1))


class TestAnalyzePartition:
    def test_sizes_must_cover(self, vgg5_units):
        with pytest.raises(ValueError):
            analyze_partition(vgg5_units, (3, 3))
        with pytest.raises(ValueError):
            analyze_partition(vgg5_units, (7, 0))

    def test_group_boundaries(self, vgg5_units):
        analysis = analyze_partition(vgg5_units, (3, 4))
        assert analysis.num_groups == 2
        assert analysis.groups[0].name == "conv1_1+conv1_2+pool1"
        assert analysis.groups[1].name == "conv2_1+conv2_2+pool2+conv3_1"

    def test_transfer_chains_through_groups(self, vgg5_units):
        """Adjacent groups hand off through DRAM: the boundary map is
        written by one group and read by the next."""
        analysis = analyze_partition(vgg5_units, (3, 4))
        boundary = analysis.groups[0].output_shape
        assert analysis.groups[1].input_shape == boundary
        expected = (analysis.groups[0].transfer.input_bytes
                    + 2 * boundary.bytes
                    + analysis.groups[1].transfer.output_bytes)
        assert analysis.feature_transfer_bytes == expected

    def test_layer_by_layer_flags(self, vgg5_units):
        lbl = analyze_partition(vgg5_units, (1,) * 7)
        assert lbl.is_layer_by_layer and not lbl.is_fully_fused
        assert lbl.extra_storage_bytes == 0
        fused = analyze_partition(vgg5_units, (7,))
        assert fused.is_fully_fused and not fused.is_layer_by_layer

    def test_recompute_strategy_propagates(self, vgg5_units):
        analysis = analyze_partition(vgg5_units, (2, 5), strategy=Strategy.RECOMPUTE)
        assert analysis.strategy is Strategy.RECOMPUTE
        assert analysis.extra_ops > 0
        assert analysis.extra_storage_bytes == 0

    def test_describe(self, vgg5_units):
        assert "|" in analyze_partition(vgg5_units, (3, 4)).describe()


class TestEnumeratePartitions:
    def test_vgg5_space_size(self, vgg5_units):
        points = enumerate_partitions(vgg5_units)
        assert len(points) == 64  # paper: "64 possible combinations"

    def test_fusion_dominates_on_transfer(self, vgg5_units):
        """More fusion never increases feature-map traffic."""
        points = {p.sizes: p for p in enumerate_partitions(vgg5_units)}
        assert (points[(7,)].feature_transfer_bytes
                < points[(3, 4)].feature_transfer_bytes
                < points[(1,) * 7].feature_transfer_bytes)

    def test_extremes_match_paper(self, vgg5_units):
        points = {p.sizes: p for p in enumerate_partitions(vgg5_units)}
        assert points[(1,) * 7].feature_transfer_bytes / MB == pytest.approx(86.3, abs=0.1)
        assert points[(7,)].feature_transfer_bytes / MB == pytest.approx(3.64, abs=0.01)
