"""The user-facing verification harness."""

import pytest

from repro.verify import CheckResult, render_results, run_verification


class TestRunVerification:
    @pytest.fixture(scope="class")
    def results(self):
        return run_verification(scale=8)

    def test_all_checks_pass(self, results):
        assert all(r.passed for r in results), render_results(results)

    def test_five_checks(self, results):
        assert len(results) == 5
        names = [r.name for r in results]
        assert names[0] == "static analysis (repro.check)"
        assert "fused schedule equivalence" in names
        assert "paper calibration (Figure 7b)" in names

    def test_static_analysis_runs_first_and_passes(self, results):
        static = results[0]
        assert static.passed, static.detail
        assert "static checks" in static.detail

    def test_details_informative(self, results):
        fused = next(r for r in results if r.name == "fused schedule equivalence")
        assert "bit-identical" in fused.detail
        assert "Mops" in fused.detail


class TestRenderResults:
    def test_render_pass_and_fail(self):
        results = [
            CheckResult("good", True, "fine", 0.1),
            CheckResult("bad", False, "broke", 0.2),
        ]
        text = render_results(results)
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text
        assert "1/2 checks passed" in text


class TestCliCommands:
    def test_verify_command(self, capsys):
        from repro.cli import main

        assert main(["verify", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "5/5 checks passed" in out

    def test_frontier_command(self, capsys):
        from repro.cli import main

        assert main(["frontier", "vgg", "--convs", "5"]) == 0
        out = capsys.readouterr().out
        assert "2^6" in out and "3.64" in out
