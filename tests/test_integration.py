"""Cross-module integration: the analytic models versus the executed
simulation, end to end.

These tests close the loop the paper's methodology rests on: the
exploration tool's numbers (Section V) must describe what the dataflow
actually does (Section IV), which the functional simulator executes.
"""

import numpy as np
import pytest

from repro import Strategy, analyze_group, extract_levels
from repro.core.partition import analyze_partition
from repro.nn.stages import independent_units
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input


class TestAnalyticVsExecuted:
    def test_fused_traffic_matches_group_transfer(self, mini_vgg_levels):
        """The executor's measured DRAM traffic equals the Section III-B
        model's prediction for the fused group."""
        analysis = analyze_group(mini_vgg_levels, Strategy.REUSE)
        executor = FusedExecutor(mini_vgg_levels, integer=True)
        trace = TrafficTrace()
        executor.run(make_input(mini_vgg_levels[0].in_shape, integer=True), trace)
        assert trace.dram_read_bytes == analysis.transfer.input_bytes
        assert trace.dram_write_bytes == analysis.transfer.output_bytes

    def test_reference_traffic_matches_layer_by_layer_partition(self, mini_vgg_levels):
        """The reference executor's traffic equals the exploration tool's
        layer-by-layer partition score."""
        units = independent_units(mini_vgg_levels)
        lbl = analyze_partition(units, (1,) * len(units))
        executor = ReferenceExecutor(mini_vgg_levels, integer=True)
        trace = TrafficTrace()
        executor.run(make_input(mini_vgg_levels[0].in_shape, integer=True), trace)
        measured_words = trace.dram_read_elements + trace.dram_write_elements
        assert measured_words * 4 == lbl.feature_transfer_bytes

    def test_partitioned_execution_matches_reference(self, mini_vgg_levels):
        """Executing a (3, 4) partition as two fused groups, handing the
        boundary map through 'DRAM', reproduces the monolithic result with
        exactly the partition's predicted traffic."""
        units = independent_units(mini_vgg_levels)
        partition = analyze_partition(units, (3, 4))
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(mini_vgg_levels, integer=True)
        expected = reference.run(x)

        trace = TrafficTrace()
        current = x
        for group in partition.groups:
            executor = FusedExecutor(list(group.levels), params=reference.params,
                                     integer=True)
            current = executor.run(current, trace)
        np.testing.assert_array_equal(expected, current)
        measured_words = trace.dram_read_elements + trace.dram_write_elements
        assert measured_words * 4 == partition.feature_transfer_bytes

    def test_executed_buffers_bounded_by_model(self, mini_vgg_levels):
        """The executor's allocated reuse buffers never exceed the
        Section III-B storage model (the model's BL spans the full first-
        row tile height; the implementation needs at most that)."""
        from repro.core.costs import reuse_storage_bytes

        executor = FusedExecutor(mini_vgg_levels, integer=True)
        executor.run(make_input(mini_vgg_levels[0].in_shape, integer=True))
        modeled = reuse_storage_bytes(mini_vgg_levels, include_input_level=True)
        # Executor words are float64: compare element counts.
        executed_elements = executor.buffer_bytes // 8
        assert executed_elements <= modeled // 4

    def test_recompute_model_vs_memoized_execution(self):
        """Counting executed ops with no inter-pyramid caching reproduces
        the exact recompute model."""
        from repro import toynet
        from repro.core.costs import recompute_ops
        from repro.core.pyramid import position_footprint

        levels = extract_levels(toynet(n=2, m=3, p=4))
        total = 0
        for r in range(3):
            for c in range(3):
                footprint = position_footprint(levels, r, c, 1, 1)
                for level, (r0, r1, c0, c1) in zip(levels, footprint.out_ranges):
                    total += ((r1 - r0) * (c1 - c0) * level.out_channels
                              * level.ops_per_output)
        assert total == recompute_ops(levels, 1, 1)


class TestFullScale:
    def test_vgg5_at_full_resolution(self):
        """The paper's exact workload, executed: the first five conv
        layers of VGGNet-E on a 3x224x224 input. Fused == layer-by-layer
        bit-identically; every one of the 150,528 input words is read
        from DRAM exactly once (the 3.64 MB/image headline, measured)."""
        from repro import vggnet_e
        from repro.sim import FusedExecutor

        levels = extract_levels(vggnet_e().prefix(5))
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        expected = reference.run(x)
        fused = FusedExecutor(levels, params=reference.params,
                              tip_h=14, tip_w=14, integer=True)
        trace = TrafficTrace()
        got = fused.run(x, trace)
        np.testing.assert_array_equal(expected, got)
        assert trace.reads_for("input") == x.size
        assert trace.writes_for("output") == 256 * 56 * 56
        measured_mb = (trace.dram_read_bytes + trace.dram_write_bytes) / 2 ** 20
        assert measured_mb == pytest.approx(3.64, abs=0.01)


class TestHwVsAnalytic:
    def test_fused_design_transfer_equals_group_model(self, mini_vgg_levels):
        from repro.hw import optimize_fused

        design = optimize_fused(mini_vgg_levels, dsp_budget=400)
        analysis = analyze_group(mini_vgg_levels, Strategy.REUSE)
        assert design.feature_transfer_bytes == analysis.transfer.feature_map_bytes

    def test_pipeline_sim_agrees_with_closed_form(self, mini_vgg_levels):
        from repro.hw import optimize_fused

        design = optimize_fused(mini_vgg_levels, dsp_budget=400)
        assert design.simulate_cycles() == design.total_cycles
