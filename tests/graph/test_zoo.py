"""The DAG zoo: legal input sizes, family structure, registry contract."""

import pytest

from repro.graph import (
    GRAPH_ZOO,
    GraphError,
    mobilenetv2,
    resnet18,
    resnet50,
    yolo_head,
)
from repro.graph.ir import JOIN_SPECS
from repro.nn.layers import ConvSpec, FCSpec


class TestRegistry:
    def test_registry_names_and_builders(self):
        assert sorted(GRAPH_ZOO) == ["mobilenetv2", "resnet18", "resnet50",
                                     "yolohead"]
        for name, (builder, size) in GRAPH_ZOO.items():
            network = builder(size)
            assert len(network) > 0
            assert network.plan_family == "graph"

    def test_registry_sizes_are_minimal(self):
        """The registered size is the smallest legal one: one step down
        must be rejected."""
        for builder, size in GRAPH_ZOO.values():
            stride = 32 if builder is not yolo_head else 16
            with pytest.raises(GraphError, match="input size"):
                builder(size - stride)


class TestFamilies:
    def test_resnet18_structure(self):
        net = resnet18(37)
        joins = [n for n in net if isinstance(n.spec, JOIN_SPECS)]
        assert len(joins) == 8  # 4 stages x 2 basic blocks
        assert all(n.spec.op == "add" for n in joins)
        assert isinstance(net.node("fc").spec, FCSpec)
        assert net.output_shape.channels == 1000

    def test_resnet50_uses_bottlenecks_and_projections(self):
        net = resnet50(37)
        joins = [n for n in net if isinstance(n.spec, JOIN_SPECS)]
        assert len(joins) == 16  # 3+4+6+3 bottleneck blocks
        projections = [n for n in net if n.name.endswith("_proj")]
        assert len(projections) == 4
        for node in projections:
            assert isinstance(node.spec, ConvSpec)
            assert node.spec.kernel == 1 and not node.spec.bias

    def test_mobilenetv2_depthwise_and_residuals(self):
        net = mobilenetv2(33)
        depthwise = [n for n in net
                     if isinstance(n.spec, ConvSpec) and n.spec.groups > 1]
        assert depthwise
        for node in depthwise:
            assert node.spec.groups == node.spec.out_channels
        joins = [n for n in net if isinstance(n.spec, JOIN_SPECS)]
        # Inverted residuals join only where stride 1 and equal channels.
        assert len(joins) == 10

    def test_yolo_head_routes_concat(self):
        net = yolo_head(48)
        cat = net.node("route")
        assert cat.inputs == ("conv6_relu", "conv5_relu")
        assert net.node("detect").output_shape.channels == 125

    def test_default_sizes_are_imagenet_scale(self):
        assert resnet18().input_shape.height == 197
        assert mobilenetv2().input_shape.height == 193
        assert yolo_head().input_shape.height == 208
