"""Branch-aware exploration: ordering, budgets, decision round-trips."""

import pytest

from repro.core import Strategy
from repro.graph import (
    GRAPH_ZOO,
    SegmentDecision,
    explore_graph,
    lower_graph,
)

from .conftest import tiny_residual


class TestOrdering:
    @pytest.mark.parametrize("zoo_name", sorted(GRAPH_ZOO))
    def test_chosen_strictly_beats_baselines(self, zoo_name):
        """The acceptance inequality: branch-aware fusion must move
        strictly fewer bytes AND fuse strictly more layers than the
        all-boundary baseline on every zoo network (each has at least
        one structurally fusable join)."""
        builder, size = GRAPH_ZOO[zoo_name]
        result = explore_graph(builder(size))
        chosen, boundary = result.chosen, result.all_boundary
        lbl = result.layer_by_layer
        assert chosen.feature_transfer_bytes < boundary.feature_transfer_bytes
        assert boundary.feature_transfer_bytes < lbl.feature_transfer_bytes
        assert chosen.fused_layer_count > boundary.fused_layer_count
        assert chosen.fused_join_count > 0
        assert boundary.fused_join_count == 0
        assert lbl.fused_layer_count == 0

    def test_layer_by_layer_has_no_storage(self, residual_net):
        result = explore_graph(residual_net)
        assert result.layer_by_layer.extra_storage_bytes == 0

    def test_retained_skips_cost_storage_not_traffic(self, residual_net):
        """Fusing the residual join retains the skip tensor on chip:
        the chosen config's storage grows but its traffic shrinks."""
        result = explore_graph(residual_net)
        assert result.chosen.fused_join_count == 1
        assert result.chosen.retained_skip_bytes > 0
        assert (result.chosen.feature_transfer_bytes
                < result.all_boundary.feature_transfer_bytes)


class TestBudget:
    def test_unbounded_budget_matches_argmin(self, residual_net):
        free = explore_graph(residual_net)
        capped = explore_graph(residual_net,
                               storage_budget_bytes=2**30)
        assert (capped.chosen.feature_transfer_bytes
                == free.chosen.feature_transfer_bytes)

    def test_tight_budget_respected(self, residual_net):
        free = explore_graph(residual_net)
        budget = max(0, free.chosen.extra_storage_bytes - 1)
        capped = explore_graph(residual_net, storage_budget_bytes=budget)
        assert capped.chosen.extra_storage_bytes <= budget
        assert (capped.chosen.feature_transfer_bytes
                >= free.chosen.feature_transfer_bytes)

    def test_zero_budget_degenerates_to_layer_by_layer_storage(
            self, residual_net):
        capped = explore_graph(residual_net, storage_budget_bytes=0)
        assert capped.chosen.extra_storage_bytes == 0


class TestDecisions:
    def test_decisions_cover_segments(self, diamond_net):
        result = explore_graph(diamond_net)
        program = result.program
        assert len(result.chosen.decisions) == len(program.segments)
        for step, decision in zip(program.segments,
                                  result.chosen.decisions):
            assert sum(decision.sizes) == len(step.levels)

    def test_decision_round_trips_through_dict(self):
        decision = SegmentDecision(sizes=(2, 1), join_fused=True)
        assert SegmentDecision.from_dict(decision.to_dict()) == decision

    def test_recompute_strategy_runs(self, residual_net):
        result = explore_graph(residual_net,
                               strategy=Strategy.RECOMPUTE)
        assert (result.chosen.feature_transfer_bytes
                <= result.layer_by_layer.feature_transfer_bytes)

    def test_program_reuse_gives_identical_result(self, residual_net):
        program = lower_graph(residual_net)
        a = explore_graph(residual_net)
        b = explore_graph(residual_net, program=program)
        assert (a.chosen.decisions == b.chosen.decisions
                and a.chosen.feature_transfer_bytes
                == b.chosen.feature_transfer_bytes)
