"""Shared DAG fixtures: tiny hand-built graphs plus the zoo registry.

The tiny graphs exercise every join mechanism in a few thousand MACs:
``tiny_residual`` has a fusable elementwise add whose skip operand is
the consuming segment's own input (a retained skip), ``tiny_concat``
a depth concatenation, and ``tiny_diamond`` a join neither of whose
operands can fuse through (both branches are multi-node).
"""

import pytest

from repro.graph import ConcatSpec, EltwiseSpec, GraphNetwork
from repro.nn.layers import ConvSpec, PoolSpec, ReLUSpec
from repro.nn.shapes import TensorShape


def tiny_residual(size: int = 14) -> GraphNetwork:
    net = GraphNetwork("tiny-res", TensorShape(3, size, size))
    net.add(ConvSpec("c1", kernel=3, stride=1, out_channels=8, padding=1))
    net.add(ReLUSpec("c1_relu"))
    net.add(ConvSpec("c2", kernel=3, stride=1, out_channels=8, padding=1))
    net.add(EltwiseSpec("res", op="add"), inputs=("c2", "c1_relu"))
    net.add(ReLUSpec("res_relu"))
    net.add(ConvSpec("c3", kernel=3, stride=1, out_channels=4, padding=1))
    return net


def tiny_concat(size: int = 12) -> GraphNetwork:
    net = GraphNetwork("tiny-cat", TensorShape(3, size, size))
    net.add(ConvSpec("a", kernel=3, stride=1, out_channels=4, padding=1))
    net.add(ReLUSpec("a_relu"))
    net.add(ConvSpec("b", kernel=3, stride=1, out_channels=4, padding=1))
    net.add(ConcatSpec("route"), inputs=("b", "a_relu"))
    net.add(ConvSpec("head", kernel=1, stride=1, out_channels=2))
    return net


def tiny_diamond(size: int = 12) -> GraphNetwork:
    net = GraphNetwork("tiny-diamond", TensorShape(3, size, size))
    net.add(ConvSpec("stem", kernel=3, stride=1, out_channels=4, padding=1))
    net.add(ConvSpec("left1", kernel=3, stride=1, out_channels=4, padding=1),
            inputs=("stem",))
    net.add(ConvSpec("left2", kernel=3, stride=1, out_channels=4, padding=1))
    net.add(ConvSpec("right1", kernel=3, stride=1, out_channels=4, padding=1),
            inputs=("stem",))
    net.add(ConvSpec("right2", kernel=3, stride=1, out_channels=4, padding=1))
    net.add(EltwiseSpec("merge", op="max"), inputs=("left2", "right2"))
    net.add(PoolSpec("tail", kernel=2, stride=2))
    return net


@pytest.fixture
def residual_net():
    return tiny_residual()


@pytest.fixture
def concat_net():
    return tiny_concat()


@pytest.fixture
def diamond_net():
    return tiny_diamond()
