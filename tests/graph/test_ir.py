"""GraphNetwork IR: construction invariants, shape inference, identity."""

import pytest

from repro.graph import (
    INPUT,
    ConcatSpec,
    EltwiseSpec,
    GraphError,
    GraphNetwork,
    depthwise,
)
from repro.nn.layers import ConvSpec, FCSpec, ReLUSpec
from repro.nn.shapes import ShapeError, TensorShape

from .conftest import tiny_concat, tiny_residual


class TestConstruction:
    def test_insertion_order_is_topological(self, residual_net):
        for node in residual_net:
            for src in node.inputs:
                if src != INPUT:
                    assert residual_net.node(src).index < node.index

    def test_default_input_is_previous_node(self):
        net = GraphNetwork("chain", TensorShape(3, 8, 8))
        net.add(ConvSpec("a", kernel=3, stride=1, out_channels=4, padding=1))
        net.add(ReLUSpec("b"))
        assert net.node("b").inputs == ("a",)

    def test_first_node_defaults_to_graph_input(self):
        net = GraphNetwork("chain", TensorShape(3, 8, 8))
        net.add(ReLUSpec("a"))
        assert net.node("a").inputs == (INPUT,)

    def test_unknown_input_rejected(self):
        net = GraphNetwork("bad", TensorShape(3, 8, 8))
        with pytest.raises(GraphError, match="unknown input tensor"):
            net.add(ReLUSpec("a"), inputs=("ghost",))

    def test_duplicate_name_rejected(self):
        net = GraphNetwork("bad", TensorShape(3, 8, 8))
        net.add(ReLUSpec("a"))
        with pytest.raises(GraphError, match="duplicate"):
            net.add(ReLUSpec("a"))

    def test_reserved_input_name_rejected(self):
        net = GraphNetwork("bad", TensorShape(3, 8, 8))
        with pytest.raises(GraphError, match="reserved"):
            net.add(ReLUSpec(INPUT))

    def test_join_needs_explicit_distinct_inputs(self):
        net = GraphNetwork("bad", TensorShape(3, 8, 8))
        net.add(ReLUSpec("a"))
        with pytest.raises(GraphError, match="explicit inputs"):
            net.add(EltwiseSpec("j", op="add"))
        with pytest.raises(GraphError, match="distinct"):
            net.add(EltwiseSpec("j", op="add"), inputs=("a", "a"))


class TestShapeInference:
    def test_eltwise_preserves_shape(self, residual_net):
        join = residual_net.node("res")
        assert join.output_shape == residual_net.node("c2").output_shape

    def test_eltwise_mismatch_diagnosed(self):
        net = GraphNetwork("bad", TensorShape(3, 8, 8))
        net.add(ConvSpec("a", kernel=3, stride=1, out_channels=4, padding=1))
        net.add(ConvSpec("b", kernel=3, stride=1, out_channels=8, padding=1),
                inputs=("a",))
        with pytest.raises(ShapeError, match="disagree"):
            net.add(EltwiseSpec("j", op="add"), inputs=("a", "b"))

    def test_concat_sums_channels(self, concat_net):
        cat = concat_net.node("route")
        assert cat.output_shape.channels == 8
        assert cat.output_shape.height == 12

    def test_concat_spatial_mismatch_diagnosed(self):
        net = GraphNetwork("bad", TensorShape(3, 8, 8))
        net.add(ConvSpec("a", kernel=3, stride=1, out_channels=4, padding=1))
        net.add(ConvSpec("b", kernel=2, stride=2, out_channels=4),
                inputs=("a",))
        with pytest.raises(ShapeError, match="spatially"):
            net.add(ConcatSpec("j"), inputs=("a", "b"))

    def test_depthwise_is_grouped_conv(self):
        spec = depthwise("dw", channels=8)
        assert spec.groups == 8 and spec.out_channels == 8


class TestQueries:
    def test_single_sink_and_output_shape(self, residual_net):
        assert residual_net.output_name == "c3"
        assert residual_net.output_shape == TensorShape(4, 14, 14)

    def test_fan_out_counts_multiplicity(self, residual_net):
        assert residual_net.fan_out("c1_relu") == 2
        assert residual_net.fan_out("c3") == 0

    def test_feature_extractor_drops_fc_tail(self):
        net = tiny_residual()
        net.add(FCSpec("fc", out_features=10))
        trimmed = net.feature_extractor()
        assert "fc" not in trimmed
        assert trimmed.output_name == "c3"


class TestIdentity:
    def test_fingerprint_stable_across_rebuild(self, residual_net):
        clone = GraphNetwork.from_dict(residual_net.to_dict())
        assert clone.fingerprint() == residual_net.fingerprint()
        assert len(clone) == len(residual_net)

    def test_fingerprint_sees_rewiring(self):
        a, b = tiny_residual(), tiny_residual()
        rewired = b.to_dict()
        # Point the skip operand at the pre-ReLU tensor instead.
        for entry in rewired["nodes"]:
            if entry["name"] == "res":
                entry["inputs"] = ["c2", "c1"]
        assert (GraphNetwork.from_dict(rewired).fingerprint()
                != a.fingerprint())

    def test_fingerprint_distinct_across_graphs(self):
        assert tiny_residual().fingerprint() != tiny_concat().fingerprint()
