"""GraphExecutor: fused vs reference bit-identity, faults, traffic.

The load-bearing correctness claim of the whole subsystem: for every
zoo DAG, executing the lowered segment program (fused pyramids, joins,
retained skips) is **bit-identical** to evaluating the IR node by node —
with or without injected ``transfer_corrupt`` faults. Weights use the
single-tap integer mode, which keeps activations tiny (every float64
exactly representable) while staying maximally sensitive to geometry
bugs: each output channel's value depends on one exact input position.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.graph import (
    GRAPH_ZOO,
    GraphExecutor,
    default_decisions,
    explore_graph,
    lower_graph,
    make_graph_weights,
)
from repro.sim import TrafficTrace

from .conftest import tiny_concat, tiny_diamond, tiny_residual

BYTES_PER_WORD = 4

#: Families whose fused traffic equals the analytic model exactly at
#: tip=1. ResNets are excluded: their strided 1x1 projection segments
#: read only the strided input subsample, while the analytic model
#: charges the whole input map (the paper's convention) — so measured
#: traffic is strictly <= analytic there.
EXACT_TRAFFIC = ("mobilenetv2", "yolohead")


def zoo_net(name):
    builder, size = GRAPH_ZOO[name]
    return builder(size)


class TestBitIdentity:
    @pytest.mark.parametrize("zoo_name", sorted(GRAPH_ZOO))
    def test_zoo_fused_matches_reference(self, zoo_name):
        network = zoo_net(zoo_name)
        result = explore_graph(network)
        executor = GraphExecutor(network,
                                 decisions=result.chosen.decisions, seed=7)
        x = executor.make_input()
        assert np.array_equal(executor.run_reference(x),
                              executor.run_fused(x))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_tiny_graphs_match_across_seeds(self, seed):
        for net in (tiny_residual(), tiny_concat(), tiny_diamond()):
            executor = GraphExecutor(net, seed=seed)
            x = executor.make_input(seed=seed + 11)
            assert np.array_equal(executor.run_reference(x),
                                  executor.run_fused(x))

    def test_tip_does_not_change_arithmetic(self, residual_net):
        whole = GraphExecutor(residual_net, tip=None)
        tiled = GraphExecutor(residual_net, tip=1)
        x = whole.make_input()
        assert np.array_equal(whole.run_fused(x), tiled.run_fused(x))

    def test_default_decisions_fully_fuse(self, residual_net):
        program = lower_graph(residual_net)
        decisions = default_decisions(program)
        assert all(len(d.sizes) == 1 for d in decisions)
        executor = GraphExecutor(residual_net, decisions=decisions,
                                 program=program)
        x = executor.make_input()
        assert np.array_equal(executor.run_reference(x),
                              executor.run_fused(x))


class TestFaults:
    @pytest.mark.parametrize("zoo_name", sorted(GRAPH_ZOO))
    def test_bit_identity_survives_transfer_corruption(self, zoo_name):
        network = zoo_net(zoo_name)
        plan = FaultPlan.parse("transfer_corrupt:p=0.2", seed=7)
        injector = plan.injector()
        # tip=1 maximizes the number of faultable DRAM reads.
        executor = GraphExecutor(network, faults=injector, tip=1,
                                 retry=RetryPolicy(max_attempts=12))
        x = executor.make_input()
        expected = executor.run_reference(x)
        got = executor.run_fused(x)
        assert injector.counts.get("transfer_corrupt", 0) > 0
        assert np.array_equal(expected, got)


class TestTraffic:
    @pytest.mark.parametrize("zoo_name", EXACT_TRAFFIC)
    def test_measured_traffic_equals_analytic(self, zoo_name):
        network = zoo_net(zoo_name)
        result = explore_graph(network)
        executor = GraphExecutor(network,
                                 decisions=result.chosen.decisions, tip=1)
        trace = TrafficTrace()
        executor.run_fused(executor.make_input(), trace)
        measured = (trace.dram_read_elements
                    + trace.dram_write_elements) * BYTES_PER_WORD
        assert measured == result.chosen.feature_transfer_bytes

    @pytest.mark.parametrize("zoo_name", ("resnet18", "resnet50"))
    def test_measured_traffic_bounded_by_analytic(self, zoo_name):
        network = zoo_net(zoo_name)
        result = explore_graph(network)
        executor = GraphExecutor(network,
                                 decisions=result.chosen.decisions, tip=1)
        trace = TrafficTrace()
        executor.run_fused(executor.make_input(), trace)
        measured = (trace.dram_read_elements
                    + trace.dram_write_elements) * BYTES_PER_WORD
        assert measured <= result.chosen.feature_transfer_bytes

    def test_fused_moves_fewer_measured_bytes_than_layer_by_layer(
            self, residual_net):
        result = explore_graph(residual_net)
        fused = GraphExecutor(residual_net,
                              decisions=result.chosen.decisions, tip=1)
        lbl = GraphExecutor(residual_net,
                            decisions=result.layer_by_layer.decisions, tip=1)
        x = fused.make_input()
        t_fused, t_lbl = TrafficTrace(), TrafficTrace()
        assert np.array_equal(fused.run_fused(x, t_fused),
                              lbl.run_fused(x, t_lbl))
        assert (t_fused.dram_read_elements + t_fused.dram_write_elements
                < t_lbl.dram_read_elements + t_lbl.dram_write_elements)


class TestWeights:
    def test_single_tap_integer_filters(self, residual_net):
        params = make_graph_weights(residual_net, seed=0, integer=True)
        for w, b in params.values():
            flat = w.reshape(w.shape[0], -1)
            nonzero = (flat != 0).sum(axis=1)
            assert (nonzero == 1).all()
            assert set(np.unique(flat[flat != 0])) <= {-1.0, 1.0}
            assert (np.abs(b) <= 2).all()

    def test_activations_stay_exactly_representable(self):
        """The rationale for single-tap weights: even the deepest zoo
        net keeps activations far inside float64's 2^53 exact-integer
        range, so summation order can never round."""
        network = zoo_net("resnet50")
        executor = GraphExecutor(network, seed=1)
        out = executor.run_reference(executor.make_input())
        assert np.abs(out).max() < 2**53
