"""Lowering: segment decomposition, join classification, coverage."""

import pytest

from repro.graph import GRAPH_ZOO, GraphNetwork, lower_graph
from repro.nn.layers import ConvSpec, FCSpec, PadSpec, ReLUSpec
from repro.nn.shapes import TensorShape


class TestTinyGraphs:
    def test_residual_join_is_fusable(self, residual_net):
        program = lower_graph(residual_net)
        fused = [s for s in program.segments if s.join is not None]
        assert len(fused) == 1
        (segment,) = fused
        join = segment.join
        assert join.kind == "add"
        # The skip operand is the segment's own input: retained on chip,
        # never re-streamed.
        assert segment.retained_skips() == ("c1_relu",)
        assert segment.streamed_skips() == ()
        # The trailing ReLU folded onto the join.
        assert join.has_relu

    def test_concat_join_is_fusable(self, concat_net):
        program = lower_graph(concat_net)
        fused = [s for s in program.segments if s.join is not None]
        assert len(fused) == 1
        assert fused[0].join.kind == "concat"

    def test_diamond_join_fuses_one_branch_streams_other(self, diamond_net):
        program = lower_graph(diamond_net)
        # The join fuses through whichever branch is still open; the
        # other operand is not the segment's input, so fusing the join
        # means re-streaming it from DRAM rather than retaining it.
        fused = [s for s in program.segments if s.join is not None]
        assert len(fused) == 1
        (segment,) = fused
        assert segment.retained_skips() == ()
        assert len(segment.streamed_skips()) == 1

    def test_relu_folds_into_levels(self, residual_net):
        program = lower_graph(residual_net)
        claimed = set(program.node_step)
        # ReLU nodes never surface as their own steps.
        assert "c1_relu" in claimed and "res_relu" in claimed
        names = {step.name for step in program.steps}
        assert "c1_relu" not in names and "res_relu" not in names


class TestCoverage:
    @pytest.mark.parametrize("zoo_name", sorted(GRAPH_ZOO))
    def test_every_node_claimed_exactly_once(self, zoo_name):
        builder, size = GRAPH_ZOO[zoo_name]
        network = builder(size)
        program = lower_graph(network)
        assert set(program.node_step) == {node.name for node in network}

    @pytest.mark.parametrize("zoo_name", sorted(GRAPH_ZOO))
    def test_segment_levels_chain_geometrically(self, zoo_name):
        builder, size = GRAPH_ZOO[zoo_name]
        program = lower_graph(builder(size))
        for segment in program.segments:
            for prev, nxt in zip(segment.levels, segment.levels[1:]):
                assert prev.out_shape == nxt.in_shape

    def test_output_tensor_is_the_sink(self, residual_net):
        program = lower_graph(residual_net)
        assert program.output_tensor == "c3"


class TestFolding:
    def test_pad_folds_into_consuming_conv(self):
        net = GraphNetwork("padded", TensorShape(3, 8, 8))
        net.add(PadSpec("p", pad=1))
        net.add(ConvSpec("c", kernel=3, stride=1, out_channels=4))
        program = lower_graph(net)
        assert program.node_step["p"] == program.node_step["c"]
        (segment,) = program.segments
        assert segment.levels[0].in_shape == TensorShape(3, 8, 8)

    def test_fc_becomes_opaque_step(self):
        net = GraphNetwork("fc-tail", TensorShape(3, 8, 8))
        net.add(ConvSpec("c", kernel=3, stride=1, out_channels=4, padding=1))
        net.add(ReLUSpec("c_relu"))
        net.add(FCSpec("fc", out_features=10))
        program = lower_graph(net)
        assert [step.name for step in program.opaques] == ["fc"]
