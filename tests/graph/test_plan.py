"""The "graph" plan family: compilation, serving, caching, validation.

The aliasing contract under test: a DAG plan's key carries
``family="graph"``, so graph and linear plans can never collide in a
:class:`~repro.serve.plan.PlanCache` — and ``CompiledPlan.from_dict``
restores each family through its own class, so warmed caches mix both
transparently (including in process-mode workers, which rebuild plans
from exactly these dicts).
"""

import numpy as np
import pytest

from repro.check import check_graph_plan_dict, check_plan_dict
from repro.errors import ConfigError
from repro.graph import (
    CompiledGraphPlan,
    GraphExecutor,
    compile_graph_plan,
    resnet18,
)
from repro.nn.zoo import toynet
from repro.serve import InferenceService, PlanCache
from repro.serve.plan import CompiledPlan, compile_plan, make_plan_key

from .conftest import tiny_residual


@pytest.fixture(scope="module")
def residual_plan():
    return compile_graph_plan(tiny_residual(), seed=3)


class TestKeys:
    def test_graph_key_family(self, residual_plan):
        assert residual_plan.key.family == "graph"
        assert str(residual_plan.key).endswith("/graph")

    def test_linear_key_family_default(self):
        key = make_plan_key(toynet())
        assert key.family == "linear"
        assert not str(key).endswith("/graph")

    def test_legacy_key_dict_without_family_parses(self):
        key = make_plan_key(toynet())
        data = key.to_dict()
        data.pop("family", None)
        from repro.serve.plan import PlanKey

        assert PlanKey.from_dict(data).family == "linear"

    def test_same_fingerprint_different_family_never_alias(self,
                                                           residual_plan):
        linear_key = make_plan_key(toynet())
        assert residual_plan.key != linear_key


class TestCompile:
    def test_execute_matches_reference(self, residual_plan):
        reference = GraphExecutor(residual_plan.network, seed=3)
        xs = [residual_plan.executor.make_input(seed=s) for s in (1, 2)]
        outs = residual_plan.execute(xs)
        for x, out in zip(xs, outs):
            assert np.array_equal(out, reference.run_reference(x))

    def test_compile_plan_dispatches_on_family(self):
        plan = compile_plan(tiny_residual())
        assert isinstance(plan, CompiledGraphPlan)

    def test_compile_plan_rejects_linear_only_knobs(self):
        with pytest.raises(ConfigError, match="partition"):
            compile_plan(tiny_residual(), partition_sizes=(2, 1))

    def test_explicit_decisions_skip_exploration(self, residual_plan):
        rebuilt = compile_graph_plan(tiny_residual(), seed=3,
                                     decisions=residual_plan.decisions)
        assert rebuilt.decisions == residual_plan.decisions


class TestPersistence:
    def test_from_dict_round_trip(self, residual_plan):
        clone = CompiledGraphPlan.from_dict(residual_plan.to_dict())
        assert clone.key == residual_plan.key
        assert clone.decisions == residual_plan.decisions
        x = residual_plan.executor.make_input(seed=9)
        assert np.array_equal(clone.execute([x])[0],
                              residual_plan.execute([x])[0])

    def test_compiled_plan_from_dict_dispatches(self, residual_plan):
        restored = CompiledPlan.from_dict(residual_plan.to_dict())
        assert isinstance(restored, CompiledGraphPlan)

    def test_cache_round_trip_mixes_families(self, tmp_path, residual_plan):
        cache = PlanCache()
        linear = compile_plan(toynet())
        cache.put(linear)
        cache.put(residual_plan)
        path = tmp_path / "plans.json"
        cache.save(path)

        warmed = PlanCache()
        assert warmed.load(path) == 2
        assert residual_plan.key in warmed and linear.key in warmed
        restored = warmed.lookup(residual_plan.key)
        x = residual_plan.executor.make_input(seed=4)
        assert np.array_equal(restored.execute([x])[0],
                              residual_plan.execute([x])[0])

    def test_saved_cache_checks_clean(self, tmp_path, residual_plan):
        from repro.check import check_plan_cache_file

        cache = PlanCache()
        cache.put(compile_plan(toynet()))
        cache.put(residual_plan)
        path = tmp_path / "plans.json"
        cache.save(path)
        assert check_plan_cache_file(path) == []


class TestValidation:
    def test_clean_plan_has_no_findings(self, residual_plan):
        assert check_graph_plan_dict(residual_plan.to_dict()) == []

    def test_tampered_decisions_rc706(self, residual_plan):
        data = residual_plan.to_dict()
        data["decisions"][0]["sizes"] = [99]
        codes = {d.code for d in check_graph_plan_dict(data)}
        assert codes == {"RC706"}

    def test_tampered_graph_rc401(self, residual_plan):
        data = residual_plan.to_dict()
        # Widen the sink conv: the graph stays structurally valid (no
        # join sees it), but its fingerprint no longer matches the key.
        data["graph"]["nodes"][-1]["out_channels"] = 6
        codes = {d.code for d in check_graph_plan_dict(data)}
        assert "RC401" in codes

    def test_tampered_join_shape_rc703(self, residual_plan):
        data = residual_plan.to_dict()
        data["graph"]["nodes"][0]["out_channels"] = 16
        codes = {d.code for d in check_graph_plan_dict(data)}
        assert codes == {"RC703"}

    def test_check_plan_dict_dispatches_by_family(self, residual_plan):
        data = residual_plan.to_dict()
        data["decisions"][0]["sizes"] = [99]
        codes = {d.code for d in check_plan_dict(data)}
        assert codes == {"RC706"}

    def test_wrong_network_cross_check_rc401(self, residual_plan):
        findings = check_graph_plan_dict(residual_plan.to_dict(),
                                         network=resnet18(37))
        assert "RC401" in {d.code for d in findings}


class TestServing:
    def test_service_serves_graph_network(self):
        network = tiny_residual()
        svc = InferenceService(network, workers=2, max_batch=4, seed=5)
        reference = GraphExecutor(network, seed=5)
        rng = np.random.default_rng(0)
        shape = network.input_shape
        xs = [np.round(rng.uniform(-3, 3, size=(shape.channels, shape.height,
                                                shape.width)))
              for _ in range(6)]
        try:
            svc.start()
            outs = [svc.submit(x).result(timeout=60) for x in xs]
        finally:
            svc.shutdown()
        for x, out in zip(xs, outs):
            assert np.array_equal(out, reference.run_reference(x))
