"""The DAG text form: parsing, diagnostics, and dump/parse round trips.

The Hypothesis block generates random small DAGs straight in the IR —
branchy wiring, every spec kind the text form covers — and checks the
canonical-text contract: ``parse_graph(dump_graph(g))`` reproduces the
fingerprint exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    GRAPH_ZOO,
    ConcatSpec,
    EltwiseSpec,
    GraphNetwork,
    dump_graph,
    parse_graph,
)
from repro.nn.layers import ConvSpec, FCSpec, PoolSpec, ReLUSpec
from repro.nn.parse import ParseError
from repro.nn.shapes import TensorShape

EXAMPLE = """\
graph example
input 3x14x14
c1 = conv 8 3x3/1 pad=1 relu
c2 = conv 8 3x3/1 pad=1
j = add(c2, c1_relu) relu
d = dwconv 3x3/1 pad=1 nobias
p = pool max 2x2/2
f = fc 10
"""


class TestParse:
    def test_example_parses_end_to_end(self):
        net = parse_graph(EXAMPLE)
        assert net.name == "example"
        assert len(net) == 8  # two relu suffixes expand to nodes
        assert net.node("j").inputs == ("c2", "c1_relu")
        d = net.node("d").spec
        assert d.groups == d.out_channels == 8 and not d.bias
        assert net.output_shape == TensorShape(10, 1, 1)

    def test_arrow_prefix_names_the_source(self):
        net = parse_graph(
            "input 3x8x8\n"
            "a = conv 4 3x3/1 pad=1\n"
            "b = conv 4 3x3/1 pad=1\n"
            "a -> c = conv 4 3x3/1 pad=1\n")
        assert net.node("c").inputs == ("a",)

    @pytest.mark.parametrize("text, lineno, fragment", [
        ("a = conv 4 3x3/1\n", 1, "input"),
        ("input 3x8x8\na = conv 4 3x3/q\n", 2, "window"),
        ("input 3x8x8\na = spin 4\n", 2, "unknown op"),
        ("input 3x8x8\na = conv 4 3x3/1 warp=2\n", 2, "unknown option"),
        ("input 3x8x8\na = relu\nj = add(a, ghost)\n", 3, "ghost"),
        ("input 3x8x8\na = relu\nb = relu\na -> j = add(a, b)\n", 4,
         "arrow"),
        ("input 3x8x8\ninput 3x8x8\n", 2, "duplicate"),
        ("input 3x8x8\na = relu\ngraph late\n", 3, "before"),
    ])
    def test_errors_carry_line_numbers(self, text, lineno, fragment):
        with pytest.raises(ParseError) as info:
            parse_graph(text)
        assert f"line {lineno}" in str(info.value)
        assert fragment in str(info.value)

    def test_empty_text_diagnosed(self):
        with pytest.raises(ParseError, match="input"):
            parse_graph("# nothing here\n")


class TestRoundTrip:
    @pytest.mark.parametrize("zoo_name", sorted(GRAPH_ZOO))
    def test_zoo_round_trips_exactly(self, zoo_name):
        builder, size = GRAPH_ZOO[zoo_name]
        network = builder(size)
        clone = parse_graph(dump_graph(network))
        assert clone.fingerprint() == network.fingerprint()
        assert clone.name == network.name

    def test_nn_parse_reexports_work(self):
        from repro.nn.parse import dump_graph as dump2, parse_graph as parse2

        net = parse2(EXAMPLE)
        assert parse_graph(dump2(net)).fingerprint() == net.fingerprint()


def _random_graph(draw) -> GraphNetwork:
    """Draw a small DAG covering convs, pools, joins, relu suffixes."""
    net = GraphNetwork("hyp", TensorShape(draw(st.integers(1, 4)), 16, 16))
    count = draw(st.integers(2, 8))
    for i in range(count):
        name = f"n{i}"
        # Eligible unary sources: spatial shape is preserved throughout
        # (pad=1 convs), so any existing tensor is a legal input.
        sources = ["input"] + [f"n{j}" for j in range(i)]
        kind = draw(st.sampled_from(
            ["conv", "conv", "dwconv", "pool", "join"]))
        if kind == "join" and i >= 2:
            a, b = draw(st.sampled_from(
                [(x, y) for x in sources[1:] for y in sources[1:] if x != y]))
            same = (net.tensor_shape(a) == net.tensor_shape(b))
            spatial = (net.tensor_shape(a).height
                       == net.tensor_shape(b).height)
            if same and draw(st.booleans()):
                net.add(EltwiseSpec(name, op=draw(
                    st.sampled_from(["add", "mul", "max"]))), (a, b))
            elif spatial:
                net.add(ConcatSpec(name), (a, b))
            else:
                net.add(ReLUSpec(name), (draw(st.sampled_from(sources)),))
            continue
        src = draw(st.sampled_from(sources))
        channels = net.tensor_shape(src).channels
        if kind == "dwconv":
            net.add(ConvSpec(name, kernel=3, stride=1, out_channels=channels,
                             padding=1, groups=channels,
                             bias=draw(st.booleans())), (src,))
        elif kind == "pool":
            net.add(PoolSpec(name, kernel=2, stride=1,
                             mode=draw(st.sampled_from(["max", "avg"]))),
                    (src,))
        else:
            kernel = draw(st.sampled_from([1, 3]))
            net.add(ConvSpec(name, kernel=kernel, stride=1,
                             out_channels=draw(st.integers(1, 6)),
                             padding=1 if kernel == 3 else 0,
                             bias=draw(st.booleans())), (src,))
        if draw(st.booleans()):
            net.add(ReLUSpec(f"{name}_relu"), (name,))
    if draw(st.booleans()):
        net.add(FCSpec("fc", out_features=draw(st.integers(1, 16))),
                (net.last_name,))
    return net


class TestRoundTripProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_dump_parse_preserves_fingerprint(self, data):
        network = _random_graph(data.draw)
        text = dump_graph(network)
        clone = parse_graph(text)
        assert clone.fingerprint() == network.fingerprint()
        # And the canonical form is a fixed point.
        assert dump_graph(clone) == text
