"""The structured exception hierarchy threaded through every subsystem."""

import pytest

import repro
from repro.errors import BudgetExceeded, ConfigError, ReproError, SimFaultError


class TestHierarchy:
    def test_config_error_is_repro_and_value_error(self):
        err = ConfigError("bad knob")
        assert isinstance(err, ReproError)
        assert isinstance(err, ValueError)

    def test_sim_fault_error_is_repro_and_runtime_error(self):
        err = SimFaultError("broken invariant")
        assert isinstance(err, ReproError)
        assert isinstance(err, RuntimeError)

    def test_budget_exceeded_is_repro_error(self):
        assert isinstance(BudgetExceeded("over"), ReproError)

    def test_domain_errors_rebased_on_hierarchy(self):
        """Subsystem exceptions slot under the shared roots, preserving
        the concrete builtins older callers catch."""
        from repro.nn.parse import ParseError
        from repro.nn.shapes import ShapeError
        from repro.sim.reuse import ReuseError

        assert issubclass(ShapeError, ConfigError)
        assert issubclass(ParseError, ConfigError)
        assert issubclass(ReuseError, SimFaultError)

    def test_top_level_exports(self):
        assert repro.ReproError is ReproError
        assert repro.ConfigError is ConfigError
        assert repro.SimFaultError is SimFaultError
        assert repro.BudgetExceeded is BudgetExceeded


class TestContext:
    def test_message_without_context(self):
        assert str(ReproError("plain")) == "plain"
        assert ReproError("plain").context == {}

    def test_context_rendered_sorted(self):
        err = ReproError("boom", zebra=1, alpha="x")
        assert str(err) == "boom [alpha='x', zebra=1]"
        assert err.context == {"zebra": 1, "alpha": "x"}

    def test_context_survives_raise(self):
        with pytest.raises(ConfigError) as caught:
            raise ConfigError("bad", site="channel[load]#0", attempts=4)
        assert caught.value.context["site"] == "channel[load]#0"
        assert caught.value.context["attempts"] == 4

    def test_catchable_as_repro_error(self):
        """One except clause covers every subsystem failure."""
        for err in (ConfigError("a"), SimFaultError("b"), BudgetExceeded("c")):
            with pytest.raises(ReproError):
                raise err
