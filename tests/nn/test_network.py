"""Network container: shape inference, lookups, slicing."""

import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape
from repro.nn.layers import FCSpec
from repro.nn.shapes import ShapeError


def small_net() -> Network:
    return Network(
        "net",
        TensorShape(3, 16, 16),
        [
            ConvSpec("c1", out_channels=4, kernel=3, stride=1, padding=1),
            ReLUSpec("r1"),
            PoolSpec("p1", kernel=2, stride=2),
            ConvSpec("c2", out_channels=8, kernel=3, stride=1, padding=1),
            FCSpec("fc", out_features=10),
        ],
    )


class TestShapeInference:
    def test_chained_shapes(self):
        net = small_net()
        assert net["c1"].output_shape == TensorShape(4, 16, 16)
        assert net["p1"].output_shape == TensorShape(4, 8, 8)
        assert net["c2"].output_shape == TensorShape(8, 8, 8)
        assert net.output_shape == TensorShape(10, 1, 1)

    def test_binding_carries_input_shape(self):
        net = small_net()
        assert net["c2"].input_shape == TensorShape(4, 8, 8)

    def test_invalid_geometry_raises_at_construction(self):
        with pytest.raises(ShapeError):
            Network("bad", TensorShape(3, 4, 4),
                    [ConvSpec("c", out_channels=2, kernel=7, stride=1)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ShapeError):
            Network("dup", TensorShape(3, 8, 8),
                    [ReLUSpec("x"), ReLUSpec("x")])


class TestContainerProtocol:
    def test_len_iter_getitem(self):
        net = small_net()
        assert len(net) == 5
        assert [b.name for b in net] == ["c1", "r1", "p1", "c2", "fc"]
        assert net[0].name == "c1"
        assert net[-1].name == "fc"

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            small_net().layer("nope")

    def test_conv_and_pool_lists(self):
        net = small_net()
        assert [b.name for b in net.conv_layers()] == ["c1", "c2"]
        assert [b.name for b in net.pool_layers()] == ["p1"]


class TestSlicing:
    def test_feature_extractor_stops_before_fc(self):
        fx = small_net().feature_extractor()
        assert [b.name for b in fx] == ["c1", "r1", "p1", "c2"]

    def test_prefix_keeps_interior_pool(self):
        pre = small_net().prefix(2)
        assert [b.name for b in pre] == ["c1", "r1", "p1", "c2"]

    def test_prefix_drops_trailing_pool(self):
        net = Network("n", TensorShape(3, 8, 8), [
            ConvSpec("c1", out_channels=4, kernel=3, padding=1),
            PoolSpec("p1", kernel=2, stride=2),
        ])
        assert [b.name for b in net.prefix(1)] == ["c1"]

    def test_prefix_keeps_relu_of_last_conv(self):
        net = Network("n", TensorShape(3, 8, 8), [
            ConvSpec("c1", out_channels=4, kernel=3, padding=1),
            ReLUSpec("r1"),
            PoolSpec("p1", kernel=2, stride=2),
        ])
        assert [b.name for b in net.prefix(1)] == ["c1", "r1"]

    def test_prefix_too_deep(self):
        with pytest.raises(ValueError):
            small_net().prefix(3)

    def test_prefix_nonpositive(self):
        with pytest.raises(ValueError):
            small_net().prefix(0)


class TestAggregates:
    def test_total_weights(self):
        net = small_net()
        expected = sum(b.weight_count for b in net)
        assert net.total_weights() == expected
        assert expected > 0

    def test_total_ops_positive(self):
        assert small_net().total_ops() > 0

    def test_repr(self):
        assert "net" in repr(small_net())
