"""Extended zoo networks: GoogLeNet stem, ZFNet, NiN."""

import numpy as np
import pytest

from repro import TensorShape, explore, extract_levels
from repro.nn.network import Network
from repro.nn.shapes import TensorShape as TS
from repro.nn.zoo import googlenet_stem, nin_cifar, zfnet
from repro.sim import FusedExecutor, ReferenceExecutor, make_input


class TestGoogLeNetStem:
    def test_geometry(self):
        net = googlenet_stem()
        assert net.output_shape == TensorShape(192, 28, 28)
        assert net["conv2_reduce"].spec.kernel == 1  # the paper's 1x1 trend

    def test_fusion_space(self):
        result = explore(googlenet_stem())
        assert result.num_partitions == 16  # 5 windowed units
        c = result.fully_fused
        a = result.layer_by_layer
        assert c.feature_transfer_bytes < a.feature_transfer_bytes / 8

    def test_without_lrn(self):
        net = googlenet_stem(include_lrn=False)
        assert all("norm" not in b.name for b in net)

    def test_fused_execution_matches_reference(self):
        # Scaled-down stem: same layer stack on a small input.
        full = googlenet_stem(include_lrn=False)
        net = Network("stem-small", TS(3, 63, 63), full.specs)
        levels = extract_levels(net)
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        fused = FusedExecutor(levels, params=reference.params, integer=True)
        np.testing.assert_array_equal(reference.run(x), fused.run(x))


class TestZFNet:
    def test_geometry(self):
        net = zfnet()
        assert net["conv1"].spec.kernel == 7
        assert net["pool5"].output_shape == TensorShape(256, 6, 6)
        assert net.output_shape == TensorShape(1000, 1, 1)

    def test_feature_extractor(self):
        net = zfnet(include_classifier=False)
        assert net.output_shape.channels == 256

    def test_fusion_space_size(self):
        result = explore(zfnet())
        assert result.num_partitions == 2 ** 7  # 5 convs + 3 pools


class TestNiN:
    def test_geometry(self):
        net = nin_cifar()
        assert net.output_shape == TensorShape(10, 1, 1)

    def test_1x1_levels_have_zero_overlap(self):
        levels = extract_levels(nin_cifar())
        cccp = [l for l in levels if l.kernel == 1]
        assert len(cccp) == 6
        assert all(l.overlap == 0 for l in cccp)

    def test_1x1_boundaries_need_no_reuse_buffers(self):
        from repro.core.costs import reuse_buffer_plans

        levels = extract_levels(nin_cifar())
        consumers = {p.consumer_name for p in reuse_buffer_plans(levels)}
        assert not any(name.startswith("cccp") for name in consumers)

    def test_fused_execution_matches_reference(self):
        levels = extract_levels(nin_cifar())[:7]  # through pool1
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        fused = FusedExecutor(levels, params=reference.params, integer=True)
        np.testing.assert_array_equal(reference.run(x), fused.run(x))
