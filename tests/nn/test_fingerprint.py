"""Network.fingerprint: content-based, order- and parameter-sensitive."""

from __future__ import annotations

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape
from repro.nn.zoo import toynet, vggnet_e


def _net(name, specs, size=8):
    return Network(name, TensorShape(3, size, size), specs)


def _conv(out_channels=8, kernel=3, padding=1, name="c1"):
    return ConvSpec(name, kernel=kernel, stride=1,
                    out_channels=out_channels, padding=padding)


def test_deterministic_across_instances():
    assert toynet().fingerprint() == toynet().fingerprint()
    assert len(toynet().fingerprint()) == 16


def test_distinct_networks_differ():
    assert toynet().fingerprint() != vggnet_e().fingerprint()


def test_network_display_name_is_not_content():
    specs = [_conv(), ReLUSpec("r1")]
    assert (_net("a", specs).fingerprint()
            == _net("b", specs).fingerprint())


def test_layer_order_matters():
    conv = _conv(out_channels=3)
    pool = PoolSpec("p1", kernel=2, stride=2)
    assert (_net("n", [conv, pool]).fingerprint()
            != _net("n", [pool, conv]).fingerprint())


def test_every_parameter_matters():
    base = _net("n", [_conv()])
    assert base.fingerprint() != _net("n", [_conv(padding=0)]).fingerprint()
    assert base.fingerprint() != _net("n", [_conv(out_channels=16)]).fingerprint()
    assert base.fingerprint() != _net(
        "n", [_conv(kernel=5, padding=2)]).fingerprint()


def test_input_shape_matters():
    assert (_net("n", [_conv()], size=8).fingerprint()
            != _net("n", [_conv()], size=16).fingerprint())
