"""Seeded property tests for the shape arithmetic and its error paths.

Shape invariants under random geometry: the forward/inverse output-size
rules agree wherever both are defined, and every impossible geometry is
diagnosed with :class:`~repro.nn.shapes.ShapeError` (a
:class:`~repro.errors.ConfigError`) rather than silently truncated.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.nn.shapes import (
    ShapeError,
    TensorShape,
    conv_output_extent,
    input_extent_for,
)

extents = st.integers(1, 64)
kernels = st.integers(1, 11)
strides = st.integers(1, 4)


class TestForwardInverseInvariants:
    @given(out=st.integers(1, 32), kernel=kernels, stride=strides)
    @settings(max_examples=200, deadline=None)
    def test_inverse_then_forward_round_trips(self, out, kernel, stride):
        """D = S*D' + K - S always yields a valid extent that maps back."""
        extent = input_extent_for(out, kernel, stride)
        assert conv_output_extent(extent, kernel, stride) == out

    @given(extent=extents, kernel=kernels, stride=strides)
    @settings(max_examples=200, deadline=None)
    def test_forward_is_total_or_diagnosed(self, extent, kernel, stride):
        """conv_output_extent either returns the paper's formula or raises
        ShapeError — never a wrong or negative size."""
        try:
            out = conv_output_extent(extent, kernel, stride)
        except ShapeError:
            assert extent < kernel or (extent - kernel) % stride != 0
        else:
            assert out >= 1
            assert out == (extent - kernel) // stride + 1

    @given(out=st.integers(1, 32), kernel=kernels, stride=strides)
    @settings(max_examples=100, deadline=None)
    def test_inverse_is_minimal(self, out, kernel, stride):
        """No smaller input extent produces ``out`` outputs."""
        extent = input_extent_for(out, kernel, stride)
        smaller = extent - 1
        if smaller >= kernel and (smaller - kernel) % stride == 0:
            assert conv_output_extent(smaller, kernel, stride) < out


class TestShapeErrorPaths:
    @pytest.mark.parametrize("extent,kernel,stride", [
        (2, 3, 1),    # window does not fit
        (10, 3, 2),   # partial window left over
        (8, 0, 1),    # degenerate kernel
        (8, 3, 0),    # degenerate stride
    ])
    def test_bad_geometry_raises_shape_error(self, extent, kernel, stride):
        with pytest.raises(ShapeError):
            conv_output_extent(extent, kernel, stride)

    def test_shape_error_is_config_error_and_value_error(self):
        with pytest.raises(ConfigError):
            conv_output_extent(2, 3, 1)
        with pytest.raises(ValueError):
            conv_output_extent(2, 3, 1)

    @given(ch=st.integers(-2, 2), h=st.integers(-2, 2), w=st.integers(-2, 2))
    @settings(max_examples=60, deadline=None)
    def test_tensor_shape_rejects_nonpositive_dims(self, ch, h, w):
        if ch > 0 and h > 0 and w > 0:
            shape = TensorShape(ch, h, w)
            assert shape.elements == ch * h * w
        else:
            with pytest.raises(ShapeError):
                TensorShape(ch, h, w)

    def test_negative_padding_rejected(self):
        with pytest.raises(ShapeError):
            TensorShape(1, 4, 4).padded(-1)

    @given(out=st.integers(-3, 0))
    @settings(max_examples=10, deadline=None)
    def test_inverse_rejects_nonpositive_output(self, out):
        with pytest.raises(ShapeError):
            input_extent_for(out, 3, 1)


class TestPyramidInvariants:
    @given(out=st.integers(1, 16), kernel=st.integers(1, 7),
           stride=st.integers(1, 3), levels=st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_stacked_inverse_is_monotone(self, out, kernel, stride, levels):
        """Growing a pyramid tip downward never shrinks the input tile."""
        extent = out
        for _ in range(levels):
            wider = input_extent_for(extent, kernel, stride)
            assert wider >= extent or kernel < stride
            extent = wider

    @given(out_a=st.integers(1, 16), out_b=st.integers(1, 16),
           kernel=kernels, stride=strides)
    @settings(max_examples=100, deadline=None)
    def test_inverse_monotone_in_output(self, out_a, out_b, kernel, stride):
        if out_a <= out_b:
            assert (input_extent_for(out_a, kernel, stride)
                    <= input_extent_for(out_b, kernel, stride))
