"""Level extraction and fusion-unit grouping."""

import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape
from repro.nn.layers import FCSpec, LRNSpec, PadSpec
from repro.nn.shapes import ShapeError
from repro.nn.stages import (
    extract_levels,
    independent_units,
    pooling_merged_units,
)


class TestExtractLevels:
    def test_conv_padding_carried(self, mini_vgg):
        levels = extract_levels(mini_vgg)
        assert [l.name for l in levels] == ["c11", "c12", "p1", "c21", "c22", "p2", "c31"]
        assert all(l.pad == 1 for l in levels if l.is_conv)
        assert all(l.pad == 0 for l in levels if l.is_pool)

    def test_relu_attached_to_producer(self, mini_vgg):
        levels = extract_levels(mini_vgg)
        assert all(l.has_relu for l in levels if l.is_conv)
        assert not any(l.has_relu for l in levels if l.is_pool)

    def test_explicit_pad_layer_folds_into_next_conv(self):
        net = Network("n", TensorShape(3, 8, 8), [
            PadSpec("pad", pad=2),
            ConvSpec("c", out_channels=4, kernel=5, stride=1),
        ])
        (level,) = extract_levels(net)
        assert level.pad == 2
        assert level.in_shape == TensorShape(3, 8, 8)  # unpadded
        assert level.out_shape == TensorShape(4, 8, 8)

    def test_explicit_pad_combines_with_conv_padding(self):
        net = Network("n", TensorShape(3, 8, 8), [
            PadSpec("pad", pad=1),
            ConvSpec("c", out_channels=4, kernel=5, stride=1, padding=1),
        ])
        (level,) = extract_levels(net)
        assert level.pad == 2

    def test_lrn_skipped(self):
        net = Network("n", TensorShape(3, 8, 8), [
            ConvSpec("c", out_channels=4, kernel=3, padding=1),
            LRNSpec("norm"),
            PoolSpec("p", kernel=2, stride=2),
        ])
        assert [l.name for l in extract_levels(net)] == ["c", "p"]

    def test_fc_terminates(self):
        net = Network("n", TensorShape(3, 8, 8), [
            ConvSpec("c", out_channels=4, kernel=3, padding=1),
            FCSpec("fc", out_features=2),
            ReLUSpec("r"),
        ])
        assert [l.name for l in extract_levels(net)] == ["c"]

    def test_relu_before_any_level_rejected(self):
        net = Network("n", TensorShape(3, 8, 8), [ReLUSpec("r")])
        with pytest.raises(ShapeError):
            extract_levels(net)

    def test_trailing_pad_rejected(self):
        net = Network("n", TensorShape(3, 8, 8), [
            ConvSpec("c", out_channels=4, kernel=3, padding=1),
            PadSpec("pad", pad=1),
        ])
        with pytest.raises(ShapeError):
            extract_levels(net)

    def test_pad_before_pool_rejected(self):
        net = Network("n", TensorShape(3, 8, 8), [
            PadSpec("pad", pad=1),
            PoolSpec("p", kernel=2, stride=2),
        ])
        with pytest.raises(ShapeError):
            extract_levels(net)

    def test_level_metadata(self, mini_alex):
        c1, p1, c2 = extract_levels(mini_alex)
        assert (c1.kernel, c1.stride) == (7, 2)
        assert c2.groups == 2
        assert c2.weight_count == 12 * 4 * 25 + 12
        assert p1.is_pool and p1.weight_count == 0


class TestOverlap:
    def test_conv_overlap(self, mini_vgg_levels):
        conv = mini_vgg_levels[0]
        assert conv.overlap == 2  # 3 - 1

    def test_pool_overlap_zero(self, mini_vgg_levels):
        pool = mini_vgg_levels[2]
        assert pool.overlap == 0  # 2 - 2: fusing pooling is free

    def test_alexnet_pool_overlap(self, mini_alex_levels):
        pool = mini_alex_levels[1]
        assert pool.overlap == 1  # 3 - 2


class TestUnits:
    def test_independent_units(self, mini_vgg_levels):
        units = independent_units(mini_vgg_levels)
        assert len(units) == 7
        assert all(len(u.levels) == 1 for u in units)

    def test_pooling_merged_units(self, mini_vgg_levels):
        units = pooling_merged_units(mini_vgg_levels)
        assert [u.name for u in units] == ["c11", "c12+p1", "c21", "c22+p2", "c31"]

    def test_merged_unit_shapes(self, mini_vgg_levels):
        units = pooling_merged_units(mini_vgg_levels)
        merged = units[1]
        assert merged.in_shape == mini_vgg_levels[1].in_shape
        assert merged.out_shape == mini_vgg_levels[2].out_shape

    def test_merged_unit_aggregates(self, mini_vgg_levels):
        units = pooling_merged_units(mini_vgg_levels)
        merged = units[1]
        assert merged.weight_count == mini_vgg_levels[1].weight_count
        assert merged.total_ops == (mini_vgg_levels[1].total_ops
                                    + mini_vgg_levels[2].total_ops)

    def test_empty_unit_rejected(self):
        from repro.nn.stages import FusionUnit

        with pytest.raises(ShapeError):
            FusionUnit(())

    def test_leading_pool_is_own_unit(self):
        net = Network("n", TensorShape(3, 8, 8), [
            PoolSpec("p", kernel=2, stride=2),
            ConvSpec("c", out_channels=4, kernel=3, padding=1),
        ])
        units = pooling_merged_units(extract_levels(net))
        assert [u.name for u in units] == ["p", "c"]
