"""Torch-style description parsing and serialization."""

import pytest

from repro import TensorShape, alexnet, vggnet_e
from repro.nn.layers import ConvSpec, FCSpec, LRNSpec, PadSpec, PoolSpec, ReLUSpec
from repro.nn.parse import ParseError, dump_network, parse_network

VGG_HEAD = """
nn.Sequential {
  (1): nn.SpatialConvolution(3 -> 64, 3x3, 1,1, 1,1)
  (2): nn.ReLU
  (3): nn.SpatialConvolution(64 -> 64, 3x3, 1,1, 1,1)
  (4): nn.ReLU
  (5): nn.SpatialMaxPooling(2x2, 2,2)
}
"""


class TestParse:
    def test_vgg_head(self):
        net = parse_network(VGG_HEAD, input_size=(224, 224))
        assert [b.name for b in net] == ["conv1", "relu1", "conv2", "relu2", "pool1"]
        assert net.input_shape == TensorShape(3, 224, 224)
        assert net.output_shape == TensorShape(64, 112, 112)

    def test_conv_parameters(self):
        net = parse_network(
            "nn.SpatialConvolution(3 -> 96, 11x11, 4,4)",
            input_size=(227, 227))
        conv = net["conv1"].spec
        assert (conv.out_channels, conv.kernel, conv.stride, conv.padding) == (96, 11, 4, 0)

    def test_average_pooling(self):
        net = parse_network(
            "nn.SpatialConvolution(1 -> 2, 3x3, 1,1)\n"
            "nn.SpatialAveragePooling(2x2, 2,2)",
            input_size=(10, 10))
        assert net["pool1"].spec.mode == "avg"

    def test_padding_and_lrn(self):
        net = parse_network(
            "nn.SpatialConvolution(3 -> 8, 5x5, 1,1)\n"
            "nn.SpatialCrossMapLRN(5, 0.0001, 0.75, 2)\n"
            "nn.SpatialZeroPadding(1, 1, 1, 1)\n"
            "nn.SpatialConvolution(8 -> 8, 3x3, 1,1)",
            input_size=(12, 12))
        assert isinstance(net["lrn1"].spec, LRNSpec)
        assert isinstance(net["pad1"].spec, PadSpec)
        assert net["lrn1"].spec.size == 5

    def test_linear_and_inert_modules_skipped(self):
        net = parse_network(
            "nn.SpatialConvolution(3 -> 4, 3x3, 1,1)\n"
            "nn.View\n"
            "nn.Dropout(0.5)\n"
            "nn.Linear(576 -> 10)\n"
            "nn.LogSoftMax",
            input_size=(14, 14))
        assert isinstance(net[-1].spec, FCSpec)
        assert len(net) == 2

    def test_comments_and_indices_ignored(self):
        net = parse_network(
            "-- a comment\n  (1): nn.SpatialConvolution(3 -> 4, 3x3, 1,1)",
            input_size=(8, 8))
        assert len(net) == 1

    def test_explicit_input_shape(self):
        net = parse_network("nn.ReLU", input_shape=TensorShape(7, 9, 9))
        assert net.input_shape == TensorShape(7, 9, 9)

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_network("nn.Bogus(3)", input_size=(8, 8))
        with pytest.raises(ParseError):
            parse_network("", input_size=(8, 8))
        with pytest.raises(ParseError):
            parse_network("nn.SpatialConvolution(3 -> 4, 3x3, 1,1)")  # no size
        with pytest.raises(ParseError):
            parse_network("nn.ReLU", input_size=(8, 8))  # channels unknown
        with pytest.raises(ParseError):
            parse_network("nn.SpatialConvolution(3 -> 4, 3x2, 1,1)",
                          input_size=(8, 8))
        with pytest.raises(ParseError):
            parse_network("nn.SpatialZeroPadding(1, 2, 1, 1)", input_size=(8, 8))


class TestRoundTrip:
    def _strip_names(self, net):
        return [
            (type(b.spec).__name__, b.input_shape, b.output_shape,
             b.weight_count)
            for b in net
        ]

    def test_vgg_roundtrip(self):
        original = vggnet_e()
        text = dump_network(original)
        parsed = parse_network(text, input_shape=original.input_shape)
        assert self._strip_names(parsed) == self._strip_names(original)

    def test_alexnet_ungrouped_roundtrip(self):
        # Torch's textual form does not carry groups; compare ungrouped.
        original = alexnet(grouped=False)
        text = dump_network(original)
        parsed = parse_network(text, input_shape=original.input_shape)
        assert self._strip_names(parsed) == self._strip_names(original)

    def test_dump_is_parsable_torch_syntax(self):
        text = dump_network(vggnet_e())
        assert text.startswith("nn.Sequential {")
        assert "nn.SpatialConvolution(3 -> 64, 3x3, 1,1, 1,1)" in text
        assert "nn.SpatialMaxPooling(2x2, 2,2)" in text
        assert "nn.Linear(25088 -> 4096)" in text


class TestRoundTripProperty:
    def test_random_networks_roundtrip(self):
        """Any IR network serializes to a description that parses back to
        identical geometry."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.nn.layers import ConvSpec, PoolSpec, ReLUSpec
        from repro.nn.network import Network

        @st.composite
        def net(draw):
            channels = draw(st.integers(1, 4))
            size = draw(st.sampled_from([16, 24, 32]))
            specs = []
            height = size
            for i in range(draw(st.integers(1, 5))):
                if draw(st.booleans()):
                    k = draw(st.sampled_from([1, 3, 5]))
                    pad = draw(st.sampled_from([0, k // 2]))
                    if height + 2 * pad < k:
                        continue
                    specs.append(ConvSpec(f"c{i}", out_channels=draw(st.integers(1, 8)),
                                          kernel=k, stride=1, padding=pad))
                    height = height + 2 * pad - k + 1
                    if draw(st.booleans()):
                        specs.append(ReLUSpec(f"r{i}"))
                elif height >= 2 and height % 2 == 0:
                    mode = draw(st.sampled_from(["max", "avg"]))
                    specs.append(PoolSpec(f"p{i}", kernel=2, stride=2, mode=mode))
                    height //= 2
            if not specs:
                specs = [ReLUSpec("r")]
            return Network("rt", TensorShape(channels, size, size), specs)

        @given(network=net())
        @settings(max_examples=40, deadline=None)
        def check(network):
            text = dump_network(network)
            parsed = parse_network(text, input_shape=network.input_shape)
            original = [(type(b.spec).__name__, b.input_shape, b.output_shape,
                         b.weight_count) for b in network]
            reparsed = [(type(b.spec).__name__, b.input_shape, b.output_shape,
                         b.weight_count) for b in parsed]
            assert original == reparsed

        check()
