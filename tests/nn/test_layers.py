"""Layer-spec geometry, parameter counts, and operation counts."""

import pytest

from repro.nn.layers import ConvSpec, FCSpec, LRNSpec, PadSpec, PoolSpec, ReLUSpec
from repro.nn.shapes import ShapeError, TensorShape


class TestConvSpec:
    def test_vgg_conv_shape(self):
        spec = ConvSpec("c", out_channels=64, kernel=3, stride=1, padding=1)
        assert spec.output_shape(TensorShape(3, 224, 224)) == TensorShape(64, 224, 224)

    def test_alexnet_conv1_shape(self):
        spec = ConvSpec("c", out_channels=96, kernel=11, stride=4)
        assert spec.output_shape(TensorShape(3, 227, 227)) == TensorShape(96, 55, 55)

    def test_weight_count_includes_bias(self):
        spec = ConvSpec("c", out_channels=64, kernel=3, stride=1)
        # 64 filters x 3x3x3 + 64 biases
        assert spec.weight_count(TensorShape(3, 224, 224)) == 64 * 27 + 64

    def test_weight_count_without_bias(self):
        spec = ConvSpec("c", out_channels=64, kernel=3, stride=1, bias=False)
        assert spec.weight_count(TensorShape(3, 224, 224)) == 64 * 27

    def test_grouped_weight_count(self):
        # AlexNet conv2: 256 filters of 48x5x5 (two groups of 96 inputs).
        spec = ConvSpec("c", out_channels=256, kernel=5, stride=1, padding=2, groups=2)
        assert spec.weight_count(TensorShape(96, 27, 27)) == 256 * 48 * 25 + 256

    def test_grouped_shape_unchanged(self):
        grouped = ConvSpec("g", out_channels=256, kernel=5, stride=1, padding=2, groups=2)
        plain = ConvSpec("p", out_channels=256, kernel=5, stride=1, padding=2)
        x = TensorShape(96, 27, 27)
        assert grouped.output_shape(x) == plain.output_shape(x)

    def test_ops_per_output_matches_paper(self):
        # Section III-C: a 3x3xN filter costs 9N multiplies + 9N adds.
        spec = ConvSpec("c", out_channels=64, kernel=3, stride=1)
        assert spec.ops_per_output(TensorShape(3, 224, 224)) == 2 * 9 * 3

    def test_total_ops(self):
        spec = ConvSpec("c", out_channels=64, kernel=3, stride=1, padding=1)
        x = TensorShape(3, 224, 224)
        assert spec.total_ops(x) == 64 * 224 * 224 * 54

    def test_groups_must_divide_out_channels(self):
        with pytest.raises(ShapeError):
            ConvSpec("c", out_channels=10, kernel=3, groups=3)

    def test_groups_must_divide_in_channels(self):
        spec = ConvSpec("c", out_channels=4, kernel=3, groups=2)
        with pytest.raises(ShapeError):
            spec.weight_count(TensorShape(3, 8, 8))

    def test_negative_padding_rejected(self):
        with pytest.raises(ShapeError):
            ConvSpec("c", out_channels=4, kernel=3, padding=-1)

    def test_nonpositive_out_channels_rejected(self):
        with pytest.raises(ShapeError):
            ConvSpec("c", out_channels=0, kernel=3)


class TestPoolSpec:
    def test_vgg_pool(self):
        spec = PoolSpec("p", kernel=2, stride=2)
        assert spec.output_shape(TensorShape(64, 224, 224)) == TensorShape(64, 112, 112)

    def test_alexnet_pool(self):
        spec = PoolSpec("p", kernel=3, stride=2)
        assert spec.output_shape(TensorShape(96, 55, 55)) == TensorShape(96, 27, 27)

    def test_no_weights(self):
        assert PoolSpec("p", kernel=2, stride=2).weight_count(TensorShape(8, 8, 8)) == 0

    def test_ops(self):
        assert PoolSpec("p", kernel=3, stride=2).ops_per_output(TensorShape(8, 11, 11)) == 8

    def test_invalid_mode(self):
        with pytest.raises(ShapeError):
            PoolSpec("p", kernel=2, stride=2, mode="median")

    def test_avg_mode_accepted(self):
        assert PoolSpec("p", kernel=2, stride=2, mode="avg").mode == "avg"


class TestElementwiseSpecs:
    def test_relu_preserves_shape(self):
        shape = TensorShape(5, 6, 7)
        assert ReLUSpec("r").output_shape(shape) == shape
        assert ReLUSpec("r").ops_per_output(shape) == 1

    def test_pad_grows_shape(self):
        assert PadSpec("p", pad=2).output_shape(TensorShape(3, 5, 5)) == TensorShape(3, 9, 9)

    def test_lrn_preserves_shape(self):
        shape = TensorShape(96, 55, 55)
        assert LRNSpec("n").output_shape(shape) == shape
        assert LRNSpec("n").weight_count(shape) == 0


class TestFCSpec:
    def test_flattens(self):
        spec = FCSpec("fc", out_features=4096)
        assert spec.output_shape(TensorShape(256, 6, 6)) == TensorShape(4096, 1, 1)

    def test_weight_count(self):
        spec = FCSpec("fc", out_features=10)
        assert spec.weight_count(TensorShape(4, 2, 2)) == 10 * 16 + 10

    def test_ops(self):
        spec = FCSpec("fc", out_features=10)
        assert spec.ops_per_output(TensorShape(4, 2, 2)) == 32
