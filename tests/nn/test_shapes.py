"""Tests for the shape arithmetic that everything else builds on."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn.shapes import (
    BYTES_PER_WORD,
    ShapeError,
    TensorShape,
    conv_output_extent,
    input_extent_for,
)


class TestConvOutputExtent:
    def test_vgg_conv(self):
        # 3x3 stride 1 on a padded 226 extent -> 224.
        assert conv_output_extent(226, 3, 1) == 224

    def test_alexnet_conv1(self):
        # 11x11 stride 4 on 227 -> 55.
        assert conv_output_extent(227, 11, 4) == 55

    def test_pooling(self):
        assert conv_output_extent(224, 2, 2) == 112
        assert conv_output_extent(55, 3, 2) == 27

    def test_kernel_equal_extent(self):
        assert conv_output_extent(7, 7, 3) == 1

    def test_window_does_not_fit(self):
        with pytest.raises(ShapeError):
            conv_output_extent(2, 3, 1)

    def test_partial_window_rejected(self):
        with pytest.raises(ShapeError):
            conv_output_extent(10, 3, 2)  # (10-3) % 2 != 0

    def test_nonpositive_params(self):
        with pytest.raises(ShapeError):
            conv_output_extent(10, 0, 1)
        with pytest.raises(ShapeError):
            conv_output_extent(10, 3, 0)


class TestInputExtentFor:
    def test_paper_formula(self):
        # D = S*D' + K - S (Section III-B): 3x3/s1 consumer of a 3-wide
        # tile needs 5 inputs (Figure 3).
        assert input_extent_for(3, 3, 1) == 5
        assert input_extent_for(1, 3, 1) == 3

    def test_pooling_tile(self):
        assert input_extent_for(3, 2, 2) == 6

    def test_invalid(self):
        with pytest.raises(ShapeError):
            input_extent_for(0, 3, 1)
        with pytest.raises(ShapeError):
            input_extent_for(3, 0, 1)

    @given(out=st.integers(1, 64), kernel=st.integers(1, 11), stride=st.integers(1, 4))
    def test_inverse_of_output_extent(self, out, kernel, stride):
        """input_extent_for is the exact inverse of conv_output_extent."""
        extent = input_extent_for(out, kernel, stride)
        assert conv_output_extent(extent, kernel, stride) == out

    @given(out=st.integers(1, 64), kernel=st.integers(1, 11), stride=st.integers(1, 4))
    def test_monotone_in_output(self, out, kernel, stride):
        assert input_extent_for(out + 1, kernel, stride) > input_extent_for(
            out, kernel, stride)


class TestTensorShape:
    def test_elements_and_bytes(self):
        shape = TensorShape(64, 224, 224)
        assert shape.elements == 64 * 224 * 224
        assert shape.bytes == shape.elements * BYTES_PER_WORD

    def test_vgg_conv1_output_is_papers_12mb(self):
        # "it produces 12.3MB of output feature maps"
        assert TensorShape(64, 224, 224).bytes / 2**20 == pytest.approx(12.25, abs=0.01)

    def test_padded(self):
        assert TensorShape(3, 224, 224).padded(1) == TensorShape(3, 226, 226)
        assert TensorShape(3, 5, 5).padded(0) == TensorShape(3, 5, 5)

    def test_negative_padding_rejected(self):
        with pytest.raises(ShapeError):
            TensorShape(3, 5, 5).padded(-1)

    def test_with_channels(self):
        assert TensorShape(3, 8, 9).with_channels(7) == TensorShape(7, 8, 9)

    def test_nonpositive_dims_rejected(self):
        for dims in [(0, 1, 1), (1, 0, 1), (1, 1, 0), (-2, 3, 3)]:
            with pytest.raises(ShapeError):
                TensorShape(*dims)

    def test_str(self):
        assert str(TensorShape(3, 224, 224)) == "3x224x224"

    def test_ordering_and_hash(self):
        a, b = TensorShape(1, 2, 3), TensorShape(1, 2, 4)
        assert a < b
        assert len({a, b, TensorShape(1, 2, 3)}) == 2
