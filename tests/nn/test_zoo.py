"""Model-zoo networks match their published geometry."""

import pytest

from repro import TensorShape, alexnet, extract_levels, toynet, vgg16, vggnet_e
from repro.nn.stages import independent_units, pooling_merged_units


class TestAlexNet:
    def test_layer_output_shapes(self):
        net = alexnet()
        assert net["conv1"].output_shape == TensorShape(96, 55, 55)
        assert net["pool1"].output_shape == TensorShape(96, 27, 27)
        assert net["conv2"].output_shape == TensorShape(256, 27, 27)
        assert net["pool2"].output_shape == TensorShape(256, 13, 13)
        assert net["conv5"].output_shape == TensorShape(256, 13, 13)
        assert net["pool5"].output_shape == TensorShape(256, 6, 6)
        assert net.output_shape == TensorShape(1000, 1, 1)

    def test_parameter_count_matches_published(self):
        # ~60.97M parameters for the grouped Caffe AlexNet.
        total = alexnet().total_weights()
        assert total == pytest.approx(60.97e6, rel=0.01)

    def test_eight_fusion_units(self):
        # 5 convs + 3 pools -> the paper's 128 = 2^7 partitions.
        units = independent_units(extract_levels(alexnet()))
        assert len(units) == 8

    def test_ungrouped_variant(self):
        net = alexnet(grouped=False)
        assert net.total_weights() > alexnet().total_weights()
        assert net["conv2"].output_shape == TensorShape(256, 27, 27)

    def test_without_lrn_and_classifier(self):
        net = alexnet(include_lrn=False, include_classifier=False)
        names = [b.name for b in net]
        assert "norm1" not in names and "fc6" not in names
        assert net.output_shape == TensorShape(256, 6, 6)

    def test_prefix2_is_papers_fused_set(self):
        # conv1 + relu + pool1 + conv2 + relu: "two convolutional layers,
        # two ReLU layers ... and one pooling layer".
        levels = extract_levels(alexnet().prefix(2))
        assert [l.name for l in levels] == ["conv1", "pool1", "conv2"]
        assert all(l.has_relu for l in levels if l.is_conv)


class TestVGG:
    def test_vggnet_e_structure(self):
        net = vggnet_e()
        assert len(net.conv_layers()) == 16
        assert len(net.pool_layers()) == 5
        assert net["conv1_1"].output_shape == TensorShape(64, 224, 224)
        assert net["pool5"].output_shape == TensorShape(512, 7, 7)

    def test_vggnet_e_parameter_count(self):
        # VGG-19: ~143.67M parameters.
        assert vggnet_e().total_weights() == pytest.approx(143.67e6, rel=0.01)

    def test_vgg16_parameter_count(self):
        # VGG-16: ~138.36M parameters.
        assert vgg16().total_weights() == pytest.approx(138.36e6, rel=0.01)

    def test_prefix5_has_two_pools(self):
        # "In addition to the five convolutional layers, this includes two
        # pooling layers, five padding layers, and five ReLU layers."
        levels = extract_levels(vggnet_e().prefix(5))
        convs = [l for l in levels if l.is_conv]
        pools = [l for l in levels if l.is_pool]
        assert len(convs) == 5 and len(pools) == 2
        assert all(l.pad == 1 for l in convs)
        assert all(l.has_relu for l in convs)
        assert levels[-1].out_shape == TensorShape(256, 56, 56)

    def test_figure7b_unit_count(self):
        units = independent_units(extract_levels(vggnet_e().prefix(5)))
        assert len(units) == 7  # 2^6 = 64 partitions

    def test_figure2_has_16_bars(self):
        units = pooling_merged_units(extract_levels(vggnet_e().feature_extractor()))
        assert len(units) == 16


class TestToyNet:
    def test_figure3_geometry(self):
        net = toynet(n=4, m=6, p=8)
        assert net.input_shape == TensorShape(4, 7, 7)
        assert net["layer1"].output_shape == TensorShape(6, 5, 5)
        assert net["layer2"].output_shape == TensorShape(8, 3, 3)

    def test_with_relu(self):
        levels = extract_levels(toynet(with_relu=True))
        assert all(l.has_relu for l in levels)
