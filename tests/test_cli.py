"""End-to-end CLI commands."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCli:
    def test_figure2(self, capsys):
        out = run(capsys, "figure2")
        assert "conv1_1" in out and "weights MB" in out

    def test_figure3(self, capsys):
        out = run(capsys, "figure3")
        assert "5x5" in out and "overlap" in out

    def test_figure7_vgg_front(self, capsys):
        out = run(capsys, "figure7", "vgg", "--front-only")
        assert "64 partitions" in out and "3.64" in out

    def test_figure7_alexnet(self, capsys):
        out = run(capsys, "figure7", "alexnet", "--front-only")
        assert "128 partitions" in out

    def test_sec3c(self, capsys):
        out = run(capsys, "sec3c")
        assert "AlexNet conv1-conv2" in out
        assert "VGGNet-E all conv+pool" in out

    def test_simulate_small(self, capsys):
        out = run(capsys, "simulate", "vgg", "--convs", "2", "--scale", "8",
                  "--tip", "2")
        assert "True" in out

    def test_hls(self, capsys):
        out = run(capsys, "hls", "vgg", "--convs", "2", "--dsp", "600")
        assert "#pragma HLS" in out
        assert "fused_accelerator" in out

    def test_unknown_network(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "resnet"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_explore(self, capsys):
        out = run(capsys, "explore", "vgg", "--convs", "5",
                  "--storage-budget", "128")
        assert "64 partitions" in out
        assert "best under 128 KB" in out

    def test_explore_recompute(self, capsys):
        out = run(capsys, "explore", "googlenet-stem", "--recompute")
        assert "Mops" in out

    def test_explore_from_file(self, capsys, tmp_path):
        from repro import dump_network, vggnet_e

        path = tmp_path / "net.torchtxt"
        path.write_text(dump_network(vggnet_e()))
        out = run(capsys, "explore", "parsed", "--file", str(path),
                  "--convs", "5")
        assert "64 partitions" in out
        assert "3.64" in out

    def test_codegen(self, capsys, tmp_path):
        out_file = tmp_path / "fused.cpp"
        out = run(capsys, "codegen", "nin", "--convs", "2", "--out", str(out_file))
        assert "wrote" in out
        assert "FUSED_OK" in out_file.read_text()

    def test_codegen_stdout(self, capsys):
        out = run(capsys, "codegen", "nin", "--convs", "1")
        assert "GRID_ROWS" in out

    def test_bandwidth(self, capsys):
        out = run(capsys, "bandwidth", "vgg", "--convs", "2", "--dsp", "600")
        assert "speedup" in out and "x" in out

    def test_energy(self, capsys):
        out = run(capsys, "energy", "vgg", "--convs", "2", "--dsp", "600")
        assert "fused" in out and "baseline" in out

    def test_codegen_too_large_is_clean_error(self):
        with pytest.raises(SystemExit) as err:
            main(["codegen", "vgg", "--convs", "5"])
        assert "codegen" in str(err.value)


class TestNetworkFlags:
    def test_list_networks(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--list-networks"])
        assert err.value.code == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "vgg" in out and "toynet" in out

    def test_input_size_without_file_rejected(self):
        with pytest.raises(SystemExit) as err:
            main(["explore", "vgg", "--input-size", "112"])
        assert "--input-size" in str(err.value)
        assert "--file" in str(err.value)

    def test_nonpositive_input_size_rejected(self, tmp_path):
        from repro import dump_network, vggnet_e

        path = tmp_path / "net.torchtxt"
        path.write_text(dump_network(vggnet_e()))
        with pytest.raises(SystemExit) as err:
            main(["explore", "parsed", "--file", str(path), "--input-size", "0"])
        assert "positive" in str(err.value)

    def test_input_size_with_file_accepted(self, capsys, tmp_path):
        from repro import dump_network, vggnet_e

        path = tmp_path / "net.torchtxt"
        path.write_text(dump_network(vggnet_e()))
        out = run(capsys, "explore", "parsed", "--file", str(path),
                  "--input-size", "64", "--convs", "3")
        assert "partitions" in out


class TestStatsAndProfile:
    def test_stats_emits_metrics_json(self, capsys):
        import json

        out = run(capsys, "stats", "toynet", "--convs", "2", "--scale", "1",
                  "--dsp", "600")
        metrics = json.loads(out)
        assert metrics["meta"]["outputs_match"] is True
        counters = metrics["counters"]
        assert counters["explore.partitions_scored"] >= 2
        assert counters["sim.fused.dram_read_bytes"] > 0
        assert metrics["pipelines"], "pipeline schedule missing"
        stage_names = [s["name"] for s in metrics["pipelines"][0]["stages"]]
        assert "load" in stage_names and "store" in stage_names

    def test_stats_json_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        out = run(capsys, "stats", "toynet", "--convs", "2", "--scale", "1",
                  "--dsp", "600", "--json", str(path))
        assert "wrote metrics JSON" in out
        metrics = json.loads(path.read_text())
        assert "counters" in metrics and "spans" in metrics

    def test_profile_flag_prints_report(self, capsys):
        out = run(capsys, "explore", "vgg", "--convs", "3", "--profile")
        assert "run report" in out
        assert "explore.partitions_scored" in out
        assert "partitions" in out  # the command's own output still prints

    def test_profile_flag_before_subcommand(self, capsys):
        out = run(capsys, "--profile", "explore", "vgg", "--convs", "3")
        assert "run report" in out

    def test_profile_writes_chrome_trace(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        out = run(capsys, "stats", "toynet", "--convs", "2", "--scale", "1",
                  "--dsp", "600", f"--profile={path}")
        assert "wrote Chrome trace" in out
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert events and all("ph" in e and "pid" in e for e in events)
        span_names = {e["name"] for e in events if e.get("cat") == "span"}
        assert "explore" in span_names and "stats" in span_names
        assert any(e.get("cat") == "pipeline" for e in events)

    def test_profile_disabled_after_run(self, capsys):
        from repro import obs

        run(capsys, "explore", "vgg", "--convs", "2", "--profile")
        assert not obs.enabled()

    def test_empty_profile_path_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "vgg", "--profile="])


class TestFaultFlags:
    def test_faultsim_matches_golden_reference(self, capsys):
        out = run(capsys, "faultsim", "toynet", "--convs", "2", "--scale", "1",
                  "--dsp", "600", "--faults", "transfer_corrupt:p=0.3",
                  "--seed", "7")
        assert "fused output == fault-free golden reference: True" in out
        assert "transfer_corrupt" in out

    def test_faultsim_default_plan(self, capsys):
        out = run(capsys, "faultsim", "toynet", "--convs", "2", "--scale", "1",
                  "--dsp", "600")
        assert "fault plan:" in out
        assert "golden reference: True" in out

    def test_faultsim_deterministic(self, capsys):
        argv = ["faultsim", "toynet", "--convs", "2", "--scale", "1",
                "--dsp", "600", "--faults", "dram_stall:p=0.2", "--seed", "3"]
        first = run(capsys, *argv)
        second = run(capsys, *argv)
        assert first == second

    def test_global_flags_position_independent(self, capsys):
        before = run(capsys, "--faults", "dram_stall:p=0.2", "--seed", "3",
                     "faultsim", "toynet", "--convs", "2", "--scale", "1",
                     "--dsp", "600")
        after = run(capsys, "faultsim", "toynet", "--convs", "2", "--scale", "1",
                    "--dsp", "600", "--faults=dram_stall:p=0.2", "--seed=3")
        assert before == after

    def test_stats_reports_fault_counts(self, capsys):
        import json

        out = run(capsys, "stats", "toynet", "--convs", "2", "--scale", "1",
                  "--dsp", "600", "--faults", "stage_stall:p=1,cycles=2",
                  "--seed", "1")
        metrics = json.loads(out)
        meta = metrics["meta"]["faults"]
        assert meta["seed"] == 1
        assert meta["injected"]["stage_stall"] > 0
        assert metrics["counters"]["faults.injected[stage_stall]"] > 0

    def test_stats_without_faults_reports_none(self, capsys):
        import json

        out = run(capsys, "stats", "toynet", "--convs", "2", "--scale", "1",
                  "--dsp", "600")
        assert json.loads(out)["meta"]["faults"] is None

    def test_explore_budget_degrades(self, capsys):
        out = run(capsys, "explore", "vgg", "--convs", "5",
                  "--max-partitions", "10")
        assert "10 partitions" in out
        assert "degraded" in out

    def test_plan_cleared_after_run(self, capsys):
        from repro import faults

        run(capsys, "faultsim", "toynet", "--convs", "2", "--scale", "1",
            "--dsp", "600", "--faults", "dram_stall:p=0.1")
        assert faults.get_active_plan() is None


class TestErrorExitCodes:
    def test_bad_fault_spec_exits_2_with_one_line_error(self, capsys):
        assert main(["explore", "vgg", "--faults", "cosmic_ray:p=1"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "cosmic_ray" in captured.err
        assert "Traceback" not in captured.err

    def test_retry_exhaustion_exits_2(self, capsys):
        code = main(["faultsim", "toynet", "--convs", "2", "--scale", "1",
                     "--dsp", "600", "--faults", "dram_stall:p=1",
                     "--max-attempts", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "persisted through 2 attempts" in err

    def test_config_error_exits_2(self, capsys):
        assert main(["explore", "vgg", "--max-partitions", "0"]) == 2
        assert "max_evaluations" in capsys.readouterr().err

    def test_flag_without_value_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "vgg", "--faults"])
        with pytest.raises(SystemExit):
            main(["explore", "vgg", "--seed"])

    def test_non_integer_seed_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "vgg", "--faults", "dram_stall", "--seed", "pi"])


class TestServeBench:
    def test_basic_run_with_check(self, capsys):
        out = run(capsys, "serve-bench", "toynet", "--requests", "16",
                  "--workers", "2", "--check")
        assert "requests/s" in out
        assert "16 submitted, 16 ok" in out
        assert "served outputs == direct NetworkExecutor.run: True" in out

    def test_cache_file_cold_then_warm(self, capsys, tmp_path):
        cache = str(tmp_path / "plans.json")
        cold = run(capsys, "serve-bench", "toynet", "--requests", "8",
                   "--cache", cache)
        assert "0 plans loaded" in cold and "1 misses" in cold
        warm = run(capsys, "serve-bench", "toynet", "--requests", "8",
                   "--cache", cache)
        assert "1 plans loaded" in warm and "1 hits" in warm

    def test_overload_exits_2(self, capsys):
        code = main(["serve-bench", "toynet", "--workers", "0",
                     "--max-queue", "2", "--requests", "8",
                     "--fail-on-overload"])
        assert code == 2
        err = capsys.readouterr().err
        assert "serving queue full" in err

    def test_overload_without_fail_flag_drops_and_continues(self, capsys):
        out = run(capsys, "serve-bench", "toynet", "--requests", "12",
                  "--workers", "1", "--max-queue", "4", "--max-batch", "4",
                  "--max-wait-ms", "0.1")
        assert "requests/s" in out  # rejected some, served the rest

    def test_cached_plan_not_reused_across_seeds(self, capsys, tmp_path):
        """Weight seed is part of the plan key: a cache warmed under the
        default seed must not serve a --seed 3 run (whose --check compares
        against seed-3 weights)."""
        cache = str(tmp_path / "plans.json")
        run(capsys, "serve-bench", "toynet", "--requests", "4",
            "--cache", cache, "--check")
        out = run(capsys, "--seed", "3", "serve-bench", "toynet",
                  "--requests", "4", "--cache", cache, "--check")
        assert "1 plans loaded" in out and "1 misses" in out
        assert "served outputs == direct NetworkExecutor.run: True" in out

    def test_bit_identical_under_faults(self, capsys):
        out = run(capsys, "--faults", "transfer_corrupt:p=0.4", "--seed", "3",
                  "serve-bench", "toynet", "--requests", "12",
                  "--max-attempts", "12", "--check")
        assert "served outputs == direct NetworkExecutor.run: True" in out

    def test_json_summary(self, capsys, tmp_path):
        path = tmp_path / "serve.json"
        run(capsys, "serve-bench", "toynet", "--requests", "8",
            "--json", str(path))
        import json

        summary = json.loads(path.read_text())
        assert summary["completed"] == 8
        assert summary["requests_per_s"] > 0

    def test_explore_jobs_matches_serial(self, capsys):
        serial = run(capsys, "explore", "alexnet", "--convs", "5")
        parallel = run(capsys, "explore", "alexnet", "--convs", "5",
                       "--jobs", "2")
        assert serial == parallel

    def test_explore_bad_jobs_exits_2(self, capsys):
        assert main(["explore", "toynet", "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err


class TestServeObservability:
    def test_trace_chrome_export_validates(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.json")
        out = run(capsys, "serve-bench", "toynet", "--requests", "8",
                  "--trace", trace)
        assert "wrote request trace (Chrome Trace Format)" in out
        assert "tracing  :" in out  # the report counts recorded traces
        run(capsys, "check", "--trace", trace)  # RC5xx-clean -> exit 0

    def test_trace_jsonl_export_validates(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        out = run(capsys, "serve-bench", "toynet", "--requests", "8",
                  "--trace", trace)
        assert "trace spans (JSONL)" in out
        run(capsys, "check", "--trace", trace)

    def test_check_trace_flags_broken_file(self, capsys, tmp_path):
        bad = tmp_path / "broken.jsonl"
        bad.write_text('{"trace": 0, "span": 0, "parent": -1, '
                       '"name": "serve.request", "start_s": 0.0, '
                       '"end_s": null, "complete": false}\n')
        with pytest.raises(SystemExit) as err:
            main(["check", "--trace", str(bad)])
        assert err.value.code == 2
        assert "RC502" in capsys.readouterr().out

    def test_slo_flag_renders_burn_rate(self, capsys):
        out = run(capsys, "serve-bench", "toynet", "--requests", "8",
                  "--slo", "1000")
        assert "burn-rate" in out

    def test_prom_export(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        run(capsys, "serve-bench", "toynet", "--requests", "8",
            "--slo", "1000", "--prom", str(prom))
        text = prom.read_text()
        assert "# TYPE" in text
        assert "repro_serve_submitted" in text
        assert "repro_slo" in text


class TestSloCli:
    def test_clean_run_reports_ok(self, capsys):
        out = run(capsys, "slo", "toynet", "--requests", "16",
                  "--target-ms", "1000")
        assert "burn-rate 0.00x" in out
        assert "[ok]" in out
        assert "0/16 violations" in out

    def test_dram_stall_burst_alerts(self, capsys):
        out = run(capsys, "--faults", "dram_stall:p=0.3,cycles=64",
                  "--seed", "3", "slo", "toynet", "--requests", "32",
                  "--target-ms", "5")
        assert "fault plan: dram_stall" in out
        assert "[ALERT]" in out
        assert "burn-rate 0.00x" not in out

    def test_fail_on_breach_exits_1(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["slo", "toynet", "--requests", "8",
                  "--target-ms", "0.001", "--fail-on-breach"])
        assert err.value.code == 1

    def test_json_and_trace_outputs(self, capsys, tmp_path):
        import json

        payload = tmp_path / "slo.json"
        trace = tmp_path / "trace.json"
        run(capsys, "slo", "toynet", "--requests", "8",
            "--target-ms", "1000", "--json", str(payload),
            "--trace", str(trace))
        data = json.loads(payload.read_text())
        assert data["observed"] == 8
        assert data["burn_rate"] == 0.0
        run(capsys, "check", "--trace", str(trace))


class TestBenchDiffCli:
    def write(self, tmp_path, name, payload):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_regression_flagged(self, capsys, tmp_path):
        base = self.write(tmp_path, "base.json", {"p99_ms": 2.0, "hits": 10})
        cur = self.write(tmp_path, "cur.json", {"p99_ms": 4.0, "hits": 12})
        out = run(capsys, "bench-diff", base, cur)
        assert "REGRESSED" in out and "p99_ms" in out
        assert "1 regressions, 1 improvements" in out

    def test_fail_on_regression_exits_1(self, capsys, tmp_path):
        base = self.write(tmp_path, "base.json", {"p99_ms": 2.0})
        cur = self.write(tmp_path, "cur.json", {"p99_ms": 4.0})
        with pytest.raises(SystemExit) as err:
            main(["bench-diff", base, cur, "--fail-on-regression"])
        assert err.value.code == 1
        clean = main(["bench-diff", base, base, "--fail-on-regression"])
        assert clean == 0

    def test_json_output(self, capsys, tmp_path):
        import json

        base = self.write(tmp_path, "base.json", {"p99_ms": 2.0})
        cur = self.write(tmp_path, "cur.json", {"p99_ms": 4.0})
        out = run(capsys, "bench-diff", base, cur, "--json")
        payload = json.loads(out)
        assert payload["regressions"] == ["p99_ms"]

    def test_missing_file_exits_2(self, capsys, tmp_path):
        base = self.write(tmp_path, "base.json", {"a": 1})
        assert main(["bench-diff", base,
                     str(tmp_path / "missing.json")]) == 2
        assert "benchmark" in capsys.readouterr().err


class TestTuneCli:
    def test_tune_toynet(self, capsys):
        out = run(capsys, "tune", "toynet", "--evals", "30", "--seed", "7")
        assert "minimize cycles" in out
        assert "incumbent" in out and "baseline" in out
        assert "x better" in out

    def test_tune_warm_resume_message(self, capsys, tmp_path):
        db = str(tmp_path / "tunedb.json")
        first = run(capsys, "--seed", "7", "tune", "toynet",
                    "--evals", "30", "--db", db)
        assert "warm resume" not in first
        second = run(capsys, "--seed", "7", "tune", "toynet",
                     "--evals", "30", "--db", db)
        assert "warm resume" in second
        assert "0 fresh evaluations" in second

    def test_tune_json_summary(self, capsys, tmp_path):
        import json

        path = tmp_path / "tune.json"
        run(capsys, "--seed", "7", "tune", "toynet", "--evals", "30",
            "--json", str(path))
        data = json.loads(path.read_text())
        assert data["considered"] == 30
        assert data["incumbent"]["value"] <= data["baseline"]["value"]

    def test_tune_weighted_objective(self, capsys):
        out = run(capsys, "tune", "toynet", "--evals", "20",
                  "--objective", "cycles=0.7,energy=0.3")
        assert "0.7*cycles" in out

    def test_tune_bad_objective_exits_2(self, capsys):
        assert main(["tune", "toynet", "--objective", "luck"]) == 2
        assert "metric" in capsys.readouterr().err

    def test_tune_profile_reports_counters(self, capsys):
        out = run(capsys, "--profile", "tune", "toynet", "--evals", "20",
                  "--seed", "1")
        assert "tune.candidates_evaluated" in out


class TestMultiCli:
    def test_multi_explicit_partition(self, capsys):
        out = run(capsys, "multi", "vgg", "--convs", "5",
                  "--partition", "4+3")
        assert "group" in out and "latency" in out
        assert "throughput interval" in out

    def test_multi_default_is_fully_fused(self, capsys):
        out = run(capsys, "multi", "vgg", "--convs", "5")
        assert "(7,)" in out

    def test_multi_bad_partition_exits(self):
        with pytest.raises(SystemExit) as err:
            main(["multi", "vgg", "--convs", "5", "--partition", "nope"])
        assert "partition" in str(err.value)

    def test_multi_wrong_total_is_clean_error(self, capsys):
        assert main(["multi", "vgg", "--convs", "5",
                     "--partition", "2+2"]) == 2
        assert "cover" in capsys.readouterr().err

    def test_multi_tuned_lookup(self, capsys, tmp_path):
        db = str(tmp_path / "tunedb.json")
        run(capsys, "--seed", "7", "tune", "toynet", "--evals", "30",
            "--db", db)
        out = run(capsys, "multi", "toynet", "--convs", "2",
                  "--tuned", db)
        assert "tuned partition" in out

    def test_multi_tuned_missing_incumbent_exits(self, tmp_path):
        db = str(tmp_path / "empty.json")
        with pytest.raises(SystemExit) as err:
            main(["multi", "toynet", "--convs", "2", "--tuned", db])
        assert "no tuned incumbent" in str(err.value)
