"""End-to-end CLI commands."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCli:
    def test_figure2(self, capsys):
        out = run(capsys, "figure2")
        assert "conv1_1" in out and "weights MB" in out

    def test_figure3(self, capsys):
        out = run(capsys, "figure3")
        assert "5x5" in out and "overlap" in out

    def test_figure7_vgg_front(self, capsys):
        out = run(capsys, "figure7", "vgg", "--front-only")
        assert "64 partitions" in out and "3.64" in out

    def test_figure7_alexnet(self, capsys):
        out = run(capsys, "figure7", "alexnet", "--front-only")
        assert "128 partitions" in out

    def test_sec3c(self, capsys):
        out = run(capsys, "sec3c")
        assert "AlexNet conv1-conv2" in out
        assert "VGGNet-E all conv+pool" in out

    def test_simulate_small(self, capsys):
        out = run(capsys, "simulate", "vgg", "--convs", "2", "--scale", "8",
                  "--tip", "2")
        assert "True" in out

    def test_hls(self, capsys):
        out = run(capsys, "hls", "vgg", "--convs", "2", "--dsp", "600")
        assert "#pragma HLS" in out
        assert "fused_accelerator" in out

    def test_unknown_network(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "resnet"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_explore(self, capsys):
        out = run(capsys, "explore", "vgg", "--convs", "5",
                  "--storage-budget", "128")
        assert "64 partitions" in out
        assert "best under 128 KB" in out

    def test_explore_recompute(self, capsys):
        out = run(capsys, "explore", "googlenet-stem", "--recompute")
        assert "Mops" in out

    def test_explore_from_file(self, capsys, tmp_path):
        from repro import dump_network, vggnet_e

        path = tmp_path / "net.torchtxt"
        path.write_text(dump_network(vggnet_e()))
        out = run(capsys, "explore", "parsed", "--file", str(path),
                  "--convs", "5")
        assert "64 partitions" in out
        assert "3.64" in out

    def test_codegen(self, capsys, tmp_path):
        out_file = tmp_path / "fused.cpp"
        out = run(capsys, "codegen", "nin", "--convs", "2", "--out", str(out_file))
        assert "wrote" in out
        assert "FUSED_OK" in out_file.read_text()

    def test_codegen_stdout(self, capsys):
        out = run(capsys, "codegen", "nin", "--convs", "1")
        assert "GRID_ROWS" in out

    def test_bandwidth(self, capsys):
        out = run(capsys, "bandwidth", "vgg", "--convs", "2", "--dsp", "600")
        assert "speedup" in out and "x" in out

    def test_energy(self, capsys):
        out = run(capsys, "energy", "vgg", "--convs", "2", "--dsp", "600")
        assert "fused" in out and "baseline" in out

    def test_codegen_too_large_is_clean_error(self):
        with pytest.raises(SystemExit) as err:
            main(["codegen", "vgg", "--convs", "5"])
        assert "codegen" in str(err.value)
