"""Hazard detectors: silent on real schedules, loud on injected hazards."""

import dataclasses

import pytest

from repro.check import (
    check_channel_schedule,
    check_fused_schedule,
    check_pipeline_schedule,
)
from repro.core.schedule import FusedSchedule
from repro.hw.memory_sim import (
    ChannelSchedule,
    ComputeStage,
    MemStage,
    simulate_with_channel,
)
from repro.hw.pipeline import PipelineSchedule, StageTiming, simulate_pipeline
from repro.nn.stages import extract_levels
from repro.nn.zoo import alexnet, toynet, vggnet_e


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


class _ShiftedLoads(FusedSchedule):
    """A corrupted schedule: every non-origin load origin is shifted by
    ``shift`` columns/rows — the foreign-scheduler bug the detector
    exists to catch (the genuine calcparams algebra is self-consistent,
    so hazards can only come from outside it)."""

    def __init__(self, levels, tip, shift):
        super().__init__(levels, tip, tip)
        self._shift = shift

    def position(self, row, col):
        params = super().position(row, col)
        return dataclasses.replace(
            params,
            colt=params.colt + (self._shift if col > 0 else 0),
            rowt=params.rowt + (self._shift if row > 0 else 0))


class TestFusedScheduleHazards:
    def test_zoo_schedules_are_hazard_free(self):
        for factory, num_convs in ((toynet, None), (alexnet, None),
                                   (vggnet_e, 5)):
            network = factory()
            sliced = (network.prefix(num_convs) if num_convs
                      else network.feature_extractor())
            levels = extract_levels(sliced)
            schedule = FusedSchedule(levels, 1, 1)
            assert check_fused_schedule(schedule) == [], factory.__name__

    def test_tips_above_one_are_hazard_free(self):
        levels = extract_levels(toynet())
        for tip in (1, 2, 3):
            assert check_fused_schedule(FusedSchedule(levels, tip, tip)) == []

    def test_gapped_loads_read_before_write_rc301(self):
        # Loads shifted apart overlap by less than K-S: a band of
        # columns is consumed that no load ever wrote.
        schedule = _ShiftedLoads(extract_levels(toynet()), 1, shift=+1)
        findings = check_fused_schedule(schedule)
        assert "RC301" in codes(findings)
        assert {d.context.get("axis") for d in findings
                if d.code == "RC301"} == {"col", "row"}

    def test_packed_loads_clobber_reuse_rc302(self):
        # Loads shifted together overlap by more than K-S: the fresh
        # DRAM burst lands on live double-buffered reuse columns.
        schedule = _ShiftedLoads(extract_levels(toynet()), 1, shift=-1)
        assert "RC302" in codes(check_fused_schedule(schedule))

    def test_truncated_grid_leaves_output_uncovered_rc305(self):
        for field in ("rows", "cols"):
            schedule = FusedSchedule(extract_levels(toynet()), 1, 1)
            setattr(schedule, field, getattr(schedule, field) - 1)
            assert "RC305" in codes(check_fused_schedule(schedule)), field

    def test_corrupted_level_kernel_rc103(self):
        # A schedule claiming to serve levels whose windows no longer
        # match its tiles is rejected by the calcparams probes.
        schedule = FusedSchedule(extract_levels(toynet()), 1, 1)
        schedule.levels[0] = dataclasses.replace(
            schedule.levels[0], kernel=schedule.levels[0].kernel + 1)
        assert "RC103" in codes(check_fused_schedule(schedule))


class TestPipelineScheduleHazards:
    def test_simulated_schedules_are_hazard_free(self):
        stages = [StageTiming("a", 5), StageTiming("b", 3),
                  StageTiming("c", 7)]
        for items in (1, 2, 16):
            schedule = simulate_pipeline(stages, items)
            assert check_pipeline_schedule(schedule) == []

    def test_zoo_pipeline_schedules_are_hazard_free(self):
        for factory in (toynet, alexnet):
            levels = extract_levels(factory().feature_extractor())
            stages = [StageTiming(lv.name, max(lv.out_shape.height, 1))
                      for lv in levels]
            schedule = simulate_pipeline(stages, 32)
            assert check_pipeline_schedule(schedule) == [], factory.__name__

    def test_read_before_write_rc301(self):
        stages = (StageTiming("a", 5), StageTiming("b", 3))
        # item 0: stage b finishes at 6 < 5 + 3 — it read a's output
        # before a produced it.
        schedule = PipelineSchedule(stages=stages, num_items=1, makespan=6,
                                    stage_finish=((5, 6),))
        assert "RC301" in codes(check_pipeline_schedule(schedule))

    def test_double_buffer_overlap_rc302(self):
        stages = (StageTiming("a", 5),)
        # item 1 finishes 3 cycles after item 0 on a 5-cycle stage: the
        # stage held both items at once.
        schedule = PipelineSchedule(stages=stages, num_items=2, makespan=8,
                                    stage_finish=((5,), (8,)))
        assert "RC302" in codes(check_pipeline_schedule(schedule))

    def test_wrong_makespan_rc303(self):
        stages = (StageTiming("a", 5),)
        schedule = PipelineSchedule(stages=stages, num_items=1, makespan=99,
                                    stage_finish=((5,),))
        assert codes(check_pipeline_schedule(schedule)) == ["RC303"]

    def test_row_count_mismatch_rc303(self):
        stages = (StageTiming("a", 5),)
        schedule = PipelineSchedule(stages=stages, num_items=2, makespan=5,
                                    stage_finish=((5,),))
        assert codes(check_pipeline_schedule(schedule)) == ["RC303"]


class TestChannelScheduleHazards:
    STAGES = [MemStage("load", 512), ComputeStage("mac", 40),
              MemStage("store", 128)]

    def test_simulated_channel_schedules_are_clean(self):
        for wpc in (1.0, 4.0, 64.0):
            schedule = simulate_with_channel(self.STAGES, 16,
                                             words_per_cycle=wpc)
            assert check_channel_schedule(schedule) == [], wpc

    def test_overcommitted_channel_rc304(self):
        good = simulate_with_channel(self.STAGES, 8, words_per_cycle=4.0)
        bad = dataclasses.replace(good, channel_busy=good.makespan + 1)
        assert "RC304" in codes(check_channel_schedule(bad))

    def test_makespan_beats_bandwidth_bound_rc304(self):
        good = simulate_with_channel(self.STAGES, 8, words_per_cycle=4.0)
        bad = dataclasses.replace(good, makespan=good.memory_bound - 1,
                                  channel_busy=0)
        assert "RC304" in codes(check_channel_schedule(bad))

    def test_makespan_beats_compute_bound_rc303(self):
        good = simulate_with_channel(self.STAGES, 8, words_per_cycle=1.0)
        bad = dataclasses.replace(good, makespan=good.compute_bound - 1,
                                  channel_busy=0, memory_bound=0)
        assert "RC303" in codes(check_channel_schedule(bad))

    def test_stall_accounting_warning_rc306(self):
        good = simulate_with_channel(self.STAGES, 4, words_per_cycle=4.0)
        bad = dataclasses.replace(good, stall_cycles=7)
        findings = check_channel_schedule(bad)
        assert codes(findings) == ["RC306"]
        assert all(not d.is_error for d in findings)

    def test_negative_field_rc303(self):
        bad = ChannelSchedule(makespan=-1, channel_busy=0, compute_bound=0,
                              memory_bound=0)
        assert codes(check_channel_schedule(bad)) == ["RC303"]
