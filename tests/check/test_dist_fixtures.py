"""Broken pipeline-plan fixtures: each seeded defect pins its RC8xx code.

Mirrors ``test_fixtures.py`` for the multi-device plan checker
(:mod:`repro.check.dist`): every fixture is a valid sharded ToyNet
plan cache with exactly one aspect corrupted, and must keep producing
its exact diagnostic code forever. RC803 is the one WARNING in the
family (the working-set estimate is a bound, not a schedule), so its
fixture only fails under ``--strict``.
"""

import json
from pathlib import Path

import pytest

from repro.check import check_pipeline_plan, check_pipeline_plan_dict
from repro.cli import main
from repro.dist import split_device
from repro.hw.device import DEFAULT_DEVICE
from repro.nn.zoo import toynet
from repro.serve import compile_plan

FIXTURES = Path(__file__).parent / "fixtures"


def run_check(capsys, *argv):
    """Run ``check`` expecting findings; returns (exit_code, codes)."""
    with pytest.raises(SystemExit) as info:
        main(["check", *argv, "--json"])
    data = json.loads(capsys.readouterr().out)
    return info.value.code, sorted({d["code"] for d in data["diagnostics"]})


class TestBrokenPipelineFixtures:
    CASES = (
        ("uncovered_stage_pipeline.json", "RC801"),
        ("dsp_overcommit_pipeline.json", "RC802"),
        ("bram_spill_pipeline.json", "RC803"),
        ("link_mispriced_pipeline.json", "RC804"),
        ("aliased_key_pipeline.json", "RC805"),
        ("mispriced_interval_pipeline.json", "RC806"),
    )

    @pytest.mark.parametrize("fixture,expected", CASES)
    def test_each_defect_pins_its_code(self, capsys, fixture, expected):
        code, found = run_check(capsys, "--plan", str(FIXTURES / fixture),
                                "--strict")
        assert code == 2
        assert found == [expected]

    def test_bram_warning_passes_without_strict(self, capsys):
        main(["check", "--plan",
              str(FIXTURES / "bram_spill_pipeline.json"), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["errors"] == 0
        assert data["warnings"] >= 1

    def test_all_error_fixtures_fail_without_strict(self, capsys):
        for fixture, expected in self.CASES:
            if expected == "RC803":
                continue
            code, found = run_check(capsys, "--plan",
                                    str(FIXTURES / fixture))
            assert code == 2, fixture
            assert expected in found, fixture


class TestFreshPlansAreClean:
    def test_freshly_compiled_sharded_plan_has_no_findings(self):
        plan = compile_plan(toynet(), partition_sizes=(1, 1),
                            devices=split_device(DEFAULT_DEVICE, 2))
        assert check_pipeline_plan(plan, network=toynet()) == []

    def test_dict_roundtrip_stays_clean(self):
        plan = compile_plan(toynet(), partition_sizes=(1, 1),
                            devices=split_device(DEFAULT_DEVICE, 2))
        data = json.loads(json.dumps(plan.to_dict()))
        assert check_pipeline_plan_dict(data) == []
