"""Domain analyzer: geometry, resources, and the zero-false-positive sweep."""

import dataclasses

import pytest

from repro.check import (
    check_group,
    check_levels,
    check_network,
    check_partition,
    check_pyramid_geometry,
)
from repro.core.pyramid import build_pyramid
from repro.nn.stages import extract_levels
from repro.nn.zoo import alexnet, toynet, vgg16, vggnet_e


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def compositions(n):
    """Every ordered split of n units into contiguous groups (2^(n-1))."""
    if n == 0:
        return
    if n == 1:
        yield (1,)
        return
    for rest in compositions(n - 1):
        yield (1,) + rest
        yield (rest[0] + 1,) + rest[1:]


class TestCheckLevels:
    def test_zoo_chains_are_clean(self):
        for factory in (toynet, alexnet, vgg16, vggnet_e):
            levels = extract_levels(factory().feature_extractor())
            assert check_levels(levels) == [], factory.__name__

    def test_broken_producer_consumer_chain_rc101(self):
        levels = list(extract_levels(alexnet().feature_extractor()))
        bad = dataclasses.replace(
            levels[1], in_shape=levels[1].in_shape.padded(1))
        findings = check_levels([levels[0], bad])
        assert "RC101" in codes(findings)

    def test_wrong_output_arithmetic_rc101(self):
        levels = extract_levels(toynet())
        bad = dataclasses.replace(
            levels[0],
            out_shape=dataclasses.replace(levels[0].out_shape,
                                          height=levels[0].out_shape.height + 1))
        assert "RC101" in codes(check_levels([bad]))

    def test_negative_padding_rc104(self):
        levels = extract_levels(toynet())
        bad = dataclasses.replace(levels[0], pad=-1)
        assert codes(check_levels([bad])) == ["RC104"]


class TestCheckPyramidGeometry:
    def test_clean_on_fresh_pyramid(self):
        levels = extract_levels(toynet())
        geometry = build_pyramid(levels, 2, 2)
        assert check_pyramid_geometry(levels, geometry) == []

    def test_tampered_tile_extent_rc106(self):
        levels = extract_levels(toynet())
        geometry = build_pyramid(levels, 2, 2)
        tiles = list(geometry.tiles)
        tiles[0] = dataclasses.replace(tiles[0], in_h=tiles[0].in_h + 1)
        tampered = dataclasses.replace(geometry, tiles=tuple(tiles))
        assert "RC106" in codes(check_pyramid_geometry(levels, tampered))

    def test_tampered_step_rc106(self):
        levels = extract_levels(toynet())
        geometry = build_pyramid(levels, 1, 1)
        tiles = list(geometry.tiles)
        tiles[-1] = dataclasses.replace(tiles[-1], step_w=tiles[-1].step_w + 1)
        tampered = dataclasses.replace(geometry, tiles=tuple(tiles))
        assert "RC106" in codes(check_pyramid_geometry(levels, tampered))

    def test_tile_count_mismatch_rc106(self):
        levels = extract_levels(toynet())
        geometry = build_pyramid(levels, 1, 1)
        short = dataclasses.replace(geometry, tiles=geometry.tiles[:-1])
        assert codes(check_pyramid_geometry(levels, short)) == ["RC106"]


class TestCheckGroup:
    def test_oversized_tip_rc102(self):
        levels = extract_levels(toynet())
        findings = check_group(levels, tip_h=512, tip_w=512)
        assert codes(findings) == ["RC102"]

    def test_nonpositive_tip_rc102(self):
        levels = extract_levels(toynet())
        assert codes(check_group(levels, tip_h=0, tip_w=1)) == ["RC102"]

    def test_clean_group_with_resources(self):
        levels = extract_levels(toynet())
        assert check_group(levels, tip_h=2, tip_w=2) == []


class TestCheckPartition:
    def test_coverage_mismatch_rc105(self):
        levels = extract_levels(alexnet().feature_extractor())
        findings = check_partition(levels, (2, 3))
        assert codes(findings) == ["RC105"]

    def test_nonpositive_sizes_rc105(self):
        levels = extract_levels(toynet())
        assert codes(check_partition(levels, (0, 2))) == ["RC105"]

    def test_tiny_dsp_budget_rc202(self):
        levels = extract_levels(alexnet().feature_extractor())
        findings = check_partition(levels, (len(levels),), dsp_budget=64)
        assert "RC202" in codes(findings)

    def test_oversized_tip_reported_when_not_clipped(self):
        levels = extract_levels(toynet())
        findings = check_partition(levels, (len(levels),), tip=512,
                                   clip_tip=False, check_resources=False)
        assert codes(findings) == ["RC102"]

    def test_oversized_tip_clipped_by_default(self):
        levels = extract_levels(toynet())
        assert check_partition(levels, (len(levels),), tip=512,
                               check_resources=False) == []


class TestZeroFalsePositives:
    """The acceptance sweep: no geometry/hazard finding on any real
    partition of the zoo — the analyzer never cries wolf."""

    @pytest.mark.parametrize("factory,num_convs", [
        (toynet, None),
        (alexnet, None),
        (vggnet_e, 5),
    ])
    def test_exhaustive_partition_sweep(self, factory, num_convs):
        network = factory()
        sliced = (network.prefix(num_convs) if num_convs
                  else network.feature_extractor())
        levels = extract_levels(sliced)
        swept = 0
        for sizes in compositions(len(levels)):
            findings = check_partition(levels, sizes, check_resources=False)
            assert findings == [], (sizes, codes(findings))
            swept += 1
        assert swept == 2 ** (len(levels) - 1)

    @pytest.mark.parametrize("factory", [toynet, alexnet, vgg16, vggnet_e])
    def test_dataflow_mode_strict_clean(self, factory):
        report = check_network(factory())
        assert report.ok(strict=True), report.render()

    def test_dataflow_mode_with_larger_tips(self):
        levels = extract_levels(toynet())
        for tip in (1, 2, 4):
            assert check_partition(levels, (len(levels),), tip=tip,
                                   check_resources=False) == []


class TestCheckNetwork:
    def test_design_mode_flags_bram_overflow(self):
        report = check_network(vgg16(), partition=[18])
        assert not report.ok()
        assert "RC201" in codes(report.diagnostics)

    def test_design_mode_weight_residency_warning(self):
        report = check_network(alexnet(), partition=[2, 3, 3])
        assert report.ok() and not report.ok(strict=True)
        assert codes(report.diagnostics) == ["RC203"]

    def test_design_mode_clean_on_toynet(self):
        report = check_network(toynet(), partition=[2])
        assert report.ok(strict=True), report.render()

    def test_bad_partition_rc105(self):
        report = check_network(alexnet(), partition=[2, 3])
        assert "RC105" in codes(report.diagnostics)

    def test_convs_prefix_slicing(self):
        report = check_network(vggnet_e(), num_convs=5)
        assert report.ok(strict=True), report.render()

    def test_report_labels_mode(self):
        dataflow = check_network(toynet())
        design = check_network(toynet(), partition=[2])
        assert any("dataflow" in label for label in dataflow.checks_run)
        assert any("design" in label for label in design.checks_run)
