"""The ``check`` subcommand: exit codes, modes, and output formats."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_ok(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCheckCli:
    def test_dataflow_mode_is_strict_clean(self, capsys):
        out = run_ok(capsys, "check", "vgg16", "--strict")
        assert "dataflow" in out and "0 errors" in out

    def test_every_zoo_network_dataflow_clean(self, capsys):
        for name in ("alexnet", "vgg", "vgg16", "zfnet", "nin",
                     "googlenet-stem", "toynet"):
            run_ok(capsys, "check", name, "--strict")

    def test_design_mode_clean_partition(self, capsys):
        out = run_ok(capsys, "check", "toynet", "--partition", "2")
        assert "design" in out

    def test_design_mode_warning_fails_only_strict(self, capsys):
        # alexnet single-engine groups keep weights resident only
        # partially: RC203 warnings, no errors.
        run_ok(capsys, "check", "alexnet", "--partition", "2+3+3")
        with pytest.raises(SystemExit) as info:
            main(["check", "alexnet", "--partition", "2+3+3", "--strict"])
        assert info.value.code == 2
        assert "RC203" in capsys.readouterr().out

    def test_design_mode_bram_overflow_exits_two(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["check", "vgg16", "--partition", "18"])
        assert info.value.code == 2
        assert "RC201" in capsys.readouterr().out

    def test_lint_mode_on_repo_src(self, capsys):
        out = run_ok(capsys, "check", "--lint", str(REPO_ROOT / "src"),
                     "--strict")
        assert "0 errors" in out

    def test_json_output_is_machine_readable(self, capsys):
        data = json.loads(run_ok(capsys, "check", "toynet", "--json"))
        assert data["errors"] == 0
        assert any("dataflow" in c for c in data["checks"])

    def test_nothing_to_check_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["check"])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "resnet152"])

    def test_convs_prefix(self, capsys):
        run_ok(capsys, "check", "vgg", "--convs", "5", "--strict")

    def test_combined_network_and_lint(self, capsys):
        out = run_ok(capsys, "check", "toynet", "--lint",
                     str(REPO_ROOT / "src" / "repro" / "check"))
        assert "lint" in out and "levels" in out
