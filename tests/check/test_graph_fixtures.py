"""RC7xx broken-fixture contract: each seeded DAG defect pins its code.

Same stability rules as ``test_fixtures.py``: these fixtures must keep
producing their exact diagnostic codes (and exit code 2) forever.
"""

import json
from pathlib import Path

import pytest

from repro.check import check_graph_dict, check_graph_network
from repro.cli import main
from repro.graph import lower_graph

from ..graph.conftest import tiny_concat, tiny_residual

FIXTURES = Path(__file__).parent / "fixtures"


def run_check(capsys, *argv):
    """Run ``check`` expecting findings; returns (exit_code, codes)."""
    with pytest.raises(SystemExit) as info:
        main(["check", *argv, "--json"])
    data = json.loads(capsys.readouterr().out)
    return info.value.code, sorted({d["code"] for d in data["diagnostics"]})


class TestBrokenGraphFixtures:
    def test_dangling_edge_rc701(self, capsys):
        code, found = run_check(
            capsys, "--graph", str(FIXTURES / "dangling_graph.json"))
        assert code == 2
        assert found == ["RC701"]

    def test_cycle_rc702(self, capsys):
        code, found = run_check(
            capsys, "--graph", str(FIXTURES / "cyclic_graph.json"))
        assert code == 2
        assert found == ["RC702"]

    def test_mismatched_join_rc703(self, capsys):
        code, found = run_check(
            capsys, "--graph", str(FIXTURES / "mismatched_join_graph.json"))
        assert code == 2
        assert found == ["RC703"]

    def test_unknown_spec_rc705(self, capsys):
        code, found = run_check(
            capsys, "--graph", str(FIXTURES / "unknown_spec_graph.json"))
        assert code == 2
        assert found == ["RC705"]

    def test_tampered_graph_plan_rc706(self, capsys):
        code, found = run_check(
            capsys, "--plan", str(FIXTURES / "tampered_graph_plan.json"))
        assert code == 2
        assert found == ["RC706"]


class TestGraphCheckUnits:
    def test_clean_graphs_have_no_findings(self):
        for net in (tiny_residual(), tiny_concat()):
            assert check_graph_network(net) == []
            assert check_graph_dict(net.to_dict()) == []

    def test_foreign_program_breaks_coverage_rc704(self):
        """The segment-coverage identity: pairing a graph with another
        graph's lowered program is diagnosed, both directions."""
        findings = check_graph_network(tiny_residual(),
                                       program=lower_graph(tiny_concat()))
        codes = {d.code for d in findings}
        assert codes == {"RC704"}

    def test_structural_findings_are_exhaustive(self):
        """A file with several independent defects reports them all."""
        data = tiny_residual().to_dict()
        data["nodes"][1]["inputs"] = ["ghost"]
        data["nodes"][2]["name"] = "c1"  # duplicate
        data["nodes"].append({"type": "WarpSpec", "name": "w",
                              "inputs": ["c3"]})
        codes = {d.code for d in check_graph_dict(data)}
        assert {"RC701", "RC705"} <= codes

    def test_zoo_networks_check_clean(self):
        from repro.graph import GRAPH_ZOO

        for builder, size in GRAPH_ZOO.values():
            assert check_graph_network(builder(size)) == []

    def test_non_dict_payload_rc705(self):
        assert [d.code for d in check_graph_dict([1, 2])] == ["RC705"]
