"""The broken-fixture contract: each seeded defect pins its exact code.

These fixtures are the analyzer's regression anchors — and the CI
smoke job's negative tests. Each one must keep producing its exact
diagnostic code (and exit code 2) forever; a code change here is a
compatibility break.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def run_check(capsys, *argv):
    """Run ``check`` expecting findings; returns (exit_code, codes)."""
    with pytest.raises(SystemExit) as info:
        main(["check", *argv, "--json"])
    data = json.loads(capsys.readouterr().out)
    return info.value.code, sorted({d["code"] for d in data["diagnostics"]})


class TestBrokenFixtures:
    def test_oversized_tile_rc102(self, capsys):
        code, found = run_check(
            capsys, "--request", str(FIXTURES / "oversized_tile.json"))
        assert code == 2
        assert found == ["RC102"]

    def test_bram_overflow_partition_rc201(self, capsys):
        code, found = run_check(
            capsys, "--request", str(FIXTURES / "bram_overflow.json"))
        assert code == 2
        assert "RC201" in found

    def test_tampered_plan_fingerprint_rc401(self, capsys):
        code, found = run_check(
            capsys, "--plan", str(FIXTURES / "tampered_plan.json"))
        assert code == 2
        assert found == ["RC401"]

    def test_stale_tunedb_record_rc405(self, capsys):
        code, found = run_check(
            capsys, "--tunedb", str(FIXTURES / "stale_tunedb.json"))
        assert code == 2
        assert found == ["RC405"]

    def test_fixtures_report_stable_severities(self, capsys):
        # Every seeded defect is an ERROR: it must fail even without
        # --strict (the CI negative test relies on this).
        for flag, name in (("--request", "oversized_tile.json"),
                           ("--request", "bram_overflow.json"),
                           ("--plan", "tampered_plan.json"),
                           ("--tunedb", "stale_tunedb.json")):
            with pytest.raises(SystemExit) as info:
                main(["check", flag, str(FIXTURES / name), "--json"])
            assert info.value.code == 2, name
            data = json.loads(capsys.readouterr().out)
            assert data["errors"] >= 1, name


class TestConcurrencyFixtures:
    """Each RL5xx rule stays pinned by one seeded-defect module."""

    @pytest.mark.parametrize("rule", ["RL501", "RL502", "RL503",
                                      "RL504", "RL505"])
    def test_each_rule_pins_its_fixture(self, capsys, rule):
        path = FIXTURES / f"concurrency_{rule.lower()}.py"
        code, found = run_check(capsys, "--concurrency", str(path))
        assert code == 2
        assert found == [rule]

    def test_all_fixtures_together_surface_every_rule(self, capsys):
        paths = [str(FIXTURES / f"concurrency_rl50{n}.py")
                 for n in range(1, 6)]
        code, found = run_check(capsys, "--concurrency", *paths)
        assert code == 2
        assert found == ["RL501", "RL502", "RL503", "RL504", "RL505"]
