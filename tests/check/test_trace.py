"""RC5xx: static validation of exported trace files."""

import json

from repro.check import check_trace_file
from repro.obs.tracing import Tracer


def codes(diagnostics):
    return [d.code for d in diagnostics]


def full_trace():
    tracer = Tracer()
    root = tracer.begin("serve.request", 0)
    enq = tracer.begin("serve.enqueue", 0, parent_id=root)
    tracer.end(enq)
    execute = tracer.begin("serve.execute", 0, parent_id=root)
    tracer.end(execute)
    tracer.end(root)
    return tracer


def jsonl(tmp_path, records):
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return str(path)


def span(**overrides):
    record = {"trace": 0, "span": 0, "parent": -1, "name": "serve.request",
              "start_s": 0.0, "end_s": 1.0, "complete": True}
    record.update(overrides)
    return record


class TestJsonl:
    def test_real_export_is_clean(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        full_trace().to_jsonl(str(path))
        assert check_trace_file(str(path)) == []

    def test_missing_file(self, tmp_path):
        assert codes(check_trace_file(str(tmp_path / "nope.jsonl"))) \
            == ["RC501"]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert codes(check_trace_file(str(path))) == ["RC501"]

    def test_bad_json_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(span()) + "\n{not json\n")
        assert codes(check_trace_file(str(path))) == ["RC501"]

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2]\n")
        assert codes(check_trace_file(str(path))) == ["RC501"]

    def test_missing_keys(self, tmp_path):
        record = span()
        del record["start_s"]
        path = jsonl(tmp_path, [record])
        diags = check_trace_file(path)
        assert codes(diags) == ["RC501"]
        assert diags[0].context["missing"] == ["start_s"]

    def test_incomplete_span(self, tmp_path):
        path = jsonl(tmp_path, [span(end_s=None, complete=False)])
        assert codes(check_trace_file(path)) == ["RC502"]

    def test_orphan_parent(self, tmp_path):
        path = jsonl(tmp_path, [span(), span(span=1, parent=99)])
        assert codes(check_trace_file(path)) == ["RC503"]

    def test_parent_must_be_in_same_trace(self, tmp_path):
        # span 7 exists, but in another trace entirely
        path = jsonl(tmp_path, [span(trace=0, span=7),
                                span(trace=1, span=1, parent=7)])
        assert codes(check_trace_file(path)) == ["RC503"]

    def test_end_before_start(self, tmp_path):
        path = jsonl(tmp_path, [span(start_s=2.0, end_s=1.0)])
        assert codes(check_trace_file(path)) == ["RC504"]

    def test_diagnostics_are_errors_with_sites(self, tmp_path):
        path = jsonl(tmp_path, [span(end_s=None, complete=False)])
        diag = check_trace_file(path)[0]
        assert diag.is_error
        assert path in diag.site
        assert ":1" in diag.site


class TestChrome:
    def test_real_export_is_clean(self, tmp_path):
        path = tmp_path / "trace.json"
        full_trace().write_chrome_trace(str(path))
        assert check_trace_file(str(path)) == []

    def chrome(self, tmp_path, events):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": events}))
        return str(path)

    def x(self, **overrides):
        event = {"ph": "X", "name": "serve.execute", "pid": 10, "tid": 4,
                 "ts": 0.0, "dur": 5.0}
        event.update(overrides)
        return event

    def test_traceevents_not_a_list(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": {}}))
        assert codes(check_trace_file(str(path))) == ["RC501"]

    def test_event_without_phase(self, tmp_path):
        path = self.chrome(tmp_path, [self.x(), {"name": "no-ph"}])
        assert codes(check_trace_file(path)) == ["RC501"]

    def test_complete_event_missing_dur(self, tmp_path):
        event = self.x()
        del event["dur"]
        path = self.chrome(tmp_path, [event])
        assert codes(check_trace_file(path)) == ["RC501"]

    def test_negative_duration(self, tmp_path):
        path = self.chrome(tmp_path, [self.x(dur=-1.0)])
        assert codes(check_trace_file(path)) == ["RC504"]

    def test_stray_begin(self, tmp_path):
        path = self.chrome(tmp_path, [self.x(),
                                      {"ph": "B", "name": "serve.batch"}])
        assert codes(check_trace_file(path)) == ["RC502"]

    def test_no_span_events(self, tmp_path):
        path = self.chrome(tmp_path, [{"ph": "M", "name": "process_name"}])
        assert codes(check_trace_file(path)) == ["RC501"]

    def test_flow_finish_without_start(self, tmp_path):
        path = self.chrome(tmp_path, [self.x(), {"ph": "f", "id": 3}])
        diags = check_trace_file(path)
        assert codes(diags) == ["RC505"]
        assert not diags[0].is_error  # unmatched flows only warn

    def test_flow_start_without_finish(self, tmp_path):
        path = self.chrome(tmp_path, [self.x(), {"ph": "s", "id": 3}])
        assert codes(check_trace_file(path)) == ["RC505"]

    def test_balanced_flows_are_clean(self, tmp_path):
        path = self.chrome(tmp_path, [self.x(),
                                      {"ph": "s", "id": 3},
                                      {"ph": "f", "id": 3}])
        assert check_trace_file(path) == []
