"""Record validators: compiled plans, plan caches, tuning databases."""

import json

import pytest

from repro.check import (
    check_compiled_plan,
    check_plan_cache_file,
    check_plan_dict,
    check_tuned_record,
    check_tuning_db_file,
)
from repro.check.records import check_plan_cache_dict, check_tuning_db_dict
from repro.nn.zoo import alexnet, toynet
from repro.serve.plan import PlanCache, compile_plan
from repro.tune import tune


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


@pytest.fixture(scope="module")
def plan():
    return compile_plan(toynet())


@pytest.fixture()
def plan_dict(plan):
    return plan.to_dict()


class TestPlanChecks:
    def test_fresh_plan_is_clean(self, plan):
        assert check_compiled_plan(plan) == []
        assert check_compiled_plan(plan, network=toynet()) == []

    def test_round_tripped_cache_is_clean(self, plan, tmp_path):
        cache = PlanCache()
        cache._plans[plan.key] = plan
        path = tmp_path / "plans.json"
        cache.save(path)
        assert check_plan_cache_file(str(path)) == []

    def test_tampered_fingerprint_rc401(self, plan_dict):
        fp = plan_dict["key"]["fingerprint"]
        plan_dict["key"]["fingerprint"] = ("0" if fp[0] != "0" else "1") + fp[1:]
        assert "RC401" in codes(check_plan_dict(plan_dict))

    def test_wrong_network_rc401(self, plan_dict):
        findings = check_plan_dict(plan_dict, network=alexnet())
        assert codes(findings) == ["RC401"]

    def test_missing_field_rc403(self, plan_dict):
        del plan_dict["partition_sizes"]
        assert codes(check_plan_dict(plan_dict)) == ["RC403"]

    def test_seed_mismatch_rc403(self, plan_dict):
        plan_dict["seed"] = plan_dict["seed"] + 1
        assert "RC403" in codes(check_plan_dict(plan_dict))

    def test_bad_precision_rc403(self, plan_dict):
        plan_dict["key"]["precision"] = "float128"
        assert "RC403" in codes(check_plan_dict(plan_dict))

    def test_invalid_partition_rc402(self, plan_dict):
        plan_dict["partition_sizes"] = [99]
        findings = check_plan_dict(plan_dict)
        assert "RC402" in codes(findings)
        assert "RC105" in codes(findings)  # the nested geometry finding

    def test_non_dict_rc408(self):
        assert codes(check_plan_dict(["not", "a", "plan"])) == ["RC408"]

    def test_duplicate_keys_rc404(self, plan_dict):
        payload = {"version": 1, "plans": [plan_dict, dict(plan_dict)]}
        assert "RC404" in codes(check_plan_cache_dict(payload))

    def test_malformed_cache_rc408(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ nope")
        assert codes(check_plan_cache_file(str(path))) == ["RC408"]


@pytest.fixture(scope="module")
def tunedb(tmp_path_factory):
    path = tmp_path_factory.mktemp("tune") / "db.json"
    tune(toynet(), evals=8, seed=3, db=str(path))
    return str(path)


class TestTuningDbChecks:
    def test_fresh_db_is_clean(self, tunedb):
        assert check_tuning_db_file(tunedb) == []
        fp = toynet().feature_extractor().fingerprint()
        assert check_tuning_db_file(tunedb, fingerprint=fp) == []

    def test_wrong_fingerprint_rc406(self, tunedb):
        findings = check_tuning_db_file(tunedb, fingerprint="deadbeef")
        assert codes(findings) == ["RC406"]

    def test_dangling_incumbent_rc405(self, tunedb):
        payload = json.load(open(tunedb))
        for entry in payload["entries"].values():
            entry["incumbent"]["candidate"] = "9|auto|reuse|tip9"
        assert "RC405" in codes(check_tuning_db_dict(payload))

    def test_aliased_eval_slot_rc407(self, tunedb):
        payload = json.load(open(tunedb))
        for entry in payload["entries"].values():
            evals = entry["evals"]
            key, record = next(iter(evals.items()))
            del evals[key]
            evals["not-the-canonical-key"] = record
            if entry.get("incumbent", {}).get("candidate") == key:
                entry["incumbent"]["candidate"] = "not-the-canonical-key"
        assert "RC407" in codes(check_tuning_db_dict(payload))

    def test_bad_space_key_rc408(self, tunedb):
        payload = json.load(open(tunedb))
        payload["entries"]["garbage-key"] = {"evals": {}}
        assert "RC408" in codes(check_tuning_db_dict(payload))

    def test_malformed_db_rc408(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[]")
        assert codes(check_tuning_db_file(str(path))) == ["RC408"]


class TestTunedRecordChecks:
    @pytest.fixture(scope="class")
    def result(self):
        return tune(toynet(), evals=8, seed=3)

    def test_fresh_record_is_clean(self, result):
        assert check_tuned_record(result.record, result.fingerprint,
                                  num_units=2) == []

    def test_fingerprint_mismatch_rc406(self, result):
        findings = check_tuned_record(result.record, "deadbeef")
        assert codes(findings) == ["RC406"]

    def test_unit_coverage_rc407(self, result):
        findings = check_tuned_record(result.record, result.fingerprint,
                                      num_units=99)
        assert codes(findings) == ["RC407"]


class TestProducerValidation:
    """The producers run the validators on their own outputs by default."""

    def test_compile_plan_validates_by_default(self):
        # A passing compile implies a passing static check; the flag
        # exists so the fixture generator can opt out.
        plan = compile_plan(toynet(), validate=True)
        assert check_compiled_plan(plan) == []

    def test_compile_plan_validate_off_still_compiles(self):
        assert compile_plan(toynet(), validate=False) is not None

    def test_tune_validates_its_record(self):
        result = tune(toynet(), evals=6, seed=1)
        assert check_tuned_record(result.record, result.fingerprint,
                                  num_units=2) == []
