"""Concurrency analyzer: rule-by-rule on synthetic classes, plus the
merged-tree cleanliness contract on the threaded subsystems."""

from pathlib import Path

import pytest

from repro.check import check_concurrency_paths
from repro.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parents[2]


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def analyze(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return check_concurrency_paths([str(path)])


GUARDED_COUNTER = """\
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n

    def drain(self):
        with self._lock:
            self.total = 0
"""


class TestRuleRL501:
    def test_unguarded_write_to_guarded_attr(self, tmp_path):
        findings = analyze(tmp_path, GUARDED_COUNTER + """
    def sneak(self, n):
        self.total += n
""")
        assert codes(findings) == ["RL501"]
        assert "Counter._lock" in findings[0].message

    def test_consistent_guarding_is_clean(self, tmp_path):
        assert analyze(tmp_path, GUARDED_COUNTER) == []

    def test_reads_are_not_flagged(self, tmp_path):
        findings = analyze(tmp_path, GUARDED_COUNTER + """
    def peek(self):
        return self.total
""")
        assert findings == []

    def test_majority_unguarded_infers_no_guard(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Loose:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def a(self):
        self.n += 1

    def b(self):
        self.n += 2
""")
        assert findings == []

    def test_container_mutators_count_as_writes(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def put(self, x):
        with self._lock:
            self.items.append(x)

    def drain(self):
        with self._lock:
            self.items.clear()

    def sneak(self, x):
        self.items.append(x)
""")
        assert codes(findings) == ["RL501"]

    def test_locked_suffix_convention_counts_as_guarded(self, tmp_path):
        findings = analyze(tmp_path, GUARDED_COUNTER + """
    def bump_locked(self, n):
        self.total += n
""")
        assert findings == []

    def test_classes_without_locks_or_threads_are_skipped(self, tmp_path):
        findings = analyze(tmp_path, """
class Plain:
    def __init__(self):
        self.total = 0

    def add(self, n):
        self.total += n
""")
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = analyze(tmp_path, GUARDED_COUNTER + """
    def sneak(self, n):
        self.total += n  # noqa: RL501
""")
        assert findings == []


class TestRuleRL502:
    def test_sleep_under_lock(self, tmp_path):
        findings = analyze(tmp_path, """
import threading
import time

class Cache:
    def __init__(self):
        self._lock = threading.Lock()

    def refresh(self):
        with self._lock:
            time.sleep(0.1)
""")
        assert codes(findings) == ["RL502"]

    def test_future_result_under_lock(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Waiter:
    def __init__(self):
        self._lock = threading.Lock()

    def join(self, future):
        with self._lock:
            return future.result()
""")
        assert codes(findings) == ["RL502"]

    def test_blocking_call_outside_lock_is_clean(self, tmp_path):
        findings = analyze(tmp_path, """
import threading
import time

class Cache:
    def __init__(self):
        self._lock = threading.Lock()

    def refresh(self):
        with self._lock:
            pass
        time.sleep(0.1)
""")
        assert findings == []

    def test_nested_def_under_with_is_not_under_the_lock(self, tmp_path):
        # the inner function runs later, not at definition site
        findings = analyze(tmp_path, """
import threading
import time

class Factory:
    def __init__(self):
        self._lock = threading.Lock()

    def make(self):
        with self._lock:
            def later():
                time.sleep(0.1)
            return later
""")
        assert findings == []


class TestRuleRL503:
    def test_inverted_acquisition_orders(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Transfer:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass
""")
        assert codes(findings) == ["RL503"]
        assert "cycle" in findings[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Transfer:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                pass

    def also_forward(self):
        with self._a:
            with self._b:
                pass
""")
        assert findings == []

    def test_cycle_through_a_method_call(self, tmp_path):
        # backward() holds _b and calls helper(), which takes _a
        findings = analyze(tmp_path, """
import threading

class Transfer:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def helper(self):
        with self._a:
            pass

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            self.helper()
""")
        assert codes(findings) == ["RL503"]

    def test_cross_class_cycle(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Inner:
    def __init__(self):
        self._lock = threading.Lock()

    def poke(self):
        with self._lock:
            pass

class Outer:
    def __init__(self):
        self._lock = threading.Lock()
        self.inner = Inner()

    def poke(self):
        with self._lock:
            self.inner.poke()

class Backwards:
    def __init__(self):
        self._guard = threading.Lock()

    def run(self, inner, outer):
        with inner._lock:
            pass
""")
        # Outer._lock -> Inner._lock only: consistent, no cycle
        assert findings == []


class TestRuleRL504:
    def test_notify_outside_the_condition(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()

    def post(self):
        self._cond.notify()
""")
        assert codes(findings) == ["RL504"]

    def test_wait_without_predicate_loop(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()

    def take(self):
        with self._cond:
            self._cond.wait(0.1)
""")
        assert codes(findings) == ["RL504"]

    def test_predicate_looped_wait_is_clean(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self.items = []

    def take(self):
        with self._cond:
            while not self.items:
                self._cond.wait(0.1)
            return self.items.pop()

    def post(self, item):
        with self._cond:
            self.items.append(item)
            self._cond.notify()
""")
        assert findings == []


class TestRuleRL505:
    def test_thread_started_before_attrs_assigned(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Poller:
    def __init__(self):
        self._thread = threading.Thread(target=self._run)
        self._thread.start()
        self._stopped = False

    def _run(self):
        return self._stopped
""")
        assert codes(findings) == ["RL505"]

    def test_thread_started_last_is_clean(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Poller:
    def __init__(self):
        self._stopped = False
        self._thread = threading.Thread(target=self._run)
        self._thread.start()

    def _run(self):
        return self._stopped
""")
        assert findings == []

    def test_start_outside_init_is_clean(self, tmp_path):
        findings = analyze(tmp_path, """
import threading

class Poller:
    def __init__(self):
        self._thread = threading.Thread(target=self._run)
        self._stopped = False

    def start(self):
        self._thread.start()

    def _run(self):
        return self._stopped
""")
        assert findings == []


class TestDriver:
    def test_syntax_error_is_diagnosed(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        with pytest.raises(ConfigError):
            check_concurrency_paths([str(path)])

    def test_missing_path_is_diagnosed(self, tmp_path):
        with pytest.raises(ConfigError):
            check_concurrency_paths([str(tmp_path / "nope.py")])

    def test_sites_are_stably_sorted(self, tmp_path):
        findings = analyze(tmp_path, GUARDED_COUNTER + """
    def sneak_b(self, n):
        self.total += n

    def sneak_a(self, n):
        self.total -= n
""")
        lines = [f.site for f in findings]
        assert lines == sorted(lines)


class TestMergedTreeContract:
    def test_threaded_subsystems_are_clean(self):
        src = REPO_ROOT / "src" / "repro"
        paths = [str(src / d) for d in ("serve", "dist", "obs")]
        assert check_concurrency_paths(paths) == []

    def test_whole_package_is_clean(self):
        assert check_concurrency_paths(
            [str(REPO_ROOT / "src" / "repro")]) == []
