"""Repo invariant linter: rule-by-rule on synthetic files, plus the
merged-tree cleanliness contract on the real ``src/``."""

from pathlib import Path

import pytest

from repro.check import lint_paths
from repro.check.lint import is_deterministic_module
from repro.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parents[2]


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def lint_source(tmp_path, source, name="mod.py", subdir=None):
    target = tmp_path if subdir is None else tmp_path / subdir
    target.mkdir(parents=True, exist_ok=True)
    path = target / name
    path.write_text(source)
    return lint_paths([str(path)])


class TestRuleRL101:
    def test_bare_valueerror_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "def f():\n"
                               "    raise ValueError('nope')\n")
        assert codes(findings) == ["RL101"]

    def test_bare_runtimeerror_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "raise RuntimeError('boom')\n")
        assert codes(findings) == ["RL101"]

    def test_config_error_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path, "from repro.errors import ConfigError\n"
            "def f():\n    raise ConfigError('bad', x=1)\n")
        assert findings == []

    def test_errors_module_itself_exempt(self, tmp_path):
        findings = lint_source(tmp_path, "raise ValueError('defining')\n",
                               name="errors.py")
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(tmp_path,
                               "raise ValueError('x')  # noqa: RL101\n")
        assert findings == []


class TestRuleRL201:
    def test_global_random_in_tune_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "import random\n"
                               "x = random.random()\n", subdir="tune")
        assert codes(findings) == ["RL201"]

    def test_unseeded_random_instance_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "import random\n"
                               "rng = random.Random()\n", subdir="faults")
        assert codes(findings) == ["RL201"]

    def test_seeded_random_instance_allowed(self, tmp_path):
        findings = lint_source(tmp_path, "import random\n"
                               "def f(seed):\n"
                               "    return random.Random(seed)\n",
                               subdir="tune")
        assert findings == []

    def test_outside_deterministic_modules_allowed(self, tmp_path):
        findings = lint_source(tmp_path, "import random\n"
                               "x = random.random()\n", subdir="analysis")
        assert findings == []

    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "import numpy as np\n"
                               "rng = np.random.default_rng()\n",
                               subdir="tune")
        assert codes(findings) == ["RL201"]

    def test_deterministic_module_classifier(self):
        assert is_deterministic_module(Path("src/repro/tune/tuner.py"))
        assert is_deterministic_module(Path("src/repro/faults/injector.py"))
        assert is_deterministic_module(Path("src/repro/serve/plan.py"))
        assert not is_deterministic_module(Path("src/repro/analysis/plot.py"))
        assert not is_deterministic_module(Path("tests/tune/test_space.py"))


class TestRuleRL202:
    def test_wall_clock_in_deterministic_module_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "import time\n"
                               "t = time.time()\n", subdir="faults")
        assert codes(findings) == ["RL202"]

    def test_datetime_now_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path, "from datetime import datetime\n"
            "t = datetime.now()\n", subdir="tune")
        assert codes(findings) == ["RL202"]

    def test_perf_counter_allowed(self, tmp_path):
        findings = lint_source(tmp_path, "import time\n"
                               "t = time.perf_counter()\n", subdir="tune")
        assert findings == []


class TestRuleRL301:
    def test_bad_counter_name_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "import repro.obs as obs\n"
                               "obs.add_counter('BadName')\n")
        assert codes(findings) == ["RL301"]

    def test_dotted_lowercase_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path, "import repro.obs as obs\n"
            "obs.add_counter('serve.plans_compiled')\n"
            "obs.set_gauge('tune.incumbent_value', 1.0)\n")
        assert findings == []

    def test_fstring_with_index_suffix_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path, "import repro.obs as obs\n"
            "kind = 'dram_stall'\n"
            "obs.add_counter(f'faults.injected[{kind}]')\n")
        assert findings == []

    def test_single_word_name_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "import repro.obs as obs\n"
                               "obs.set_gauge('hits', 2)\n")
        assert codes(findings) == ["RL301"]


class TestRuleRL302:
    def test_bad_event_name_flagged(self, tmp_path):
        findings = lint_source(tmp_path, "import repro.obs as obs\n"
                               "obs.emit_event('BadName')\n")
        assert codes(findings) == ["RL302"]

    def test_dotted_event_name_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path, "import repro.obs as obs\n"
            "obs.emit_event('tune.generation_best', 1.0)\n")
        assert findings == []

    def test_timeline_record_checked(self, tmp_path):
        findings = lint_source(
            tmp_path, "self.timeline.record('Bad', value=1.0)\n")
        assert codes(findings) == ["RL302"]

    def test_tracer_spans_checked(self, tmp_path):
        findings = lint_source(
            tmp_path, "tracer.begin('Bad', 0)\n"
            "tracer.instant('AlsoBad', 0)\n")
        assert codes(findings) == ["RL302"]
        assert len(findings) == 2

    def test_unrelated_receivers_ignored(self, tmp_path):
        # .record()/.begin() on non-obs objects are out of scope
        findings = lint_source(
            tmp_path, "log.record('Whatever')\n"
            "txn.begin('UPPER')\n")
        assert findings == []

    def test_fstring_with_index_suffix_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path, "import repro.obs as obs\n"
            "kind = 'dram_stall'\n"
            "obs.emit_event(f'faults.injected[{kind}]')\n")
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path, "import repro.obs as obs\n"
            "obs.emit_event('legacy')  # noqa: RL302\n")
        assert findings == []


class TestRuleRL401:
    CLI = ("def build(sub):\n"
           "    sub.add_parser('frobnicate')\n"
           "    sub.add_parser('explore')\n")

    def test_undocumented_subcommand_flagged(self, tmp_path):
        (tmp_path / "README.md").write_text("only explore is documented\n")
        (tmp_path / "cli.py").write_text(self.CLI)
        findings = lint_paths([str(tmp_path)])
        assert codes(findings) == ["RL401"]
        assert findings[0].context["subcommand"] == "frobnicate"

    def test_documented_subcommands_pass(self, tmp_path):
        (tmp_path / "README.md").write_text("frobnicate and explore\n")
        (tmp_path / "cli.py").write_text(self.CLI)
        assert lint_paths([str(tmp_path)]) == []

    def test_explicit_readme_override(self, tmp_path):
        (tmp_path / "README.md").write_text("nothing here\n")
        other = tmp_path / "DOCS.md"
        other.write_text("frobnicate and explore\n")
        (tmp_path / "cli.py").write_text(self.CLI)
        assert lint_paths([str(tmp_path)], readme=str(other)) == []


class TestLintDriver:
    def test_syntax_error_is_a_config_error(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(:\n")
        with pytest.raises(ConfigError):
            lint_paths([str(tmp_path)])

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("raise ValueError('x')\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_paths([str(tmp_path)]) == []

    def test_merged_tree_is_strict_clean(self):
        """Satellite (a): the shipped source passes its own linter."""
        findings = lint_paths([str(REPO_ROOT / "src")],
                              readme=str(REPO_ROOT / "README.md"))
        assert findings == [], [d.render() for d in findings]
