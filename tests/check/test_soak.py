"""RC6xx soak-report checks: a clean report passes, seeded defects pin codes."""

from __future__ import annotations

import copy
import json

import pytest

from repro.check import check_soak_report_dict, check_soak_report_file


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def _clean_report() -> dict:
    """A minimal well-formed soak report (hand-built, no soak run)."""
    return {
        "bench": "serve_soak",
        "config": {"requests": 100, "min_workers": 1, "max_workers": 4},
        "counts": {"submitted": 100, "completed": 90, "shed": 6,
                   "rejected": 4, "guaranteed_shed": 0,
                   "wrong_answers": 0, "spot_checks": 10},
        "shed_rate": 0.1,
        "latency_ms": {"p50": 1.0, "p99": 4.0, "p999": 9.0, "max": 12.0},
        "queue_wait_ms": {"p50": 0.5, "p99": 2.0, "p999": 3.0, "max": 3.5},
        "scale_events": [
            {"t": 0.5, "action": "up", "workers_from": 1, "workers_to": 2,
             "depth": 9, "reason": "sustained_backlog"},
            {"t": 2.5, "action": "down", "workers_from": 2, "workers_to": 1,
             "depth": 0, "reason": "idle"},
        ],
    }


@pytest.fixture()
def report():
    return copy.deepcopy(_clean_report())


class TestCleanReport:
    def test_passes(self, report):
        assert check_soak_report_dict(report) == []

    def test_file_round_trip_passes(self, report, tmp_path):
        path = tmp_path / "soak.json"
        path.write_text(json.dumps(report))
        assert check_soak_report_file(path) == []


class TestRC601Malformed:
    def test_non_object(self):
        assert codes(check_soak_report_dict([1, 2])) == ["RC601"]

    def test_missing_required_field(self, report):
        del report["shed_rate"]
        assert codes(check_soak_report_dict(report)) == ["RC601"]

    def test_count_that_is_not_a_count(self, report):
        report["counts"]["completed"] = -1
        assert codes(check_soak_report_dict(report)) == ["RC601"]
        report["counts"]["completed"] = True
        assert codes(check_soak_report_dict(report)) == ["RC601"]

    def test_malformed_scale_event(self, report):
        report["scale_events"].append({"action": "sideways"})
        assert "RC601" in codes(check_soak_report_dict(report))

    def test_malformed_quantiles(self, report):
        report["latency_ms"] = {"p50": 1.0}
        assert "RC601" in codes(check_soak_report_dict(report))

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "soak.json"
        path.write_text("{not json")
        assert codes(check_soak_report_file(path)) == ["RC601"]
        assert codes(check_soak_report_file(tmp_path / "nope.json")) \
            == ["RC601"]


class TestRC602WrongAnswers:
    def test_wrong_answers_flagged(self, report):
        report["counts"]["wrong_answers"] = 2
        assert "RC602" in codes(check_soak_report_dict(report))


class TestRC603Accounting:
    def test_unbalanced_resolution(self, report):
        report["counts"]["completed"] = 89  # one request vanished
        assert codes(check_soak_report_dict(report)) == ["RC603"]

    def test_more_wrong_than_checked(self, report):
        report["counts"]["wrong_answers"] = 11
        got = codes(check_soak_report_dict(report))
        assert "RC603" in got and "RC602" in got

    def test_shed_rate_mismatch(self, report):
        report["shed_rate"] = 0.5
        assert codes(check_soak_report_dict(report)) == ["RC603"]
        report["shed_rate"] = "lots"
        assert codes(check_soak_report_dict(report)) == ["RC603"]


class TestRC604GuaranteedShed:
    def test_guaranteed_shed_flagged(self, report):
        report["counts"]["guaranteed_shed"] = 1
        assert codes(check_soak_report_dict(report)) == ["RC604"]


class TestRC605ScaleEvents:
    def test_direction_contradicts_action(self, report):
        report["scale_events"][0]["action"] = "down"
        assert "RC605" in codes(check_soak_report_dict(report))

    def test_bounds_violation(self, report):
        report["scale_events"][0]["workers_to"] = 9
        got = check_soak_report_dict(report)
        assert "RC605" in codes(got)
        assert any("bounds" in d.message for d in got)

    def test_broken_chain(self, report):
        report["scale_events"][1]["workers_from"] = 3
        got = check_soak_report_dict(report)
        assert any("chain" in d.message for d in got)

    def test_bounds_skipped_without_config(self, report):
        del report["config"]["min_workers"]
        report["scale_events"][0]["workers_to"] = 9
        # direction still checks out; only the chain now breaks
        got = codes(check_soak_report_dict(report))
        assert got == ["RC605"]


class TestRC606Percentiles:
    def test_non_monotone_latency(self, report):
        report["latency_ms"]["p99"] = 100.0
        assert codes(check_soak_report_dict(report)) == ["RC606"]

    def test_non_monotone_queue_wait(self, report):
        report["queue_wait_ms"]["max"] = 0.0
        assert codes(check_soak_report_dict(report)) == ["RC606"]

    def test_tiny_float_noise_is_tolerated(self, report):
        report["latency_ms"]["p99"] = report["latency_ms"]["p999"] + 1e-12
        assert check_soak_report_dict(report) == []
