"""Broken fixture: two locks acquired in opposite orders.

``forward`` takes ``_src`` then ``_dst``; ``backward`` takes ``_dst``
then ``_src`` — the classic AB/BA deadlock. Keep this defect — the
fixture pins RL503.
"""

import threading


class Transfer:
    def __init__(self):
        self._src = threading.Lock()
        self._dst = threading.Lock()

    def forward(self, n):
        with self._src:
            with self._dst:  # seeded defect half: _src -> _dst
                return n

    def backward(self, n):
        with self._dst:
            with self._src:  # seeded defect half: _dst -> _src -> RL503
                return n
