"""Broken fixture: a blocking call made while holding a lock.

``refresh`` sleeps inside ``with self._lock`` — every other thread
touching the cache convoys behind the nap. Keep this defect — the
fixture pins RL502.
"""

import threading
import time


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def refresh(self, key):
        with self._lock:
            time.sleep(0.1)  # seeded defect: blocks under _lock -> RL502
            self.entries[key] = key

    def clear(self):
        with self._lock:
            self.entries.clear()
