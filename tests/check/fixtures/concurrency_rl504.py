"""Broken fixture: both halves of a lost wakeup.

``post`` notifies *outside* the condition (the wakeup can slip between
a waiter's predicate check and its wait), and ``take`` waits on a bare
``if`` (a spurious wakeup pops an empty list). Keep these defects —
the fixture pins RL504.
"""

import threading


class Mailbox:
    def __init__(self):
        self._cond = threading.Condition()
        self.items = []

    def post(self, item):
        with self._cond:
            self.items.append(item)
        self._cond.notify()  # seeded defect: notify outside the lock

    def take(self):
        with self._cond:
            if not self.items:
                self._cond.wait(0.1)  # seeded defect: not predicate-looped
            return self.items.pop()
