"""Broken fixture: a worker thread started before __init__ finishes.

The poller thread can read ``_interval`` and ``_stopped`` before the
constructor assigns them and die on AttributeError. Keep this defect —
the fixture pins RL505.
"""

import threading
import time


class Poller:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()  # seeded defect: attrs below not yet set
        self._interval = 0.5
        self._stopped = False

    def _run(self):
        while not self._stopped:
            time.sleep(self._interval)
