"""Broken fixture: a lock-guarded counter written without the lock.

``total`` is written under ``_lock`` in two methods and bare in one,
so the majority-of-accesses inference names ``_lock`` its guard and
the bare write is RL501. Keep this defect — the fixture pins the code.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n

    def drain(self):
        with self._lock:
            self.total = 0

    def sneak(self, n):
        self.total += n  # seeded defect: bypasses _lock -> RL501
