"""Diagnostic currency: codes, severities, and the report contract."""

import json

import pytest

from repro.check import CODES, CheckReport, Severity, diag


class TestDiag:
    def test_severity_defaults_from_registry(self):
        assert diag("RC101", "x").severity is Severity.ERROR
        assert diag("RC203", "x").severity is Severity.WARNING

    def test_explicit_severity_override(self):
        d = diag("RC104", "x", severity=Severity.WARNING)
        assert not d.is_error

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            diag("RC999", "no such code")

    def test_title_comes_from_registry(self):
        assert diag("RC401", "x").title == CODES["RC401"][1]

    def test_render_carries_code_site_context(self):
        text = diag("RC102", "too big", site="conv1", tip=(8, 8)).render()
        assert "RC102" in text and "conv1" in text and "tip=(8, 8)" in text

    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert isinstance(severity, Severity)
            assert title
            assert code[:2] in ("RC", "RL")


class TestCheckReport:
    def test_clean_report_exits_zero(self):
        report = CheckReport()
        report.extend("a", [])
        assert report.ok() and report.ok(strict=True)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0

    def test_error_always_exits_two(self):
        report = CheckReport()
        report.extend("a", [diag("RC101", "bad")])
        assert not report.ok()
        assert report.exit_code() == 2

    def test_warning_fails_only_under_strict(self):
        report = CheckReport()
        report.extend("a", [diag("RC203", "hmm")])
        assert report.ok() and not report.ok(strict=True)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 2

    def test_merge_folds_checks_and_findings(self):
        a, b = CheckReport(), CheckReport()
        a.extend("one", [diag("RC101", "x")])
        b.extend("two", [diag("RC203", "y")])
        a.merge(b)
        assert a.checks_run == ["one", "two"]
        assert len(a.errors) == 1 and len(a.warnings) == 1

    def test_json_round_trips(self):
        report = CheckReport()
        report.extend("geometry", [diag("RC106", "drift", site="conv2")])
        data = json.loads(report.to_json())
        assert data["errors"] == 1 and data["warnings"] == 0
        assert data["diagnostics"][0]["code"] == "RC106"
        assert data["diagnostics"][0]["site"] == "conv2"

    def test_render_summarises_counts(self):
        report = CheckReport()
        report.extend("a", [diag("RC101", "x"), diag("RC203", "y")])
        assert "1 errors, 1 warnings" in report.render()
