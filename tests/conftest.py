"""Shared fixtures: small networks that exercise every geometry feature.

Also installs a global per-test time cap (``REPRO_TEST_TIMEOUT_S``,
default 120 s) via SIGALRM, so a hung simulation fails one test with a
clear message instead of wedging the whole suite — the robustness
contract applied to the tests themselves. Skipped transparently where
SIGALRM is unavailable (non-main thread, non-POSIX platforms).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape
from repro.nn.stages import extract_levels

_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT_S", "120"))


@pytest.fixture(autouse=True)
def _per_test_time_cap(request):
    """Fail any single test that runs longer than the cap."""
    if (_TIMEOUT_S <= 0
            or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        pytest.fail(f"test exceeded the {_TIMEOUT_S}s per-test time cap "
                    f"(REPRO_TEST_TIMEOUT_S): {request.node.nodeid}",
                    pytrace=False)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def mini_vgg() -> Network:
    """A VGG-shaped net scaled to 32x32: 5 convs (pad 1) + 2 pools."""
    return Network(
        "miniVGG",
        TensorShape(3, 32, 32),
        [
            ConvSpec("c11", out_channels=8, kernel=3, stride=1, padding=1),
            ReLUSpec("r11"),
            ConvSpec("c12", out_channels=8, kernel=3, stride=1, padding=1),
            ReLUSpec("r12"),
            PoolSpec("p1", kernel=2, stride=2),
            ConvSpec("c21", out_channels=16, kernel=3, stride=1, padding=1),
            ReLUSpec("r21"),
            ConvSpec("c22", out_channels=16, kernel=3, stride=1, padding=1),
            ReLUSpec("r22"),
            PoolSpec("p2", kernel=2, stride=2),
            ConvSpec("c31", out_channels=32, kernel=3, stride=1, padding=1),
            ReLUSpec("r31"),
        ],
    )


@pytest.fixture
def mini_alex() -> Network:
    """An AlexNet-shaped net: strided conv, 3x3/s2 pool, grouped conv."""
    return Network(
        "miniAlex",
        TensorShape(3, 35, 35),
        [
            ConvSpec("c1", out_channels=8, kernel=7, stride=2),
            ReLUSpec("r1"),
            PoolSpec("p1", kernel=3, stride=2),
            ConvSpec("c2", out_channels=12, kernel=5, stride=1, padding=2, groups=2),
            ReLUSpec("r2"),
        ],
    )


@pytest.fixture
def mini_vgg_levels(mini_vgg):
    return extract_levels(mini_vgg)


@pytest.fixture
def mini_alex_levels(mini_alex):
    return extract_levels(mini_alex)
