"""SLO monitors: targets, violation accounting, burn-rate alerts."""

import pytest

from repro.errors import ConfigError
from repro.obs.slo import SLOMonitor, SLOTarget, render_slos
from repro.obs.timeline import Timeline


def monitor(**overrides) -> SLOMonitor:
    defaults = dict(latency_ms=5.0, error_budget=0.10, alert_threshold=2.0)
    defaults.update(overrides)
    return SLOMonitor(SLOTarget(**defaults),
                      timeline=Timeline(bucket_s=0.1, epoch=0.0))


class TestSLOTarget:
    def test_describe(self):
        target = SLOTarget(latency_ms=5.0, percentile=99.0,
                           error_budget=0.01)
        text = target.describe()
        assert "p99" in text and "5" in text

    @pytest.mark.parametrize("bad", [
        dict(latency_ms=0.0),
        dict(latency_ms=-1.0),
        dict(percentile=0.0),
        dict(percentile=101.0),
        dict(error_budget=0.0),
        dict(error_budget=1.5),
        dict(window_s=0.0),
        dict(alert_threshold=0.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigError):
            SLOTarget(**bad)


class TestSLOMonitor:
    def test_clean_stream_no_violations(self):
        mon = monitor()
        for _ in range(20):
            assert mon.observe(0.001) is False
        assert mon.violations == 0
        assert mon.burn_rate() == 0.0
        assert mon.alerts == 0
        assert not mon.breached()

    def test_latency_violation_counted(self):
        mon = monitor()
        assert mon.observe(0.050) is True  # 50 ms > 5 ms target
        assert mon.violations == 1
        assert mon.violation_fraction() == 1.0

    def test_failure_counts_as_violation(self):
        mon = monitor()
        assert mon.observe(0.0, ok=False) is True
        assert mon.failures == 1
        assert mon.violations == 1

    def test_burn_rate_is_fraction_over_budget(self):
        mon = monitor(error_budget=0.10)
        for _ in range(8):
            mon.observe(0.001)
        for _ in range(2):
            mon.observe(0.050)
        # 20% violating on a 10% budget -> burning 2x
        assert mon.burn_rate() == pytest.approx(2.0)

    def test_alert_fires_at_threshold(self):
        mon = monitor(error_budget=0.10, alert_threshold=2.0)
        for _ in range(5):
            mon.observe(0.001)
        assert mon.alerts == 0
        for _ in range(5):
            mon.observe(0.050)
        # the violating tail pushes burn rate past 2x -> alerts fired
        assert mon.burn_rate() > 2.0
        assert mon.alerts >= 1

    def test_windowed_burn_rate_uses_timeline(self):
        mon = monitor(error_budget=0.50)
        # two old violations, then a clean recent window
        mon.observe(0.050, ts=0.0)
        mon.observe(0.050, ts=0.1)
        for i in range(10):
            mon.observe(0.001, ts=10.0 + i * 0.01)
        # lifetime fraction includes the old violations ...
        assert mon.violation_fraction() == pytest.approx(2 / 12)
        # ... the trailing window does not (timeline epoch-pinned times
        # are far in the past relative to now(), so use the lifetime
        # total as the reference and the explicit window for the rest)
        now = mon.timeline.now()
        recent = mon.violation_fraction(window_s=max(now - 5.0, 1e-9))
        assert recent == 0.0

    def test_breached_tracks_quantile(self):
        mon = monitor()
        for _ in range(10):
            mon.observe(0.050)
        assert mon.breached()

    def test_summary_shape(self):
        mon = monitor()
        mon.observe(0.001)
        mon.observe(0.050)
        summary = mon.summary()
        assert summary["observed"] == 2
        assert summary["violations"] == 1
        assert "burn_rate" in summary
        assert "windowed_burn_rate" in summary
        assert any(key.startswith("p") and key.endswith("_ms")
                   for key in summary)

    def test_render_has_burn_rate_line(self):
        mon = monitor()
        mon.observe(0.001)
        text = mon.render()
        assert "burn-rate" in text
        assert "[ok" in text or "[breach" in text or "[ALERT" in text

    def test_render_slos_joins_monitors(self):
        a, b = monitor(name="latency"), monitor(name="errors")
        a.observe(0.001)
        b.observe(0.0, ok=False)
        text = render_slos([a, b])
        assert "latency" in text and "errors" in text
