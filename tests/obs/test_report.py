"""Human-readable run report rendering."""

from repro.obs import Registry, render_report
from repro.obs.report import MAX_SIBLINGS


def test_report_sections():
    registry = Registry()
    with registry.span("explore", network="vgg"):
        registry.add("explore.partitions_scored", 64)
    registry.add("sim.fused.dram_read_bytes", 2 ** 20)
    registry.gauge("sim.outputs_match", 1.0)
    registry.record_pipeline(
        stage_names=["load", "conv1"], stage_cycles=[2, 5], num_items=4,
        makespan=22, stage_finish=[(2, 7), (4, 12), (6, 17), (8, 22)])
    report = render_report(registry)
    assert "explore" in report and "network=vgg" in report
    assert "explore.partitions_scored" in report and "64" in report
    # Byte counters render scaled to MB.
    assert "1.000 MB" in report
    assert "pipeline pipeline0" in report
    assert "90.9%" in report  # conv1: 20 busy / 22 makespan
    assert "util" in report


def test_report_aggregates_repeated_siblings():
    registry = Registry()
    with registry.span("run"):
        for i in range(MAX_SIBLINGS + 4):
            with registry.span("pyramid", p=i):
                pass
    report = render_report(registry)
    assert f"pyramid x{MAX_SIBLINGS + 4}" in report
    assert "(aggregated)" in report
    # Individual repeats are collapsed.
    assert "p=3" not in report


def test_report_empty_registry():
    report = render_report(Registry())
    assert "(none)" in report
