"""The instrumented hot layers feed the registry correctly."""

import numpy as np

from repro import explore, obs, toynet, vggnet_e
from repro.hw.pipeline import StageTiming, simulate_pipeline
from repro.nn.stages import extract_levels
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input


class TestExplorerInstrumentation:
    def test_spans_and_counters(self):
        with obs.capture() as registry:
            result = explore(vggnet_e(), num_convs=5)
        names = {s.name for s in registry.spans}
        assert {"explore", "explore.enumerate", "explore.pareto",
                "partition.enumerate"} <= names
        assert registry.counters["explore.partitions_scored"] == result.num_partitions
        assert registry.counters["explore.partitions_pruned"] == (
            result.num_partitions - len(result.front))

    def test_disabled_explore_records_nothing(self):
        explore(vggnet_e(), num_convs=3)
        registry = obs.get_registry()
        assert "explore.partitions_scored" not in registry.counters


class TestSimulatorMirroring:
    def _run_fused(self):
        levels = extract_levels(toynet())
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        expected = reference.run(x)
        fused = FusedExecutor(levels, params=reference.params, integer=True)
        trace = TrafficTrace()
        got = fused.run(x, trace)
        assert np.array_equal(expected, got)
        return trace

    def test_fused_counters_match_trace_exactly(self):
        with obs.capture() as registry:
            trace = self._run_fused()
        assert registry.counters["sim.fused.dram_read_bytes"] == trace.dram_read_bytes
        assert registry.counters["sim.fused.dram_write_bytes"] == trace.dram_write_bytes
        assert registry.counters["sim.fused.dram_total_bytes"] == trace.dram_total_bytes
        assert registry.counters["sim.fused.ops"] == trace.ops
        assert registry.counters["sim.fused.macs"] == trace.macs

    def test_fused_per_label_counters_match_trace(self):
        with obs.capture() as registry:
            trace = self._run_fused()
        for label, (read_bytes, write_bytes, ops) in trace.by_label().items():
            if read_bytes:
                assert registry.counters[
                    f"sim.fused.dram_read_bytes[{label}]"] == read_bytes
            if write_bytes:
                assert registry.counters[
                    f"sim.fused.dram_write_bytes[{label}]"] == write_bytes

    def test_reference_mirrors_per_level(self):
        levels = extract_levels(toynet())
        x = make_input(levels[0].in_shape, integer=True)
        with obs.capture() as registry:
            trace = TrafficTrace()
            ReferenceExecutor(levels, integer=True).run(x, trace)
        assert registry.counters["sim.reference.dram_read_bytes"] == trace.dram_read_bytes
        level_spans = [s for s in registry.spans if s.name == "reference.level"]
        assert len(level_spans) == len(levels)

    def test_pyramid_spans_and_counter(self):
        with obs.capture() as registry:
            self._run_fused()
        pyramids = [s for s in registry.spans if s.name == "fused.pyramid"]
        assert pyramids
        assert registry.counters["sim.fused.pyramids"] == len(pyramids)
        assert "sim.fused.buffer_bytes" in registry.gauges


class TestPipelineInstrumentation:
    def test_schedule_recorded(self):
        stages = [StageTiming("a", 3), StageTiming("b", 5)]
        with obs.capture() as registry:
            schedule = simulate_pipeline(stages, 4, name="unit")
        (record,) = registry.pipelines
        assert record.name == "unit"
        assert record.makespan == schedule.makespan
        assert record.stage_finish == schedule.stage_finish
        assert registry.counters["pipeline.busy_cycles[b]"] == 4 * 5
        assert registry.counters["pipeline.idle_cycles[b]"] == schedule.makespan - 20

    def test_disabled_records_no_pipeline(self):
        before = len(obs.get_registry().pipelines)
        simulate_pipeline([StageTiming("a", 1)], 2)
        assert len(obs.get_registry().pipelines) == before
