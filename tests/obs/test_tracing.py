"""Tracer: span lifecycles, tree reconstruction, exporters."""

import json

from repro.check import check_trace_file
from repro.obs.tracing import Tracer


def build_request_trace(tracer, trace_id, requeue=False):
    """Emit one serve-shaped trace; returns the span ids used."""
    root = tracer.begin("serve.request", trace_id, request=trace_id)
    enq = tracer.begin("serve.enqueue", trace_id, parent_id=root)
    tracer.end(enq)
    if requeue:
        tracer.instant("serve.requeue", trace_id, parent_id=root)
        enq2 = tracer.begin("serve.enqueue", trace_id, parent_id=root,
                            requeued=True)
        tracer.end(enq2)
    batch = tracer.begin("serve.batch", trace_id, parent_id=root)
    execute = tracer.begin("serve.execute", trace_id, parent_id=batch)
    tracer.end(execute, status="ok")
    tracer.end(batch)
    tracer.end(root, status="ok")
    return root, batch, execute


class TestTracer:
    def test_begin_end_reconstructs(self):
        tracer = Tracer()
        build_request_trace(tracer, 0)
        assert tracer.trace_ids() == [0]
        spans = tracer.spans(0)
        assert [s.name for s in spans] == [
            "serve.request", "serve.enqueue", "serve.batch", "serve.execute"]
        assert all(s.complete for s in spans)
        assert tracer.complete(0)
        assert tracer.open_spans == 0

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("serve.request", 0)
        tracer.end(span)
        tracer.end(span)  # no-op, no duplicate END row
        tracer.end(-1)    # sentinel for "no span" is also a no-op
        assert len(list(tracer.store.rows())) == 2

    def test_incomplete_trace_reported(self):
        tracer = Tracer()
        tracer.begin("serve.request", 0)
        assert not tracer.complete(0)
        assert tracer.open_spans == 1
        assert not tracer.complete(99)  # unknown trace is not complete

    def test_span_tree_nesting(self):
        tracer = Tracer()
        build_request_trace(tracer, 0)
        roots = tracer.span_tree(0)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "serve.request"
        assert [c.name for c in root.children] == [
            "serve.enqueue", "serve.batch"]
        assert [c.name for c in root.children[1].children] == [
            "serve.execute"]
        assert root.find("serve.execute")[0].attrs["status"] == "ok"

    def test_end_attrs_merge_into_span(self):
        tracer = Tracer()
        span = tracer.begin("serve.request", 0, request=0)
        tracer.end(span, status="failed")
        got = tracer.spans(0)[0]
        assert got.attrs == {"request": 0, "status": "failed"}

    def test_instants_attach_to_parent(self):
        tracer = Tracer()
        root = tracer.begin("serve.request", 0)
        execute = tracer.begin("serve.execute", 0, parent_id=root)
        tracer.instant("serve.retry", 0, parent_id=execute, attempt=1)
        tracer.end(execute)
        tracer.end(root)
        exec_span = tracer.spans(0)[1]
        assert [e.name for e in exec_span.events] == ["serve.retry"]
        assert exec_span.events[0].attrs == {"attempt": 1}

    def test_traces_are_independent(self):
        tracer = Tracer()
        for trace_id in range(3):
            build_request_trace(tracer, trace_id)
        assert tracer.trace_ids() == [0, 1, 2]
        for trace_id in range(3):
            assert tracer.complete(trace_id)
            assert len(tracer.spans(trace_id)) == 4


class TestExports:
    def test_jsonl_roundtrip_passes_check(self, tmp_path):
        tracer = Tracer()
        build_request_trace(tracer, 0)
        build_request_trace(tracer, 1, requeue=True)
        path = tmp_path / "trace.jsonl"
        n = tracer.to_jsonl(str(path))
        assert n == 4 + 5
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert all(r["complete"] for r in records)
        requeued = [r for r in records
                    if r.get("attrs", {}).get("requeued")]
        assert len(requeued) == 1
        assert check_trace_file(str(path)) == []

    def test_chrome_trace_passes_check(self, tmp_path):
        tracer = Tracer()
        build_request_trace(tracer, 0)
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        span_events = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in span_events} == {
            "serve.request", "serve.enqueue", "serve.batch", "serve.execute"}
        assert check_trace_file(str(path)) == []

    def test_chrome_flow_arrows_pair_up(self, tmp_path):
        tracer = Tracer()
        build_request_trace(tracer, 0, requeue=True)
        events = tracer.chrome_events()
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        # enqueue -> batch -> ... hops: enqueue,enqueue,execute -> 2 arrows
        assert len(starts) == len(ends) == 2
        assert all(e["id"] == 0 for e in starts + ends)

    def test_chrome_lane_metadata(self):
        tracer = Tracer()
        build_request_trace(tracer, 0)
        events = tracer.chrome_events()
        labels = {e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        assert labels == {"requests", "queue", "batch", "execute"}

    def test_incomplete_span_fails_jsonl_check(self, tmp_path):
        tracer = Tracer()
        tracer.begin("serve.request", 0)
        path = tmp_path / "trace.jsonl"
        tracer.to_jsonl(str(path))
        codes = [d.code for d in check_trace_file(str(path))]
        assert "RC502" in codes
