"""Columnar event store: typed columns, filters, windows, eviction."""

import json

import pytest

from repro.obs.events import (BEGIN, CHUNK_ROWS, END, INSTANT, POINT, Column,
                              EventStore)


class TestColumn:
    def test_append_and_index(self):
        col = Column("d", chunk_rows=4)
        for i in range(10):
            col.append(float(i))
        assert len(col) == 10
        assert col[0] == 0.0
        assert col[9] == 9.0
        assert list(col.iter_values()) == [float(i) for i in range(10)]

    def test_chunking(self):
        col = Column("q", chunk_rows=4)
        for i in range(9):
            col.append(i)
        assert len(col.chunks) == 3
        assert [len(c) for c in col.chunks] == [4, 4, 1]

    def test_drop_chunks_shifts_offset(self):
        col = Column("d", chunk_rows=4)
        for i in range(12):
            col.append(float(i))
        col.drop_chunks(1)
        assert col.offset == 4
        assert len(col) == 12  # absolute length is stable
        assert col[4] == 4.0  # absolute row ids keep working
        with pytest.raises(IndexError):
            col[3]  # evicted


class TestEventStore:
    def test_append_and_totals(self):
        store = EventStore()
        store.append("a.x", ts=0.0, value=2.0)
        store.append("a.x", ts=1.0, value=3.0)
        store.append("a.y", ts=2.0)
        assert store.totals() == {"a.x": (2, 5.0), "a.y": (1, 1.0)}
        assert len(store) == 3

    def test_name_interning(self):
        store = EventStore()
        assert store.name_id("a.x") == store.name_id("a.x")
        assert store.name_id("a.y") != store.name_id("a.x")

    def test_rows_filters(self):
        store = EventStore()
        store.append("a.x", ts=0.0, kind=POINT)
        store.append("a.span", ts=1.0, kind=BEGIN, trace=7, span=1)
        store.append("a.span", ts=2.0, kind=END, trace=7, span=1)
        store.append("a.x", ts=3.0, kind=POINT)
        assert len(list(store.rows(name="a.x"))) == 2
        assert len(list(store.rows(kind=BEGIN))) == 1
        assert len(list(store.rows(trace=7))) == 2
        assert list(store.rows(name="missing")) == []

    def test_attrs_side_table(self):
        store = EventStore()
        row = store.append("a.x", ts=0.0, attrs={"k": "v"})
        store.append("a.x", ts=1.0)
        events = list(store.rows())
        assert events[0].row == row
        assert events[0].attrs == {"k": "v"}
        assert events[1].attrs is None

    def test_window_counts_points_only(self):
        store = EventStore()
        store.append("a.x", ts=0.5, value=2.0)
        store.append("a.x", ts=1.5, value=4.0)
        store.append("a.x", ts=2.5, value=8.0)
        store.append("a.span", ts=1.0, kind=BEGIN)
        assert store.window("a.x", 1.0, 3.0) == (2, 12.0)
        assert store.window("a.x") == (3, 14.0)
        assert store.window("a.span") == (0, 0.0)

    def test_bucket_series(self):
        store = EventStore()
        for ts in (0.1, 0.2, 1.1, 2.9):
            store.append("a.x", ts=ts, value=1.0)
        series = store.bucket_series("a.x", bucket_s=1.0)
        assert series == [(0.0, 2, 2.0), (1.0, 1, 1.0), (2.0, 1, 1.0)]
        assert store.bucket_series("missing", 1.0) == []

    def test_eviction_bounds_memory_keeps_totals(self):
        store = EventStore(max_rows=8, chunk_rows=4)
        for i in range(20):
            store.append("a.x", ts=float(i), value=1.0)
        assert store.resident_rows <= 8
        assert store.evicted_rows == 20 - store.resident_rows
        # lifetime totals survive eviction
        assert store.totals() == {"a.x": (20, 20.0)}
        # retained rows keep their absolute ids and the newest data
        retained = list(store.rows())
        assert retained[-1].ts == 19.0
        assert retained[0].row == store.evicted_rows

    def test_summary_shape(self):
        store = EventStore(max_rows=8, chunk_rows=4)
        for i in range(10):
            store.append("a.x", ts=float(i))
        summary = store.summary()
        assert summary["rows"] == 10
        assert summary["resident_rows"] <= 8
        assert summary["evicted_rows"] >= 1
        assert summary["totals"]["a.x"]["count"] == 10

    def test_to_jsonl(self, tmp_path):
        store = EventStore()
        store.append("a.x", ts=0.0, value=2.0)
        store.append("a.i", ts=1.0, kind=INSTANT, trace=3, span=4, parent=2)
        path = tmp_path / "events.jsonl"
        assert store.to_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["name"] == "a.x"
        assert lines[0]["kind"] == "point"
        assert lines[1]["kind"] == "instant"
        assert lines[1]["trace"] == 3

    def test_default_chunk_rows(self):
        store = EventStore()
        assert store.ts.chunk_rows == CHUNK_ROWS
