"""Benchmark diffing: flatten, direction heuristics, regression flags."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.benchdiff import (MetricDelta, diff_benchmarks, direction,
                                 flatten, render_diff)


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestFlatten:
    def test_nested_paths(self):
        flat = flatten({"a": {"b": 1, "c": 2.5}, "d": 3})
        assert flat == {"a.b": 1.0, "a.c": 2.5, "d": 3.0}

    def test_lists_indexed(self):
        flat = flatten({"xs": [1, {"y": 2}]})
        assert flat == {"xs[0]": 1.0, "xs[1].y": 2.0}

    def test_non_numeric_leaves_skipped(self):
        flat = flatten({"name": "toynet", "ok": True, "n": 4})
        assert flat == {"n": 4.0}


class TestDirection:
    @pytest.mark.parametrize("path,expected", [
        ("serve.p99_ms", -1),
        ("latency.mean", -1),
        ("total_cycles", -1),
        ("requests_per_s", +1),
        ("cache.hits", +1),
        ("improvement", +1),
        ("generations", 0),
    ])
    def test_heuristics(self, path, expected):
        assert direction(path) == expected

    def test_longest_fragment_wins(self):
        # "hits_ms" contains both "hits" (+1) and "_ms" (-1); the metric
        # is a latency, and per_s beats _s-style confusion the same way
        assert direction("requests_per_s") == +1

    @pytest.mark.parametrize("path", [
        "shed_rate",
        "counts.shed",
        "counts.wrong_answers",
        "counts.guaranteed_shed",
        "latency_ms.p999",
    ])
    def test_soak_metrics_read_lower_is_better(self, path):
        # the overload-soak report's headline metrics all improve downward
        assert direction(path) == -1


class TestMetricDelta:
    def test_regressed_lower_is_better(self):
        delta = MetricDelta("p99_ms", before=2.0, after=3.0, direction=-1)
        assert delta.change == pytest.approx(0.5)
        assert delta.regressed(0.10)
        assert not delta.improved(0.10)

    def test_regressed_higher_is_better(self):
        delta = MetricDelta("requests_per_s", before=100.0, after=80.0,
                            direction=+1)
        assert delta.regressed(0.10)

    def test_unknown_direction_never_flags(self):
        delta = MetricDelta("generations", before=1.0, after=100.0,
                            direction=0)
        assert not delta.regressed(0.10)
        assert not delta.improved(0.10)

    def test_within_threshold_not_flagged(self):
        delta = MetricDelta("p99_ms", before=2.0, after=2.1, direction=-1)
        assert not delta.regressed(0.10)

    def test_change_from_zero(self):
        assert MetricDelta("x_ms", 0.0, 1.0, -1).change == float("inf")
        assert MetricDelta("x_ms", 0.0, 0.0, -1).change == 0.0


class TestDiffBenchmarks:
    def test_pairs_flags_added_removed(self, tmp_path):
        base = write(tmp_path, "base.json",
                     {"p99_ms": 2.0, "hits": 10, "old": 1})
        cur = write(tmp_path, "cur.json",
                    {"p99_ms": 4.0, "hits": 12, "new": 1})
        diff = diff_benchmarks(base, cur, threshold=0.10)
        assert [d.path for d in diff.deltas] == ["hits", "p99_ms"]
        assert [d.path for d in diff.regressions] == ["p99_ms"]
        assert [d.path for d in diff.improvements] == ["hits"]
        assert diff.added == ["new"]
        assert diff.removed == ["old"]
        payload = diff.to_dict()
        assert payload["regressions"] == ["p99_ms"]
        assert payload["compared"] == 2

    def test_added_metrics_never_regress(self, tmp_path):
        base = write(tmp_path, "base.json", {"a_ms": 1.0})
        cur = write(tmp_path, "cur.json", {"a_ms": 1.0, "b_ms": 999.0})
        diff = diff_benchmarks(base, cur)
        assert diff.regressions == []
        assert diff.added == ["b_ms"]

    def test_bad_files_rejected(self, tmp_path):
        good = write(tmp_path, "good.json", {"a": 1})
        with pytest.raises(ConfigError):
            diff_benchmarks(str(tmp_path / "missing.json"), good)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            diff_benchmarks(good, str(bad))
        arr = write(tmp_path, "arr.json", [1, 2])
        with pytest.raises(ConfigError):
            diff_benchmarks(good, arr)

    def test_bad_threshold_rejected(self, tmp_path):
        good = write(tmp_path, "good.json", {"a": 1})
        with pytest.raises(ConfigError):
            diff_benchmarks(good, good, threshold=-0.1)

    def test_render(self, tmp_path):
        base = write(tmp_path, "base.json", {"p99_ms": 2.0, "gen": 1})
        cur = write(tmp_path, "cur.json", {"p99_ms": 4.0, "gen": 2})
        diff = diff_benchmarks(base, cur)
        text = render_diff(diff)
        assert "REGRESSED" in text
        assert "1 regressions" in text
        # verbose also lists the unflagged/unknown-direction metrics
        assert "gen" in render_diff(diff, verbose=True)
