"""Timeline metrics: rolling quantiles and time-bucketed rates."""

import pytest

from repro.errors import ConfigError
from repro.obs.timeline import RollingQuantile, Timeline


class TestRollingQuantile:
    def test_quantiles_exact_small(self):
        window = RollingQuantile(window=16)
        for value in [1.0, 2.0, 3.0, 4.0]:
            window.observe(value)
        assert window.quantile(50) == 2.0
        assert window.quantile(100) == 4.0
        assert window.quantile(0) == 1.0

    def test_window_keeps_recent_only(self):
        window = RollingQuantile(window=4)
        for value in range(100):
            window.observe(float(value))
        assert len(window) == 4
        assert sorted(window.snapshot()) == [96.0, 97.0, 98.0, 99.0]
        assert window.quantile(50) >= 96.0

    def test_lifetime_count_and_total_survive_eviction(self):
        window = RollingQuantile(window=4)
        for value in range(10):
            window.observe(float(value))
        assert window.count == 10
        assert window.total == sum(range(10))

    def test_min_max_mean(self):
        window = RollingQuantile(window=8)
        for value in [3.0, 1.0, 2.0]:
            window.observe(value)
        assert window.minimum == 1.0
        assert window.maximum == 3.0
        assert window.mean() == pytest.approx(2.0)

    def test_empty(self):
        window = RollingQuantile()
        assert window.quantile(99) == 0.0
        assert window.mean() == 0.0
        assert len(window) == 0

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigError):
            RollingQuantile(window=0)


class TestTimeline:
    def make(self):
        # pinned epoch so tests control timestamps explicitly
        return Timeline(bucket_s=1.0, epoch=0.0)

    def test_record_and_series(self):
        timeline = self.make()
        timeline.record("serve.ok", ts=0.1)
        timeline.record("serve.ok", ts=0.2, value=2.0)
        timeline.record("serve.ok", ts=1.5)
        series = timeline.series("serve.ok")
        assert series == [(0.0, 2, 3.0), (1.0, 1, 1.0)]

    def test_window_sum_and_count(self):
        timeline = self.make()
        for ts in (0.5, 1.5, 2.5):
            timeline.record("a.x", ts=ts, value=2.0)
        assert timeline.window_count("a.x", 1.0, 3.0) == 2
        assert timeline.window_sum("a.x", 1.0, 3.0) == 4.0

    def test_rate_over_window(self):
        timeline = self.make()
        for ts in (0.0, 1.0, 2.0, 3.0):
            timeline.record("a.x", ts=ts)
        # 4 events in the 4 seconds ending at t=4 -> 1/s
        assert timeline.rate("a.x", window_s=4.0, now=4.0) == pytest.approx(1.0)
        # value_rate scales by the recorded values
        assert timeline.value_rate("a.x", window_s=4.0, now=4.0) \
            == pytest.approx(1.0)

    def test_names_and_to_dict(self):
        timeline = self.make()
        timeline.record("b.y", ts=0.0)
        timeline.record("a.x", ts=0.0)
        assert timeline.names() == ["a.x", "b.y"]
        payload = timeline.to_dict()
        assert payload["bucket_s"] == 1.0
        assert set(payload["series"]) == {"a.x", "b.y"}
        assert payload["series"]["a.x"][0]["count"] == 1

    def test_max_rows_bounds_store(self):
        # eviction is whole-chunk, so resident stays within one chunk of
        # the cap once the stream exceeds a chunk
        timeline = Timeline(bucket_s=1.0, epoch=0.0, max_rows=64)
        n = 10_000
        for i in range(n):
            timeline.record("a.x", ts=float(i))
        store = timeline.store
        assert store.resident_rows < n
        assert store.resident_rows <= 64 + store.ts.chunk_rows
        assert store.evicted_rows == n - store.resident_rows
        # totals stay lifetime-exact
        assert store.totals()["a.x"][0] == n

    def test_bad_bucket_rejected(self):
        with pytest.raises(ConfigError):
            Timeline(bucket_s=0.0)
