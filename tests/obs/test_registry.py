"""Instrumentation core: spans, counters, gauges, enable/disable."""

import pytest

from repro import obs
from repro.obs import NOOP_SPAN, Registry


class TestRegistrySpans:
    def test_span_records_wall_and_cpu(self):
        registry = Registry()
        with registry.span("work"):
            sum(range(1000))
        (span,) = registry.spans
        assert span.name == "work"
        assert span.wall_s >= 0
        assert span.cpu_s >= 0
        assert span.parent_id is None and span.depth == 0

    def test_nesting_tracks_parent_and_depth(self):
        registry = Registry()
        with registry.span("outer"):
            with registry.span("inner"):
                with registry.span("leaf"):
                    pass
            with registry.span("sibling"):
                pass
        outer, inner, leaf, sibling = registry.spans
        assert inner.parent_id == outer.id and inner.depth == 1
        assert leaf.parent_id == inner.id and leaf.depth == 2
        assert sibling.parent_id == outer.id and sibling.depth == 1

    def test_span_attrs_and_set(self):
        registry = Registry()
        with registry.span("s", network="vgg") as span:
            span.set(points=64)
        assert registry.spans[0].attrs == {"network": "vgg", "points": 64}

    def test_span_closes_on_exception(self):
        registry = Registry()
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                raise RuntimeError("x")
        assert registry.spans[0].end_s >= registry.spans[0].start_s
        # The stack unwound: a new span is again a root.
        with registry.span("after"):
            pass
        assert registry.spans[1].depth == 0


class TestCountersGauges:
    def test_counters_accumulate(self):
        registry = Registry()
        registry.add("hits")
        registry.add("hits", 4)
        assert registry.counter("hits") == 5
        assert registry.counter("missing") == 0

    def test_gauge_last_write_wins(self):
        registry = Registry()
        registry.gauge("util", 0.4)
        registry.gauge("util", 0.9)
        assert registry.gauges["util"] == 0.9

    def test_to_dict_roundtrips_structure(self):
        registry = Registry()
        with registry.span("a", k=1):
            registry.add("c", 2)
        registry.gauge("g", 3.5)
        snapshot = registry.to_dict()
        assert snapshot["spans"][0]["name"] == "a"
        assert snapshot["spans"][0]["attrs"] == {"k": 1}
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 3.5}
        assert snapshot["pipelines"] == []


class TestPipelineRecord:
    def test_busy_idle_utilization(self):
        registry = Registry()
        record = registry.record_pipeline(
            stage_names=["a", "b"], stage_cycles=[3, 5], num_items=4,
            makespan=23, stage_finish=[(3, 8), (6, 13), (9, 18), (12, 23)])
        assert record.busy_cycles(1) == 20
        assert record.idle_cycles(1) == 3
        assert record.utilization(1) == pytest.approx(20 / 23)
        assert record.name == "pipeline0"

    def test_zero_makespan_utilization(self):
        record = Registry().record_pipeline(
            stage_names=["a"], stage_cycles=[0], num_items=0,
            makespan=0, stage_finish=[])
        assert record.utilization(0) == 0.0


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self):
        """The disabled hot path allocates nothing: every span() call
        returns the same do-nothing context manager."""
        assert not obs.enabled()
        assert obs.span("anything", x=1) is NOOP_SPAN
        assert obs.span("other") is NOOP_SPAN
        with obs.span("ignored") as span:
            assert span.set(a=1) is span

    def test_disabled_counters_record_nothing(self):
        before = dict(obs.get_registry().counters)
        obs.add_counter("ghost", 7)
        obs.set_gauge("ghost_gauge", 1.0)
        assert obs.get_registry().counters == before
        assert "ghost_gauge" not in obs.get_registry().gauges
        assert obs.record_pipeline(["a"], [1], 1, 1, [(1,)]) is None

    def test_capture_enables_then_restores(self):
        assert not obs.enabled()
        with obs.capture() as registry:
            assert obs.enabled()
            with obs.span("inside"):
                obs.add_counter("n", 3)
        assert not obs.enabled()
        assert registry.spans[0].name == "inside"
        assert registry.counters["n"] == 3
        # Post-capture activity does not leak into the captured registry.
        obs.add_counter("n", 100)
        assert registry.counters["n"] == 3

    def test_capture_nested_keeps_outer_registry(self):
        with obs.capture() as outer:
            with obs.capture(fresh=False) as inner:
                assert inner is outer
                obs.add_counter("x")
            assert obs.enabled()
            obs.add_counter("x")
        assert outer.counters["x"] == 2
        assert not obs.enabled()
