"""Chrome Trace Event Format export validity."""

import json

from repro.obs import Registry, chrome_trace, write_chrome_trace

REQUIRED_KEYS = {"name", "ph", "pid", "tid"}


def make_registry() -> Registry:
    registry = Registry()
    with registry.span("explore", network="vgg"):
        with registry.span("explore.enumerate"):
            pass
    registry.add("explore.partitions_scored", 64)
    registry.record_pipeline(
        stage_names=["load", "conv1", "store"], stage_cycles=[2, 5, 1],
        num_items=3, makespan=18,
        stage_finish=[(2, 7, 8), (4, 12, 13), (6, 17, 18)],
        name="demo")
    return registry


class TestChromeTrace:
    def test_events_have_required_keys(self):
        trace = chrome_trace(make_registry())
        assert isinstance(trace["traceEvents"], list)
        for event in trace["traceEvents"]:
            assert REQUIRED_KEYS <= set(event), event
            assert event["ph"] in {"X", "M", "C"}

    def test_complete_events_have_nonnegative_ts_dur(self):
        for event in chrome_trace(make_registry())["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0

    def test_span_events_on_main_thread(self):
        events = chrome_trace(make_registry())["traceEvents"]
        spans = [e for e in events if e.get("cat") == "span"]
        assert {e["name"] for e in spans} == {"explore", "explore.enumerate"}
        assert all(e["pid"] == 1 and e["tid"] == 1 for e in spans)

    def test_pipeline_one_track_per_stage(self):
        events = chrome_trace(make_registry())["traceEvents"]
        pipe = [e for e in events if e.get("cat") == "pipeline"]
        # 3 items x 3 stages, each stage on its own tid.
        assert len(pipe) == 9
        assert {e["tid"] for e in pipe} == {1, 2, 3}
        by_stage = {e["tid"]: e for e in pipe if e["args"]["item"] == 0}
        # Item 0 at stage "conv1": finished at 7 after 5 cycles -> busy [2, 7).
        assert by_stage[2]["ts"] == 2.0 and by_stage[2]["dur"] == 5.0

    def test_pipeline_thread_names_metadata(self):
        events = chrome_trace(make_registry())["traceEvents"]
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert "stage 1: conv1" in names

    def test_counter_event_mirrors_counters(self):
        events = chrome_trace(make_registry())["traceEvents"]
        (counter,) = [e for e in events if e["ph"] == "C"]
        assert counter["args"]["explore.partitions_scored"] == 64

    def test_json_serializable_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), make_registry())
        parsed = json.loads(path.read_text())
        assert parsed["displayTimeUnit"] == "ms"
        assert len(parsed["traceEvents"]) >= 9

    def test_empty_registry_still_valid(self):
        trace = chrome_trace(Registry())
        assert all(e["ph"] == "M" for e in trace["traceEvents"])
        json.dumps(trace)
