"""The deterministic fault-decision engine."""

from repro import obs
from repro.faults import FaultInjector, FaultPlan


def decisions(injector, sites):
    return [injector.corrupts(site) for site in sites]


SITES = [f"line[{i}]" for i in range(200)]


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan.parse("transfer_corrupt:p=0.5", seed=11)
        assert decisions(plan.injector(), SITES) == decisions(plan.injector(), SITES)

    def test_different_seeds_differ(self):
        a = FaultPlan.parse("transfer_corrupt:p=0.5", seed=1).injector()
        b = FaultPlan.parse("transfer_corrupt:p=0.5", seed=2).injector()
        assert decisions(a, SITES) != decisions(b, SITES)

    def test_order_insensitive_across_sites(self):
        """Querying sites in any order gives the same per-site answers."""
        plan = FaultPlan.parse("transfer_corrupt:p=0.5", seed=4)
        forward = dict(zip(SITES, decisions(plan.injector(), SITES)))
        backward = dict(zip(reversed(SITES),
                            decisions(plan.injector(), list(reversed(SITES)))))
        assert forward == backward

    def test_per_site_streams_advance(self):
        """Repeated draws at one site are a stream, not a constant."""
        inj = FaultPlan.parse("transfer_corrupt:p=0.5", seed=0).injector()
        draws = [inj.corrupts("line[0]") for _ in range(100)]
        assert True in draws and False in draws


class TestProbabilityExtremes:
    def test_p_zero_never_trips(self):
        inj = FaultPlan.parse("transfer_corrupt:p=0", seed=0).injector()
        assert not any(decisions(inj, SITES))
        assert inj.total_injected == 0

    def test_p_one_always_trips(self):
        inj = FaultPlan.parse("transfer_corrupt:p=1", seed=0).injector()
        assert all(decisions(inj, SITES))
        assert inj.counts["transfer_corrupt"] == len(SITES)


class TestDecisionAPI:
    def test_empty_plan_disabled_and_inert(self):
        inj = FaultInjector()
        assert not inj.enabled
        assert inj.transfer_stalls("channel[load]#0") == 0
        assert not inj.corrupts("line[0]")
        assert inj.stage_stall_cycles("conv1", "conv1#0") == 0
        assert inj.bandwidth_factor(100) == 1.0
        assert inj.total_injected == 0

    def test_transfer_stalls_return_cycles(self):
        inj = FaultPlan.parse("dram_stall:p=1,cycles=17", seed=0).injector()
        assert inj.transfer_stalls("channel[load]#0") == 17

    def test_stage_filter_restricts_to_named_stage(self):
        inj = FaultPlan.parse("stage_stall:p=1,cycles=5,stage=conv1",
                              seed=0).injector()
        assert inj.stage_stall_cycles("conv1", "conv1#0") == 5
        assert inj.stage_stall_cycles("pool1", "pool1#0") == 0

    def test_bandwidth_factor_after_cycle(self):
        inj = FaultPlan.parse("bandwidth_degrade:factor=0.5,after_cycle=100",
                              seed=0).injector()
        assert inj.bandwidth_factor(99) == 1.0
        assert inj.bandwidth_factor(100) == 0.5
        assert inj.bandwidth_factor(5000) == 0.5
        # Activation is tallied once, not per query.
        assert inj.counts["bandwidth_degrade"] == 1

    def test_resilience_bookkeeping(self):
        inj = FaultPlan.parse("dram_stall:p=1", seed=0).injector()
        inj.record_retry("site", backoff_cycles=8)
        inj.record_retry("site", backoff_cycles=16)
        inj.record_refetch("line[3]")
        assert inj.counts["retries"] == 2
        assert inj.counts["refetches"] == 1


class TestObsMirroring:
    def test_injections_counted_in_registry(self):
        plan = FaultPlan.parse("transfer_corrupt:p=1", seed=0)
        with obs.capture() as registry:
            inj = plan.injector()
            inj.corrupts("line[0]")
            inj.corrupts("line[1]")
            inj.record_refetch("line[0]")
            inj.record_retry("line[0]", backoff_cycles=32)
        counters = registry.to_dict()["counters"]
        assert counters["faults.injected[transfer_corrupt]"] == 2
        assert counters["faults.refetches"] == 1
        assert counters["faults.retries"] == 1
        assert counters["faults.backoff_cycles"] == 32
