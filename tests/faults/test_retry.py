"""Bounded retry with exponential backoff."""

import pytest

from repro.errors import ConfigError, SimFaultError
from repro.faults import RetryPolicy


class TestBackoff:
    def test_geometric_growth(self):
        policy = RetryPolicy(base_cycles=8, multiplier=2.0,
                             max_backoff_cycles=1024)
        assert [policy.backoff_cycles(a) for a in (1, 2, 3, 4)] == [8, 16, 32, 64]

    def test_capped_at_max(self):
        policy = RetryPolicy(base_cycles=8, multiplier=2.0, max_backoff_cycles=20)
        assert policy.backoff_cycles(1) == 8
        assert policy.backoff_cycles(2) == 16
        assert policy.backoff_cycles(3) == 20
        assert policy.backoff_cycles(50) == 20

    def test_multiplier_one_is_constant(self):
        policy = RetryPolicy(base_cycles=5, multiplier=1.0)
        assert policy.backoff_cycles(1) == policy.backoff_cycles(9) == 5

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigError):
            RetryPolicy().backoff_cycles(0)


class TestJitter:
    def test_default_policy_keeps_the_classic_schedule(self):
        # jitter defaults off: the pinned geometric sequence is untouched
        policy = RetryPolicy()
        assert [policy.backoff_cycles(a, site="serve[3]")
                for a in (1, 2, 3, 4)] == [8, 16, 32, 64]

    def test_same_seed_same_site_is_byte_identical(self):
        a = RetryPolicy(jitter=0.5, seed=7)
        b = RetryPolicy(jitter=0.5, seed=7)
        seq = [a.backoff_cycles(n, site="channel[load]#2")
               for n in range(1, 9)]
        assert seq == [b.backoff_cycles(n, site="channel[load]#2")
                       for n in range(1, 9)]

    def test_sites_decorrelate(self):
        policy = RetryPolicy(jitter=1.0, seed=0)
        seqs = {site: tuple(policy.backoff_cycles(n, site=site)
                            for n in range(1, 9))
                for site in ("serve[0]", "serve[1]", "serve[2]")}
        assert len(set(seqs.values())) == 3  # no thundering herd

    def test_seed_changes_the_stream(self):
        base = [RetryPolicy(jitter=1.0, seed=1).backoff_cycles(n, site="s")
                for n in range(1, 9)]
        other = [RetryPolicy(jitter=1.0, seed=2).backoff_cycles(n, site="s")
                 for n in range(1, 9)]
        assert base != other

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(base_cycles=100, multiplier=2.0,
                             max_backoff_cycles=1024, jitter=0.5, seed=3)
        for attempt in range(1, 12):
            nominal = min(int(100 * 2.0 ** (attempt - 1)), 1024)
            got = policy.backoff_cycles(attempt, site=f"serve[{attempt}]")
            # +-25% of nominal (rounding slack of 1), never over the cap
            assert abs(got - nominal) <= nominal * 0.25 + 1
            assert 0 <= got <= 1024

    def test_zero_nominal_stays_zero(self):
        policy = RetryPolicy(base_cycles=0, jitter=1.0)
        assert policy.backoff_cycles(1, site="x") == 0

    def test_jitter_outside_unit_interval_is_diagnosed(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)


class TestValidation:
    def test_max_attempts_at_least_one(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(base_cycles=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(max_backoff_cycles=-1)

    def test_multiplier_below_one_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)


class TestExhausted:
    def test_returns_sim_fault_error_with_context(self):
        err = RetryPolicy(max_attempts=3).exhausted(
            "channel[load]#2", "dram_stall", stage="load", item=2)
        assert isinstance(err, SimFaultError)
        assert isinstance(err, RuntimeError)
        assert err.context["site"] == "channel[load]#2"
        assert err.context["kind"] == "dram_stall"
        assert err.context["max_attempts"] == 3
        assert err.context["item"] == 2
        assert "persisted through 3 attempts" in str(err)
