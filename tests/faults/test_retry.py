"""Bounded retry with exponential backoff."""

import pytest

from repro.errors import ConfigError, SimFaultError
from repro.faults import RetryPolicy


class TestBackoff:
    def test_geometric_growth(self):
        policy = RetryPolicy(base_cycles=8, multiplier=2.0,
                             max_backoff_cycles=1024)
        assert [policy.backoff_cycles(a) for a in (1, 2, 3, 4)] == [8, 16, 32, 64]

    def test_capped_at_max(self):
        policy = RetryPolicy(base_cycles=8, multiplier=2.0, max_backoff_cycles=20)
        assert policy.backoff_cycles(1) == 8
        assert policy.backoff_cycles(2) == 16
        assert policy.backoff_cycles(3) == 20
        assert policy.backoff_cycles(50) == 20

    def test_multiplier_one_is_constant(self):
        policy = RetryPolicy(base_cycles=5, multiplier=1.0)
        assert policy.backoff_cycles(1) == policy.backoff_cycles(9) == 5

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigError):
            RetryPolicy().backoff_cycles(0)


class TestValidation:
    def test_max_attempts_at_least_one(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(base_cycles=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(max_backoff_cycles=-1)

    def test_multiplier_below_one_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)


class TestExhausted:
    def test_returns_sim_fault_error_with_context(self):
        err = RetryPolicy(max_attempts=3).exhausted(
            "channel[load]#2", "dram_stall", stage="load", item=2)
        assert isinstance(err, SimFaultError)
        assert isinstance(err, RuntimeError)
        assert err.context["site"] == "channel[load]#2"
        assert err.context["kind"] == "dram_stall"
        assert err.context["max_attempts"] == 3
        assert err.context["item"] == 2
        assert "persisted through 3 attempts" in str(err)
