"""Property tests for the fault-plan DSL: parse/str round-trips.

Hypothesis generates plans across the whole parameter space; the pinned
example-based tests in test_spec.py stay the readable specification,
these guard the corners (extreme floats, clause ordering, overrides).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ConfigError  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.faults.spec import _SCHEMAS  # noqa: E402

COMMON = settings(max_examples=50, deadline=None)

_probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_cycles = st.integers(min_value=0, max_value=10**9)
_stages = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.-",
                  min_size=1, max_size=16)
_factors = st.floats(min_value=0.0, max_value=1.0, exclude_min=True,
                     allow_nan=False)


@st.composite
def _clause(draw) -> str:
    """One valid textual clause, possibly leaving params at defaults."""
    kind = draw(st.sampled_from(sorted(_SCHEMAS)))
    pools = {
        "dram_stall": {"p": _probs, "cycles": _cycles},
        "bandwidth_degrade": {"factor": _factors, "after_cycle": _cycles},
        "stage_stall": {"p": _probs, "cycles": _cycles, "stage": _stages},
        "transfer_corrupt": {"p": _probs},
    }[kind]
    chosen = draw(st.sets(st.sampled_from(sorted(pools))))
    body = ",".join(f"{name}={draw(pools[name])}" for name in sorted(chosen))
    return f"{kind}:{body}" if body else kind


@st.composite
def _plan_text(draw) -> str:
    return ";".join(draw(st.lists(_clause(), min_size=1, max_size=4)))


class TestRoundTrip:
    @COMMON
    @given(text=_plan_text(), seed=st.integers(min_value=0, max_value=2**31))
    def test_parse_str_parse_is_identity(self, text, seed):
        plan = FaultPlan.parse(text, seed=seed)
        assert FaultPlan.parse(str(plan), seed=seed) == plan

    @COMMON
    @given(text=_plan_text())
    def test_str_is_a_fixed_point(self, text):
        rendered = str(FaultPlan.parse(text))
        assert str(FaultPlan.parse(rendered)) == rendered

    @COMMON
    @given(text=_plan_text())
    def test_at_most_one_spec_per_kind(self, text):
        plan = FaultPlan.parse(text)
        assert len(plan.kinds) == len(set(plan.kinds))

    @COMMON
    @given(first=_clause(), second=_clause())
    def test_later_clause_overrides_earlier_same_kind(self, first, second):
        a = FaultPlan.parse(first)
        b = FaultPlan.parse(second)
        combined = FaultPlan.parse(f"{first};{second}")
        if a.kinds == b.kinds:  # same kind: the later clause wins outright
            assert combined.specs == b.specs
        else:
            assert combined.spec(b.kinds[0]) == b.specs[0]


class TestMalformed:
    @COMMON
    @given(kind=st.text(min_size=1, max_size=12).filter(
        lambda s: s.strip() and s.strip() not in _SCHEMAS
        and ";" not in s and ":" not in s))
    def test_unknown_kind_is_diagnosed(self, kind):
        with pytest.raises(ConfigError):
            FaultPlan.parse(f"{kind}:p=0.1")

    @COMMON
    @given(p=st.floats(allow_nan=False).filter(lambda v: not 0.0 <= v <= 1.0),
           kind=st.sampled_from(["dram_stall", "stage_stall",
                                 "transfer_corrupt"]))
    def test_out_of_range_probability_is_diagnosed(self, p, kind):
        with pytest.raises(ConfigError):
            FaultPlan.parse(f"{kind}:p={p}")

    @COMMON
    @given(param=st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
                         min_size=1, max_size=8).filter(
        lambda s: s not in _SCHEMAS["dram_stall"]))
    def test_unknown_parameter_is_diagnosed(self, param):
        with pytest.raises(ConfigError):
            FaultPlan.parse(f"dram_stall:{param}=1")

    @COMMON
    @given(raw=st.text(max_size=6).filter(
        lambda s: not s.strip() or "=" in s or ";" in s or ":" in s))
    def test_garbage_never_parses_silently(self, raw):
        try:
            plan = FaultPlan.parse(f"dram_stall:p={raw}")
        except ConfigError:
            return
        # if it parsed, the value must have been a real float
        assert isinstance(plan.spec("dram_stall").param("p"), float)
