"""The fault-plan DSL: parsing, defaults, validation, round-trips."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    BANDWIDTH_DEGRADE,
    DRAM_STALL,
    STAGE_STALL,
    TRANSFER_CORRUPT,
    FaultPlan,
)


class TestParse:
    def test_defaults(self):
        plan = FaultPlan.parse("dram_stall")
        spec = plan.spec(DRAM_STALL)
        assert spec.param("p") == 0.01
        assert spec.param("cycles") == 64

    def test_explicit_params(self):
        plan = FaultPlan.parse("dram_stall:p=0.25,cycles=10")
        spec = plan.spec(DRAM_STALL)
        assert spec.param("p") == 0.25
        assert spec.param("cycles") == 10

    def test_combined_plan(self):
        plan = FaultPlan.parse(
            "dram_stall:p=0.1;transfer_corrupt:p=0.2;stage_stall", seed=9)
        assert set(plan.kinds) == {DRAM_STALL, TRANSFER_CORRUPT, STAGE_STALL}
        assert plan.seed == 9

    def test_later_clause_overrides_earlier(self):
        plan = FaultPlan.parse("dram_stall:p=0.1;dram_stall:p=0.9")
        assert plan.spec(DRAM_STALL).param("p") == 0.9
        assert len(plan.specs) == 1

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse("  dram_stall : p = 0.5 ; transfer_corrupt ")
        assert plan.spec(DRAM_STALL).param("p") == 0.5
        assert plan.spec(TRANSFER_CORRUPT) is not None

    def test_stage_stall_stage_filter(self):
        plan = FaultPlan.parse("stage_stall:stage=conv1,p=1")
        assert plan.spec(STAGE_STALL).param("stage") == "conv1"

    def test_bandwidth_degrade_params(self):
        plan = FaultPlan.parse("bandwidth_degrade:factor=0.25,after_cycle=100")
        spec = plan.spec(BANDWIDTH_DEGRADE)
        assert spec.param("factor") == 0.25
        assert spec.param("after_cycle") == 100

    def test_str_round_trip(self):
        plan = FaultPlan.parse("dram_stall:p=0.1,cycles=7;transfer_corrupt:p=0.3",
                               seed=3)
        again = FaultPlan.parse(str(plan), seed=3)
        assert again == plan

    def test_spec_of_absent_kind_is_none(self):
        assert FaultPlan.parse("dram_stall").spec(TRANSFER_CORRUPT) is None

    def test_empty_plan_str(self):
        assert str(FaultPlan()) == "<no faults>"


class TestValidation:
    @pytest.mark.parametrize("text", [
        "", "   ", None,
    ])
    def test_empty_spec_rejected(self, text):
        with pytest.raises(ConfigError):
            FaultPlan.parse(text)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError) as err:
            FaultPlan.parse("cosmic_ray:p=1")
        assert "cosmic_ray" in str(err.value)

    def test_unknown_parameter(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("dram_stall:q=0.5")

    def test_bad_value_type(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("dram_stall:p=often")

    @pytest.mark.parametrize("text", [
        "dram_stall:p=1.5",
        "dram_stall:p=-0.1",
        "dram_stall:cycles=-1",
        "bandwidth_degrade:factor=0",
        "bandwidth_degrade:factor=1.5",
        "bandwidth_degrade:after_cycle=-1",
    ])
    def test_out_of_range_rejected(self, text):
        with pytest.raises(ConfigError):
            FaultPlan.parse(text)

    def test_config_error_is_value_error(self):
        """Callers pinning ValueError keep working."""
        with pytest.raises(ValueError):
            FaultPlan.parse("dram_stall:p=2")
