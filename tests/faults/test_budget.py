"""Exploration budgets and the graceful-degradation latch."""

import pytest

from repro.errors import ConfigError
from repro.faults import ExplorationBudget


class TestValidation:
    def test_needs_at_least_one_limit(self):
        with pytest.raises(ConfigError):
            ExplorationBudget()

    def test_max_evaluations_at_least_one(self):
        with pytest.raises(ConfigError):
            ExplorationBudget(max_evaluations=0)

    def test_max_seconds_positive(self):
        with pytest.raises(ConfigError):
            ExplorationBudget(max_seconds=0)


class TestEvaluationBudget:
    def test_trips_at_threshold(self):
        budget = ExplorationBudget(max_evaluations=3)
        for _ in range(2):
            budget.charge()
            assert not budget.exceeded()
        budget.charge()
        assert budget.exceeded()
        assert budget.tripped

    def test_tripped_latches(self):
        budget = ExplorationBudget(max_evaluations=1)
        budget.charge()
        assert budget.exceeded()
        # Even if evaluations were rolled back, the trip stays latched.
        budget.evaluations = 0
        assert budget.exceeded()

    def test_start_rearms(self):
        budget = ExplorationBudget(max_evaluations=1)
        budget.charge()
        assert budget.exceeded()
        budget.start()
        assert not budget.tripped
        assert budget.evaluations == 0
        assert not budget.exceeded()

    def test_charge_n(self):
        budget = ExplorationBudget(max_evaluations=10)
        budget.charge(10)
        assert budget.exceeded()


class TestWallClockBudget:
    def test_tiny_deadline_trips(self):
        budget = ExplorationBudget(max_seconds=1e-9)
        while not budget.exceeded():  # sub-nanosecond: trips immediately
            pass
        assert budget.tripped

    def test_generous_deadline_does_not_trip(self):
        budget = ExplorationBudget(max_seconds=3600)
        assert not budget.exceeded()
        assert budget.elapsed_seconds < 3600


class TestDescribe:
    def test_describe_lists_limits(self):
        assert ExplorationBudget(max_evaluations=5).describe() == "5 evaluations"
        assert ExplorationBudget(max_seconds=2.5).describe() == "2.5s"
        both = ExplorationBudget(max_evaluations=5, max_seconds=1)
        assert both.describe() == "5 evaluations / 1s"
