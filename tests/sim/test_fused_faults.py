"""Acceptance: the fused simulator stays bit-correct under injected faults.

The headline robustness guarantee — under any seeded fault plan whose
corruptions are repaired by bounded re-fetch, the fused executor's
outputs bit-match the fault-free golden reference; only the DRAM traffic
(traced under ``input_refetch``) and the fault counters change.
"""

import numpy as np
import pytest

from repro.errors import SimFaultError
from repro.faults import FaultPlan, RetryPolicy
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input

CORRUPT = "transfer_corrupt:p=0.3"


def run_fused(levels, faults=None, retry=None, params=None):
    fused = FusedExecutor(levels, params=params, tip_h=1, tip_w=1,
                          integer=True, faults=faults, retry=retry)
    trace = TrafficTrace()
    x = make_input(levels[0].in_shape, integer=True)
    return fused.run(x, trace), trace


class TestBitMatchUnderFaults:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_outputs_match_golden_reference(self, mini_vgg_levels, seed):
        levels = mini_vgg_levels
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        expected = reference.run(x)

        injector = FaultPlan.parse(CORRUPT, seed=seed).injector()
        got, trace = run_fused(levels, faults=injector,
                               params=reference.params)
        assert np.array_equal(expected, got)
        assert injector.counts["transfer_corrupt"] > 0
        assert injector.counts["refetches"] > 0

    def test_grouped_strided_network(self, mini_alex_levels):
        """The AlexNet-shaped geometry (stride, groups) is also immune."""
        levels = mini_alex_levels
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        expected = reference.run(x)
        got, _ = run_fused(levels, params=reference.params,
                           faults=FaultPlan.parse(CORRUPT, seed=2).injector())
        assert np.array_equal(expected, got)


class TestRepairTraffic:
    def test_refetches_traced_separately(self, mini_vgg_levels):
        clean_out, clean_trace = run_fused(mini_vgg_levels)
        injector = FaultPlan.parse(CORRUPT, seed=1).injector()
        faulty_out, faulty_trace = run_fused(mini_vgg_levels, faults=injector)

        assert np.array_equal(clean_out, faulty_out)
        # The read-once invariant on the nominal input label still holds...
        assert faulty_trace.reads_for("input") == clean_trace.reads_for("input")
        # ...and the repair cost is visible as separate refetch traffic.
        assert faulty_trace.reads_for("input_refetch") > 0
        assert faulty_trace.dram_read_bytes > clean_trace.dram_read_bytes

    def test_no_faults_no_refetch_label(self, mini_vgg_levels):
        _, trace = run_fused(mini_vgg_levels)
        assert trace.reads_for("input_refetch") == 0

    def test_deterministic_repair_cost(self, mini_vgg_levels):
        plan = FaultPlan.parse(CORRUPT, seed=9)
        a = run_fused(mini_vgg_levels, faults=plan.injector())[1]
        b = run_fused(mini_vgg_levels, faults=plan.injector())[1]
        assert a.reads_for("input_refetch") == b.reads_for("input_refetch")


class TestRetryExhaustion:
    def test_permanent_corruption_is_diagnosed(self, mini_alex_levels):
        injector = FaultPlan.parse("transfer_corrupt:p=1", seed=0).injector()
        with pytest.raises(SimFaultError) as err:
            run_fused(mini_alex_levels, faults=injector,
                      retry=RetryPolicy(max_attempts=3))
        assert err.value.context["kind"] == "transfer_corrupt"
        assert err.value.context["max_attempts"] == 3
        assert err.value.context["site"].startswith("input[")
