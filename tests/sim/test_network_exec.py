"""Whole-network executor across every layer type."""

import numpy as np
import pytest

from repro import alexnet, extract_levels, nin_cifar, toynet
from repro.nn.network import Network
from repro.nn.shapes import ShapeError, TensorShape
from repro.sim import ReferenceExecutor, TrafficTrace, make_input
from repro.sim.network_exec import NetworkExecutor


class TestNetworkExecutor:
    def test_nin_end_to_end(self):
        net = nin_cifar()
        executor = NetworkExecutor(net, integer=True)
        x = make_input(net.input_shape, integer=True)
        out = executor.run(x)
        shape = net.output_shape
        assert out.shape == (shape.channels, shape.height, shape.width)

    def test_alexnet_with_lrn_and_fc(self):
        """All of AlexNet: conv (grouped), LRN, pooling, FC, ReLU."""
        net = alexnet()
        scaled = Network("alex-small", TensorShape(3, 67, 67), net.specs[:8])
        executor = NetworkExecutor(scaled, integer=True)
        x = make_input(scaled.input_shape, integer=True)
        outputs = executor.run_all(x)
        assert len(outputs) == len(scaled)

    def test_classify_returns_index(self):
        net = nin_cifar()
        executor = NetworkExecutor(net, integer=True)
        x = make_input(net.input_shape, integer=True)
        assert 0 <= executor.classify(x) < 10

    def test_matches_level_executor_on_fusion_scope(self):
        """On conv/pool/ReLU-only networks the two executors agree."""
        net = toynet(n=3, m=4, p=5, with_relu=True)
        levels = extract_levels(net)
        level_exec = ReferenceExecutor(levels, integer=True)
        # Same weights by name.
        net_exec = NetworkExecutor(net, params=level_exec.params, integer=True)
        x = make_input(net.input_shape, integer=True)
        np.testing.assert_array_equal(level_exec.run(x), net_exec.run(x))

    def test_traffic_trace(self):
        net = toynet(n=2, m=2, p=2)
        executor = NetworkExecutor(net, integer=True)
        trace = TrafficTrace()
        executor.run(make_input(net.input_shape, integer=True), trace)
        assert trace.dram_read_elements > 0
        assert trace.ops == net.total_ops()

    def test_wrong_input_rejected(self):
        executor = NetworkExecutor(toynet(), integer=True)
        with pytest.raises(ShapeError):
            executor.run(np.zeros((1, 2, 2)))

    def test_deterministic(self):
        net = toynet()
        x = make_input(net.input_shape, integer=True)
        a = NetworkExecutor(net, seed=9, integer=True).run(x)
        b = NetworkExecutor(net, seed=9, integer=True).run(x)
        np.testing.assert_array_equal(a, b)
