"""Schedule memory traces: same accesses, different order."""

from collections import Counter

import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape, extract_levels, toynet
from repro.sim.memtrace import (
    WORD,
    build_address_map,
    fused_trace,
    reference_trace,
)


@pytest.fixture(scope="module")
def tiny():
    net = Network("tiny", TensorShape(2, 10, 10), [
        ConvSpec("c1", out_channels=3, kernel=3, stride=1, padding=1),
        ReLUSpec("r1"),
        PoolSpec("p1", kernel=2, stride=2),
        ConvSpec("c2", out_channels=4, kernel=3, stride=1, groups=1),
    ])
    levels = extract_levels(net)
    return levels, build_address_map(levels)


class TestAddressMap:
    def test_regions_disjoint_and_aligned(self, tiny):
        levels, amap = tiny
        # Non-empty regions must not overlap (pools have empty weight
        # regions whose base coincides with the next region — harmless).
        regions = [(amap.input_base, levels[0].in_shape.bytes)]
        for level, mbase, wbase in zip(levels, amap.map_bases, amap.weight_bases):
            regions.append((mbase, level.out_shape.bytes))
            if level.weight_count:
                regions.append((wbase, level.weight_count * WORD))
        regions.sort()
        for (a, alen), (b, _) in zip(regions, regions[1:]):
            assert a + alen <= b
        assert all(base % 64 == 0 for base, _ in regions)
        assert amap.total_bytes > levels[0].in_shape.bytes

    def test_total_covers_all_regions(self, tiny):
        levels, amap = tiny
        data = (levels[0].in_shape.bytes
                + sum(l.out_shape.bytes for l in levels)
                + sum(l.weight_count for l in levels) * WORD)
        assert amap.total_bytes >= data


class TestTraces:
    def test_same_multiset_of_accesses(self, tiny):
        """The two schedules perform identical accesses in different
        order — the cache comparison isolates pure locality."""
        levels, amap = tiny
        assert Counter(reference_trace(levels, amap)) == \
            Counter(fused_trace(levels, amap))

    def test_access_count_formula(self, tiny):
        """Per conv output: K^2*N/g input reads + as many weight reads +
        one write; per pool output: K^2 reads (minus padding skips) + one
        write."""
        levels, amap = tiny
        count = sum(1 for _ in reference_trace(levels, amap))
        expected = 0
        for level in levels:
            outs = level.out_shape.elements
            if level.is_conv:
                # Padded positions skip input+weight reads; compute the
                # real-window sizes exactly.
                per_out_reads = 0
                in_shape = level.in_shape
                for r in range(level.out_shape.height):
                    for c in range(level.out_shape.width):
                        rows = sum(
                            1 for ki in range(level.kernel)
                            if 0 <= r * level.stride + ki - level.pad < in_shape.height)
                        cols = sum(
                            1 for kj in range(level.kernel)
                            if 0 <= c * level.stride + kj - level.pad < in_shape.width)
                        per_out_reads += rows * cols
                n = level.in_channels // level.groups
                expected += level.out_channels * per_out_reads * n * 2 + outs
            else:
                expected += outs * level.kernel * level.kernel + outs
        assert count == expected

    def test_addresses_in_bounds(self, tiny):
        levels, amap = tiny
        for addr, _ in reference_trace(levels, amap):
            assert 0 <= addr < amap.total_bytes

    def test_writes_target_output_maps_only(self, tiny):
        levels, amap = tiny
        weight_lo = min(amap.weight_bases)
        for addr, write in fused_trace(levels, amap):
            if write:
                assert addr >= amap.map_bases[0]

    def test_toynet_trace(self):
        levels = extract_levels(toynet(n=2, m=2, p=2))
        amap = build_address_map(levels)
        ref = Counter(reference_trace(levels, amap))
        fus = Counter(fused_trace(levels, amap))
        assert ref == fus

    def test_grouped_conv_trace(self):
        net = Network("g", TensorShape(4, 9, 9), [
            ConvSpec("c1", out_channels=6, kernel=3, stride=1, groups=2),
        ])
        levels = extract_levels(net)
        amap = build_address_map(levels)
        ref = list(reference_trace(levels, amap))
        # Each of the 6x7x7 outputs reads 2 channels x 9 taps x (in+weight).
        assert len(ref) == 6 * 49 * (2 * 9 * 2) + 6 * 49
