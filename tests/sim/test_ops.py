"""NumPy operator primitives against naive loop references."""

import numpy as np
import pytest

from repro.nn.shapes import ShapeError
from repro.sim import ops


def naive_conv2d(x, w, b, stride, pad, groups=1):
    """Direct quadruple-loop convolution for cross-checking."""
    x = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    m, n_per_group, k, _ = w.shape
    n, h, width = x.shape
    oh = (h - k) // stride + 1
    ow = (width - k) // stride + 1
    out = np.zeros((m, oh, ow), dtype=x.dtype)
    m_per_group = m // groups
    for mi in range(m):
        g = mi // m_per_group
        for r in range(oh):
            for c in range(ow):
                acc = 0.0
                for ni in range(n_per_group):
                    patch = x[g * n_per_group + ni,
                              r * stride:r * stride + k,
                              c * stride:c * stride + k]
                    acc += float((patch * w[mi, ni]).sum())
                out[mi, r, c] = acc + (b[mi] if b is not None else 0.0)
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestConv2d:
    def test_matches_naive(self, rng):
        x = rng.standard_normal((3, 8, 8)).astype(np.float64)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float64)
        b = rng.standard_normal(4).astype(np.float64)
        got = ops.conv2d(x, w, b, stride=1, pad=0)
        np.testing.assert_allclose(got, naive_conv2d(x, w, b, 1, 0), rtol=1e-10)

    def test_stride_and_pad(self, rng):
        x = rng.standard_normal((2, 11, 11)).astype(np.float64)
        w = rng.standard_normal((3, 2, 5, 5)).astype(np.float64)
        b = rng.standard_normal(3).astype(np.float64)
        got = ops.conv2d(x, w, b, stride=2, pad=2)
        np.testing.assert_allclose(got, naive_conv2d(x, w, b, 2, 2), rtol=1e-10)

    def test_groups(self, rng):
        x = rng.standard_normal((4, 7, 7)).astype(np.float64)
        w = rng.standard_normal((6, 2, 3, 3)).astype(np.float64)
        b = rng.standard_normal(6).astype(np.float64)
        got = ops.conv2d(x, w, b, stride=1, pad=0, groups=2)
        np.testing.assert_allclose(got, naive_conv2d(x, w, b, 1, 0, groups=2),
                                   rtol=1e-10)

    def test_no_bias(self, rng):
        x = rng.standard_normal((1, 5, 5)).astype(np.float64)
        w = rng.standard_normal((1, 1, 3, 3)).astype(np.float64)
        got = ops.conv2d(x, w, None)
        np.testing.assert_allclose(got, naive_conv2d(x, w, None, 1, 0), rtol=1e-10)

    def test_identity_kernel(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 5, 5)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        np.testing.assert_array_equal(ops.conv2d(x, w, None), x)

    def test_output_shape(self, rng):
        x = rng.standard_normal((3, 11, 13)).astype(np.float32)
        w = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        assert ops.conv2d(x, w, None, stride=2, pad=1).shape == (5, 6, 7)

    def test_channel_mismatch_rejected(self, rng):
        x = rng.standard_normal((3, 5, 5)).astype(np.float32)
        w = rng.standard_normal((2, 4, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            ops.conv2d(x, w, None)

    def test_rectangular_kernel_rejected(self, rng):
        x = rng.standard_normal((1, 5, 5)).astype(np.float32)
        w = rng.standard_normal((1, 1, 3, 2)).astype(np.float32)
        with pytest.raises(ShapeError):
            ops.conv2d(x, w, None)

    def test_bad_groups_rejected(self, rng):
        x = rng.standard_normal((4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            ops.conv2d(x, w, None, groups=2)  # 3 % 2 != 0


class TestPooling:
    def test_maxpool_known(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        got = ops.maxpool2d(x, 2, 2)
        np.testing.assert_array_equal(got, [[[5, 7], [13, 15]]])

    def test_maxpool_overlapping(self):
        x = np.arange(25, dtype=np.float32).reshape(1, 5, 5)
        got = ops.maxpool2d(x, 3, 2)
        np.testing.assert_array_equal(got, [[[12, 14], [22, 24]]])

    def test_avgpool_known(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        got = ops.avgpool2d(x, 2, 2)
        np.testing.assert_array_equal(got, [[[2.5, 4.5], [10.5, 12.5]]])

    def test_pool_preserves_channels(self):
        x = np.random.default_rng(0).standard_normal((7, 8, 8)).astype(np.float32)
        assert ops.maxpool2d(x, 2, 2).shape == (7, 4, 4)


class TestElementwise:
    def test_relu(self):
        x = np.array([[[-1.0, 2.0], [0.0, -3.0]]], dtype=np.float32)
        np.testing.assert_array_equal(ops.relu(x), [[[0, 2], [0, 0]]])

    def test_pad2d(self):
        x = np.ones((2, 2, 2), dtype=np.float32)
        padded = ops.pad2d(x, 1)
        assert padded.shape == (2, 4, 4)
        assert padded.sum() == x.sum()
        assert padded[0, 0, 0] == 0

    def test_pad2d_zero_is_noop(self):
        x = np.ones((1, 3, 3), dtype=np.float32)
        assert ops.pad2d(x, 0) is x

    def test_pad2d_negative_rejected(self):
        with pytest.raises(ShapeError):
            ops.pad2d(np.ones((1, 2, 2), dtype=np.float32), -1)

    def test_lrn_shape_and_scale(self):
        x = np.ones((8, 3, 3), dtype=np.float32)
        out = ops.lrn(x)
        assert out.shape == x.shape
        assert np.all(out < x)  # normalization shrinks positive values

    def test_fully_connected(self):
        x = np.arange(4, dtype=np.float32).reshape(1, 2, 2)
        w = np.eye(4, dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        out = ops.fully_connected(x, w, b)
        np.testing.assert_array_equal(out.ravel(), [1, 2, 3, 4])
        assert out.shape == (4, 1, 1)
