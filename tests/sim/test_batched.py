"""Vectorized batched execution: bit-identical to per-item runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape
from repro.nn.layers import LRNSpec
from repro.errors import ConfigError
from repro.nn.shapes import ShapeError
from repro.nn.zoo import alexnet, nin_cifar, toynet
from repro.sim import (
    BatchedNetworkExecutor,
    NetworkExecutor,
    preserves_exact_arithmetic,
)
from repro.sim.batched import lrn_batched
from repro.sim.ops import lrn


def _batch(network, n, seed=0):
    shape = network.input_shape
    rng = np.random.default_rng(seed)
    return [np.round(rng.uniform(-4.0, 4.0, size=(
        shape.channels, shape.height, shape.width))) for _ in range(n)]


@pytest.mark.parametrize("make_net", [toynet, nin_cifar],
                         ids=["toynet", "nin"])
def test_bit_identical_to_per_item_runs(make_net):
    network = make_net()
    reference = NetworkExecutor(network, seed=0, integer=True)
    batched = BatchedNetworkExecutor(network, params=reference.params)
    xs = _batch(network, 5)
    outs = batched.run_batch(xs)
    for x, out in zip(xs, outs):
        ref = reference.run(x)
        assert out.dtype == ref.dtype
        assert np.array_equal(out, ref)


def test_grouped_convolution_matches_per_item():
    """groups=2 convolutions (AlexNet's conv2/4/5 shape) in batched form."""
    network = Network("grouped", TensorShape(3, 10, 10), [
        ConvSpec("c1", kernel=3, stride=1, out_channels=8, padding=1),
        ReLUSpec("r1"),
        ConvSpec("c2", kernel=3, stride=1, out_channels=8, padding=1,
                 groups=2),
        PoolSpec("p1", kernel=2, stride=2),
    ])
    reference = NetworkExecutor(network, seed=0, integer=True)
    batched = BatchedNetworkExecutor(network, params=reference.params)
    xs = _batch(network, 3)
    for x, out in zip(xs, batched.run_batch(xs)):
        assert np.array_equal(out, reference.run(x))


def test_lrn_batched_matches_per_item_operator():
    rng = np.random.default_rng(0)
    x = np.round(rng.uniform(-4.0, 4.0, size=(8, 6, 6)))
    batch = np.stack([x, x + 1.0])
    out = lrn_batched(batch)
    assert np.array_equal(out[0], lrn(x))
    assert np.array_equal(out[1], lrn(x + 1.0))


def test_exactness_gate():
    """LRN (and non-power-of-two average pooling) breaks the exact-integer
    regime, so those networks must serve through the per-item loop."""
    assert preserves_exact_arithmetic(toynet())
    assert preserves_exact_arithmetic(nin_cifar())  # 8x8 avg pool: exact
    assert not preserves_exact_arithmetic(alexnet())  # LRN rounds
    inexact_avg = Network("avg9", TensorShape(3, 9, 9), [
        PoolSpec("p1", kernel=3, stride=3, mode="avg"),
    ])
    assert not preserves_exact_arithmetic(inexact_avg)


def test_accepts_stacked_4d_input():
    network = toynet()
    reference = NetworkExecutor(network, seed=0, integer=True)
    batched = BatchedNetworkExecutor(network, params=reference.params)
    xs = np.stack(_batch(network, 3))
    outs = batched.run_batch(xs)
    assert len(outs) == 3
    for x, out in zip(xs, outs):
        assert np.array_equal(out, reference.run(x))


def test_empty_batch_returns_empty_list():
    network = toynet()
    batched = BatchedNetworkExecutor(network)
    assert batched.run_batch([]) == []


def test_batch_of_one_matches_single_run():
    network = toynet()
    reference = NetworkExecutor(network, seed=0, integer=True)
    batched = BatchedNetworkExecutor(network, params=reference.params)
    x = _batch(network, 1)[0]
    assert np.array_equal(batched.run_batch([x])[0], reference.run(x))


def test_wrong_input_shape_is_diagnosed():
    network = toynet()
    batched = BatchedNetworkExecutor(network)
    with pytest.raises(ShapeError):
        batched.run_batch([np.zeros((1, 2, 2))])
    with pytest.raises(ConfigError):
        batched.run_batch(np.zeros((2, 2)))  # not (B, C, H, W)
