"""The fused pyramid executor versus the layer-by-layer golden model.

These are the reproduction's core correctness tests: the restructured
dataflow of Listing 3/4 must be computation-preserving (bit-identical
outputs) while reading each input element from DRAM exactly once,
writing each output element exactly once, and performing exactly the
redundancy-free operation count (the reuse strategy's defining property).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConvSpec, Network, PoolSpec, ReLUSpec, TensorShape, extract_levels, toynet
from repro.core.costs import one_pass_ops
from repro.nn.shapes import ShapeError
from repro.sim import FusedExecutor, ReferenceExecutor, TrafficTrace, make_input
from repro.sim.fused import plan_levels


def run_both(levels, tip_h=1, tip_w=1, integer=True, input_reuse=True, seed=0):
    x = make_input(levels[0].in_shape, integer=integer, seed=seed)
    reference = ReferenceExecutor(levels, integer=integer, seed=seed)
    expected = reference.run(x)
    fused = FusedExecutor(levels, params=reference.params, tip_h=tip_h,
                          tip_w=tip_w, integer=integer, input_reuse=input_reuse)
    trace = TrafficTrace()
    got = fused.run(x, trace)
    return x, expected, got, trace, fused


class TestEquivalence:
    @pytest.mark.parametrize("tip", [(1, 1), (2, 2), (4, 4), (8, 8), (1, 8), (4, 2)])
    def test_mini_vgg(self, mini_vgg_levels, tip):
        _, expected, got, _, _ = run_both(mini_vgg_levels, *tip)
        np.testing.assert_array_equal(expected, got)

    @pytest.mark.parametrize("tip", [(1, 1), (7, 7), (1, 7)])
    def test_mini_alex(self, mini_alex_levels, tip):
        _, expected, got, _, _ = run_both(mini_alex_levels, *tip)
        np.testing.assert_array_equal(expected, got)

    def test_toynet(self):
        levels = extract_levels(toynet(n=3, m=4, p=5, with_relu=True))
        _, expected, got, _, _ = run_both(levels)
        np.testing.assert_array_equal(expected, got)

    def test_deep_padded_stack(self):
        """Ten padded convs on a tiny map: tiles clamp to the whole map
        and edge pyramids have empty fresh blocks."""
        net = Network("deep", TensorShape(2, 8, 8), [
            ConvSpec(f"c{i}", out_channels=2, kernel=3, stride=1, padding=1)
            for i in range(10)
        ])
        levels = extract_levels(net)
        _, expected, got, _, _ = run_both(levels)
        np.testing.assert_array_equal(expected, got)

    def test_float_weights_match_within_tolerance(self, mini_vgg_levels):
        _, expected, got, _, _ = run_both(mini_vgg_levels, 2, 2, integer=False)
        np.testing.assert_allclose(expected, got, rtol=1e-4, atol=1e-5)

    def test_without_input_reuse(self, mini_vgg_levels):
        _, expected, got, _, _ = run_both(mini_vgg_levels, input_reuse=False)
        np.testing.assert_array_equal(expected, got)

    def test_single_level_group(self):
        net = Network("one", TensorShape(2, 9, 9),
                      [ConvSpec("c", out_channels=3, kernel=3, stride=1)])
        levels = extract_levels(net)
        _, expected, got, _, _ = run_both(levels)
        np.testing.assert_array_equal(expected, got)

    def test_padding_larger_than_overlap(self):
        """pad > K - S makes interior windows taller than the first
        pyramid row's — the BL buffer must be sized to the max."""
        net = Network("exotic", TensorShape(2, 9, 9), [
            ConvSpec("c1", out_channels=3, kernel=3, stride=1, padding=2),
            ConvSpec("c2", out_channels=2, kernel=3, stride=1),
        ])
        levels = extract_levels(net)
        _, expected, got, _, _ = run_both(levels)
        np.testing.assert_array_equal(expected, got)

    def test_overlapping_avg_pool_within_float_tolerance(self):
        """3x3/s2 average pooling divides by 9, so downstream sums become
        order-sensitive at machine epsilon; the schedules agree to 1e-12."""
        net = Network("avg", TensorShape(1, 25, 25), [
            PoolSpec("p0", kernel=3, stride=2, mode="avg"),
            ConvSpec("c1", out_channels=2, kernel=3, stride=1),
        ])
        levels = extract_levels(net)
        x = make_input(levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(levels, integer=True)
        fused = FusedExecutor(levels, params=reference.params, integer=True)
        np.testing.assert_allclose(reference.run(x), fused.run(x),
                                   rtol=1e-12, atol=1e-12)

    def test_projection_conv_with_gaps(self):
        """kernel < stride (a 1x1/s2 projection): the windows skip input
        data, so producers compute values nothing consumes and the input
        is only partially read — the schedule must still be exact."""
        net = Network("proj", TensorShape(2, 13, 13), [
            ConvSpec("c1", out_channels=3, kernel=3, stride=1, padding=1),
            ReLUSpec("r1"),
            ConvSpec("proj", out_channels=4, kernel=1, stride=2),
            ConvSpec("c2", out_channels=4, kernel=3, stride=1, padding=1),
        ])
        levels = extract_levels(net)
        x, expected, got, trace, _ = run_both(levels)
        np.testing.assert_array_equal(expected, got)
        assert trace.reads_for("input") == x.size  # first level is gap-free

    def test_gapped_first_level_reads_partial_input(self):
        net = Network("gap", TensorShape(2, 13, 13), [
            ConvSpec("c1", out_channels=3, kernel=1, stride=2),
            ConvSpec("c2", out_channels=4, kernel=3, stride=1),
        ])
        levels = extract_levels(net)
        x, expected, got, trace, _ = run_both(levels)
        np.testing.assert_array_equal(expected, got)
        # Gap pixels between windows are never fetched (pixels inside a
        # multi-column window are read contiguously, so not all gaps are
        # skipped): 9 of 13 rows/cols here.
        assert trace.reads_for("input") == 9 * 9 * 2
        assert trace.reads_for("input") < x.size

    def test_whole_map_tip_single_pyramid(self, mini_vgg_levels):
        final = mini_vgg_levels[-1].out_shape
        _, expected, got, _, fused = run_both(
            mini_vgg_levels, final.height, final.width)
        np.testing.assert_array_equal(expected, got)
        assert fused.grid_rows == fused.grid_cols == 1
        assert fused.buffer_bytes == 0  # nothing shared between pyramids


class TestTraffic:
    def test_input_read_exactly_once(self, mini_vgg_levels):
        x, _, _, trace, _ = run_both(mini_vgg_levels)
        assert trace.reads_for("input") == x.size

    def test_output_written_exactly_once(self, mini_vgg_levels):
        _, expected, _, trace, _ = run_both(mini_vgg_levels)
        assert trace.writes_for("output") == expected.size

    def test_ops_exactly_one_pass(self, mini_vgg_levels):
        """The reuse strategy performs zero redundant arithmetic."""
        _, _, _, trace, _ = run_both(mini_vgg_levels)
        assert trace.ops == one_pass_ops(mini_vgg_levels)

    def test_ops_one_pass_for_strided_net(self, mini_alex_levels):
        _, _, _, trace, _ = run_both(mini_alex_levels)
        assert trace.ops == one_pass_ops(mini_alex_levels)

    def test_halo_reads_without_input_reuse(self, mini_vgg_levels):
        x, _, _, trace, _ = run_both(mini_vgg_levels, input_reuse=False)
        assert trace.reads_for("input") > x.size

    def test_traffic_independent_of_tip(self, mini_vgg_levels):
        _, _, _, t1, _ = run_both(mini_vgg_levels, 1, 1)
        _, _, _, t2, _ = run_both(mini_vgg_levels, 4, 4)
        assert t1.dram_total_bytes == t2.dram_total_bytes


class TestBufferFootprint:
    def test_buffers_allocated_only_where_overlap(self, mini_vgg_levels):
        _, _, _, _, fused = run_both(mini_vgg_levels)
        names = [s.name for s in fused._states if s is not None]
        # Pool inputs (2x2/s2 -> overlap 0) get no buffers.
        assert "in[p1]" not in names and "in[p2]" not in names

    def test_footprint_grows_with_overlap(self, mini_vgg_levels):
        _, _, _, _, small = run_both(mini_vgg_levels, 1, 1)
        _, _, _, _, large = run_both(mini_vgg_levels, 4, 4)
        # Bigger tips -> taller BL buffers.
        assert large.buffer_bytes > small.buffer_bytes

    def test_footprint_reported_in_bytes(self, mini_vgg_levels):
        _, _, _, _, fused = run_both(mini_vgg_levels)
        total = sum(s.buffer_elements for s in fused._states if s is not None)
        assert fused.buffer_bytes == total * 8  # float64 in integer mode


class TestValidation:
    def test_non_dividing_tip_rejected(self, mini_vgg_levels):
        with pytest.raises(ShapeError):
            FusedExecutor(mini_vgg_levels, tip_h=3, tip_w=3, integer=True)

    def test_wrong_input_shape_rejected(self, mini_vgg_levels):
        fused = FusedExecutor(mini_vgg_levels, integer=True)
        with pytest.raises(ShapeError):
            fused.run(np.zeros((3, 10, 10)))

    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            plan_levels([], 1, 1)


class TestPlanBoundaries:
    def test_bounds_monotone_and_saturating(self, mini_vgg_levels):
        plans = plan_levels(mini_vgg_levels, 1, 1)
        for plan in plans:
            for bounds, limit in [
                (plan.ob_r, plan.level.out_shape.height),
                (plan.ob_c, plan.level.out_shape.width),
            ]:
                assert bounds[0] == 0
                assert bounds[-1] == limit
                assert all(a <= b for a, b in zip(bounds, bounds[1:]))

    def test_input_bounds_end_at_padded_extent(self, mini_vgg_levels):
        plans = plan_levels(mini_vgg_levels, 1, 1)
        for plan in plans:
            padded = plan.level.padded_in_shape
            assert plan.ib_r[-1] == padded.height
            assert plan.ib_c[-1] == padded.width


@st.composite
def random_net(draw):
    """Small random conv/pool stacks covering the geometry space:
    1x1/3x3/5x5 kernels, strides 1-2, optional padding, max/avg pooling
    with both tight (2x2/s2) and overlapping (3x3/s2) windows."""
    channels = draw(st.integers(1, 3))
    size = draw(st.sampled_from([12, 16, 20, 24, 25]))
    specs = []
    layers = draw(st.integers(1, 4))
    height = size
    for i in range(layers):
        kind = draw(st.sampled_from(["conv", "conv", "pool"]))
        if kind == "conv":
            kernel = draw(st.sampled_from([1, 3, 5]))
            pad = draw(st.sampled_from([0, kernel // 2, kernel - 1]))
            stride = draw(st.sampled_from([1, 1, 2]))
            extent = height + 2 * pad
            if extent < kernel or (extent - kernel) % stride:
                continue
            out_ch = draw(st.integers(1, 4))
            specs.append(ConvSpec(f"c{i}", out_channels=out_ch, kernel=kernel,
                                  stride=stride, padding=pad))
            if draw(st.booleans()):
                specs.append(ReLUSpec(f"r{i}"))
            height = (extent - kernel) // stride + 1
        else:
            kernel, stride = draw(st.sampled_from([(2, 2), (3, 2)]))
            if height < kernel or (height - kernel) % stride:
                continue
            # Average pooling only over 2x2 windows: /4 is exact in
            # binary, keeping the bit-identical comparison meaningful
            # (a 3x3 average's /9 makes downstream sums order-sensitive
            # at the 1e-15 level; covered by a tolerance test instead).
            mode = draw(st.sampled_from(["max", "avg"])) if kernel == 2 else "max"
            specs.append(PoolSpec(f"p{i}", kernel=kernel, stride=stride, mode=mode))
            height = (height - kernel) // stride + 1
    if not specs:
        specs = [ConvSpec("c", out_channels=2, kernel=3, stride=1)]
    return Network("rand", TensorShape(channels, size, size), specs)


class TestPropertyEquivalence:
    @given(net=random_net(), seed=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_fused_equals_reference_on_random_nets(self, net, seed):
        levels = extract_levels(net)
        x = make_input(levels[0].in_shape, integer=True, seed=seed)
        reference = ReferenceExecutor(levels, integer=True, seed=seed)
        expected = reference.run(x)
        fused = FusedExecutor(levels, params=reference.params, integer=True)
        trace = TrafficTrace()
        got = fused.run(x, trace)
        np.testing.assert_array_equal(expected, got)
        if levels[0].kernel >= levels[0].stride:
            # Gap-free first level: every input element is read exactly once.
            assert trace.reads_for("input") == x.size
        else:
            # kernel < stride skips input data; skipped elements are
            # never fetched.
            assert trace.reads_for("input") < x.size
        # Levels whose consumers skip data (consumer kernel < stride) may
        # compute gap values nothing reads; everything else is exactly
        # the redundancy-free count.
        if all(l.kernel >= l.stride for l in levels[1:]):
            assert trace.ops == one_pass_ops(levels)
        else:
            assert trace.ops >= one_pass_ops(levels)
