"""The recompute-strategy executor versus reference and analytic model."""

import numpy as np
import pytest

from repro import extract_levels, toynet
from repro.core.costs import one_pass_ops, recompute_ops
from repro.nn.shapes import ShapeError
from repro.sim import (
    RecomputeExecutor,
    ReferenceExecutor,
    TrafficTrace,
    make_input,
)


def run_both(levels, tip_h=1, tip_w=1, seed=0):
    x = make_input(levels[0].in_shape, integer=True, seed=seed)
    reference = ReferenceExecutor(levels, integer=True, seed=seed)
    expected = reference.run(x)
    executor = RecomputeExecutor(levels, params=reference.params,
                                 tip_h=tip_h, tip_w=tip_w, integer=True)
    trace = TrafficTrace()
    got = executor.run(x, trace)
    return x, expected, got, trace, executor


class TestEquivalence:
    @pytest.mark.parametrize("tip", [(1, 1), (2, 2), (4, 4), (2, 8)])
    def test_mini_vgg(self, mini_vgg_levels, tip):
        _, expected, got, _, _ = run_both(mini_vgg_levels, *tip)
        np.testing.assert_array_equal(expected, got)

    def test_mini_alex(self, mini_alex_levels):
        _, expected, got, _, _ = run_both(mini_alex_levels)
        np.testing.assert_array_equal(expected, got)

    def test_toynet(self):
        levels = extract_levels(toynet(n=3, m=4, p=5, with_relu=True))
        _, expected, got, _, _ = run_both(levels)
        np.testing.assert_array_equal(expected, got)

    def test_ragged_tip_allowed(self, mini_vgg_levels):
        """Unlike the streaming reuse executor, recompute does not need
        the tip to divide the output map (each pyramid is independent)."""
        _, expected, got, _, _ = run_both(mini_vgg_levels, 3, 3)
        np.testing.assert_array_equal(expected, got)


class TestCosts:
    @pytest.mark.parametrize("tip", [1, 2, 4])
    def test_executed_ops_equal_model(self, mini_vgg_levels, tip):
        """The executor performs exactly what Section III-B's recompute
        model predicts."""
        _, _, _, trace, _ = run_both(mini_vgg_levels, tip, tip)
        assert trace.ops == recompute_ops(mini_vgg_levels, tip, tip)

    def test_redundancy_exceeds_one_pass(self, mini_vgg_levels):
        _, _, _, trace, _ = run_both(mini_vgg_levels)
        assert trace.ops > one_pass_ops(mini_vgg_levels)

    def test_input_still_read_once(self, mini_vgg_levels):
        """Recompute trades arithmetic, not bandwidth: the line buffer
        keeps the input read from DRAM exactly once."""
        x, _, _, trace, _ = run_both(mini_vgg_levels)
        assert trace.reads_for("input") == x.size

    def test_output_written_once(self, mini_vgg_levels):
        _, expected, _, trace, _ = run_both(mini_vgg_levels)
        assert trace.writes_for("output") == expected.size

    def test_line_buffer_capacity_reported(self, mini_vgg_levels):
        _, _, _, _, executor = run_both(mini_vgg_levels)
        from repro.core.pyramid import build_pyramid

        geometry = build_pyramid(mini_vgg_levels, 1, 1)
        padded = mini_vgg_levels[0].padded_in_shape
        assert executor.line_buffer_elements == (
            padded.width * geometry.base_h * mini_vgg_levels[0].in_channels)


class TestValidation:
    def test_empty_levels_rejected(self):
        with pytest.raises(ShapeError):
            RecomputeExecutor([])

    def test_wrong_input_shape_rejected(self, mini_vgg_levels):
        executor = RecomputeExecutor(mini_vgg_levels, integer=True)
        with pytest.raises(ShapeError):
            executor.run(np.zeros((3, 5, 5)))
