"""Deterministic weight generation."""

import numpy as np
import pytest

from repro import alexnet, extract_levels, toynet
from repro.sim.weights import (
    conv_weight_shape,
    make_input,
    make_level_weights,
    make_network_weights,
)


class TestConvWeightShape:
    def test_plain(self, mini_vgg_levels):
        assert conv_weight_shape(mini_vgg_levels[0]) == (8, 3, 3, 3)

    def test_grouped(self, mini_alex_levels):
        c2 = mini_alex_levels[2]
        assert conv_weight_shape(c2) == (12, 4, 5, 5)

    def test_pool_rejected(self, mini_vgg_levels):
        with pytest.raises(ValueError):
            conv_weight_shape(mini_vgg_levels[2])


class TestMakeLevelWeights:
    def test_every_conv_covered(self, mini_vgg_levels):
        params = make_level_weights(mini_vgg_levels)
        conv_names = {l.name for l in mini_vgg_levels if l.is_conv}
        assert set(params) == conv_names

    def test_deterministic(self, mini_vgg_levels):
        a = make_level_weights(mini_vgg_levels, seed=3)
        b = make_level_weights(mini_vgg_levels, seed=3)
        for name in a:
            np.testing.assert_array_equal(a[name][0], b[name][0])

    def test_seed_changes_values(self, mini_vgg_levels):
        a = make_level_weights(mini_vgg_levels, seed=3)
        b = make_level_weights(mini_vgg_levels, seed=4)
        assert not np.array_equal(a["c11"][0], b["c11"][0])

    def test_integer_mode_is_float64_integers(self, mini_vgg_levels):
        params = make_level_weights(mini_vgg_levels, integer=True)
        w, b = params["c11"]
        assert w.dtype == np.float64
        assert np.all(w == np.round(w))

    def test_float_mode_is_float32(self, mini_vgg_levels):
        w, _ = make_level_weights(mini_vgg_levels)["c11"]
        assert w.dtype == np.float32


class TestMakeInput:
    def test_shape_and_determinism(self, mini_vgg_levels):
        shape = mini_vgg_levels[0].in_shape
        a = make_input(shape, seed=1)
        b = make_input(shape, seed=1)
        assert a.shape == (shape.channels, shape.height, shape.width)
        np.testing.assert_array_equal(a, b)

    def test_integer_bounds(self, mini_vgg_levels):
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        assert x.min() >= -3 and x.max() <= 3


class TestMakeNetworkWeights:
    def test_covers_conv_and_fc(self):
        params = make_network_weights(alexnet())
        assert "conv1" in params and "fc8" in params

    def test_fc_shape(self):
        params = make_network_weights(alexnet())
        w, b = params["fc8"]
        assert w.shape == (1000, 4096)
        assert b.shape == (1000,)

    def test_grouped_conv_shape(self):
        params = make_network_weights(alexnet())
        assert params["conv2"][0].shape == (256, 48, 5, 5)

    def test_integer_mode(self):
        params = make_network_weights(toynet(), integer=True)
        w, _ = params["layer1"]
        assert np.all(w == np.round(w))


class TestParamsIO:
    def test_roundtrip(self, mini_vgg_levels, tmp_path):
        from repro.sim.weights import load_params, save_params

        original = make_level_weights(mini_vgg_levels, seed=3)
        path = tmp_path / "weights.npz"
        save_params(path, original)
        loaded = load_params(path, levels=mini_vgg_levels)
        assert set(loaded) == set(original)
        for name in original:
            np.testing.assert_array_equal(original[name][0], loaded[name][0])
            np.testing.assert_array_equal(original[name][1], loaded[name][1])

    def test_loaded_weights_drive_executors(self, mini_vgg_levels, tmp_path):
        from repro.sim import FusedExecutor, ReferenceExecutor
        from repro.sim.weights import load_params, save_params

        params = make_level_weights(mini_vgg_levels, integer=True)
        path = tmp_path / "weights.npz"
        save_params(path, params)
        loaded = load_params(path, levels=mini_vgg_levels)
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        expected = ReferenceExecutor(mini_vgg_levels, params=loaded).run(x)
        got = FusedExecutor(mini_vgg_levels, params=loaded, integer=True).run(x)
        np.testing.assert_array_equal(expected, got)

    def test_shape_validation(self, mini_vgg_levels, mini_alex_levels, tmp_path):
        from repro.sim.weights import load_params, save_params

        params = make_level_weights(mini_alex_levels)
        path = tmp_path / "wrong.npz"
        save_params(path, params)
        with pytest.raises(ValueError):
            load_params(path, levels=mini_vgg_levels)

    def test_missing_bias_rejected(self, tmp_path):
        from repro.sim.weights import load_params

        path = tmp_path / "nobias.npz"
        np.savez(path, **{"c.weight": np.zeros((1, 1, 3, 3))})
        with pytest.raises(ValueError):
            load_params(path)

    def test_dtype_conversion(self, mini_vgg_levels, tmp_path):
        from repro.sim.weights import load_params, save_params

        params = make_level_weights(mini_vgg_levels)
        path = tmp_path / "w.npz"
        save_params(path, params)
        loaded = load_params(path, dtype=np.float64)
        assert loaded["c11"][0].dtype == np.float64
