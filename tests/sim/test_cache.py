"""Set-associative LRU cache simulator."""

import pytest

from repro.sim.cache import CacheSim


class TestCacheSim:
    def test_miss_then_hit(self):
        cache = CacheSim(1024, line_bytes=64, ways=2)
        assert cache.access(0) is False
        assert cache.access(4) is True       # same line
        assert cache.access(63) is True
        assert cache.access(64) is False     # next line
        assert cache.stats.read_hits == 2
        assert cache.stats.read_misses == 2

    def test_lru_eviction_order(self):
        # 2 sets x 2 ways x 64B = 256B cache; lines 0,2,4 share set 0.
        cache = CacheSim(256, line_bytes=64, ways=2)
        cache.access(0 * 64)
        cache.access(2 * 64)
        cache.access(0 * 64)       # line 0 becomes MRU
        cache.access(4 * 64)       # evicts line 2 (LRU)
        assert cache.access(0 * 64) is True
        assert cache.access(2 * 64) is False

    def test_write_allocate_and_writeback(self):
        cache = CacheSim(256, line_bytes=64, ways=2)
        cache.access(0, write=True)          # write miss, allocate dirty
        assert cache.stats.write_misses == 1
        cache.access(2 * 64)
        cache.access(4 * 64)                 # evicts dirty line 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = CacheSim(256, line_bytes=64, ways=2)
        cache.access(0)
        cache.access(2 * 64)
        cache.access(4 * 64)
        assert cache.stats.writebacks == 0

    def test_flush_dirty(self):
        cache = CacheSim(1024, line_bytes=64, ways=2)
        cache.access(0, write=True)
        cache.access(64, write=True)
        cache.access(128)
        assert cache.flush_dirty() == 2
        assert cache.flush_dirty() == 0  # idempotent

    def test_stats_aggregates(self):
        cache = CacheSim(1024)
        cache.access(0)
        cache.access(0, write=True)
        stats = cache.stats
        assert stats.accesses == 2
        assert stats.hits == 1 and stats.misses == 1
        assert stats.miss_ratio == 0.5
        assert stats.dram_lines_transferred == stats.misses + stats.writebacks

    def test_run_trace(self):
        cache = CacheSim(1024)
        stats = cache.run([(0, False), (64, False), (0, True)])
        assert stats.accesses == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheSim(0)
        with pytest.raises(ValueError):
            CacheSim(1000, line_bytes=64, ways=3)  # not a multiple

    def test_capacity_behavior(self):
        """A working set within capacity stops missing after the first
        pass; one beyond capacity keeps missing."""
        cache = CacheSim(1024, line_bytes=64, ways=16)  # fully assoc., 16 lines
        small = [(i * 64, False) for i in range(8)] * 10
        cache.run(small)
        assert cache.stats.misses == 8  # compulsory only
        big_cache = CacheSim(1024, line_bytes=64, ways=16)
        big = [(i * 64, False) for i in range(32)] * 10
        big_cache.run(big)
        assert big_cache.stats.misses == 320  # thrash every pass
