"""Traffic-trace accounting."""

from repro.sim import TrafficTrace


class TestTrafficTrace:
    def test_counters_accumulate(self):
        trace = TrafficTrace()
        trace.read("a", 10)
        trace.read("b", 5)
        trace.write("a", 7)
        trace.compute("a", 100)
        assert trace.dram_read_elements == 15
        assert trace.dram_write_elements == 7
        assert trace.ops == 100

    def test_byte_conversion(self):
        trace = TrafficTrace()
        trace.read("x", 256)
        trace.write("y", 128)
        assert trace.dram_read_bytes == 1024
        assert trace.dram_write_bytes == 512
        assert trace.dram_total_bytes == 1536

    def test_per_label_queries(self):
        trace = TrafficTrace()
        trace.read("input", 3)
        trace.read("input", 4)
        trace.read("other", 9)
        trace.write("output", 2)
        assert trace.reads_for("input") == 7
        assert trace.writes_for("output") == 2
        assert trace.reads_for("missing") == 0

    def test_event_log_ordered(self):
        trace = TrafficTrace()
        trace.read("a", 1)
        trace.compute("a", 2)
        trace.write("a", 3)
        assert [e[0] for e in trace.events] == ["read", "compute", "write"]

    def test_summary_mentions_units(self):
        trace = TrafficTrace()
        trace.read("a", 2 ** 18)  # 1 MB
        summary = trace.summary()
        assert "MB" in summary and "Mops" in summary

    def test_summary_surfaces_macs(self):
        trace = TrafficTrace()
        trace.compute("conv", 4_000_000)
        assert trace.macs == 2_000_000
        assert "MMACs" in trace.summary()
        assert "2.0 MMACs" in trace.summary()

    def test_compute_explicit_macs(self):
        trace = TrafficTrace()
        trace.compute("pool", 900, macs=0)
        assert trace.ops == 900
        assert trace.macs == 0

    def test_mb_helpers(self):
        trace = TrafficTrace()
        trace.read("x", 2 ** 18)   # 1 MB at 4 bytes/word
        trace.write("y", 2 ** 17)  # 0.5 MB
        assert trace.dram_read_mb == 1.0
        assert trace.dram_write_mb == 0.5
        assert trace.dram_total_mb == 1.5

    def test_by_label_totals(self):
        trace = TrafficTrace()
        trace.read("input", 3)
        trace.read("input", 4)
        trace.write("input", 2)
        trace.compute("conv", 10)
        totals = trace.by_label()
        assert totals["input"] == (7 * 4, 2 * 4, 0)
        assert totals["conv"] == (0, 0, 10)
