"""NetworkExecutor.run_batch: equivalence and instrumentation."""

from __future__ import annotations

import numpy as np

from repro.nn.zoo import toynet
from repro.obs import capture
from repro.sim import NetworkExecutor


def _inputs(network, n):
    shape = network.input_shape
    rng = np.random.default_rng(7)
    return [np.round(rng.uniform(-4.0, 4.0, size=(
        shape.channels, shape.height, shape.width))) for _ in range(n)]


def test_run_batch_matches_per_item_runs():
    network = toynet()
    executor = NetworkExecutor(network, seed=0, integer=True)
    xs = _inputs(network, 4)
    outs = executor.run_batch(xs)
    assert len(outs) == 4
    for x, out in zip(xs, outs):
        assert np.array_equal(out, executor.run(x))


def test_run_batch_of_empty_sequence():
    executor = NetworkExecutor(toynet(), seed=0, integer=True)
    assert executor.run_batch([]) == []


def test_run_batch_emits_one_run_span_per_item():
    network = toynet()
    executor = NetworkExecutor(network, seed=0, integer=True)
    xs = _inputs(network, 3)
    with capture() as registry:
        executor.run_batch(xs)
    names = [span.name for span in registry.spans]
    assert names.count("network.run_batch") == 1
    assert names.count("network.run") == 3
