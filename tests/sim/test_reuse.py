"""BL/BT reuse-buffer discipline: resident reads succeed, stale reads raise."""

import numpy as np
import pytest

from repro.sim.reuse import MapReuseState, ReuseError


@pytest.fixture
def state():
    return MapReuseState("m", channels=2, hp=10, wp=12, o_v=2, o_h=3,
                         max_bl_rows=6, dtype=np.float64)


class TestBT:
    def test_roundtrip(self, state):
        data = np.arange(2 * 2 * 5, dtype=np.float64).reshape(2, 2, 5)
        state.write_bt(data, row_lo=4, col_lo=3, col_hi=8)
        got = state.read_bt(4, 6, 3, 8)
        np.testing.assert_array_equal(got, data)

    def test_partial_column_ranges(self, state):
        left = np.ones((2, 2, 4))
        right = np.full((2, 2, 4), 2.0)
        state.write_bt(left, row_lo=4, col_lo=0, col_hi=4)
        state.write_bt(right, row_lo=4, col_lo=4, col_hi=8)
        got = state.read_bt(4, 6, 0, 8)
        assert got[:, :, :4].min() == 1.0 and got[:, :, 4:].max() == 2.0

    def test_stale_row_tag_raises(self, state):
        state.write_bt(np.ones((2, 2, 5)), row_lo=4, col_lo=0, col_hi=5)
        with pytest.raises(ReuseError):
            state.read_bt(6, 8, 0, 5)  # buffer holds row 4, not 6

    def test_unwritten_columns_raise(self, state):
        state.write_bt(np.ones((2, 2, 5)), row_lo=4, col_lo=0, col_hi=5)
        with pytest.raises(ReuseError):
            state.read_bt(4, 6, 0, 8)  # cols [5, 8) never written

    def test_capacity_enforced(self, state):
        with pytest.raises(ReuseError):
            state.write_bt(np.ones((2, 3, 5)), row_lo=0, col_lo=0, col_hi=5)
        with pytest.raises(ReuseError):
            state.read_bt(0, 3, 0, 5)

    def test_no_vertical_overlap_rejects_bt(self):
        flat = MapReuseState("m", 1, 8, 8, o_v=0, o_h=2, max_bl_rows=4)
        with pytest.raises(ReuseError):
            flat.read_bt(0, 1, 0, 4)
        with pytest.raises(ReuseError):
            flat.write_bt(np.ones((1, 1, 4)), 0, 0, 4)


class TestBL:
    def test_roundtrip(self, state):
        data = np.arange(2 * 5 * 3, dtype=np.float64).reshape(2, 5, 3)
        state.write_bl(data, row_lo=2, col_lo=7)
        got = state.read_bl(2, 7, 7, 10)
        np.testing.assert_array_equal(got, data)

    def test_sub_row_read(self, state):
        data = np.arange(2 * 5 * 3, dtype=np.float64).reshape(2, 5, 3)
        state.write_bl(data, row_lo=2, col_lo=7)
        got = state.read_bl(3, 6, 7, 10)
        np.testing.assert_array_equal(got, data[:, 1:4])

    def test_wrong_column_base_raises(self, state):
        state.write_bl(np.ones((2, 4, 3)), row_lo=0, col_lo=5)
        with pytest.raises(ReuseError):
            state.read_bl(0, 2, 4, 7)

    def test_rows_not_covered_raise(self, state):
        state.write_bl(np.ones((2, 4, 3)), row_lo=2, col_lo=5)
        with pytest.raises(ReuseError):
            state.read_bl(1, 3, 5, 8)  # row 1 not held
        with pytest.raises(ReuseError):
            state.read_bl(5, 7, 5, 8)  # row 6 not held

    def test_capacity_enforced(self, state):
        with pytest.raises(ReuseError):
            state.write_bl(np.ones((2, 7, 3)), row_lo=0, col_lo=0)  # > 6 rows
        with pytest.raises(ReuseError):
            state.write_bl(np.ones((2, 4, 4)), row_lo=0, col_lo=0)  # > 3 cols
        state.write_bl(np.ones((2, 4, 3)), row_lo=0, col_lo=0)
        with pytest.raises(ReuseError):
            state.read_bl(0, 4, 0, 4)  # read wider than o_h

    def test_overwrite_replaces(self, state):
        state.write_bl(np.ones((2, 4, 3)), row_lo=0, col_lo=0)
        state.write_bl(np.full((2, 4, 3), 7.0), row_lo=0, col_lo=3)
        assert state.read_bl(0, 4, 3, 6).max() == 7.0
        with pytest.raises(ReuseError):
            state.read_bl(0, 4, 0, 3)  # old base gone


class TestCapacityAccounting:
    def test_buffer_elements(self, state):
        # BT: 2ch x 2 x 12; BL: 2ch x 6 x 3.
        assert state.buffer_elements == 2 * 2 * 12 + 2 * 6 * 3

    def test_axis_free_buffers_cost_nothing(self):
        none = MapReuseState("m", 4, 8, 8, o_v=0, o_h=0, max_bl_rows=1)
        assert none.buffer_elements == 0
