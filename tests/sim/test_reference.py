"""Layer-by-layer reference executor: shapes, traffic, golden behavior."""

import numpy as np
import pytest

from repro import extract_levels, toynet
from repro.sim import ReferenceExecutor, TrafficTrace, make_input, run_level
from repro.sim.weights import make_level_weights


class TestRunLevel:
    def test_conv_shapes(self, mini_vgg_levels):
        level = mini_vgg_levels[0]
        params = make_level_weights(mini_vgg_levels, integer=True)
        x = make_input(level.in_shape, integer=True)
        out = run_level(level, x, params)
        assert out.shape == (level.out_shape.channels, level.out_shape.height,
                             level.out_shape.width)

    def test_relu_applied(self, mini_vgg_levels):
        level = mini_vgg_levels[0]
        assert level.has_relu
        params = make_level_weights(mini_vgg_levels, integer=True)
        x = make_input(level.in_shape, integer=True)
        assert run_level(level, x, params).min() >= 0

    def test_pool_needs_no_weights(self, mini_vgg_levels):
        pool = mini_vgg_levels[2]
        x = make_input(pool.in_shape, integer=True)
        out = run_level(pool, x, None)
        assert out.shape[0] == pool.out_shape.channels

    def test_missing_weights_raise(self, mini_vgg_levels):
        level = mini_vgg_levels[0]
        x = make_input(level.in_shape, integer=True)
        with pytest.raises(KeyError):
            run_level(level, x, {})


class TestReferenceExecutor:
    def test_output_shape(self, mini_vgg_levels):
        executor = ReferenceExecutor(mini_vgg_levels, integer=True)
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        out = executor.run(x)
        final = mini_vgg_levels[-1].out_shape
        assert out.shape == (final.channels, final.height, final.width)

    def test_run_all_returns_every_level(self, mini_vgg_levels):
        executor = ReferenceExecutor(mini_vgg_levels, integer=True)
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        outputs = executor.run_all(x)
        assert len(outputs) == len(mini_vgg_levels)
        for out, level in zip(outputs, mini_vgg_levels):
            assert out.shape[0] == level.out_shape.channels

    def test_deterministic_given_seed(self, mini_vgg_levels):
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        a = ReferenceExecutor(mini_vgg_levels, seed=5, integer=True).run(x)
        b = ReferenceExecutor(mini_vgg_levels, seed=5, integer=True).run(x)
        np.testing.assert_array_equal(a, b)

    def test_traffic_per_level(self, mini_vgg_levels):
        executor = ReferenceExecutor(mini_vgg_levels, integer=True)
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        trace = TrafficTrace()
        executor.run(x, trace)
        expected = sum(l.in_shape.elements + l.out_shape.elements
                       for l in mini_vgg_levels)
        assert trace.dram_read_elements + trace.dram_write_elements == expected

    def test_merge_pooling_saves_boundary_traffic(self, mini_vgg_levels):
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        plain, merged = TrafficTrace(), TrafficTrace()
        executor = ReferenceExecutor(mini_vgg_levels, integer=True)
        out_plain = executor.run(x, plain)
        out_merged = executor.run(x, merged, merge_pooling=True)
        np.testing.assert_array_equal(out_plain, out_merged)
        # Each merged pool removes one write + one read of the conv output.
        saved = sum(2 * l.in_shape.elements
                    for l in mini_vgg_levels if l.is_pool)
        assert (plain.dram_total_bytes - merged.dram_total_bytes) == saved * 4

    def test_compute_counts_all_ops(self, mini_vgg_levels):
        x = make_input(mini_vgg_levels[0].in_shape, integer=True)
        trace = TrafficTrace()
        ReferenceExecutor(mini_vgg_levels, integer=True).run(
            x, trace, merge_pooling=True)
        assert trace.ops == sum(l.total_ops for l in mini_vgg_levels)

    def test_empty_levels(self):
        executor = ReferenceExecutor([])
        x = np.ones((1, 2, 2), dtype=np.float32)
        np.testing.assert_array_equal(executor.run(x), x)

    def test_toynet_golden_value(self):
        """Pin a tiny end-to-end value so silent arithmetic changes fail."""
        levels = extract_levels(toynet(n=1, m=1, p=1, size=5))
        x = np.ones((1, 5, 5), dtype=np.float64)
        w = np.ones((1, 1, 3, 3), dtype=np.float64)
        b = np.zeros(1, dtype=np.float64)
        executor = ReferenceExecutor(levels, params={"layer1": (w, b),
                                                     "layer2": (w, b)})
        out = executor.run(x)
        # layer1: every 3x3 window of ones sums to 9; layer2: 9 windows of
        # nine 9s -> 81.
        np.testing.assert_array_equal(out, [[[81.0]]])
