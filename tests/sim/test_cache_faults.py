"""Corruption detection and re-fetch in the cache simulator."""

import pytest

from repro.errors import SimFaultError
from repro.faults import FaultPlan, RetryPolicy
from repro.sim.cache import CacheSim

TRACE = [(addr * 4, addr % 3 == 0) for addr in range(4096)]


def run_cache(faults=None, retry=None):
    sim = CacheSim(size_bytes=4096, line_bytes=64, ways=4,
                   faults=faults, retry=retry)
    return sim.run(TRACE)


class TestCorruptFills:
    def test_fault_free_has_no_repairs(self):
        stats = run_cache()
        assert stats.corrupted_fills == 0
        assert stats.refetches == 0
        assert stats.dram_lines_transferred == stats.misses + stats.writebacks

    def test_caching_behavior_unchanged_by_faults(self):
        """Corruption repair costs traffic, never correctness: hit/miss
        classification is identical with and without faults."""
        clean = run_cache()
        injector = FaultPlan.parse("transfer_corrupt:p=0.4", seed=3).injector()
        faulty = run_cache(faults=injector, retry=RetryPolicy(max_attempts=12))
        assert (faulty.read_hits, faulty.read_misses) == (clean.read_hits,
                                                          clean.read_misses)
        assert (faulty.write_hits, faulty.write_misses) == (clean.write_hits,
                                                            clean.write_misses)
        assert faulty.writebacks == clean.writebacks

    def test_refetches_counted_as_dram_lines(self):
        injector = FaultPlan.parse("transfer_corrupt:p=0.4", seed=3).injector()
        stats = run_cache(faults=injector, retry=RetryPolicy(max_attempts=12))
        assert stats.corrupted_fills > 0
        assert stats.refetches > 0
        assert stats.dram_lines_transferred == (stats.misses + stats.writebacks
                                                + stats.refetches)
        assert injector.counts["refetches"] == stats.refetches

    def test_deterministic(self):
        plan = FaultPlan.parse("transfer_corrupt:p=0.4", seed=8)
        generous = RetryPolicy(max_attempts=12)
        assert run_cache(plan.injector(), retry=generous).refetches == \
            run_cache(plan.injector(), retry=generous).refetches

    def test_permanent_corruption_is_diagnosed(self):
        injector = FaultPlan.parse("transfer_corrupt:p=1", seed=0).injector()
        with pytest.raises(SimFaultError) as err:
            run_cache(faults=injector, retry=RetryPolicy(max_attempts=2))
        assert err.value.context["kind"] == "transfer_corrupt"
        assert err.value.context["site"].startswith("line[")
