"""The tiled baseline executor against the reference and the hw model."""

import numpy as np
import pytest

from repro.hw.baseline import group_stages, stage_cost
from repro.sim import ReferenceExecutor, TrafficTrace, make_input
from repro.sim.tiled import TiledBaselineExecutor
from repro.nn.shapes import ShapeError


@pytest.fixture
def setup(mini_vgg_levels):
    x = make_input(mini_vgg_levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(mini_vgg_levels, integer=True)
    expected = reference.run(x)
    return mini_vgg_levels, x, reference, expected


class TestEquivalence:
    @pytest.mark.parametrize("tiles", [(4, 8, 8), (16, 16, 16), (3, 5, 7), (64, 64, 64)])
    def test_matches_reference(self, setup, tiles):
        levels, x, reference, expected = setup
        tm, tr, tc = tiles
        executor = TiledBaselineExecutor(levels, params=reference.params,
                                         tm=tm, tr=tr, tc=tc, integer=True)
        np.testing.assert_array_equal(expected, executor.run(x))

    def test_grouped_conv(self, mini_alex_levels):
        x = make_input(mini_alex_levels[0].in_shape, integer=True)
        reference = ReferenceExecutor(mini_alex_levels, integer=True)
        executor = TiledBaselineExecutor(mini_alex_levels, params=reference.params,
                                         tm=4, tr=5, tc=5, integer=True)
        np.testing.assert_array_equal(reference.run(x), executor.run(x))


class TestTrafficMatchesHwModel:
    @pytest.mark.parametrize("tiles", [(4, 8, 8), (8, 16, 16), (16, 32, 32)])
    def test_measured_traffic_equals_stage_cost(self, setup, tiles):
        """The executed loop nest's DRAM reads/writes reproduce the
        analytic baseline model exactly — per stage."""
        levels, x, reference, _ = setup
        tm, tr, tc = tiles
        executor = TiledBaselineExecutor(levels, params=reference.params,
                                         tm=tm, tr=tr, tc=tc, integer=True)
        trace = TrafficTrace()
        executor.run(x, trace)
        for stage in group_stages(levels):
            cost = stage_cost(stage, tm=tm, tn=1, tr=tr, tc=tc)
            assert trace.reads_for(stage.conv.name) == cost.input_words, stage.name
            assert trace.writes_for(stage.conv.name) == cost.output_words, stage.name

    def test_m_tiling_rereads_input(self, setup):
        """Halving Tm doubles the passes over each stage's input."""
        levels, x, reference, _ = setup
        small, large = TrafficTrace(), TrafficTrace()
        TiledBaselineExecutor(levels, params=reference.params, tm=8, tr=32,
                              tc=32, integer=True).run(x, small)
        TiledBaselineExecutor(levels, params=reference.params, tm=16, tr=32,
                              tc=32, integer=True).run(x, large)
        # c31 has 32 output channels: 4 passes at Tm=8 vs 2 at Tm=16.
        assert small.reads_for("c31") == 2 * large.reads_for("c31")

    def test_halo_traffic_grows_with_smaller_tiles(self, setup):
        levels, x, reference, _ = setup
        coarse, fine = TrafficTrace(), TrafficTrace()
        TiledBaselineExecutor(levels, params=reference.params, tm=32, tr=32,
                              tc=32, integer=True).run(x, coarse)
        TiledBaselineExecutor(levels, params=reference.params, tm=32, tr=4,
                              tc=4, integer=True).run(x, fine)
        assert fine.dram_read_elements > coarse.dram_read_elements

    def test_compute_equals_one_pass(self, setup):
        """Tiling reorders but never duplicates arithmetic."""
        from repro.core.costs import one_pass_ops

        levels, x, reference, _ = setup
        trace = TrafficTrace()
        TiledBaselineExecutor(levels, params=reference.params, tm=4, tr=8,
                              tc=8, integer=True).run(x, trace)
        assert trace.ops == one_pass_ops(levels)


class TestValidation:
    def test_bad_tiles_rejected(self, mini_vgg_levels):
        with pytest.raises(ShapeError):
            TiledBaselineExecutor(mini_vgg_levels, tm=0)

    def test_leading_pool_rejected(self, mini_vgg_levels):
        executor = TiledBaselineExecutor(mini_vgg_levels[2:], integer=True)
        x = make_input(mini_vgg_levels[2].in_shape, integer=True)
        with pytest.raises(ShapeError):
            executor.run(x)
