"""Partitioned execution: fused groups chained through DRAM."""

import numpy as np
import pytest

from repro.core.partition import analyze_partition, compositions
from repro.nn.shapes import ShapeError
from repro.nn.stages import independent_units
from repro.sim import ReferenceExecutor, TrafficTrace, make_input
from repro.sim.partitioned import PartitionedExecutor


@pytest.fixture
def setup(mini_vgg_levels):
    x = make_input(mini_vgg_levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(mini_vgg_levels, integer=True)
    return mini_vgg_levels, x, reference, reference.run(x)


class TestPartitionedExecutor:
    @pytest.mark.parametrize("sizes", [(7,), (3, 4), (2, 3, 2), (1,) * 7])
    def test_any_partition_matches_reference(self, setup, sizes):
        levels, x, reference, expected = setup
        executor = PartitionedExecutor(levels, sizes, params=reference.params,
                                       integer=True)
        np.testing.assert_array_equal(expected, executor.run(x))

    @pytest.mark.parametrize("sizes", [(7,), (3, 4), (1,) * 7])
    def test_traffic_matches_partition_analysis(self, setup, sizes):
        levels, x, reference, _ = setup
        executor = PartitionedExecutor(levels, sizes, params=reference.params,
                                       integer=True)
        trace = TrafficTrace()
        executor.run(x, trace)
        analysis = analyze_partition(independent_units(levels), sizes)
        measured = (trace.dram_read_elements + trace.dram_write_elements) * 4
        assert measured == analysis.feature_transfer_bytes

    def test_every_composition_exact(self, setup):
        """All 64 partitions of the mini VGG produce identical outputs."""
        levels, x, reference, expected = setup
        for sizes in compositions(len(levels)):
            executor = PartitionedExecutor(levels, sizes,
                                           params=reference.params, integer=True)
            got = executor.run(x)
            assert np.array_equal(expected, got), sizes

    def test_boundary_shapes(self, setup):
        levels, x, reference, _ = setup
        executor = PartitionedExecutor(levels, (3, 4), params=reference.params,
                                       integer=True)
        (boundary,) = executor.boundary_shapes
        assert boundary == levels[2].out_shape

    def test_buffer_accounting(self, setup):
        levels, x, reference, _ = setup
        executor = PartitionedExecutor(levels, (3, 4), params=reference.params,
                                       integer=True)
        executor.run(x)
        per_group = [g.buffer_bytes for g in executor.groups]
        assert executor.buffer_bytes == max(per_group)
        assert executor.total_buffer_bytes == sum(per_group)

    def test_tip_clamped_per_group(self, setup):
        levels, x, reference, expected = setup
        executor = PartitionedExecutor(levels, (3, 4), params=reference.params,
                                       tip_h=64, tip_w=64, integer=True)
        np.testing.assert_array_equal(expected, executor.run(x))

    def test_bad_sizes_rejected(self, setup):
        levels, *_ = setup
        with pytest.raises(ShapeError):
            PartitionedExecutor(levels, (3, 3), integer=True)
        with pytest.raises(ShapeError):
            PartitionedExecutor(levels, (7, 0), integer=True)
