"""PipelinePlan: the ``"pipeline"`` compiled-plan family.

A pipeline plan wraps a base compiled plan (linear or graph) together
with a device fleet, a link model, and a frozen stage split. It mirrors
the :class:`~repro.serve.plan.CompiledPlan` surface (``key``,
``execute``, ``byte_size``, ``num_groups``, ``describe``,
``to_dict``/``from_dict``) so the serving stack — ``PlanCache``,
``InferenceService``, ``WorkerPool`` — treats sharded plans like any
other.

Two things are deliberately decoupled:

* **numerics** run stage-by-stage through the *same* operator sequence
  the base plan's executor applies — linear stages execute contiguous
  layer-binding slices via :class:`~repro.sim.network_exec.NetworkExecutor`,
  graph stages execute :meth:`~repro.graph.executor.GraphExecutor.run_atom`
  runs — so outputs are **bit-identical** to direct execution, including
  under fault plans (faults live inside the unchanged fused executors);
* **timing** is simulated in virtual cycles: every ``execute`` call also
  runs the micro-batch scheduler over the frozen stage costs and records
  the result (``last_run``) plus wall-clock per-stage offsets
  (``last_stage_report``) for the per-device trace lanes.

The plan key carries ``family="pipeline"`` and a variant tagged with the
device count and fleet fingerprint (``pipe:d<K>:<fp>``), so a sharded
plan can never alias its base plan — or a differently sharded sibling —
in a cache (RC805 enforces this statically).
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import ConfigError
from ..hw.device import DeviceSpec
from ..hw.link import DEFAULT_LINK, LinkSpec
from ..nn.layers import ConvSpec, PoolSpec
from ..nn.stages import extract_levels, independent_units
from .pipeline import MicroBatchRun, simulate_microbatches
from .stage import PipelineEstimate, balance_stages, plan_atoms


#: Micro-batch run length weights amortize over by default: a stage
#: streams its weights once, then serves this many items before the next
#: fetch. Priced identically into single-device baselines for fairness.
DEFAULT_WEIGHT_ITEMS = 8


def fleet_fingerprint(devices: Sequence[DeviceSpec], link: LinkSpec,
                      weight_items: int = DEFAULT_WEIGHT_ITEMS) -> str:
    """Order-sensitive fingerprint of the device chain, its links, and
    the weight-amortization run length (all the pricing inputs)."""
    payload = "|".join([d.fingerprint() for d in devices]
                       + [link.fingerprint(), f"m{weight_items}"])
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def pipeline_variant(base_variant: str, devices: Sequence[DeviceSpec],
                     link: LinkSpec,
                     weight_items: int = DEFAULT_WEIGHT_ITEMS) -> str:
    """The variant string a sharded plan's key carries.

    Encodes the device count and fleet fingerprint so pipeline plans of
    the same base configuration but different fleets never alias.
    """
    fp = fleet_fingerprint(devices, link, weight_items)[:8]
    tag = f"pipe:d{len(devices)}:{fp}"
    if base_variant and base_variant != "default":
        return f"{base_variant}|{tag}"
    return tag


def pipeline_plan_key(base_key, devices: Sequence[DeviceSpec],
                      link: LinkSpec,
                      weight_items: int = DEFAULT_WEIGHT_ITEMS):
    """The :class:`~repro.serve.plan.PlanKey` a sharded compilation of
    ``base_key`` gets — family ``"pipeline"``, fleet-tagged variant —
    computable without compiling (the cache's lookup path)."""
    return dataclasses.replace(
        base_key, family="pipeline",
        variant=pipeline_variant(base_key.variant, devices, link,
                                 weight_items))


def _linear_stage_bindings(network, partition_sizes: Sequence[int],
                           boundaries: Sequence[int]) -> List[List[Any]]:
    """Layer bindings of each pipeline stage of a linear plan.

    Maps every binding to the fused group that owns it — windowed layers
    by partition position, pads with the level they fold into, ReLU/LRN
    with their producer, the classifier tail with the last group — then
    slices groups by the stage boundaries. Concatenating the slices
    reproduces the network's layer order exactly.
    """
    extractor = network.feature_extractor()
    units = independent_units(extract_levels(extractor))
    level_group: List[int] = []
    unit_group: List[int] = []
    for g, size in enumerate(partition_sizes):
        unit_group.extend([g] * int(size))
    if len(unit_group) != len(units):
        raise ConfigError("partition does not cover the network",
                          sizes=tuple(partition_sizes), units=len(units))
    for u, unit in enumerate(units):
        level_group.extend([unit_group[u]] * len(unit.levels))
    last_group = len(partition_sizes) - 1
    group_of: List[int] = []
    w = 0
    for binding in network:
        spec = binding.spec
        if isinstance(spec, (ConvSpec, PoolSpec)) and w < len(level_group):
            group_of.append(level_group[w])
            w += 1
        elif type(spec).__name__ == "PadSpec" and w < len(level_group):
            group_of.append(level_group[w])  # folds into the next level
        else:
            # ReLU/LRN ride their producer; the tail rides the last group.
            group_of.append(group_of[-1] if group_of else 0)
    stage_of_group: List[int] = []
    for stage, count in enumerate(boundaries):
        stage_of_group.extend([stage] * int(count))
    stages: List[List[Any]] = [[] for _ in boundaries]
    for binding, group in zip(network, group_of):
        stages[stage_of_group[group]].append(binding)
    return stages


class PipelinePlan:
    """A base plan sharded across a device fleet."""

    def __init__(self, base, devices: Sequence[DeviceSpec], link: LinkSpec,
                 estimate: PipelineEstimate, queue_depth: int = 2,
                 weight_items: int = DEFAULT_WEIGHT_ITEMS,
                 compile_s: float = 0.0):
        if base.key.family not in ("linear", "graph"):
            raise ConfigError(
                f"cannot shard a {base.key.family!r} plan",
                family=base.key.family)
        if queue_depth < 1:
            raise ConfigError("queue depth must be >= 1",
                              queue_depth=queue_depth)
        self.base = base
        self.devices = tuple(devices)
        self.link = link
        self.estimate = estimate
        self.queue_depth = queue_depth
        self.weight_items = weight_items
        self.compile_s = compile_s
        self.key = pipeline_plan_key(base.key, self.devices, link,
                                     weight_items)
        self.network = base.network
        self.seed = base.seed
        self.degraded = base.degraded
        self.executor = base.executor
        self.last_run: Optional[MicroBatchRun] = None
        self._tls = threading.local()
        if base.key.family == "linear":
            self._stage_bindings = _linear_stage_bindings(
                base.network, base.partition_sizes, estimate.boundaries)
            self._stage_atoms = None
        else:
            atoms = base.executor.exec_atoms()
            if len(atoms) != base.num_groups:
                raise ConfigError("atom extraction lost groups",
                                  atoms=len(atoms), groups=base.num_groups)
            self._stage_bindings = None
            self._stage_atoms = []
            start = 0
            for count in estimate.boundaries:
                self._stage_atoms.append(atoms[start:start + count])
                start += count

    # -- CompiledPlan surface ---------------------------------------------------

    @property
    def partition_sizes(self) -> Tuple[int, ...]:
        return tuple(self.base.partition_sizes)

    @property
    def num_groups(self) -> int:
        return self.base.num_groups

    @property
    def num_stages(self) -> int:
        return self.estimate.num_stages

    @property
    def boundaries(self) -> Tuple[int, ...]:
        return self.estimate.boundaries

    @property
    def byte_size(self) -> int:
        return self.base.byte_size

    @property
    def last_stage_report(self) -> Optional[List[Dict[str, Any]]]:
        """Per-stage wall-clock offsets of this thread's last ``execute``
        call: ``[{stage, device, start_s, end_s}, ...]`` measured on the
        :func:`time.perf_counter` clock — the tracer's time base, so the
        serving worker can replay them as per-device spans."""
        return getattr(self._tls, "report", None)

    def describe(self) -> str:
        interval = self.estimate.interval_cycles
        return (f"{self.network.name}: {self.num_groups} groups over "
                f"{self.num_stages} devices {self.boundaries}, interval "
                f"{interval} cycles, {self.estimate.link_bytes} link B/item "
                f"({self.key.precision} precision)")

    # -- execution --------------------------------------------------------------

    def execute(self, xs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Run a batch stage by stage; bit-identical to the base plan.

        Each item flows through every stage in order (the numerics are
        sequential; the pipeline overlap is *simulated*), and the
        micro-batch scheduler's verdict for this batch size lands in
        ``last_run``/``last_stage_report``.
        """
        items = [np.asarray(x) for x in xs]
        report: List[Dict[str, Any]] = []
        with obs.span("dist.execute", network=self.network.name,
                      devices=self.num_stages, batch=len(items)):
            outs: List[np.ndarray] = []
            stage_wall = [0.0] * self.num_stages
            for item in items:
                current = item
                envs: Optional[Dict[str, np.ndarray]] = None
                if self._stage_atoms is not None:
                    from ..graph.ir import INPUT

                    envs = {INPUT: np.asarray(item,
                                              dtype=self.base.executor.dtype)}
                for idx in range(self.num_stages):
                    t0 = time.perf_counter()
                    current = self._run_stage(idx, current, envs)
                    stage_wall[idx] += time.perf_counter() - t0
                outs.append(current)
        if items:
            clock = time.perf_counter()
            offset = clock - sum(stage_wall)
            for idx in range(self.num_stages):
                report.append({
                    "stage": idx,
                    "device": self.devices[idx].name,
                    "start_s": offset,
                    "end_s": offset + stage_wall[idx],
                })
                offset += stage_wall[idx]
            self._tls.report = report
            self.last_run = simulate_microbatches(
                [s.stage_cycles for s in self.estimate.stages],
                [s.link_cycles for s in self.estimate.stages],
                num_items=len(items), queue_depth=self.queue_depth)
            obs.add_counter("dist.items_executed", len(items))
            obs.add_counter("dist.link_bytes",
                            self.estimate.link_bytes * len(items))
        return outs

    def _run_stage(self, idx: int, current: np.ndarray,
                   envs: Optional[Dict[str, np.ndarray]]) -> np.ndarray:
        if self._stage_bindings is not None:
            for binding in self._stage_bindings[idx]:
                current = self.base.executor._apply(binding.spec, current)
            return current
        assert envs is not None and self._stage_atoms is not None
        for atom in self._stage_atoms[idx]:
            self.base.executor.run_atom(atom, envs)
        if idx == self.num_stages - 1:
            return envs[self.base.program.output_tensor]
        return current

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key.to_dict(),
            "base": self.base.to_dict(),
            "devices": [d.to_dict() for d in self.devices],
            "link": self.link.to_dict(),
            "boundaries": list(self.estimate.boundaries),
            "queue_depth": self.queue_depth,
            "weight_items": self.weight_items,
            "estimate": self.estimate.to_dict(),
            "seed": self.seed,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PipelinePlan":
        from ..serve.plan import CompiledPlan

        base = CompiledPlan.from_dict(data["base"])
        devices = [DeviceSpec.from_dict(d) for d in data["devices"]]
        link = LinkSpec.from_dict(data["link"])
        boundaries = tuple(int(b) for b in data["boundaries"])
        weight_items = int(data.get("weight_items", DEFAULT_WEIGHT_ITEMS))
        atoms = plan_atoms(base)
        estimate = balance_stages(atoms, devices, link,
                                  boundaries=boundaries,
                                  weight_items=weight_items)
        return cls(base=base, devices=devices, link=link, estimate=estimate,
                   queue_depth=int(data.get("queue_depth", 2)),
                   weight_items=weight_items)


def compile_pipeline_plan(network=None, devices: Sequence[DeviceSpec] = (),
                          link: LinkSpec = DEFAULT_LINK,
                          boundaries: Optional[Sequence[int]] = None,
                          queue_depth: int = 2,
                          weight_items: int = DEFAULT_WEIGHT_ITEMS,
                          base=None, validate: bool = True,
                          **compile_kwargs) -> PipelinePlan:
    """Compile a network (or wrap an existing ``base`` plan) into a
    pipeline plan over ``devices``.

    Without explicit ``boundaries`` the stage split comes from
    :func:`~repro.dist.stage.balance_stages` — the minimum steady-state
    interval over all contiguous splits; with them (a cache restore, or
    a tuner's choice) the split is only re-priced. Any remaining keyword
    arguments go to :func:`repro.serve.plan.compile_plan` for the base
    compilation.
    """
    if not devices:
        raise ConfigError("a pipeline plan needs at least one device")
    t0 = time.perf_counter()
    if base is None:
        if network is None:
            raise ConfigError("need a network or a base plan")
        from ..serve.plan import compile_plan

        # devices=() (not None) keeps a tuned record's own device count
        # from re-triggering the auto-shard recursively.
        base = compile_plan(network, validate=validate, devices=(),
                            **compile_kwargs)
    atoms = plan_atoms(base)
    with obs.span("dist.balance", network=base.network.name,
                  devices=len(devices), groups=len(atoms)):
        estimate = balance_stages(atoms, devices, link,
                                  boundaries=boundaries,
                                  weight_items=weight_items)
    plan = PipelinePlan(base=base, devices=devices, link=link,
                        estimate=estimate, queue_depth=queue_depth,
                        weight_items=weight_items,
                        compile_s=time.perf_counter() - t0)
    if validate:
        from ..check import check_pipeline_plan

        findings = [d for d in check_pipeline_plan(plan) if d.is_error]
        if findings:
            raise ConfigError(
                "pipeline plan failed static validation: "
                + "; ".join(d.render() for d in findings[:3]),
                key=str(plan.key), findings=len(findings))
        obs.add_counter("serve.plans_validated")
    obs.add_counter("serve.plans_compiled")
    obs.add_counter("dist.plans_compiled")
    return plan
