"""Stage partitioning and the stage/link cost model.

Everything here operates on **group atoms**: a uniform, ordered view of
the work a compiled plan performs, one atom per fused group. Linear
plans contribute one atom per partition group (the classifier tail
rides on the last one); graph plans contribute one atom per fused group
of every segment, with joins and opaque steps riding on the group that
precedes them in program order. Atoms carry their arithmetic, weight
traffic, and named read/write tensor sets — so pricing a stage split
never re-derives geometry, it just re-buckets footprints the partition
analysis already computed.

The pricing model per stage ``s`` (device ``d_s``):

* compute cycles = stage ops / (2 * MAC lanes of ``d_s``);
* DRAM cycles = stage DRAM bytes / private channel rate. A tensor read
  and written *within* one stage rounds through that stage's DRAM
  (exactly the single-device boundary model); a tensor crossing a stage
  boundary streams over the link instead and is charged on **every**
  link it crosses;
* stage cycles = max(compute, DRAM) (double-buffered overlap, the
  :func:`repro.hw.bandwidth.performance_under_bandwidth` convention);
* stage cost = stage cycles + link-out transfer cycles, and the
  steady-state interval is the max stage cost.

A single stage on a single device therefore reproduces the classic
model: all boundary maps round-trip one DRAM channel. That is the
baseline every multi-device estimate is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, comb
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..hw.device import DeviceSpec, WORDS_PER_BRAM18
from ..hw.link import LinkSpec
from ..nn.layers import ConvSpec, FCSpec
from ..nn.shapes import BYTES_PER_WORD
from ..core.fusion import units_to_levels
from ..nn.stages import extract_levels, independent_units

#: DSP floor per convolution level of a fused engine (the feasibility
#: floor :func:`repro.hw.multi.design_partition` applies).
_DSP_FLOOR_PER_CONV = 400


@dataclass(frozen=True)
class GroupAtom:
    """One schedulable unit of a compiled plan.

    ``reads``/``writes`` are ``(tensor, bytes, on_chip)`` triples;
    ``on_chip`` marks operands that cost no DRAM traffic when producer
    and consumer share a stage (retained skips of fused joins).
    """

    index: int
    name: str
    ops: int
    weight_bytes: int
    dsp_floor: int
    bram_words: int
    reads: Tuple[Tuple[str, int, bool], ...]
    writes: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class StageEstimate:
    """Priced placement of a contiguous run of atoms on one device."""

    index: int
    device: DeviceSpec
    atom_start: int
    atom_count: int
    ops: int
    compute_cycles: int
    dram_bytes: int
    dram_cycles: int
    link_out_bytes: int
    link_cycles: int
    dsp_floor: int
    bram_words: int

    @property
    def stage_cycles(self) -> int:
        """Compute overlapped with the private DRAM channel."""
        return max(self.compute_cycles, self.dram_cycles)

    @property
    def cost(self) -> int:
        """The stage's contribution to the steady-state interval."""
        return self.stage_cycles + self.link_cycles

    @property
    def bram18(self) -> int:
        return ceil(self.bram_words / WORDS_PER_BRAM18)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "device": self.device.to_dict(),
            "atom_start": self.atom_start,
            "atom_count": self.atom_count,
            "ops": self.ops,
            "compute_cycles": self.compute_cycles,
            "dram_bytes": self.dram_bytes,
            "dram_cycles": self.dram_cycles,
            "link_out_bytes": self.link_out_bytes,
            "link_cycles": self.link_cycles,
            "dsp_floor": self.dsp_floor,
            "bram_words": self.bram_words,
        }


@dataclass(frozen=True)
class PipelineEstimate:
    """The priced pipeline: one stage per device, links between."""

    stages: Tuple[StageEstimate, ...]
    link: LinkSpec

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def boundaries(self) -> Tuple[int, ...]:
        return tuple(s.atom_count for s in self.stages)

    @property
    def interval_cycles(self) -> int:
        """Steady-state initiation interval (max stage cost)."""
        return max(s.cost for s in self.stages)

    @property
    def latency_cycles(self) -> int:
        """Per-item latency: stages back to back, links included."""
        return sum(s.cost for s in self.stages)

    @property
    def total_dsp(self) -> int:
        return sum(s.device.dsp for s in self.stages)

    @property
    def link_bytes(self) -> int:
        """Bytes crossing inter-device links, per item."""
        return sum(s.link_out_bytes for s in self.stages)

    @property
    def items_per_s(self) -> float:
        clock_hz = min(s.device.clock_mhz for s in self.stages) * 1e6
        return clock_hz / self.interval_cycles

    @property
    def throughput_per_dsp(self) -> float:
        """Items per second per DSP slice — the resource-efficiency
        figure the multi-device benchmarks are judged on."""
        return self.items_per_s / self.total_dsp

    @property
    def stage_utilization(self) -> Tuple[float, ...]:
        interval = self.interval_cycles
        return tuple(s.cost / interval for s in self.stages)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stages": [s.to_dict() for s in self.stages],
            "link": self.link.to_dict(),
            "interval_cycles": self.interval_cycles,
            "latency_cycles": self.latency_cycles,
            "link_bytes": self.link_bytes,
            "total_dsp": self.total_dsp,
        }


# -- atom extraction -----------------------------------------------------------


def _level_atoms(levels_per_group: Sequence[Sequence], names: Sequence[str],
                 input_tensor: str, input_bytes: int) -> List[GroupAtom]:
    """Chain atoms for consecutive fused groups of windowed levels."""
    atoms: List[GroupAtom] = []
    upstream = (input_tensor, input_bytes)
    for idx, (levels, name) in enumerate(zip(levels_per_group, names)):
        out_bytes = levels[-1].out_shape.bytes
        out_tensor = f"{name}.out"
        atoms.append(GroupAtom(
            index=idx, name=name,
            ops=sum(level.total_ops for level in levels),
            weight_bytes=sum(level.weight_count for level in levels)
                         * BYTES_PER_WORD,
            dsp_floor=_DSP_FLOOR_PER_CONV
                      * sum(1 for level in levels if level.is_conv),
            bram_words=_group_bram_words(levels),
            reads=((upstream[0], upstream[1], False),),
            writes=((out_tensor, out_bytes),),
        ))
        upstream = (out_tensor, out_bytes)
    return atoms


def _group_bram_words(levels) -> int:
    """On-chip working-set estimate: weights plus the line buffers each
    windowed level needs (kernel rows of its padded input)."""
    words = sum(level.weight_count for level in levels)
    for level in levels:
        padded = level.padded_in_shape
        words += level.kernel * padded.width * padded.channels
    return words


def _linear_atoms(plan) -> List[GroupAtom]:
    network = plan.network
    extractor = network.feature_extractor()
    units = independent_units(extract_levels(extractor))
    sizes = tuple(plan.partition_sizes)
    if sum(sizes) != len(units):
        raise ConfigError("plan partition does not cover the network",
                          sizes=sizes, units=len(units))
    groups: List[List] = []
    start = 0
    for size in sizes:
        groups.append(units_to_levels(units[start:start + size]))
        start += size
    names = [f"g{i}" for i in range(len(groups))]
    atoms = _level_atoms(groups, names, "input",
                         network.input_shape.bytes)
    # The classifier tail (FC/LRN/pool beyond the fusion scope) rides on
    # the last stage: fold its arithmetic and traffic into the last atom.
    tail = list(network)[len(extractor):]
    if tail and atoms:
        tail_ops = sum(b.total_ops for b in tail)
        tail_weight_bytes = _tail_weight_bytes(tail)
        last = atoms[-1]
        out_bytes = tail[-1].output_shape.bytes
        atoms[-1] = GroupAtom(
            index=last.index, name=last.name,
            ops=last.ops + tail_ops,
            weight_bytes=last.weight_bytes + tail_weight_bytes,
            dsp_floor=last.dsp_floor,
            bram_words=last.bram_words,
            reads=last.reads,
            writes=(("output", out_bytes),),
        )
    elif atoms:
        last = atoms[-1]
        atoms[-1] = GroupAtom(
            index=last.index, name=last.name, ops=last.ops,
            weight_bytes=last.weight_bytes, dsp_floor=last.dsp_floor,
            bram_words=last.bram_words, reads=last.reads,
            writes=(("output", last.writes[0][1]),),
        )
    return atoms


def _tail_weight_bytes(tail) -> int:
    total = 0
    for binding in tail:
        spec = binding.spec
        if isinstance(spec, FCSpec):
            total += (binding.input_shape.elements * spec.out_features
                      + spec.out_features) * BYTES_PER_WORD
        elif isinstance(spec, ConvSpec):
            in_ch = binding.input_shape.channels // spec.groups
            total += (spec.out_channels * in_ch * spec.kernel * spec.kernel
                      + spec.out_channels) * BYTES_PER_WORD
    return total


def _graph_atoms(plan) -> List[GroupAtom]:
    """One atom per fused group of every segment; joins and opaque steps
    ride on the nearest preceding group atom (their reads/writes and
    arithmetic merge into it)."""
    from ..graph.lower import JoinStep, OpaqueStep, SegmentStep

    network = plan.network
    program = plan.program
    decisions = plan.decisions
    atoms: List[GroupAtom] = []
    pending: List[Tuple] = []  # rider (ops, weight_bytes, reads, writes)
    segment_idx = 0

    def _attach_rider(ops, weight_bytes, reads, writes) -> None:
        if not atoms:
            pending.append((ops, weight_bytes, reads, writes))
            return
        last = atoms[-1]
        atoms[-1] = GroupAtom(
            index=last.index, name=last.name, ops=last.ops + ops,
            weight_bytes=last.weight_bytes + weight_bytes,
            dsp_floor=last.dsp_floor, bram_words=last.bram_words,
            reads=last.reads + tuple(reads),
            writes=last.writes + tuple(writes))

    for step in program.steps:
        if isinstance(step, SegmentStep):
            decision = decisions[segment_idx]
            segment_idx += 1
            start = 0
            n_groups = len(decision.sizes)
            for g, size in enumerate(decision.sizes):
                levels = step.levels[start:start + size]
                start += size
                last_group = g == n_groups - 1
                in_tensor = (step.input_tensor if g == 0
                             else f"{step.output_tensor}@{g - 1}")
                in_bytes = (network.tensor_shape(step.input_tensor).bytes
                            if g == 0 else levels[0].in_shape.bytes)
                reads: List[Tuple[str, int, bool]] = [
                    (in_tensor, in_bytes, False)]
                if last_group:
                    out_tensor = step.output_tensor
                else:
                    out_tensor = f"{step.output_tensor}@{g}"
                writes: List[Tuple[str, int]] = [
                    (out_tensor, levels[-1].out_shape.bytes)]
                if last_group and step.join is not None:
                    join = step.join
                    if decision.join_fused:
                        retained = set(step.retained_skips())
                        for tensor in step.skip_operands():
                            reads.append((tensor, join.operand_bytes(tensor),
                                          tensor in retained))
                        writes.append((join.output_tensor,
                                       join.out_shape.bytes))
                atom = GroupAtom(
                    index=len(atoms),
                    name=f"{step.name}.g{g}",
                    ops=sum(level.total_ops for level in levels)
                        + (join_ops(step.join) if last_group
                           and step.join is not None and decision.join_fused
                           else 0),
                    weight_bytes=sum(level.weight_count for level in levels)
                                 * BYTES_PER_WORD,
                    dsp_floor=_DSP_FLOOR_PER_CONV
                              * sum(1 for level in levels if level.is_conv),
                    bram_words=_group_bram_words(levels),
                    reads=tuple(reads), writes=tuple(writes))
                atoms.append(atom)
                if pending:
                    for rider in pending:
                        _attach_rider(*rider)
                    pending.clear()
            if (step.join is not None
                    and not decisions[segment_idx - 1].join_fused):
                join = step.join
                _attach_rider(
                    join_ops(join), 0,
                    [(t, join.operand_bytes(t), False)
                     for t in join.operands],
                    [(join.output_tensor, join.out_shape.bytes)])
        elif isinstance(step, JoinStep):
            join = step.join
            _attach_rider(
                join_ops(join), 0,
                [(t, join.operand_bytes(t), False) for t in join.operands],
                [(join.output_tensor, join.out_shape.bytes)])
        elif isinstance(step, OpaqueStep):
            node = step.node
            spec = node.spec
            in_shape = node.input_shapes[0]
            weight_bytes = 0
            if isinstance(spec, FCSpec):
                weight_bytes = (in_shape.elements * spec.out_features
                                + spec.out_features) * BYTES_PER_WORD
            _attach_rider(
                spec.total_ops(in_shape), weight_bytes,
                [(step.input_tensor, in_shape.bytes, False)],
                [(step.output_tensor, node.output_shape.bytes)])
    if pending:
        raise ConfigError("graph program has no fused group to host its "
                          "leading steps", network=network.name)
    return atoms


def join_ops(join) -> int:
    """Elementwise/concat joins: one op per output element per operand."""
    if join is None:
        return 0
    return join.out_shape.elements * max(len(join.operands), 1)


def plan_atoms(plan) -> List[GroupAtom]:
    """The ordered group atoms of a compiled plan (linear or graph).

    The atom count always equals ``plan.num_groups`` — every fused group
    appears exactly once, in execution order — which is the invariant
    the stage partitioner and the RC801 coverage check build on.
    """
    family = plan.key.family
    if family == "graph":
        atoms = _graph_atoms(plan)
    elif family == "linear":
        atoms = _linear_atoms(plan)
    else:
        raise ConfigError(f"cannot shard a {family!r} plan",
                          family=family)
    if len(atoms) != plan.num_groups:
        raise ConfigError(
            "atom extraction lost groups", atoms=len(atoms),
            groups=plan.num_groups)
    return atoms


# -- pricing -------------------------------------------------------------------


def _stage_of_atom(boundaries: Sequence[int]) -> List[int]:
    out: List[int] = []
    for stage, count in enumerate(boundaries):
        out.extend([stage] * count)
    return out


def price_stages(atoms: Sequence[GroupAtom], boundaries: Sequence[int],
                 devices: Sequence[DeviceSpec],
                 link: LinkSpec, weight_items: int = 1) -> PipelineEstimate:
    """Price one contiguous stage split of ``atoms`` onto ``devices``.

    ``boundaries`` gives the atom count of each stage; it must cover
    every atom exactly once with no empty stage. ``weight_items`` is the
    micro-batch run length weights amortize over: a stage streams its
    weights from DRAM once, then reuses them for that many consecutive
    items (``1`` = refetch per item, the paper's single-image model).
    The same value must price the single-device baseline for a fair
    comparison.
    """
    if weight_items < 1:
        raise ConfigError("weight_items must be >= 1",
                          weight_items=weight_items)
    boundaries = tuple(int(b) for b in boundaries)
    if len(boundaries) != len(devices):
        raise ConfigError("one stage per device required",
                          stages=len(boundaries), devices=len(devices))
    if any(b < 1 for b in boundaries) or sum(boundaries) != len(atoms):
        raise ConfigError(
            f"stage sizes {boundaries} do not cover {len(atoms)} groups",
            boundaries=boundaries, atoms=len(atoms))
    stage_of = _stage_of_atom(boundaries)
    writer: Dict[str, Tuple[int, int]] = {}  # tensor -> (stage, bytes)
    readers: Dict[str, List[int]] = {}
    for atom, stage in zip(atoms, stage_of):
        for tensor, nbytes, _ in atom.reads:
            readers.setdefault(tensor, []).append(stage)
        for tensor, nbytes in atom.writes:
            writer[tensor] = (stage, nbytes)

    num_stages = len(boundaries)
    dram = [0] * num_stages
    crossing = [0] * num_stages  # bytes over the link after stage s

    for atom, stage in zip(atoms, stage_of):
        dram[stage] += ceil(atom.weight_bytes / weight_items)
        for tensor, nbytes, on_chip in atom.reads:
            src = writer.get(tensor)
            if src is None:
                dram[stage] += nbytes  # external input: DRAM read
            elif src[0] == stage:
                if not on_chip:
                    dram[stage] += nbytes  # intra-stage round trip
            # cross-stage reads arrive over the link: no DRAM charge
    for tensor, (stage, nbytes) in writer.items():
        consumers = readers.get(tensor, [])
        later = [s for s in consumers if s > stage]
        intra = [s for s in consumers if s == stage]
        if later:
            for hop in range(stage, max(later)):
                crossing[hop] += nbytes
        if intra or not consumers:
            # written to this stage's DRAM: for a same-stage consumer,
            # or as a final output nobody downstream consumes
            dram[stage] += nbytes

    stages: List[StageEstimate] = []
    start = 0
    for idx, (count, device) in enumerate(zip(boundaries, devices)):
        chunk = list(atoms[start:start + count])
        ops = sum(a.ops for a in chunk)
        compute = ceil(ops / device.ops_per_cycle)
        dram_cycles = ceil(dram[idx] / device.dram_bytes_per_cycle)
        link_out = crossing[idx] if idx < num_stages - 1 else 0
        stages.append(StageEstimate(
            index=idx, device=device, atom_start=start, atom_count=count,
            ops=ops, compute_cycles=compute, dram_bytes=dram[idx],
            dram_cycles=dram_cycles, link_out_bytes=link_out,
            link_cycles=link.transfer_cycles(link_out),
            # Groups sharing a stage time-multiplex one engine, so the
            # stage needs the *largest* group's resources, not the sum.
            dsp_floor=max(a.dsp_floor for a in chunk),
            bram_words=max(a.bram_words for a in chunk)))
        start += count
    return PipelineEstimate(stages=tuple(stages), link=link)


def enumerate_boundaries(num_atoms: int,
                         num_stages: int) -> Iterator[Tuple[int, ...]]:
    """Every composition of ``num_atoms`` into exactly ``num_stages``
    positive parts, lexicographic."""
    if num_stages < 1 or num_atoms < num_stages:
        return
    if num_stages == 1:
        yield (num_atoms,)
        return
    for first in range(1, num_atoms - num_stages + 2):
        for rest in enumerate_boundaries(num_atoms - first, num_stages - 1):
            yield (first,) + rest


#: Above this many compositions the balance search falls back to an
#: ops-balanced greedy split instead of exhaustive enumeration.
_MAX_ENUMERATION = 200_000


def balance_stages(atoms: Sequence[GroupAtom],
                   devices: Sequence[DeviceSpec], link: LinkSpec,
                   boundaries: Optional[Sequence[int]] = None,
                   weight_items: int = 1) -> PipelineEstimate:
    """The minimum-interval contiguous stage split of ``atoms``.

    Exhaustive over all compositions when tractable (ties break toward
    the lexicographically first split, so the result is deterministic);
    an ops-balanced greedy split otherwise. ``boundaries`` pins an
    explicit split (a cache restore re-prices without searching).
    Splits whose stage DSP floors exceed their device are infeasible.
    """
    num_stages = len(devices)
    if num_stages < 1:
        raise ConfigError("a pipeline needs at least one device")
    if len(atoms) < num_stages:
        raise ConfigError(
            f"{len(atoms)} fused groups cannot fill {num_stages} devices; "
            "use fewer devices or a finer partition",
            atoms=len(atoms), devices=num_stages)
    if boundaries is not None:
        estimate = price_stages(atoms, boundaries, devices, link,
                                weight_items=weight_items)
        _require_feasible(estimate)
        return estimate
    candidates: Iterator[Tuple[int, ...]]
    if comb(len(atoms) - 1, num_stages - 1) > _MAX_ENUMERATION:
        candidates = iter([_greedy_boundaries(atoms, num_stages)])
    else:
        candidates = enumerate_boundaries(len(atoms), num_stages)
    best: Optional[PipelineEstimate] = None
    for split in candidates:
        estimate = price_stages(atoms, split, devices, link,
                                weight_items=weight_items)
        if any(s.dsp_floor > s.device.dsp for s in estimate.stages):
            continue
        if best is None or estimate.interval_cycles < best.interval_cycles:
            best = estimate
    if best is None:
        raise ConfigError(
            "no feasible stage split: some stage's DSP floor exceeds its "
            "device budget", devices=[d.name for d in devices])
    return best


def _require_feasible(estimate: PipelineEstimate) -> None:
    for stage in estimate.stages:
        if stage.dsp_floor > stage.device.dsp:
            raise ConfigError(
                f"stage {stage.index} needs {stage.dsp_floor} DSP but "
                f"device {stage.device.name!r} has {stage.device.dsp}",
                stage=stage.index, dsp_floor=stage.dsp_floor,
                dsp=stage.device.dsp)


def _greedy_boundaries(atoms: Sequence[GroupAtom],
                       num_stages: int) -> Tuple[int, ...]:
    """Contiguous split with per-stage ops closest to the even share."""
    total = sum(a.ops for a in atoms) or 1
    target = total / num_stages
    counts: List[int] = []
    acc = 0
    taken = 0
    for i, atom in enumerate(atoms):
        acc += atom.ops
        remaining_atoms = len(atoms) - i - 1
        remaining_stages = num_stages - len(counts) - 1
        if (acc >= target and remaining_stages > 0
                and remaining_atoms >= remaining_stages):
            counts.append(i + 1 - taken)
            taken = i + 1
            acc = 0
    counts.append(len(atoms) - taken)
    while len(counts) < num_stages:  # degenerate: pad with singletons
        counts[counts.index(max(counts))] -= 1
        counts.append(1)
    return tuple(counts)
