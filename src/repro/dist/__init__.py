"""repro.dist: multi-device pipeline-parallel serving.

The paper fuses adjacent layers into groups so each group's pyramid
runs out of on-chip buffers; this package takes the next structural
step and maps each fused group (of a linear partition or a DAG segment
schedule) onto its **own simulated device** — a
:class:`~repro.hw.device.DeviceSpec` with a private DSP/BRAM budget and
DRAM channel — connected by :class:`~repro.hw.link.LinkSpec` links that
stream the inter-group activation footprints the partition analysis
already computes.

Three layers:

* :mod:`~repro.dist.stage` — group *atoms* (uniform over linear and
  graph plans), the contiguous stage partitioner, and the stage/link
  cost model (compute vs private-DRAM vs link, steady-state interval =
  max over stages of stage cycles + link transfer);
* :mod:`~repro.dist.pipeline` — the micro-batch pipeline scheduler:
  bounded per-stage queues with backpressure, fill/drain accounting,
  per-stage utilization;
* :mod:`~repro.dist.plan` — :class:`PipelinePlan`, the ``"pipeline"``
  plan family: a sharded, *bit-identical* executable the serving stack
  (``InferenceService``/``WorkerPool``/``PlanCache``) treats like any
  other compiled plan.
"""

from ..hw.device import (
    DEFAULT_DEVICE,
    DeviceSpec,
    replicate_device,
    split_device,
)
from ..hw.link import DEFAULT_LINK, LinkSpec
from .pipeline import MicroBatchRun, simulate_microbatches
from .plan import (
    DEFAULT_WEIGHT_ITEMS,
    PipelinePlan,
    compile_pipeline_plan,
    fleet_fingerprint,
    pipeline_plan_key,
    pipeline_variant,
)
from .stage import (
    GroupAtom,
    PipelineEstimate,
    StageEstimate,
    balance_stages,
    enumerate_boundaries,
    plan_atoms,
    price_stages,
)

__all__ = [
    "DEFAULT_DEVICE",
    "DEFAULT_LINK",
    "DEFAULT_WEIGHT_ITEMS",
    "DeviceSpec",
    "fleet_fingerprint",
    "GroupAtom",
    "LinkSpec",
    "MicroBatchRun",
    "PipelineEstimate",
    "PipelinePlan",
    "StageEstimate",
    "pipeline_plan_key",
    "balance_stages",
    "compile_pipeline_plan",
    "enumerate_boundaries",
    "pipeline_variant",
    "plan_atoms",
    "price_stages",
    "replicate_device",
    "simulate_microbatches",
    "split_device",
]
