"""Micro-batch pipeline scheduling with bounded per-stage queues.

Given the per-stage costs a :class:`~repro.dist.stage.PipelineEstimate`
produced, this simulates a stream of micro-batch items through the
device chain in virtual cycles. The model:

* a stage *serves* one item at a time; its service time is stage cycles
  plus link-out cycles (the output port streams to the next device, so
  the stage cannot accept the next item until the transfer drains) —
  which makes the analytic steady-state interval exactly
  ``max(stage compute + link transfer)``, the definition the cost model
  freezes into plans;
* each stage has a **bounded input queue** of ``queue_depth`` items.
  A full queue exerts backpressure: the upstream stage may not *begin*
  an item until the queue slot its output will occupy has been freed
  (blocking-before-service), so a slow stage stalls the whole upstream
  chain instead of buffering unboundedly;
* fill and drain are first-class: the report separates the pipeline
  fill (first item's traversal), the steady region, and the combined
  fill/drain/blocking overhead over a perfectly steady pipeline.

Everything is a pure function of its arguments — no wall clock, no
randomness — so identical-seed serving runs report identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class MicroBatchRun:
    """One simulated pipeline run over ``num_items`` micro-batches."""

    num_items: int
    queue_depth: int
    stage_service: Tuple[int, ...]
    makespan_cycles: int
    fill_cycles: int
    fill_drain_cycles: int
    steady_interval: int
    measured_interval: float
    stage_busy: Tuple[int, ...]
    stage_utilization: Tuple[float, ...]
    blocked_cycles: int
    max_queue: Tuple[int, ...]

    @property
    def bottleneck_stage(self) -> int:
        return max(range(len(self.stage_service)),
                   key=lambda s: self.stage_service[s])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_items": self.num_items,
            "queue_depth": self.queue_depth,
            "stage_service": list(self.stage_service),
            "makespan_cycles": self.makespan_cycles,
            "fill_cycles": self.fill_cycles,
            "fill_drain_cycles": self.fill_drain_cycles,
            "steady_interval": self.steady_interval,
            "measured_interval": self.measured_interval,
            "stage_busy": list(self.stage_busy),
            "stage_utilization": list(self.stage_utilization),
            "blocked_cycles": self.blocked_cycles,
            "max_queue": list(self.max_queue),
        }


def simulate_microbatches(stage_cycles: Sequence[int],
                          link_cycles: Sequence[int],
                          num_items: int,
                          queue_depth: int = 2) -> MicroBatchRun:
    """Run ``num_items`` items through the stage chain.

    ``stage_cycles[s]`` is stage ``s``'s processing time per item;
    ``link_cycles[s]`` the outbound transfer after it (the last entry is
    ignored — there is no link after the final stage).
    """
    num_stages = len(stage_cycles)
    if num_stages < 1:
        raise ConfigError("a pipeline needs at least one stage")
    if len(link_cycles) not in (num_stages, num_stages - 1):
        raise ConfigError("one link per stage boundary required",
                          stages=num_stages, links=len(link_cycles))
    if num_items < 1:
        raise ConfigError("need at least one item", num_items=num_items)
    if queue_depth < 1:
        raise ConfigError("queue depth must be >= 1",
                          queue_depth=queue_depth)
    service = [int(stage_cycles[s])
               + (int(link_cycles[s]) if s < num_stages - 1 else 0)
               for s in range(num_stages)]
    if any(s <= 0 for s in service):
        service = [max(s, 1) for s in service]

    # begin[s] holds begin times of the last `queue_depth + 1` items per
    # stage (enough history for the backpressure constraint).
    history: List[List[int]] = [[] for _ in range(num_stages)]
    last_begin = [-1] * num_stages  # begin time of the previous item
    arrivals: List[List[Tuple[int, int]]] = [[] for _ in range(num_stages)]
    blocked = 0
    first_done = 0
    last_done = 0
    prev_done = 0
    measured: List[int] = []

    for item in range(num_items):
        arrive = 0
        for s in range(num_stages):
            ready = arrive
            if last_begin[s] >= 0:
                ready = max(ready, last_begin[s] + service[s])
            begin = ready
            if s + 1 < num_stages:
                # backpressure: downstream queue slot must be free —
                # item (item - queue_depth) must already be in service
                # downstream before this item may occupy the queue.
                idx = item - queue_depth
                if idx >= 0:
                    release = history[s + 1][idx]
                    if release > begin:
                        blocked += release - begin
                        begin = release
            history[s].append(begin)
            last_begin[s] = begin
            arrivals[s].append((arrive, begin))
            arrive = begin + service[s]
        done = arrive
        if item == 0:
            first_done = done
        else:
            measured.append(done - prev_done)
        prev_done = done
        last_done = done

    steady = max(service)
    makespan = last_done
    busy = tuple(service[s] * num_items for s in range(num_stages))
    max_queue = _max_occupancy(arrivals, num_stages)
    return MicroBatchRun(
        num_items=num_items, queue_depth=queue_depth,
        stage_service=tuple(service), makespan_cycles=makespan,
        fill_cycles=first_done,
        fill_drain_cycles=max(makespan - num_items * steady, 0),
        steady_interval=steady,
        measured_interval=(sum(measured) / len(measured)
                           if measured else float(first_done)),
        stage_busy=busy,
        stage_utilization=tuple(b / makespan for b in busy),
        blocked_cycles=blocked,
        max_queue=max_queue)


def _max_occupancy(arrivals: List[List[Tuple[int, int]]],
                   num_stages: int) -> Tuple[int, ...]:
    """Peak input-queue occupancy per stage: items arrived but not yet
    begun, sampled at every arrival instant."""
    peaks: List[int] = []
    for s in range(num_stages):
        events = arrivals[s]
        peak = 0
        for i, (arrive, _) in enumerate(events):
            depth = sum(1 for a, b in events[:i + 1]
                        if a <= arrive and b > arrive)
            peak = max(peak, depth)
        peaks.append(peak)
    return tuple(peaks)
