"""User-facing verification harness: run the reproduction's trust chain.

``python -m repro verify`` (or :func:`run_verification`) executes the
core equivalence and accounting checks on demand — the same properties
the test suite enforces, packaged as a quick self-check a user can run
after installing or modifying the library:

0. the static analyzer (:mod:`repro.check`) finds no dataflow or
   hazard findings on the representative networks — cheap, so it runs
   before any NumPy execution;
1. fused == layer-by-layer (bit-identical) on representative networks;
2. recompute == layer-by-layer, with executed ops matching the
   Section III-B model exactly;
3. DRAM traffic counters match the analytic transfer model;
4. the reuse strategy performs zero redundant arithmetic;
5. the Figure 7(b) calibration points (A/B/C) hold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from .core.costs import one_pass_ops, recompute_ops
from .core.explorer import explore
from .nn.network import Network
from .nn.shapes import TensorShape
from .nn.stages import extract_levels
from .nn.zoo import toynet, vggnet_e
from .sim import (
    FusedExecutor,
    RecomputeExecutor,
    ReferenceExecutor,
    TrafficTrace,
    make_input,
)

KB = 2 ** 10
MB = 2 ** 20


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one self-check."""

    name: str
    passed: bool
    detail: str
    seconds: float


def _check(name: str, fn: Callable[[], str]) -> CheckResult:
    start = time.perf_counter()
    try:
        detail = fn()
        passed = True
    except AssertionError as err:
        detail = str(err) or "assertion failed"
        passed = False
    return CheckResult(name=name, passed=passed, detail=detail,
                       seconds=time.perf_counter() - start)


def _scaled_vgg(scale: int = 4) -> Network:
    sliced = vggnet_e().prefix(5)
    shape = sliced.input_shape
    return Network(sliced.name, TensorShape(shape.channels,
                                            shape.height // scale,
                                            shape.width // scale),
                   sliced.specs)


def run_verification(scale: int = 4) -> List[CheckResult]:
    """Run every self-check; returns one result per check."""
    results: List[CheckResult] = []

    def static_analysis() -> str:
        from .check import check_concurrency_paths, check_network
        from .nn.zoo import alexnet

        findings = 0
        checks = 0
        for network in (toynet(), alexnet(), _scaled_vgg(scale)):
            report = check_network(network)
            checks += len(report.checks_run)
            findings += len(report.diagnostics)
            assert report.ok(strict=True), (
                f"{network.name}: " + "; ".join(
                    d.render() for d in report.diagnostics[:3]))
        here = Path(__file__).resolve().parent
        threaded = [str(here / d) for d in ("serve", "dist", "obs")]
        races = check_concurrency_paths(threaded)
        checks += 1
        assert not races, "; ".join(d.render() for d in races[:3])
        return (f"{checks} static checks, {findings} findings "
                "(geometry, hazards, dataflow, lock discipline)")

    results.append(_check("static analysis (repro.check)", static_analysis))

    levels = extract_levels(_scaled_vgg(scale))
    x = make_input(levels[0].in_shape, integer=True)
    reference = ReferenceExecutor(levels, integer=True)
    expected = reference.run(x)

    def fused_equivalence() -> str:
        executor = FusedExecutor(levels, params=reference.params, integer=True)
        trace = TrafficTrace()
        got = executor.run(x, trace)
        assert np.array_equal(expected, got), "fused output differs"
        assert trace.reads_for("input") == x.size, "input not read exactly once"
        assert trace.ops == one_pass_ops(levels), "redundant arithmetic detected"
        return (f"bit-identical; {trace.reads_for('input')} input words read "
                f"once; {trace.ops / 1e6:.1f} Mops (redundancy-free)")

    def recompute_equivalence() -> str:
        executor = RecomputeExecutor(levels, params=reference.params, integer=True)
        trace = TrafficTrace()
        got = executor.run(x, trace)
        assert np.array_equal(expected, got), "recompute output differs"
        model = recompute_ops(levels, 1, 1)
        assert trace.ops == model, f"executed {trace.ops} != model {model}"
        return (f"bit-identical; executed ops match the Sec. III-B model "
                f"exactly ({trace.ops / 1e6:.1f} Mops, "
                f"{trace.ops / one_pass_ops(levels):.2f}x one pass)")

    def toy_pyramid() -> str:
        toy_levels = extract_levels(toynet(n=3, m=4, p=5, with_relu=True))
        toy_x = make_input(toy_levels[0].in_shape, integer=True)
        toy_ref = ReferenceExecutor(toy_levels, integer=True)
        executor = FusedExecutor(toy_levels, params=toy_ref.params, integer=True)
        assert np.array_equal(toy_ref.run(toy_x), executor.run(toy_x))
        return "Figure 3 walkthrough network verified"

    def calibration() -> str:
        result = explore(vggnet_e(), num_convs=5)
        a = result.layer_by_layer
        c = result.fully_fused
        assert result.num_partitions == 64, "partition count"
        assert abs(a.feature_transfer_bytes / MB - 86.3) < 0.2, "point A"
        assert abs(c.feature_transfer_bytes / MB - 3.64) < 0.01, "point C transfer"
        assert abs(c.extra_storage_bytes / KB - 362) < 4, "point C storage"
        return ("Figure 7(b): A=86.3 MB, C=3.64 MB @ 363 KB "
                "(paper: 86 / 3.6 / 362)")

    results.append(_check("fused schedule equivalence", fused_equivalence))
    results.append(_check("recompute schedule equivalence", recompute_equivalence))
    results.append(_check("toy pyramid (Figure 3)", toy_pyramid))
    results.append(_check("paper calibration (Figure 7b)", calibration))
    return results


def render_results(results: List[CheckResult]) -> str:
    """Human-readable PASS/FAIL report for :func:`run_verification`."""
    lines = []
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        lines.append(f"[{mark}] {result.name} ({result.seconds:.2f}s)")
        lines.append(f"       {result.detail}")
    failed = sum(1 for r in results if not r.passed)
    lines.append(f"{len(results) - failed}/{len(results)} checks passed")
    return "\n".join(lines)
