"""repro — reproduction of "Fused-Layer CNN Accelerators" (MICRO 2016).

Public API tour:

* :mod:`repro.nn` — CNN intermediate representation and model zoo
  (AlexNet, VGG-16, VGGNet-E, the Figure 3 toy network).
* :mod:`repro.core` — the paper's contribution: pyramid geometry, the
  reuse/recompute cost models, the 2^(l-1) partition search, and the
  Pareto-frontier exploration tool of Section V.
* :mod:`repro.sim` — functional NumPy simulator executing both the
  layer-by-layer and the fused pyramid schedules with DRAM-traffic
  tracing; the two produce bit-identical outputs.
* :mod:`repro.hw` — analytic FPGA accelerator models: the Zhang-style
  baseline, the fused pipeline with balancing, resource estimation, a
  discrete-event pipeline simulator, and the HLS C++ template generator.
* :mod:`repro.analysis` — regeneration of every figure and table in the
  paper's evaluation.
* :mod:`repro.obs` — observability: hierarchical timing spans, counters
  and gauges over the explorer/simulators/pipeline, with run-report,
  metrics-JSON, and Chrome-trace (Perfetto) exporters.
* :mod:`repro.faults` — robustness: the deterministic fault-injection
  plan DSL (DRAM stalls, bandwidth degradation, stage stalls, transfer
  corruption), bounded retry-with-backoff, and exploration budgets with
  graceful degradation.
* :mod:`repro.serve` — batched inference serving: compiled fusion plans
  with an LRU plan cache (JSON-persistent), a micro-batching scheduler
  with admission control, and a fault-tolerant parallel worker pool —
  the paper's offline-search/online-execution split as a service.
* :mod:`repro.errors` — the structured exception hierarchy
  (:class:`~repro.errors.ReproError` and friends) every subsystem raises.

Quickstart::

    from repro import explore, vggnet_e
    result = explore(vggnet_e(), num_convs=5)
    point_c = result.fully_fused
    print(point_c.feature_transfer_bytes / 2**20, "MB per image")
"""

from . import faults, obs
from .errors import BudgetExceeded, ConfigError, ReproError, SimFaultError
from .core import (
    ExplorationResult,
    GroupAnalysis,
    PartitionAnalysis,
    Strategy,
    analyze_group,
    build_pyramid,
    explore,
    pareto_front,
)
from .nn import (
    ConvSpec,
    Network,
    ParseError,
    PoolSpec,
    ReLUSpec,
    TensorShape,
    dump_network,
    extract_levels,
    parse_network,
)
from .nn.zoo import alexnet, googlenet_stem, nin_cifar, toynet, vgg16, vggnet_e, zfnet
from . import serve

__version__ = "1.0.0"

__all__ = [
    "BudgetExceeded",
    "ConfigError",
    "ConvSpec",
    "ExplorationResult",
    "ReproError",
    "SimFaultError",
    "GroupAnalysis",
    "Network",
    "ParseError",
    "PartitionAnalysis",
    "PoolSpec",
    "ReLUSpec",
    "Strategy",
    "TensorShape",
    "alexnet",
    "analyze_group",
    "build_pyramid",
    "dump_network",
    "explore",
    "extract_levels",
    "faults",
    "googlenet_stem",
    "nin_cifar",
    "obs",
    "parse_network",
    "pareto_front",
    "serve",
    "toynet",
    "vgg16",
    "vggnet_e",
    "zfnet",
]
