"""Static validation of exported request-trace files (RC5xx).

``repro serve-bench --trace PATH`` (and ``Tracer.to_jsonl`` /
``Tracer.write_chrome_trace`` directly) emit two formats:

* **JSONL** — one span object per line (``trace``, ``span``,
  ``parent``, ``name``, ``start_s``, ``end_s``, ``complete``), the
  machine-diffable form;
* **Chrome Trace Event Format** — a ``{"traceEvents": [...]}`` JSON
  object with per-lane complete events and ``s``/``f`` flow arrows,
  the form Perfetto loads.

:func:`check_trace_file` sniffs the format and verifies the structural
contract either way: every line/event parses, every span that began
also ended, no span points at a parent outside its trace, timestamps
are ordered, and every flow arrow that starts also finishes. CI greps
the resulting RC5xx codes exactly like the RC4xx record checks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Set

from .diagnostics import Diagnostic, diag

#: Keys every JSONL span record must carry.
_SPAN_KEYS = ("trace", "span", "parent", "name", "start_s")


def check_trace_file(path: str) -> List[Diagnostic]:
    """Validate one exported trace file; returns RC5xx diagnostics."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as err:
        return [diag("RC501", f"cannot read trace file: {err}", site=path)]
    stripped = text.lstrip()
    if not stripped:
        return [diag("RC501", "trace file is empty", site=path)]
    # Chrome traces are one JSON object; JSONL lines are objects too, so
    # sniff by whether the whole file parses to a traceEvents payload.
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return _check_chrome(path, payload)
    return _check_jsonl(path, text)


# -- JSONL span records --------------------------------------------------------


def _check_jsonl(path: str, text: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    spans_by_trace: Dict[Any, Set[Any]] = {}
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        site = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            out.append(diag("RC501", f"line is not valid JSON: {err.msg}",
                            site=site))
            continue
        if not isinstance(record, dict):
            out.append(diag("RC501", "line is not a JSON object", site=site))
            continue
        missing = [k for k in _SPAN_KEYS if k not in record]
        if missing:
            out.append(diag("RC501", "span record is missing required keys",
                            site=site, missing=missing))
            continue
        record["_site"] = site
        records.append(record)
        spans_by_trace.setdefault(record["trace"],
                                  set()).add(record["span"])
    if not records and not out:
        out.append(diag("RC501", "no span records in trace file", site=path))
    for record in records:
        site = record["_site"]
        name = record["name"]
        if not record.get("complete", False) or record.get("end_s") is None:
            out.append(diag("RC502", f"span {name!r} never ended",
                            site=site, trace=record["trace"],
                            span=record["span"]))
        elif record["end_s"] < record["start_s"]:
            out.append(diag("RC504", f"span {name!r} ends before it starts",
                            site=site, start_s=record["start_s"],
                            end_s=record["end_s"]))
        parent = record["parent"]
        if parent not in (-1, None) \
                and parent not in spans_by_trace.get(record["trace"], ()):
            out.append(diag("RC503",
                            f"span {name!r} references a parent outside "
                            "its trace", site=site, parent=parent,
                            trace=record["trace"]))
    return out


# -- Chrome Trace Event Format -------------------------------------------------


def _check_chrome(path: str, payload: Dict[str, Any]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return [diag("RC501", "traceEvents is not a list", site=path)]
    flows_open: Dict[Any, int] = {}
    flows_finished: Set[Any] = set()
    seen_complete = 0
    for index, event in enumerate(events):
        site = f"{path}#traceEvents[{index}]"
        if not isinstance(event, dict) or "ph" not in event:
            out.append(diag("RC501", "event has no phase ('ph')", site=site))
            continue
        ph = event["ph"]
        if ph == "X":
            seen_complete += 1
            if "ts" not in event or "dur" not in event:
                out.append(diag("RC501", "complete event missing ts/dur",
                                site=site, name=event.get("name")))
            elif event["dur"] < 0:
                out.append(diag("RC504", "complete event has negative "
                                "duration", site=site,
                                name=event.get("name"), dur=event["dur"]))
        elif ph == "B":
            # the exporter emits complete ("X") events; a stray begin
            # means a span never ended upstream
            out.append(diag("RC502", "begin event without a matching end",
                            site=site, name=event.get("name")))
        elif ph == "s":
            flows_open[event.get("id")] = flows_open.get(event.get("id"), 0) + 1
        elif ph == "f":
            fid = event.get("id")
            if flows_open.get(fid, 0) > 0:
                flows_open[fid] -= 1
            else:
                flows_finished.add(fid)
                out.append(diag("RC505", "flow finish without a start",
                                site=site, id=fid))
    for fid, count in sorted(flows_open.items(),
                             key=lambda kv: str(kv[0])):
        if count > 0:
            out.append(diag("RC505", "flow start without a finish",
                            site=f"{path}#flows", id=fid, open=count))
    if not seen_complete:
        out.append(diag("RC501", "trace has no span events", site=path))
    return out
