"""Static validation of pipeline (multi-device) plans: the RC8xx family.

A :class:`~repro.dist.plan.PipelinePlan` crosses process boundaries the
same way a base plan does — as JSON in a plan cache — and carries the
extra surface a hand edit or version skew can corrupt: a device fleet,
a link model, a stage split, and a priced estimate. The checks here
work on the serialized dictionary (no executor is built, no pricing
search is re-run) and pin each failure mode to a stable code:

* **RC801** — the stage split must cover every fused group of the base
  plan exactly once, one non-empty stage per device;
* **RC802** — every stage's DSP floor must fit its device;
* **RC803** — a stage working set over its device's BRAM is suspicious
  (warning: the estimate is a bound, not a schedule);
* **RC804** — stored link traffic must be self-consistent: transfer
  cycles re-derivable from the link model, no traffic out of the last
  stage, one link model shared by plan and estimate;
* **RC805** — the key must be the base key re-tagged with the
  ``pipeline`` family and the fleet variant actually stored — a sharded
  plan may never alias its base plan or a differently sharded sibling;
* **RC806** — the frozen interval/latency must equal what the stored
  per-stage cycles imply (max and sum of stage costs).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..errors import ConfigError
from .diagnostics import Diagnostic, diag

_PIPELINE_FIELDS = ("key", "base", "devices", "link", "boundaries",
                    "estimate")
_STAGE_FIELDS = ("device", "atom_start", "atom_count", "compute_cycles",
                 "dram_cycles", "link_out_bytes", "link_cycles",
                 "dsp_floor", "bram_words")


def _base_num_groups(base: Dict[str, Any]) -> Optional[int]:
    """Fused-group count of a serialized base plan (linear or graph)."""
    key = base.get("key")
    family = key.get("family", "linear") if isinstance(key, dict) else "linear"
    if family == "graph":
        decisions = base.get("decisions")
        if not isinstance(decisions, list):
            return None
        try:
            return sum(len(d["sizes"]) for d in decisions)
        except (KeyError, TypeError):
            return None
    sizes = base.get("partition_sizes")
    if not isinstance(sizes, list):
        return None
    return len(sizes)


def check_pipeline_plan_dict(data: Dict[str, Any],
                             network: Optional[Any] = None,
                             site: str = "") -> List[Diagnostic]:
    """Validate one serialized pipeline plan (``PipelinePlan.to_dict``)."""
    from ..dist.plan import DEFAULT_WEIGHT_ITEMS, pipeline_plan_key
    from ..hw.device import DeviceSpec, WORDS_PER_BRAM18
    from ..hw.link import LinkSpec
    from ..serve.plan import PlanKey
    from .records import check_plan_dict

    out: List[Diagnostic] = []
    if not isinstance(data, dict):
        return [diag("RC408", f"pipeline plan record is "
                     f"{type(data).__name__}, not an object", site=site)]
    missing = [f for f in _PIPELINE_FIELDS if f not in data]
    if missing:
        return [diag("RC408", f"pipeline plan record is missing {missing}",
                     site=site, missing=missing)]
    try:
        key = PlanKey.from_dict(data["key"])
    except (KeyError, TypeError, ValueError) as err:
        return [diag("RC403", f"unparseable plan key: {err}", site=site)]
    site = site or str(key)

    base = data["base"]
    out.extend(check_plan_dict(base, network=network,
                               site=f"{site}/base"))

    try:
        devices = [DeviceSpec.from_dict(d) for d in data["devices"]]
        link = LinkSpec.from_dict(data["link"])
    except (ConfigError, KeyError, TypeError, ValueError) as err:
        out.append(diag("RC408", f"device fleet does not rebuild: {err}",
                        site=site))
        return out
    weight_items = int(data.get("weight_items", DEFAULT_WEIGHT_ITEMS))

    # -- RC805: key = base key re-tagged, never aliasing anything else ------
    if key.family != "pipeline":
        out.append(diag(
            "RC805", f"sharded plan declares family {key.family!r}: it "
            "would alias an unsharded plan in a cache", site=site,
            family=key.family))
    if isinstance(base.get("key"), dict):
        try:
            base_key = PlanKey.from_dict(base["key"])
        except (KeyError, TypeError, ValueError):
            base_key = None  # reported by the base check above
        if base_key is not None:
            if base_key.family not in ("linear", "graph"):
                out.append(diag(
                    "RC805", f"base plan family {base_key.family!r} is not "
                    "shardable (pipeline-of-pipeline)", site=site,
                    base_family=base_key.family))
            expected = pipeline_plan_key(base_key, devices, link,
                                         weight_items)
            if key != expected and key.family == "pipeline":
                out.append(diag(
                    "RC805", f"key {key} does not match the stored fleet "
                    f"(expected {expected}): two fleets would alias one "
                    "cache slot", site=site, key=str(key),
                    expected=str(expected)))

    # -- RC801: stage split covers the base plan's groups -------------------
    try:
        boundaries = [int(b) for b in data["boundaries"]]
    except (TypeError, ValueError):
        out.append(diag("RC801", "boundaries are not a list of stage "
                        "sizes", site=site))
        return out
    num_groups = _base_num_groups(base) if isinstance(base, dict) else None
    if len(boundaries) != len(devices):
        out.append(diag(
            "RC801", f"{len(boundaries)} stages for {len(devices)} "
            "devices: one stage per device required", site=site,
            stages=len(boundaries), devices=len(devices)))
    if any(b < 1 for b in boundaries):
        out.append(diag("RC801", f"stage sizes {boundaries} contain an "
                        "empty stage", site=site, boundaries=boundaries))
    elif num_groups is not None and sum(boundaries) != num_groups:
        out.append(diag(
            "RC801", f"stage sizes {boundaries} cover {sum(boundaries)} "
            f"groups but the base plan has {num_groups}: part of the "
            "network would never execute", site=site,
            boundaries=boundaries, groups=num_groups))

    estimate = data["estimate"]
    stages = estimate.get("stages") if isinstance(estimate, dict) else None
    if not isinstance(stages, list) or not stages:
        out.append(diag("RC408", "estimate has no stage list", site=site))
        return out
    for i, stage in enumerate(stages):
        bad = [f for f in _STAGE_FIELDS
               if not isinstance(stage, dict) or f not in stage]
        if bad:
            out.append(diag("RC408", f"stage {i} is missing {bad}",
                            site=site, stage=i, missing=bad))
            return out
    if [int(s["atom_count"]) for s in stages] != boundaries:
        out.append(diag(
            "RC801", "estimate stages disagree with the stored boundaries",
            site=site, boundaries=boundaries,
            estimate=[int(s["atom_count"]) for s in stages]))
    expected_start = 0
    for i, stage in enumerate(stages):
        if int(stage["atom_start"]) != expected_start:
            out.append(diag(
                "RC801", f"stage {i} starts at atom {stage['atom_start']}, "
                f"expected {expected_start}: stages must tile the group "
                "sequence contiguously", site=site, stage=i))
            break
        expected_start += int(stage["atom_count"])

    # -- RC802/RC803: per-stage resource feasibility ------------------------
    for i, (stage, device) in enumerate(zip(stages, devices)):
        if int(stage["dsp_floor"]) > device.dsp:
            out.append(diag(
                "RC802", f"stage {i} needs {stage['dsp_floor']} DSP but "
                f"device {device.name!r} has {device.dsp}", site=site,
                stage=i, dsp_floor=int(stage["dsp_floor"]), dsp=device.dsp))
        bram18 = -(-int(stage["bram_words"]) // WORDS_PER_BRAM18)
        if bram18 > device.bram18:
            out.append(diag(
                "RC803", f"stage {i} working set is ~{bram18} BRAM18 but "
                f"device {device.name!r} has {device.bram18}: weights or "
                "line buffers would spill", site=site, stage=i,
                bram18=bram18, capacity=device.bram18))

    # -- RC804: link-capacity consistency -----------------------------------
    if (isinstance(estimate.get("link"), dict)
            and estimate["link"] != data["link"]):
        out.append(diag(
            "RC804", "the estimate was priced with a different link model "
            "than the plan stores", site=site))
    for i, stage in enumerate(stages):
        link_out = int(stage["link_out_bytes"])
        cycles = int(stage["link_cycles"])
        if link_out < 0 or cycles < 0:
            out.append(diag("RC804", f"stage {i} has negative link "
                            "traffic", site=site, stage=i))
            continue
        if i == len(stages) - 1 and link_out:
            out.append(diag(
                "RC804", f"last stage claims {link_out} link-out bytes but "
                "has no downstream device", site=site, stage=i,
                link_out_bytes=link_out))
        expected_cycles = link.transfer_cycles(link_out)
        if cycles != expected_cycles:
            out.append(diag(
                "RC804", f"stage {i} stores {cycles} link cycles for "
                f"{link_out} bytes; the link model prices "
                f"{expected_cycles}", site=site, stage=i,
                link_cycles=cycles, expected=expected_cycles))

    # -- RC806: interval / latency sanity ------------------------------------
    costs = [max(int(s["compute_cycles"]), int(s["dram_cycles"]))
             + int(s["link_cycles"]) for s in stages]
    interval = int(estimate.get("interval_cycles", -1))
    latency = int(estimate.get("latency_cycles", -1))
    if interval != max(costs):
        out.append(diag(
            "RC806", f"interval {interval} != max stage cost {max(costs)}: "
            "the steady-state pipeline rate is mispriced", site=site,
            interval=interval, expected=max(costs)))
    if latency != sum(costs):
        out.append(diag(
            "RC806", f"latency {latency} != sum of stage costs "
            f"{sum(costs)}", site=site, latency=latency,
            expected=sum(costs)))
    if interval <= 0:
        out.append(diag("RC806", f"interval must be positive, got "
                        f"{interval}", site=site, interval=interval))
    return out


def check_pipeline_plan(plan: Any,
                        network: Optional[Any] = None) -> List[Diagnostic]:
    """Validate an in-memory :class:`~repro.dist.plan.PipelinePlan`.

    Round-trips through :meth:`PipelinePlan.to_dict` (the idiom of
    :func:`~repro.check.records.check_compiled_plan`) so the persisted
    and in-memory contracts cannot drift.
    """
    return check_pipeline_plan_dict(plan.to_dict(), network=network)


def check_pipeline_plan_file(path: str,
                             network: Optional[Any] = None
                             ) -> List[Diagnostic]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return [diag("RC408", f"cannot read pipeline plan: {err}",
                     site=str(path))]
    return check_pipeline_plan_dict(payload, network=network)
