"""Static hazard detection over schedule objects.

A schedule is a claim about time: *this* tile is loaded before *that*
module reads it, a stage finishes one pyramid before accepting the
next, one DRAM channel carries all the traffic it is billed for. The
detectors here audit those claims on the finished schedule objects —
:class:`~repro.core.schedule.FusedSchedule` (the Section IV-B
calcparams form), :class:`~repro.hw.pipeline.PipelineSchedule` (the
discrete-event Figure 6 form), and
:class:`~repro.hw.memory_sim.ChannelSchedule` (the shared-channel
form) — without re-running any simulation.

Two hazard flavours recur:

* **read-before-write** (RC301) — a consumer is scheduled before its
  producer's data exists: a calcparams load origin that leaves a gap
  of never-loaded columns, or a pipeline stage finishing an item
  before input-ready + busy time allows.
* **overlap conflict** (RC302/RC304) — two writers own the same
  resource at once: a fresh DRAM load landing on live reuse columns
  (double-buffer clobber), a stage serving two pyramids
  simultaneously, or a channel billed busier than the makespan.

On anything the repo's own simulators produce these detectors are
provably silent (the tests sweep the zoo to assert it); they exist to
catch *foreign or corrupted* schedules — deserialized, hand-edited,
or produced by a future scheduler that breaks the contract.
"""

from __future__ import annotations

from typing import List

from ..core.schedule import FusedSchedule
from ..hw.memory_sim import ChannelSchedule
from ..hw.pipeline import PipelineSchedule
from ..nn.shapes import ShapeError
from .diagnostics import Diagnostic, diag


def _probe_indices(count: int) -> List[int]:
    """Stitching positions worth probing: both edges of the grid plus the
    first steady-state interior pair. Probing all of a 224x224 grid would
    re-prove the same algebra thousands of times."""
    return sorted({i for i in (1, 2, count - 1) if 1 <= i < count})


def check_fused_schedule(schedule: FusedSchedule) -> List[Diagnostic]:
    """Audit a calcparams schedule for load-stitching hazards.

    Consecutive pyramid loads along a row/column must overlap by exactly
    ``K - S`` padded-input columns/rows (Section IV-B): a smaller overlap
    leaves a gap the modules will read before anything wrote it
    (RC301); a larger one lands fresh DRAM data on live reuse columns
    (RC302). For padding-free groups the loads must also reach the far
    edge of the input needed by the last pyramid column/row (RC305);
    padded groups are exempt — the literal formulas' load origins drift
    by the accumulated border (see :mod:`repro.core.schedule`).
    """
    out: List[Diagnostic] = []
    first = schedule.levels[0]
    k1, s1 = first.kernel, first.stride
    overlap = k1 - s1
    site = "+".join(level.name for level in schedule.levels)

    try:
        origin = schedule.position(0, 0)
    except ShapeError as err:
        out.append(diag("RC103", f"origin position rejected: {err}",
                        site=site))
        return out
    if (origin.rowt, origin.colt) != (0, 0):
        out.append(diag("RC301", f"origin load starts at "
                        f"({origin.rowt},{origin.colt}), not (0,0): the "
                        "first pyramid would read unloaded data",
                        site=site, rowt=origin.rowt, colt=origin.colt))
    if (origin.load_h, origin.load_w) != (schedule.Y, schedule.X):
        out.append(diag("RC303", f"origin load {origin.load_h}x"
                        f"{origin.load_w} != pyramid base "
                        f"{schedule.Y}x{schedule.X}", site=site))

    for axis, count in (("col", schedule.cols), ("row", schedule.rows)):
        for i in _probe_indices(count):
            try:
                if axis == "col":
                    prev = schedule.position(0, i - 1)
                    cur = schedule.position(0, i)
                    prev_end = prev.colt + prev.load_w
                    got = prev_end - cur.colt
                else:
                    prev = schedule.position(i - 1, 0)
                    cur = schedule.position(i, 0)
                    prev_end = prev.rowt + prev.load_h
                    got = prev_end - cur.rowt
            except ShapeError as err:
                out.append(diag("RC103", f"position probe failed: {err}",
                                site=site, axis=axis, index=i))
                break
            if got < overlap:
                out.append(diag(
                    "RC301", f"{axis} loads {i - 1}->{i} overlap by {got} "
                    f"but the window needs K-S={overlap}: "
                    f"{overlap - got} {axis}s are read before any load "
                    "writes them", site=site, axis=axis, index=i,
                    overlap=got, required=overlap))
            elif got > overlap:
                out.append(diag(
                    "RC302", f"{axis} loads {i - 1}->{i} overlap by {got} "
                    f"(expected K-S={overlap}): the fresh load clobbers "
                    "live reuse data", site=site, axis=axis, index=i,
                    overlap=got, required=overlap))

    if all(level.pad == 0 for level in schedule.levels):
        out.extend(_check_coverage(schedule, site))
    return out


def _check_coverage(schedule: FusedSchedule, site: str) -> List[Diagnostic]:
    """RC305 for padding-free groups: the union of loads must reach the
    input extent the last pyramid row/column consumes."""
    out: List[Diagnostic] = []
    final = schedule.levels[-1].out_shape
    need_h, need_w = final.height, final.width
    for level in reversed(schedule.levels):
        need_h = min((need_h - 1) * level.stride + level.kernel,
                     level.in_shape.height)
        need_w = min((need_w - 1) * level.stride + level.kernel,
                     level.in_shape.width)
    try:
        last = schedule.position(schedule.rows - 1, schedule.cols - 1)
    except ShapeError as err:
        return [diag("RC103", f"final position rejected: {err}", site=site)]
    covered_h = last.rowt + last.load_h
    covered_w = last.colt + last.load_w
    if covered_h < need_h or covered_w < need_w:
        out.append(diag(
            "RC305", f"loads cover {covered_h}x{covered_w} of the "
            f"{need_h}x{need_w} input the output map needs",
            site=site, covered=(covered_h, covered_w),
            needed=(need_h, need_w)))
    return out


def check_pipeline_schedule(schedule: PipelineSchedule) -> List[Diagnostic]:
    """Audit a discrete-event pipeline schedule's finish-time matrix.

    Three invariants, straight from the dependency structure (stage ``s``
    starts item ``i`` when stage ``s-1`` finished item ``i`` and stage
    ``s`` finished item ``i-1``):

    * ``finish[i][s] >= finish[i][s-1] + cycles[s]`` — else the stage
      read its input before the producer wrote it (RC301);
    * ``finish[i][s] >= finish[i-1][s] + cycles[s]`` — else the stage
      held two items at once; there is no internal buffering (RC302);
    * the makespan equals the last completion (RC303).

    Fault-injected runs only *delay* completions, so the inequalities
    hold for every schedule ``simulate_pipeline`` can produce.
    """
    out: List[Diagnostic] = []
    site = "+".join(stage.name for stage in schedule.stages)
    cycles = [stage.cycles for stage in schedule.stages]
    finish = schedule.stage_finish
    if len(finish) != schedule.num_items:
        out.append(diag("RC303", f"{len(finish)} finish rows for "
                        f"{schedule.num_items} items", site=site))
        return out
    peak = 0
    for i, row in enumerate(finish):
        if len(row) != len(cycles):
            out.append(diag("RC303", f"item {i} has {len(row)} stage "
                            f"finishes for {len(cycles)} stages", site=site))
            return out
        for s, done in enumerate(row):
            ready = row[s - 1] if s > 0 else 0
            if done < ready + cycles[s]:
                out.append(diag(
                    "RC301", f"stage {schedule.stages[s].name!r} finishes "
                    f"item {i} at {done}, before its input (ready {ready}) "
                    f"plus {cycles[s]} busy cycles allow",
                    site=site, item=i, stage=schedule.stages[s].name,
                    finish=done, ready=ready))
            if i > 0 and done < finish[i - 1][s] + cycles[s]:
                out.append(diag(
                    "RC302", f"stage {schedule.stages[s].name!r} holds "
                    f"items {i - 1} and {i} concurrently (finishes {done} "
                    f"< {finish[i - 1][s]} + {cycles[s]})",
                    site=site, item=i, stage=schedule.stages[s].name))
            peak = max(peak, done)
    if schedule.makespan != peak:
        out.append(diag("RC303", f"makespan {schedule.makespan} != last "
                        f"completion {peak}", site=site,
                        makespan=schedule.makespan, last=peak))
    return out


def check_channel_schedule(schedule: ChannelSchedule,
                           site: str = "") -> List[Diagnostic]:
    """Audit a shared-channel schedule's accounting.

    The channel serves one transfer at a time, so ``channel_busy`` can
    never exceed the makespan (RC304); the makespan can never beat the
    total-traffic bandwidth bound (RC304) nor the compute bottleneck
    bound (RC303) — both remain true lower bounds under injected faults,
    which only slow the run down. Stall/retry tallies must be mutually
    consistent (RC306, warning).
    """
    out: List[Diagnostic] = []
    fields = {"makespan": schedule.makespan,
              "channel_busy": schedule.channel_busy,
              "compute_bound": schedule.compute_bound,
              "memory_bound": schedule.memory_bound,
              "stalls": schedule.stalls, "retries": schedule.retries,
              "stall_cycles": schedule.stall_cycles}
    for name, value in fields.items():
        if value < 0:
            out.append(diag("RC303", f"negative {name}: {value}", site=site))
    if any(d.is_error for d in out):
        return out
    if schedule.channel_busy > schedule.makespan:
        out.append(diag(
            "RC304", f"channel busy {schedule.channel_busy} cycles in a "
            f"{schedule.makespan}-cycle run: two transfers must have "
            "held the channel at once", site=site,
            channel_busy=schedule.channel_busy, makespan=schedule.makespan))
    if schedule.makespan < schedule.memory_bound:
        out.append(diag(
            "RC304", f"makespan {schedule.makespan} beats the bandwidth "
            f"bound {schedule.memory_bound}: the channel moved more words "
            "per cycle than it has", site=site,
            makespan=schedule.makespan, memory_bound=schedule.memory_bound))
    if schedule.makespan < schedule.compute_bound:
        out.append(diag(
            "RC303", f"makespan {schedule.makespan} beats the compute "
            f"bound {schedule.compute_bound}", site=site,
            makespan=schedule.makespan, compute_bound=schedule.compute_bound))
    if schedule.stall_cycles > 0 and schedule.stalls == 0:
        out.append(diag("RC306", f"{schedule.stall_cycles} stall cycles "
                        "billed with zero stalls recorded", site=site))
    if schedule.stalls > 0 and schedule.retries == 0:
        out.append(diag("RC306", f"{schedule.stalls} stalls recorded with "
                        "zero retries: every stall is repaired by a retry",
                        site=site))
    return out
