"""Static validation of persisted records: compiled plans and tuning DBs.

Plans (:mod:`repro.serve.plan`) and tuning databases
(:mod:`repro.tune.db`) are the two artifacts that cross process
boundaries as JSON — the places where a stale file, a hand edit, or a
version skew can smuggle a wrong configuration into serving. The
validators here work on the *raw dictionaries*: no
``NetworkExecutor`` is built, no NumPy weights are materialized, so a
multi-megabyte plan cache audits in milliseconds.

What gets checked:

* **completeness** (RC403/RC408) — every required field present and
  parseable via the owning module's own ``from_dict``;
* **fingerprint integrity** (RC401/RC406) — the key's network
  fingerprint must equal the fingerprint recomputed from the record's
  embedded network description (and the caller's network, if given):
  a tampered or stale record never silently applies;
* **geometry** (RC402 + the RC1xx family) — the stored partition must
  cover the network and every group's pyramid must build;
* **aliasing** (RC404/RC407) — no two plans share a key, and every
  tuning eval sits under its candidate's canonical key;
* **staleness** (RC405) — a tuning incumbent must point at an eval
  that still exists.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..core.fusion import Strategy
from ..errors import ConfigError
from ..nn.network import Network
from ..nn.shapes import ShapeError, TensorShape
from ..nn.stages import extract_levels
from ..tune.space import Candidate, STRATEGY_CHOICES
from .analyzer import check_partition
from .diagnostics import Diagnostic, diag

_PLAN_FIELDS = ("key", "network_name", "input_shape", "layers",
                "partition_sizes", "seed", "degraded")
_STRATEGY_NAMES = tuple(s.name for s in Strategy)


def _plan_network(data: Dict[str, Any]) -> Network:
    """Rebuild the plan's embedded network description (specs only — the
    executors a real ``CompiledPlan.from_dict`` would construct are
    exactly what static checking must avoid)."""
    from ..serve.plan import _spec_from_dict

    c, h, w = (int(v) for v in data["input_shape"])
    return Network(str(data["network_name"]), TensorShape(c, h, w),
                   [_spec_from_dict(d) for d in data["layers"]])


def check_plan_dict(data: Dict[str, Any],
                    network: Optional[Network] = None,
                    site: str = "") -> List[Diagnostic]:
    """Validate one serialized plan (the ``CompiledPlan.to_dict`` form)."""
    from ..serve.plan import PRECISIONS, PlanKey

    out: List[Diagnostic] = []
    if not isinstance(data, dict):
        return [diag("RC408", f"plan record is {type(data).__name__}, "
                     "not an object", site=site)]
    key_data = data.get("key")
    if (isinstance(key_data, dict)
            and key_data.get("family", "linear") == "graph"):
        from .graph import check_graph_plan_dict

        graph_network = (network if getattr(network, "plan_family", "linear")
                         == "graph" else None)
        return check_graph_plan_dict(data, network=graph_network, site=site)
    if (isinstance(key_data, dict)
            and key_data.get("family", "linear") == "pipeline"):
        from .dist import check_pipeline_plan_dict

        return check_pipeline_plan_dict(data, network=network, site=site)
    missing = [f for f in _PLAN_FIELDS if f not in data]
    if missing:
        return [diag("RC403", f"plan record is missing {missing}",
                     site=site, missing=missing)]
    try:
        key = PlanKey.from_dict(data["key"])
    except (KeyError, TypeError, ValueError) as err:
        return [diag("RC403", f"unparseable plan key: {err}", site=site)]
    site = site or str(key)

    if key.precision not in PRECISIONS:
        out.append(diag("RC403", f"precision {key.precision!r} not in "
                        f"{PRECISIONS}", site=site))
    if key.tip < 1:
        out.append(diag("RC403", f"tip must be >= 1, got {key.tip}",
                        site=site))
    if key.strategy not in _STRATEGY_NAMES:
        out.append(diag("RC403", f"strategy {key.strategy!r} not in "
                        f"{_STRATEGY_NAMES}", site=site))
    if key.seed != int(data["seed"]):
        out.append(diag("RC403", f"key seed {key.seed} != plan seed "
                        f"{data['seed']}: the frozen weights would not "
                        "match the key", site=site))

    try:
        plan_network = _plan_network(data)
    except (ConfigError, KeyError, TypeError, ValueError) as err:
        out.append(diag("RC402", f"embedded network does not rebuild: {err}",
                        site=site))
        return out

    fingerprint = plan_network.fingerprint()
    if key.fingerprint != fingerprint:
        out.append(diag(
            "RC401", f"key fingerprint {key.fingerprint} != fingerprint "
            f"{fingerprint} of the embedded network: the record was "
            "tampered with or compiled for a different network",
            site=site, key_fingerprint=key.fingerprint,
            network_fingerprint=fingerprint))
    if network is not None and network.fingerprint() != key.fingerprint:
        out.append(diag(
            "RC401", f"plan fingerprint {key.fingerprint} does not match "
            f"{network.name} ({network.fingerprint()})",
            site=site, key_fingerprint=key.fingerprint,
            network=network.name))

    sizes = [int(s) for s in data["partition_sizes"]]
    try:
        levels = extract_levels(plan_network.feature_extractor())
    except ShapeError as err:
        out.append(diag("RC402", f"embedded network has no valid levels: "
                        f"{err}", site=site))
        return out
    partition = check_partition(levels, sizes, tip=key.tip,
                                strategy="reuse", check_resources=False,
                                schedule_probes=False)
    if partition:
        out.append(diag("RC402", f"stored partition {sizes} is invalid "
                        f"for the embedded network "
                        f"({len(partition)} geometry findings)",
                        site=site, sizes=sizes))
        out.extend(partition)
    return out


def check_plan_cache_dict(payload: Any,
                          network: Optional[Network] = None,
                          site: str = "") -> List[Diagnostic]:
    """Validate a whole plan-cache payload (the ``PlanCache.save`` form)."""
    from ..serve.plan import PlanKey

    if (not isinstance(payload, dict)
            or not isinstance(payload.get("plans"), list)):
        return [diag("RC408", "not a plan-cache payload (no 'plans' list)",
                     site=site)]
    out: List[Diagnostic] = []
    seen: Dict[str, int] = {}
    for i, data in enumerate(payload["plans"]):
        entry_site = f"{site}plans[{i}]" if site else f"plans[{i}]"
        out.extend(check_plan_dict(data, network=network, site=entry_site))
        try:
            key = str(PlanKey.from_dict(data["key"]))
        except (KeyError, TypeError, ValueError):
            continue  # already reported above
        if key in seen:
            out.append(diag(
                "RC404", f"plans[{seen[key]}] and plans[{i}] share key "
                f"{key}: a cache load would silently drop one",
                site=entry_site, key=key))
        else:
            seen[key] = i
    return out


def check_plan_cache_file(path: str,
                          network: Optional[Network] = None) -> List[Diagnostic]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return [diag("RC408", f"cannot read plan cache: {err}",
                     site=str(path))]
    return check_plan_cache_dict(payload, network=network)


def check_compiled_plan(plan: Any,
                        network: Optional[Network] = None) -> List[Diagnostic]:
    """Validate an in-memory :class:`~repro.serve.plan.CompiledPlan`.

    The serialized form carries everything checkable, so this round-trips
    through :meth:`CompiledPlan.to_dict` — guaranteeing the persisted and
    in-memory contracts can never drift apart.
    """
    return check_plan_dict(plan.to_dict(), network=network)


# -- tuning databases ----------------------------------------------------------


def _check_space_key(key: str, site: str) -> List[Diagnostic]:
    parts = key.split("/")
    if (len(parts) < 4 or not all(parts)
            or not parts[2].startswith("dsp")
            or not parts[2][3:].isdigit()):
        return [diag("RC408", f"space key {key!r} is not "
                     "fingerprint/device/dsp<N>/objective", site=site)]
    return []


def check_tuning_db_dict(payload: Any,
                         fingerprint: Optional[str] = None,
                         site: str = "") -> List[Diagnostic]:
    """Validate a tuning-db payload (the ``TuningDB.save`` form)."""
    out: List[Diagnostic] = []
    if (not isinstance(payload, dict)
            or not isinstance(payload.get("entries"), dict)):
        return [diag("RC408", "not a tuning-db payload (no 'entries' map)",
                     site=site)]
    matched = fingerprint is None
    for key, entry in payload["entries"].items():
        entry_site = f"{site}{key}" if site else str(key)
        out.extend(_check_space_key(str(key), entry_site))
        if not isinstance(entry, dict) or "evals" not in entry:
            out.append(diag("RC408", "entry has no 'evals' map",
                            site=entry_site))
            continue
        evals = entry["evals"]
        if not isinstance(evals, dict):
            out.append(diag("RC408", "'evals' is not a map", site=entry_site))
            continue
        if fingerprint is not None and str(key).split("/")[0] == fingerprint:
            matched = True
        for cand_key, record in evals.items():
            out.extend(_check_eval(str(cand_key), record,
                                   f"{entry_site}:{cand_key}"))
        incumbent = entry.get("incumbent")
        if incumbent is not None:
            if (not isinstance(incumbent, dict)
                    or "candidate" not in incumbent
                    or "value" not in incumbent):
                out.append(diag("RC408", "incumbent marker needs "
                                "'candidate' and 'value'", site=entry_site))
            elif incumbent["candidate"] not in evals:
                out.append(diag(
                    "RC405", f"incumbent points at "
                    f"{incumbent['candidate']!r} but no such eval exists: "
                    "the record is stale", site=entry_site,
                    incumbent=incumbent["candidate"]))
    if not matched:
        out.append(diag(
            "RC406", f"no entry matches fingerprint {fingerprint}: the "
            "database was tuned for a different network",
            site=site, fingerprint=fingerprint))
    return out


def _check_eval(cand_key: str, record: Any, site: str) -> List[Diagnostic]:
    from ..tune.evaluate import EvalResult

    if not isinstance(record, dict):
        return [diag("RC408", "eval record is not an object", site=site)]
    try:
        result = EvalResult.from_dict(record)
    except (ConfigError, KeyError, TypeError, ValueError) as err:
        return [diag("RC408", f"eval record does not parse: {err}",
                     site=site)]
    out: List[Diagnostic] = []
    actual = result.candidate.key()
    if actual != cand_key:
        out.append(diag(
            "RC407", f"eval stored under {cand_key!r} but its candidate "
            f"keys as {actual!r}: two candidates alias one slot",
            site=site, stored=cand_key, actual=actual))
    if result.valid and "cycles" not in result.metrics:
        out.append(diag("RC407", "valid eval has no 'cycles' metric: the "
                        "tuner cannot score it", site=site))
    return out


def check_tuning_db_file(path: str,
                         fingerprint: Optional[str] = None) -> List[Diagnostic]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return [diag("RC408", f"cannot read tuning db: {err}",
                     site=str(path))]
    return check_tuning_db_dict(payload, fingerprint=fingerprint)


def check_tuned_record(record: Any, fingerprint: str,
                       num_units: Optional[int] = None) -> List[Diagnostic]:
    """Validate a :class:`~repro.tune.db.TunedRecord` before it is served.

    ``tune.tune`` runs this on its own output; ``compile_plan`` enforces
    the fingerprint again at freeze time (defense in depth — the record
    may have crossed a JSON boundary in between).
    """
    out: List[Diagnostic] = []
    site = f"tuned:{record.objective}"
    if record.fingerprint != fingerprint:
        out.append(diag(
            "RC406", f"record fingerprint {record.fingerprint} != network "
            f"fingerprint {fingerprint}", site=site,
            record_fingerprint=record.fingerprint, fingerprint=fingerprint))
    if record.strategy not in STRATEGY_CHOICES:
        out.append(diag("RC407", f"strategy {record.strategy!r} not in "
                        f"{STRATEGY_CHOICES}", site=site))
    if record.tip < 1:
        out.append(diag("RC407", f"tip must be >= 1, got {record.tip}",
                        site=site))
    try:
        candidate = Candidate(sizes=tuple(record.partition_sizes),
                              tiles=tuple(record.tiles),
                              strategy=record.strategy, tip=max(record.tip, 1))
    except ConfigError as err:
        out.append(diag("RC407", f"record does not form a candidate: {err}",
                        site=site))
        return out
    if num_units is not None and candidate.num_units != num_units:
        out.append(diag(
            "RC407", f"record partition covers {candidate.num_units} units "
            f"but the network has {num_units}", site=site,
            sizes=record.partition_sizes, units=num_units))
    devices = getattr(record, "devices", 1)
    if devices < 1 or devices > len(record.partition_sizes):
        out.append(diag(
            "RC407", f"record wants {devices} devices but the partition "
            f"has only {len(record.partition_sizes)} stages to shard",
            site=site, devices=devices,
            groups=len(record.partition_sizes)))
    return out
