"""repro.check: static verification of plans, schedules, and the repo.

Two halves share one diagnostic currency:

* the **domain analyzer** (:mod:`~repro.check.analyzer`,
  :mod:`~repro.check.hazards`, :mod:`~repro.check.records`) verifies
  dataflow invariants of a network + partition + plan in milliseconds,
  with no NumPy execution — geometry, buffer bounds, schedule hazards,
  record integrity;
* the **repo linter** (:mod:`~repro.check.lint`) walks source ASTs to
  enforce the determinism, error-hierarchy, counter-naming, and
  CLI-documentation contracts.

Entry points: ``repro check`` on the command line;
:func:`check_network` / :func:`lint_paths` from code;
``serve.compile_plan`` and ``tune.tune`` run the relevant validators on
their own outputs by default.
"""

from .analyzer import (
    check_group,
    check_levels,
    check_network,
    check_partition,
    check_pyramid_geometry,
)
from .concurrency import check_concurrency_paths
from .diagnostics import CODES, CheckReport, Diagnostic, Severity, diag
from .dist import (
    check_pipeline_plan,
    check_pipeline_plan_dict,
    check_pipeline_plan_file,
)
from .graph import (
    check_graph_dict,
    check_graph_network,
    check_graph_plan_dict,
)
from .hazards import (
    check_channel_schedule,
    check_fused_schedule,
    check_pipeline_schedule,
)
from .lint import lint_paths
from .soak import check_soak_report_dict, check_soak_report_file
from .trace import check_trace_file
from .records import (
    check_compiled_plan,
    check_plan_cache_file,
    check_plan_dict,
    check_tuned_record,
    check_tuning_db_file,
)

__all__ = [
    "CODES",
    "CheckReport",
    "Diagnostic",
    "Severity",
    "check_channel_schedule",
    "check_compiled_plan",
    "check_concurrency_paths",
    "check_fused_schedule",
    "check_graph_dict",
    "check_graph_network",
    "check_graph_plan_dict",
    "check_group",
    "check_levels",
    "check_network",
    "check_partition",
    "check_pipeline_plan",
    "check_pipeline_plan_dict",
    "check_pipeline_plan_file",
    "check_pipeline_schedule",
    "check_plan_cache_file",
    "check_plan_dict",
    "check_pyramid_geometry",
    "check_soak_report_dict",
    "check_soak_report_file",
    "check_tuned_record",
    "check_tuning_db_file",
    "check_trace_file",
    "diag",
    "lint_paths",
]
