"""Static concurrency analysis: races, lock discipline, lost wakeups.

The serving stack reproduces the paper's inter-stage concurrency with
real threads — the scheduler's condition variable, worker seats, the
autoscaler supervisor, the traced event store — and a data race there
is invisible to the test suite until a soak hits the window. This
module walks source ASTs (no imports, no execution) over ``serve/``,
``dist/``, and ``obs/`` and enforces the lock discipline those modules
promise, reporting through the same
:class:`~repro.check.diagnostics.Diagnostic` currency as the linter.

Rules:

====== ==================================================================
RL501  write to a shared attribute outside the lock that guards it.
       A class is *analyzed* when it owns a lock/condition attribute or
       starts a ``threading.Thread``; an attribute's guard is inferred
       by majority-of-accesses (most accesses happen under one lock ⇒
       that lock guards it), and every write or container mutation
       outside the guard is flagged.
RL502  blocking call while holding a lock: ``Future.result``,
       ``Condition.wait`` with no timeout, queue ``put``\\ s,
       ``time.sleep``, ``subprocess.*``, and plan compiles
       (``compile_plan`` / ``get_or_compile``).
RL503  cycle in the lock-acquisition graph. Holding lock A while
       acquiring lock B adds the edge A→B — through nested ``with``
       blocks and through calls into methods (same class, or an
       attribute whose class is known) that acquire locks. Any cycle is
       a potential deadlock.
RL504  lost-wakeup patterns: ``notify``/``notify_all`` on a condition
       that is not currently held, or a ``wait`` that is not wrapped in
       a predicate ``while`` loop (``wait_for`` is exempt — the
       predicate is built in).
RL505  a thread started inside ``__init__`` before every attribute is
       assigned: the new thread can observe a half-built object.
====== ==================================================================

Two conventions keep the analysis honest without flow analysis:

* a method whose name ends in ``_locked`` is, by contract, only called
  with its class's guard held — its accesses count as guarded and its
  blocking calls are still flagged;
* a finding is suppressed when its source line carries ``# noqa``
  (same machinery as the repo linter) — used where a wrapper
  legitimately manipulates a lock it does not syntactically hold, e.g.
  the runtime sanitizer's ``SanitizedCondition``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, diag
from .lint import _dotted, _iter_files, _display, _suppressed

#: Lock-constructor call names (matched on the dotted tail) -> kind.
_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "lock",
    "SanitizedLock": "lock",
    "make_lock": "lock",
    "Condition": "condition",
    "SanitizedCondition": "condition",
    "make_condition": "condition",
}

#: Container-mutating method names: calling one of these on a guarded
#: attribute is a write for RL501 purposes.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "move_to_end", "sort", "reverse", "rotate",
})

#: Accesses inside ``*_locked``-suffixed methods count as guarded by
#: whatever lock wins the majority vote (the convention: such methods
#: are only called with the guard held).
_CONVENTION = "__locked_convention__"


def _blocking_reason(name: str, call: ast.Call) -> Optional[str]:
    """Why ``name(...)`` blocks, or None if it does not (RL502)."""
    head, _, tail = name.rpartition(".")
    if tail == "result":
        return "Future.result() blocks until the future resolves"
    if tail == "wait" and not call.args and not call.keywords:
        return "Condition.wait() with no timeout blocks unboundedly"
    if tail == "put" and name != "self.put":
        return "queue put() blocks when the queue is full"
    if tail == "sleep":
        return "sleep() stalls every thread contending for the lock"
    if head == "subprocess" or head.endswith(".subprocess"):
        return "subprocess calls block on the child process"
    if tail in ("compile_plan", "get_or_compile"):
        return "plan compilation runs a full exploration sweep"
    return None


class _ClassInfo:
    """Everything pass 1 learns about one class."""

    def __init__(self, name: str, label: str):
        self.name = name
        self.label = label
        #: attr -> "lock" | "condition"
        self.lock_attrs: Dict[str, str] = {}
        #: attr -> class name (from __init__ ctor calls / annotations)
        self.attr_types: Dict[str, str] = {}
        #: attrs assigned in __init__ (the shared-state candidates)
        self.init_attrs: Set[str] = set()
        self.creates_thread = False
        self.methods: Dict[str, ast.FunctionDef] = {}
        #: (class, method) -> lock ids the method acquires (fixpoint)
        self.acquires: Dict[str, Set[str]] = {}

    @property
    def analyzed(self) -> bool:
        return bool(self.lock_attrs) or self.creates_thread

    def lock_id(self, attr: str) -> str:
        return f"{self.name}.{attr}"


def _ctor_name(value: ast.AST) -> str:
    """The capitalized constructor tail of ``value``, through IfExp."""
    if isinstance(value, ast.IfExp):
        return _ctor_name(value.body) or _ctor_name(value.orelse)
    if isinstance(value, ast.Call):
        tail = _dotted(value.func).rpartition(".")[2]
        if tail[:1].isupper():
            return tail
    return ""


def _annotation_names(node: ast.AST) -> List[str]:
    """Capitalized Name ids inside an annotation (Optional[X] -> [X])."""
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id[:1].isupper():
            if sub.id not in ("Optional", "Sequence", "List", "Dict",
                              "Tuple", "Set", "Any", "Callable", "Union"):
                out.append(sub.id)
    return out


def _collect_class(node: ast.ClassDef, label: str) -> _ClassInfo:
    info = _ClassInfo(node.name, label)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[item.name] = item
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and _dotted(sub.func) in ("threading.Thread", "Thread")):
            info.creates_thread = True
            break
    init = info.methods.get("__init__")
    if init is None:
        return info
    annotations: Dict[str, List[str]] = {}
    for arg in list(init.args.args) + list(init.args.kwonlyargs):
        if arg.annotation is not None:
            names = _annotation_names(arg.annotation)
            if names:
                annotations[arg.arg] = names
    for sub in ast.walk(init):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(sub, ast.Assign):
            targets, value = sub.targets, sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            targets, value = [sub.target], sub.value
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                attr = target.attr
                info.init_attrs.add(attr)
                if isinstance(value, ast.Call):
                    tail = _dotted(value.func).rpartition(".")[2]
                    if tail in _LOCK_CTORS:
                        info.lock_attrs[attr] = _LOCK_CTORS[tail]
                        continue
                ctor = _ctor_name(value)
                if ctor:
                    info.attr_types[attr] = ctor
                elif (isinstance(value, ast.Name)
                      and value.id in annotations):
                    info.attr_types[attr] = annotations[value.id][0]
                elif isinstance(value, ast.IfExp):
                    for branch in (value.body, value.orelse):
                        if (isinstance(branch, ast.Name)
                                and branch.id in annotations):
                            info.attr_types[attr] = annotations[branch.id][0]
                            break
    return info


def _direct_acquires(info: _ClassInfo, method: ast.FunctionDef) -> Set[str]:
    """Lock ids this method acquires via ``with self.<lock>:``."""
    out: Set[str] = set()
    for sub in ast.walk(method):
        if isinstance(sub, ast.With):
            for item in sub.items:
                name = _dotted(item.context_expr)
                if name.startswith("self."):
                    attr = name[5:]
                    if attr in info.lock_attrs:
                        out.add(info.lock_id(attr))
    return out


def _acquires_fixpoint(classes: Dict[str, _ClassInfo]) -> None:
    """Close each method's acquired-lock set over intra/inter-class
    calls (``self.m()``; ``self.X.m()`` with X's class known)."""
    for info in classes.values():
        for name, method in info.methods.items():
            info.acquires[name] = _direct_acquires(info, method)
    changed = True
    passes = 0
    while changed and passes < 20:
        changed = False
        passes += 1
        for info in classes.values():
            for name, method in info.methods.items():
                acc = info.acquires[name]
                before = len(acc)
                for sub in ast.walk(method):
                    if not isinstance(sub, ast.Call):
                        continue
                    dotted = _dotted(sub.func)
                    parts = dotted.split(".")
                    if len(parts) == 2 and parts[0] == "self":
                        acc |= info.acquires.get(parts[1], set())
                    elif (len(parts) == 3 and parts[0] == "self"
                          and parts[1] in info.attr_types):
                        other = classes.get(info.attr_types[parts[1]])
                        if other is not None:
                            acc |= other.acquires.get(parts[2], set())
                if len(acc) != before:
                    changed = True


class _LockGraph:
    """The global lock-acquisition graph (RL503)."""

    def __init__(self) -> None:
        self.edges: Dict[str, Set[str]] = {}
        self.sites: Dict[Tuple[str, str], str] = {}

    def add(self, held: str, acquired: str, site: str) -> None:
        if held == acquired:
            return
        self.edges.setdefault(held, set()).add(acquired)
        self.sites.setdefault((held, acquired), site)

    def cycles(self) -> List[List[str]]:
        """Every elementary cycle, canonicalized and deduplicated."""
        found: Set[Tuple[str, ...]] = set()
        out: List[List[str]] = []

        def dfs(start: str, node: str, path: List[str]) -> None:
            for succ in sorted(self.edges.get(node, ())):
                if succ == start:
                    cycle = list(path)
                    pivot = cycle.index(min(cycle))
                    canon = tuple(cycle[pivot:] + cycle[:pivot])
                    if canon not in found:
                        found.add(canon)
                        out.append(list(canon))
                elif succ not in path and succ > start:
                    dfs(start, succ, path + [succ])

        for start in sorted(self.edges):
            dfs(start, start, [start])
        return out


class _Access:
    __slots__ = ("kind", "lineno", "guard")

    def __init__(self, kind: str, lineno: int, guard: Optional[str]):
        self.kind = kind      # "read" | "write"
        self.lineno = lineno
        self.guard = guard    # lock id, _CONVENTION, or None


class _MethodWalker(ast.NodeVisitor):
    """Pass 2 over one method: held-lock tracking + rule emission."""

    def __init__(self, checker: "_FileChecker", info: Optional[_ClassInfo],
                 method_name: str):
        self.checker = checker
        self.info = info
        self.method_name = method_name
        self.held: List[str] = []
        self.while_depth = 0
        self.local_locks: Dict[str, str] = {}  # name -> kind
        self.convention = method_name.endswith("_locked")
        self.in_init = method_name == "__init__"
        self.thread_names: Set[str] = set()
        self.thread_starts: List[int] = []
        self.self_assign_lines: List[int] = []

    # -- lock identity ---------------------------------------------------------

    def _lock_of(self, name: str) -> Optional[Tuple[str, str]]:
        """(lock id, kind) when ``name`` denotes a known lock."""
        if name.startswith("self.") and self.info is not None:
            attr = name[5:]
            kind = self.info.lock_attrs.get(attr)
            if kind is not None:
                return self.info.lock_id(attr), kind
        kind = self.local_locks.get(name)
        if kind is not None:
            owner = self.info.name if self.info else "<module>"
            return f"{owner}.{self.method_name}.{name}", kind
        return None

    def _holding(self) -> bool:
        return bool(self.held) or self.convention

    # -- structure -------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def is a new execution context: it does not inherit
        # the held locks or loop nesting of its definition site.
        saved = (self.held, self.while_depth, self.convention, self.in_init)
        self.held, self.while_depth = [], 0
        self.convention = node.name.endswith("_locked")
        self.in_init = False
        for stmt in node.body:
            self.visit(stmt)
        self.held, self.while_depth, self.convention, self.in_init = saved

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_While(self, node: ast.While) -> None:
        self.while_depth += 1
        self.generic_visit(node)
        self.while_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            name = _dotted(item.context_expr)
            lock = self._lock_of(name) if name else None
            if lock is not None:
                lock_id, _ = lock
                for held in self.held:
                    self.checker.graph_edge(held, lock_id, node.lineno)
                acquired.append(lock_id)
            if item.context_expr is not None:
                self.visit(item.context_expr)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    # -- assignments (RL501 writes, RL505 ordering, local locks) ---------------

    def _record_target(self, target: ast.expr, lineno: int) -> None:
        node = target
        if isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            if self.in_init:
                self.self_assign_lines.append(lineno)
            else:
                self.checker.record_access(self.info, node.attr, "write",
                                           lineno, self._guard())

    def _guard(self) -> Optional[str]:
        if self.held:
            return self.held[-1]
        if self.convention:
            return _CONVENTION
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno)
            if isinstance(target, ast.Name) and isinstance(node.value,
                                                           ast.Call):
                tail = _dotted(node.value.func).rpartition(".")[2]
                if tail in _LOCK_CTORS:
                    self.local_locks[target.id] = _LOCK_CTORS[tail]
                if self.in_init and _dotted(node.value.func) in (
                        "threading.Thread", "Thread"):
                    self.thread_names.add(target.id)
            if (self.in_init and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Call)
                    and _dotted(node.value.func) in ("threading.Thread",
                                                     "Thread")):
                self.thread_names.add(f"self.{target.attr}")
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node.lineno)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node.lineno)

    # -- calls (mutators, RL502, RL503 call edges, RL504, RL505) ---------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        parts = name.split(".") if name else []
        tail = parts[-1] if parts else ""
        receiver = ".".join(parts[:-1])
        # container mutation on self.<attr> is a write (RL501)
        if (len(parts) == 3 and parts[0] == "self" and tail in _MUTATORS
                and not self.in_init):
            self.checker.record_access(self.info, parts[1], "write",
                                       node.lineno, self._guard())
        # RL502: blocking call while a lock is held
        if self._holding() and name:
            reason = _blocking_reason(name, node)
            if reason is not None:
                held = self.held[-1] if self.held else (
                    f"{self.info.name if self.info else '<module>'}"
                    f".{self.method_name} [by _locked convention]")
                self.checker.emit(
                    "RL502", f"{name}() under lock {held}: {reason}",
                    node.lineno, call=name, lock=held)
        # RL503: calling a method that acquires locks while holding one
        if self.held and self.info is not None:
            callee_locks: Set[str] = set()
            if len(parts) == 2 and parts[0] == "self":
                callee_locks = self.info.acquires.get(tail, set())
            elif (len(parts) == 3 and parts[0] == "self"
                  and parts[1] in self.info.attr_types):
                other = self.checker.classes.get(
                    self.info.attr_types[parts[1]])
                if other is not None:
                    callee_locks = other.acquires.get(tail, set())
            for lock_id in callee_locks:
                for held in self.held:
                    self.checker.graph_edge(held, lock_id, node.lineno)
        # RL504: notify outside the condition / wait without a predicate loop
        cond = self._lock_of(receiver) if receiver else None
        if cond is not None and cond[1] == "condition":
            lock_id = cond[0]
            if tail in ("notify", "notify_all") and lock_id not in self.held:
                self.checker.emit(
                    "RL504", f"{name}() outside `with {receiver}:` — the "
                    "wakeup can race the waiter's predicate check",
                    node.lineno, call=name)
            if tail == "wait" and self.while_depth == 0:
                self.checker.emit(
                    "RL504", f"{name}() not wrapped in a predicate while "
                    "loop — a spurious or stolen wakeup is lost",
                    node.lineno, call=name)
        # RL505: thread .start() inside __init__
        if self.in_init and tail == "start":
            started = receiver in self.thread_names
            if (isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Call)
                    and _dotted(node.func.value.func) in ("threading.Thread",
                                                          "Thread")):
                started = True
            if started:
                self.thread_starts.append(node.lineno)
        self.generic_visit(node)

    # -- reads -----------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and not self.in_init):
            self.checker.record_access(self.info, node.attr, "read",
                                       node.lineno, self._guard())
        self.generic_visit(node)

    # -- RL505 wrap-up ---------------------------------------------------------

    def finish_init(self) -> None:
        for start_line in self.thread_starts:
            later = [ln for ln in self.self_assign_lines if ln > start_line]
            if later:
                self.checker.emit(
                    "RL505", "thread started before __init__ finishes "
                    f"assigning attributes (line {later[0]} follows): the "
                    "thread can observe a half-built object",
                    start_line, assigns_after=len(later))


class _FileChecker:
    """Runs pass 2 over one file, collecting accesses and findings."""

    def __init__(self, label: str, lines: Sequence[str],
                 classes: Dict[str, _ClassInfo], graph: _LockGraph):
        self.label = label
        self.lines = lines
        self.classes = classes
        self.graph = graph
        self.diagnostics: List[Diagnostic] = []
        #: (class name, attr) -> accesses
        self.accesses: Dict[Tuple[str, str], List[_Access]] = {}

    def emit(self, code: str, message: str, lineno: int, **context) -> None:
        if _suppressed(self.lines, lineno):
            return
        self.diagnostics.append(
            diag(code, message, site=f"{self.label}:{lineno}", **context))

    def graph_edge(self, held: str, acquired: str, lineno: int) -> None:
        if _suppressed(self.lines, lineno):
            return
        self.graph.add(held, acquired, f"{self.label}:{lineno}")

    def record_access(self, info: Optional[_ClassInfo], attr: str,
                      kind: str, lineno: int, guard: Optional[str]) -> None:
        if info is None or not info.analyzed:
            return
        if attr not in info.init_attrs or attr in info.lock_attrs:
            return
        self.accesses.setdefault((info.name, attr), []).append(
            _Access(kind, lineno, guard))

    def run(self, tree: ast.Module) -> None:
        self._walk_body(tree.body, None)
        self._infer_guards()

    def _walk_body(self, body: Sequence[ast.stmt],
                   info: Optional[_ClassInfo]) -> None:
        toplevel = _MethodWalker(self, info, "<module>")
        for node in body:
            if isinstance(node, ast.ClassDef):
                self._walk_body(node.body, self.classes.get(node.name))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walker = _MethodWalker(self, info, node.name)
                walker.local_locks.update(toplevel.local_locks)
                for stmt in node.body:
                    walker.visit(stmt)
                if walker.in_init:
                    walker.finish_init()
            else:
                # bare statements share one walker so a module-level
                # lock assignment is visible to later statements (and,
                # via the seeding above, to the module's functions)
                toplevel.visit(node)

    def _infer_guards(self) -> None:
        for (cls, attr), accesses in sorted(self.accesses.items()):
            by_lock: Dict[str, int] = {}
            convention = 0
            for access in accesses:
                if access.guard == _CONVENTION:
                    convention += 1
                elif access.guard is not None:
                    by_lock[access.guard] = by_lock.get(access.guard, 0) + 1
            if not by_lock:
                continue
            winner = max(sorted(by_lock), key=lambda k: by_lock[k])
            guarded = by_lock[winner] + convention
            unguarded = len(accesses) - guarded - sum(
                n for lock, n in by_lock.items() if lock != winner)
            if guarded <= unguarded:
                continue  # no majority: no guard inferred
            for access in accesses:
                if access.kind != "write":
                    continue
                if access.guard in (winner, _CONVENTION):
                    continue
                self.emit(
                    "RL501", f"{cls}.{attr} is written here without "
                    f"{winner}, which guards "
                    f"{guarded}/{len(accesses)} of its accesses",
                    access.lineno, attribute=f"{cls}.{attr}", lock=winner)


def check_concurrency_paths(paths: Sequence[str]) -> List[Diagnostic]:
    """Analyze every ``.py`` under ``paths`` for RL501–RL505.

    Whole-run analysis: classes are collected across *all* files first,
    so the lock-acquisition graph (RL503) and attribute-type resolution
    see cross-module edges (e.g. a service holding its lock while
    calling into the scheduler). Unreadable or syntactically invalid
    files raise ``ConfigError`` — analyzing broken source is a bad
    request, not a finding.
    """
    from ..errors import ConfigError

    modules: List[Tuple[str, ast.Module, List[str]]] = []
    classes: Dict[str, _ClassInfo] = {}
    for path in _iter_files(paths):
        label = _display(path, Path.cwd())
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except OSError as err:
            raise ConfigError(f"cannot analyze {path}: {err}",
                              path=str(path))
        except SyntaxError as err:
            raise ConfigError(f"cannot analyze {path}: {err}",
                              path=str(path), line=err.lineno)
        modules.append((label, tree, source.splitlines()))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _collect_class(node, label)
    _acquires_fixpoint(classes)
    graph = _LockGraph()
    out: List[Diagnostic] = []
    for label, tree, lines in modules:
        checker = _FileChecker(label, lines, classes, graph)
        checker.run(tree)
        out.extend(checker.diagnostics)
    for cycle in graph.cycles():
        ring = cycle + [cycle[0]]
        sites = [graph.sites.get((a, b), "?")
                 for a, b in zip(ring, ring[1:])]
        out.append(diag(
            "RL503", "lock-acquisition cycle: "
            + " -> ".join(ring) + " (a thread holding one lock can wait "
            "forever on a thread holding the next)",
            site=sites[0], locks=" -> ".join(ring),
            edges="; ".join(sites)))
    out.sort(key=lambda d: (d.site, d.code))
    return out
