"""Static verification of DAG networks and graph plans (RC7xx).

:class:`~repro.graph.ir.GraphNetwork` is acyclic by construction, but
the artifacts that cross process boundaries — raw graph dictionaries
(``GraphNetwork.to_dict`` JSON, hand edits) and serialized graph plans
(``CompiledGraphPlan.to_dict``) — carry no such guarantee. The checks
here work on raw dictionaries where possible, so a broken file yields
the *full* list of defects instead of the first construction error:

* **RC701** — a node input names a tensor no node (and not the graph
  input) produces;
* **RC702** — the edge relation contains a cycle (Kahn's algorithm on
  the raw dictionaries, which never assumes declaration order);
* **RC703** — join operands disagree (shape for elementwise joins,
  spatial extent for concatenation), or a stored shape contradicts
  re-inference;
* **RC704** — the lowering does not cover the graph: some node is
  claimed by no step of the lowered program, or a step claims a node
  the graph does not have (the segment-coverage identity);
* **RC705** — a node is malformed (unknown spec type, missing name,
  duplicate, reserved name, no inputs) or the graph has no single sink;
* **RC706** — a serialized graph plan record is invalid (wrong family,
  missing fields, decisions that do not cover the lowered segments).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ConfigError
from ..nn.shapes import ShapeError
from .diagnostics import Diagnostic, diag

_PLAN_FIELDS = ("key", "graph", "decisions", "seed", "degraded")


def _structural(data: Any, site: str) -> List[Diagnostic]:
    """Name/edge/cycle checks on the raw dictionary form."""
    from ..graph.ir import GRAPH_SPEC_TYPES, INPUT

    out: List[Diagnostic] = []
    if not isinstance(data, dict):
        return [diag("RC705", f"graph description is "
                     f"{type(data).__name__}, not an object", site=site)]
    shape = data.get("input_shape")
    if (not isinstance(shape, (list, tuple)) or len(shape) != 3
            or not all(isinstance(v, int) and v > 0 for v in shape)):
        out.append(diag("RC705", f"input_shape must be [C, H, W] of "
                        f"positive ints, got {shape!r}", site=site))
    nodes = data.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        out.append(diag("RC705", "graph has no 'nodes' list", site=site))
        return out

    names: Dict[str, int] = {}
    for i, entry in enumerate(nodes):
        where = f"{site}nodes[{i}]" if site else f"nodes[{i}]"
        if not isinstance(entry, dict):
            out.append(diag("RC705", "node is not an object", site=where))
            continue
        kind = entry.get("type")
        if kind not in GRAPH_SPEC_TYPES:
            out.append(diag("RC705", f"unknown node spec type {kind!r}",
                            site=where, known=sorted(GRAPH_SPEC_TYPES)))
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            out.append(diag("RC705", "node has no name", site=where))
            continue
        if name == INPUT:
            out.append(diag("RC705", f"node name {INPUT!r} is reserved "
                            "for the graph input", site=where))
            continue
        if name in names:
            out.append(diag("RC705", f"duplicate node name {name!r} "
                            f"(first at nodes[{names[name]}])", site=where,
                            name=name))
            continue
        names[name] = i
        inputs = entry.get("inputs")
        if (not isinstance(inputs, (list, tuple)) or not inputs
                or not all(isinstance(s, str) for s in inputs)):
            out.append(diag("RC705", f"node {name!r} needs a non-empty "
                            "list of input names", site=where))

    # Dangling edges against the *full* name set — declaration order is
    # deliberately not assumed here.
    edges: Dict[str, List[str]] = {}
    for i, entry in enumerate(nodes):
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        if not isinstance(name, str) or names.get(name) != i:
            continue
        deps: List[str] = []
        for src in entry.get("inputs") or ():
            if not isinstance(src, str):
                continue
            if src == INPUT:
                continue
            if src not in names:
                out.append(diag(
                    "RC701", f"node {name!r} reads tensor {src!r}, which "
                    "no node produces", site=f"nodes[{i}]", node=name,
                    missing=src))
            else:
                deps.append(src)
        edges[name] = deps

    # Kahn's algorithm over the known-node edge relation.
    indegree = {name: 0 for name in edges}
    consumers: Dict[str, List[str]] = {name: [] for name in edges}
    for name, deps in edges.items():
        for src in deps:
            consumers[src].append(name)
            indegree[name] += 1
    ready = [name for name, deg in indegree.items() if deg == 0]
    seen = 0
    while ready:
        name = ready.pop()
        seen += 1
        for nxt in consumers[name]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if seen != len(edges):
        cyclic = sorted(name for name, deg in indegree.items() if deg > 0)
        out.append(diag("RC702", f"graph contains a cycle through "
                        f"{cyclic}", site=site, nodes=cyclic))
    return out


def check_graph_dict(data: Any, site: str = "") -> List[Diagnostic]:
    """Validate a raw graph description (the ``GraphNetwork.to_dict``
    form). Structural defects are reported exhaustively; if the
    structure is sound the graph is rebuilt to verify shape inference
    (join operand agreement surfaces as RC703)."""
    from ..graph.ir import GraphError, GraphNetwork

    out = _structural(data, site)
    if out:
        return out
    try:
        network = GraphNetwork.from_dict(data)
    except ShapeError as err:
        return [diag("RC703", f"shape inference fails: {err}", site=site)]
    except (GraphError, TypeError, ValueError) as err:
        return [diag("RC705", f"graph does not rebuild: {err}", site=site)]
    return check_graph_network(network, site=site)


def check_graph_network(network: Any, program: Any = None,
                        site: str = "") -> List[Diagnostic]:
    """Validate a constructed :class:`~repro.graph.ir.GraphNetwork` plus
    its lowering (defense in depth behind the IR's own construction
    checks — `compile_graph_plan` runs this on every plan)."""
    from ..graph.ir import INPUT, GraphError, JOIN_SPECS
    from ..graph.lower import lower_graph

    out: List[Diagnostic] = []
    site = site or network.name
    index = {node.name: node.index for node in network}
    for node in network:
        for src in node.inputs:
            if src == INPUT:
                continue
            if src not in index:
                out.append(diag("RC701", f"node {node.name!r} reads "
                                f"{src!r}, which no node produces",
                                site=site, node=node.name, missing=src))
            elif index[src] >= node.index:
                out.append(diag("RC702", f"node {node.name!r} reads "
                                f"{src!r}, which is declared after it",
                                site=site, node=node.name, source=src))
        if isinstance(node.spec, JOIN_SPECS):
            try:
                inferred = node.spec.join_output_shape(node.input_shapes)
            except ShapeError as err:
                out.append(diag("RC703", str(err), site=site,
                                node=node.name))
                continue
            if inferred != node.output_shape:
                out.append(diag("RC703", f"join {node.name!r} stores shape "
                                f"{node.output_shape} but operands infer "
                                f"{inferred}", site=site, node=node.name))
    if out:
        return out

    sinks = [node.name for node in network.sinks()]
    if len(sinks) != 1:
        out.append(diag("RC705", f"graph must have exactly one sink, "
                        f"found {sinks}", site=site, sinks=sinks))
        return out

    if program is None:
        try:
            program = lower_graph(network)
        except (GraphError, ConfigError, ShapeError) as err:
            out.append(diag("RC704", f"graph does not lower: {err}",
                            site=site))
            return out

    # The segment-coverage identity: lowering claims every node exactly
    # once, and claims nothing the graph does not have.
    claimed = set(program.node_step)
    have = set(index)
    for name in sorted(have - claimed):
        out.append(diag("RC704", f"node {name!r} is claimed by no step of "
                        "the lowered program", site=site, node=name))
    for name in sorted(claimed - have):
        out.append(diag("RC704", f"lowered program claims node {name!r}, "
                        "which the graph does not have", site=site,
                        node=name))
    return out


def check_graph_plan_dict(data: Any, network: Optional[Any] = None,
                          site: str = "") -> List[Diagnostic]:
    """Validate one serialized graph plan (the
    ``CompiledGraphPlan.to_dict`` form)."""
    from ..graph.ir import GraphError, GraphNetwork
    from ..graph.lower import lower_graph
    from ..serve.plan import PRECISIONS, PlanKey

    if not isinstance(data, dict):
        return [diag("RC706", f"graph plan record is "
                     f"{type(data).__name__}, not an object", site=site)]
    missing = [f for f in _PLAN_FIELDS if f not in data]
    if missing:
        return [diag("RC706", f"graph plan record is missing {missing}",
                     site=site, missing=missing)]
    try:
        key = PlanKey.from_dict(data["key"])
    except (KeyError, TypeError, ValueError) as err:
        return [diag("RC706", f"unparseable plan key: {err}", site=site)]
    site = site or str(key)
    out: List[Diagnostic] = []
    if key.family != "graph":
        out.append(diag("RC706", f"plan key family {key.family!r} is not "
                        "'graph'", site=site, family=key.family))
    if key.precision not in PRECISIONS:
        out.append(diag("RC706", f"precision {key.precision!r} not in "
                        f"{PRECISIONS}", site=site))
    if key.tip < 1:
        out.append(diag("RC706", f"tip must be >= 1, got {key.tip}",
                        site=site))
    if key.seed != int(data["seed"]):
        out.append(diag("RC706", f"key seed {key.seed} != plan seed "
                        f"{data['seed']}: the frozen weights would not "
                        "match the key", site=site))

    graph_findings = check_graph_dict(data["graph"], site=site)
    if graph_findings:
        return out + graph_findings
    plan_network = GraphNetwork.from_dict(data["graph"])

    fingerprint = plan_network.fingerprint()
    if key.fingerprint != fingerprint:
        out.append(diag(
            "RC401", f"key fingerprint {key.fingerprint} != fingerprint "
            f"{fingerprint} of the embedded graph: the record was tampered "
            "with or compiled for a different network", site=site,
            key_fingerprint=key.fingerprint, network_fingerprint=fingerprint))
    if network is not None and network.fingerprint() != key.fingerprint:
        out.append(diag(
            "RC401", f"plan fingerprint {key.fingerprint} does not match "
            f"{network.name} ({network.fingerprint()})", site=site,
            key_fingerprint=key.fingerprint, network=network.name))

    try:
        program = lower_graph(plan_network)
    except (GraphError, ConfigError, ShapeError) as err:
        out.append(diag("RC704", f"embedded graph does not lower: {err}",
                        site=site))
        return out
    segments = program.segments
    decisions = data["decisions"]
    if not isinstance(decisions, list) or len(decisions) != len(segments):
        out.append(diag(
            "RC706", f"plan stores {len(decisions) if isinstance(decisions, list) else '?'} "
            f"decisions but the lowered program has {len(segments)} "
            "segments", site=site, segments=len(segments)))
        return out
    for step, entry in zip(segments, decisions):
        if not isinstance(entry, dict) or "sizes" not in entry:
            out.append(diag("RC706", f"segment {step.name!r}: decision "
                            "needs a 'sizes' list", site=site,
                            segment=step.name))
            continue
        sizes = entry["sizes"]
        if (not isinstance(sizes, list)
                or not all(isinstance(s, int) and s >= 1 for s in sizes)
                or sum(sizes) != len(step.levels)):
            out.append(diag(
                "RC706", f"segment {step.name!r}: sizes {sizes!r} do not "
                f"cover its {len(step.levels)} levels", site=site,
                segment=step.name, sizes=sizes))
        if entry.get("join_fused") and step.join is None:
            out.append(diag(
                "RC706", f"segment {step.name!r}: join_fused set but the "
                "segment has no fusable join", site=site,
                segment=step.name))
    return out
