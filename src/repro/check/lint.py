"""The repo invariant linter: AST rules for contracts the tests can't see.

PRs 1-4 established repo-wide contracts that are invisible to the test
suite until they break in production: determinism-critical modules draw
randomness only from caller-seeded generators and never read the wall
clock (the warm-resume and replay guarantees depend on it), every
raised error descends from :mod:`repro.errors` (the CLI's exit-code-2
diagnosis path depends on it), observability counters follow one naming
grammar (dashboards depend on it), and the README documents every CLI
subcommand. This module enforces them by walking source ASTs — no
imports, no execution — and reports through the same
:class:`~repro.check.diagnostics.Diagnostic` currency as the domain
analyzer.

Rules:

====== ==================================================================
RL101  ``raise ValueError(...)`` / ``raise RuntimeError(...)`` outside
       the :mod:`repro.errors` hierarchy (``ConfigError`` *is* a
       ``ValueError``; raise it instead)
RL201  unseeded randomness (module-level ``random.*``, ``random.Random()``
       with no seed, ``SystemRandom``, ``np.random.*`` legacy calls) in a
       determinism-critical module (``tune/``, ``faults/``,
       ``serve/plan.py``)
RL202  wall-clock reads (``time.time``, ``datetime.now`` ...) in a
       determinism-critical module; the monotonic ``time.perf_counter``
       is allowed — durations are reported, never persisted
RL301  literal ``obs.add_counter``/``obs.set_gauge`` name not matching
       ``family.metric`` (dotted lowercase, optional ``[index]`` suffix)
RL302  literal event/span name fed to the columnar event store
       (``obs.emit_event``, ``registry.emit``, ``timeline.record``,
       ``tracer.begin``/``instant``) not matching the same grammar
RL401  CLI subcommand registered in ``cli.py`` but absent from README
====== ==================================================================

A finding is suppressed when its source line carries ``# noqa`` (with
or without a code).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .diagnostics import Diagnostic, diag

#: Path fragments marking determinism-critical modules: seeded replay
#: (tune), fault-plan reproducibility (faults), plan identity
#: (serve/plan.py), and the soak stack's seeded traces / virtual-time
#: replay (loadgen, autoscale, soak, clock) all break if these read
#: ambient entropy or clocks.
_DETERMINISTIC_DIRS = ("tune", "faults")
_DETERMINISTIC_FILES = (("serve", "plan.py"), ("serve", "loadgen.py"),
                        ("serve", "autoscale.py"), ("serve", "soak.py"),
                        ("serve", "clock.py"))

#: Module-level `random.*` functions that consume the global, unseeded
#: generator state.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes",
})

#: Call names (matched on the dotted tail) that read the wall clock.
_WALL_CLOCK_TAILS = (
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.asctime", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today",
)

_COUNTER_FNS = frozenset({"add_counter", "set_gauge"})
_COUNTER_NAME_RE = re.compile(
    r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+(\[[^\[\]]+\])?$")

#: Event-store entry points (RL302): call tail -> substring the dotted
#: receiver must contain for the rule to apply. ``emit_event`` is the
#: module-level helper; the others are methods, scoped by receiver name
#: so unrelated ``.record()``/``.emit()``/``.begin()`` calls stay
#: out of reach.
_EVENT_FNS = {
    "emit_event": "",
    "emit": "registry",
    "record": "timeline",
    "begin": "tracer",
    "instant": "tracer",
}


def _dotted(node: ast.AST) -> str:
    """The dotted-name text of a call target (``obs.add_counter``), or
    ``""`` for anything that is not a plain attribute/name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_deterministic_module(path: Path) -> bool:
    parts = path.parts
    if "tests" in parts:
        return False
    if any(d in parts[:-1] for d in _DETERMINISTIC_DIRS):
        return True
    return any(parts[-2:] == tail for tail in _DETERMINISTIC_FILES)


def _suppressed(lines: Sequence[str], lineno: int) -> bool:
    if 1 <= lineno <= len(lines):
        return "# noqa" in lines[lineno - 1]
    return False


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: Path, lines: Sequence[str], label: str):
        self.path = path
        self.lines = lines
        self.label = label
        self.deterministic = is_deterministic_module(path)
        self.is_errors_module = path.name == "errors.py"
        self.diagnostics: List[Diagnostic] = []

    def _emit(self, code: str, message: str, node: ast.AST, **context) -> None:
        lineno = getattr(node, "lineno", 0)
        if _suppressed(self.lines, lineno):
            return
        self.diagnostics.append(
            diag(code, message, site=f"{self.label}:{lineno}", **context))

    # -- RL101: error-hierarchy discipline --------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        if not self.is_errors_module:
            exc = node.exc
            name = ""
            if isinstance(exc, ast.Call):
                name = _dotted(exc.func)
            elif exc is not None:
                name = _dotted(exc)
            if name in ("ValueError", "RuntimeError"):
                self._emit(
                    "RL101", f"raise {name} directly: use the repro.errors "
                    "hierarchy (ConfigError for bad requests, SimFaultError "
                    "for runtime faults) so the CLI can diagnose it",
                    node, exception=name)
        self.generic_visit(node)

    # -- RL2xx determinism + RL301 naming ---------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if self.deterministic and name:
            self._check_determinism(node, name)
        tail = name.rsplit(".", 1)[-1]
        if tail in _COUNTER_FNS and node.args:
            self._check_counter_name(node, "RL301")
        elif tail in _EVENT_FNS and node.args:
            receiver = name.rsplit(".", 1)[0].lower() if "." in name else ""
            if _EVENT_FNS[tail] in receiver or not _EVENT_FNS[tail]:
                self._check_counter_name(node, "RL302")
        self.generic_visit(node)

    def _check_determinism(self, node: ast.Call, name: str) -> None:
        head, _, tail = name.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            self._emit(
                "RL201", f"{name}() draws from the global unseeded "
                "generator; thread a caller-provided random.Random through",
                node, call=name)
        elif name in ("random.Random", "random.SystemRandom") and not node.args:
            self._emit(
                "RL201", f"{name}() with no seed is entropy-seeded; pass "
                "an explicit seed", node, call=name)
        elif name == "random.SystemRandom":
            self._emit("RL201", "SystemRandom is unseedable by design",
                       node, call=name)
        elif tail == "default_rng" and "random" in name and not node.args:
            self._emit("RL201", f"{name}() with no seed is entropy-seeded",
                       node, call=name)
        elif head.endswith("np.random") or head.endswith("numpy.random"):
            if tail not in ("default_rng", "Generator", "SeedSequence",
                            "PCG64"):
                self._emit(
                    "RL201", f"{name}() uses numpy's legacy global "
                    "generator; use a seeded Generator", node, call=name)
        if any(name == t or name.endswith("." + t)
               for t in _WALL_CLOCK_TAILS):
            self._emit(
                "RL202", f"{name}() reads the wall clock; deterministic "
                "modules may only use time.perf_counter for durations",
                node, call=name)

    def _check_counter_name(self, node: ast.Call, code: str) -> None:
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            text = arg.value
        elif isinstance(arg, ast.JoinedStr):
            pieces = []
            for value in arg.values:
                if isinstance(value, ast.Constant):
                    pieces.append(str(value.value))
                else:
                    pieces.append("x")  # placeholder for the runtime part
            text = "".join(pieces)
        else:
            return  # dynamic name: out of static reach
        if not _COUNTER_NAME_RE.match(text):
            kind = ("counter/gauge" if code == "RL301"
                    else "event/span")
            self._emit(
                code, f"{kind} name {text!r} violates the "
                "'family.metric' convention (dotted lowercase, optional "
                "[index] suffix)", node, name=text)


def _iter_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(p for p in sorted(path.rglob("*.py"))
                         if "__pycache__" not in p.parts)
        else:
            files.append(path)
    return files


def _display(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(paths: Sequence[str],
               readme: Optional[str] = None) -> List[Diagnostic]:
    """Lint every ``.py`` under ``paths`` and cross-check CLI vs README.

    ``readme`` overrides README discovery (by default the nearest
    ``README.md`` at or above each lint root is used for RL401).
    Unreadable or syntactically invalid files yield RC-style failures
    via ``ConfigError`` — a lint run over broken source is a bad
    request, not a lint finding.
    """
    from ..errors import ConfigError

    out: List[Diagnostic] = []
    subcommands: List[tuple] = []  # (name, label, lineno)
    readme_path = Path(readme) if readme else _find_readme(paths)
    for path in _iter_files(paths):
        label = _display(path, Path.cwd())
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except OSError as err:
            raise ConfigError(f"cannot lint {path}: {err}", path=str(path))
        except SyntaxError as err:
            raise ConfigError(f"cannot lint {path}: {err}", path=str(path),
                              line=err.lineno)
        linter = _FileLinter(path, source.splitlines(), label)
        linter.visit(tree)
        out.extend(linter.diagnostics)
        if path.name == "cli.py":
            subcommands.extend(
                (name, label, lineno)
                for name, lineno in _cli_subcommands(tree))
    if subcommands and readme_path is not None and readme_path.exists():
        text = readme_path.read_text()
        for name, label, lineno in subcommands:
            if not re.search(rf"\b{re.escape(name)}\b", text):
                out.append(diag(
                    "RL401", f"CLI subcommand {name!r} is not documented "
                    f"in {readme_path.name}", site=f"{label}:{lineno}",
                    subcommand=name, readme=str(readme_path)))
    return out


def _cli_subcommands(tree: ast.AST) -> List[tuple]:
    """(name, lineno) of every ``add_parser("name", ...)`` registration."""
    found: List[tuple] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            found.append((node.args[0].value, node.lineno))
    return found


def _find_readme(paths: Sequence[str]) -> Optional[Path]:
    for raw in paths:
        current = Path(raw).resolve()
        if current.is_file():
            current = current.parent
        for candidate in (current, *current.parents):
            readme = candidate / "README.md"
            if readme.exists():
                return readme
    return None
