"""Structured diagnostics: the currency of the static analyzer.

Every check in :mod:`repro.check` reports through a
:class:`Diagnostic` — a stable machine-readable ``code`` (``RC...`` for
the domain analyzer, ``RL...`` for the repo linter), a
:class:`Severity`, a one-line message, and a context mapping with the
offending values — instead of raising. A broken plan yields the *full*
list of everything wrong with it, CI can grep exact codes, and the
fixture tests can pin each seeded defect to its code forever.

Code families (the table in ``docs/static-analysis.md`` mirrors this):

====== ==========================================================
RC1xx  geometry: shapes, strides, padding, pyramid tiles
RC2xx  resources: BRAM/DSP bounds, buffer sizing, weight residency
RC3xx  schedules: hazards in fused/pipeline/channel schedules
RC4xx  records: compiled plans, plan caches, tuning databases
RC5xx  traces: exported request-trace files (JSONL / Chrome trace)
RC6xx  soak: overload-soak reports (accounting, correctness, scaling)
RC7xx  graphs: DAG structure, joins, lowering coverage
RC8xx  pipeline plans: stage coverage, device fits, links, aliasing
RL1xx  lint: error-hierarchy discipline
RL2xx  lint: determinism (seeded randomness, wall clock)
RL3xx  lint: observability naming conventions
RL4xx  lint: CLI/README documentation drift
RL5xx  lint: concurrency (races, lock discipline, lost wakeups)
====== ==========================================================

Codes are append-only: a code, once released, keeps its meaning.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` — the checked artifact is wrong: an infeasible design, a
    broken invariant, a tampered record. Always fails the check.
    ``WARNING`` — suspicious but possibly intended (e.g. weights that
    will not stay resident). Fails only under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The full registry of diagnostic codes: code -> (default severity, title).
#: Append-only; never renumber.
CODES: Dict[str, tuple] = {
    # -- RC1xx geometry -----------------------------------------------------
    "RC101": (Severity.ERROR, "level shape mismatch"),
    "RC102": (Severity.ERROR, "tip/tile exceeds output map"),
    "RC103": (Severity.ERROR, "tile extent indivisible by stride"),
    "RC104": (Severity.ERROR, "padding inconsistency"),
    "RC105": (Severity.ERROR, "partition does not cover the network"),
    "RC106": (Severity.ERROR, "pyramid geometry drift"),
    # -- RC2xx resources ----------------------------------------------------
    "RC201": (Severity.ERROR, "on-chip buffers exceed device BRAM"),
    "RC202": (Severity.ERROR, "design exceeds the DSP budget"),
    "RC203": (Severity.WARNING, "weights cannot stay resident on chip"),
    "RC204": (Severity.WARNING, "LUT/FF estimate exceeds the device"),
    "RC205": (Severity.WARNING, "tile cap exceeds the channel count"),
    # -- RC3xx schedule hazards ---------------------------------------------
    "RC301": (Severity.ERROR, "read-before-write hazard"),
    "RC302": (Severity.ERROR, "overlap conflict (double-buffer clobber)"),
    "RC303": (Severity.ERROR, "schedule timing inconsistency"),
    "RC304": (Severity.ERROR, "memory channel over-committed"),
    "RC305": (Severity.ERROR, "schedule does not cover the output map"),
    "RC306": (Severity.WARNING, "stall accounting inconsistency"),
    # -- RC4xx records ------------------------------------------------------
    "RC401": (Severity.ERROR, "plan fingerprint does not match network"),
    "RC402": (Severity.ERROR, "plan partition/geometry invalid"),
    "RC403": (Severity.ERROR, "plan key field invalid or incomplete"),
    "RC404": (Severity.ERROR, "plan-cache key aliasing"),
    "RC405": (Severity.ERROR, "stale tuning record (dangling incumbent)"),
    "RC406": (Severity.ERROR, "tuning record fingerprint mismatch"),
    "RC407": (Severity.ERROR, "tuning record key/candidate mismatch"),
    "RC408": (Severity.ERROR, "malformed record file"),
    # -- RC5xx traces --------------------------------------------------------
    "RC501": (Severity.ERROR, "malformed trace file"),
    "RC502": (Severity.ERROR, "incomplete span (begin without end)"),
    "RC503": (Severity.ERROR, "orphan span (parent not in trace)"),
    "RC504": (Severity.ERROR, "span timing inconsistency"),
    "RC505": (Severity.WARNING, "unmatched flow event"),
    # -- RC6xx soak reports ---------------------------------------------------
    "RC601": (Severity.ERROR, "malformed soak report"),
    "RC602": (Severity.ERROR, "soak produced wrong answers"),
    "RC603": (Severity.ERROR, "soak request accounting inconsistent"),
    "RC604": (Severity.ERROR, "guaranteed-class request was shed"),
    "RC605": (Severity.ERROR, "scale event outside worker bounds"),
    "RC606": (Severity.ERROR, "latency percentiles non-monotone"),
    # -- RC7xx graphs ---------------------------------------------------------
    "RC701": (Severity.ERROR, "dangling edge (input names no node)"),
    "RC702": (Severity.ERROR, "cycle in graph"),
    "RC703": (Severity.ERROR, "join operand shape/channel mismatch"),
    "RC704": (Severity.ERROR, "lowering does not cover the graph"),
    "RC705": (Severity.ERROR, "invalid graph node"),
    "RC706": (Severity.ERROR, "invalid graph plan record"),
    # -- RC8xx pipeline (multi-device) plans ----------------------------------
    "RC801": (Severity.ERROR, "stage split does not cover the network"),
    "RC802": (Severity.ERROR, "stage exceeds its device's DSP budget"),
    "RC803": (Severity.WARNING, "stage working set exceeds device BRAM"),
    "RC804": (Severity.ERROR, "link traffic inconsistent with link model"),
    "RC805": (Severity.ERROR, "pipeline plan key aliases another plan"),
    "RC806": (Severity.ERROR, "pipeline interval/latency mispriced"),
    # -- RL lint ------------------------------------------------------------
    "RL101": (Severity.ERROR, "bare ValueError/RuntimeError raise"),
    "RL201": (Severity.ERROR, "unseeded randomness in deterministic module"),
    "RL202": (Severity.ERROR, "wall-clock read in deterministic module"),
    "RL301": (Severity.ERROR, "obs counter/gauge name violates convention"),
    "RL302": (Severity.ERROR, "event/span name violates convention"),
    "RL401": (Severity.ERROR, "CLI subcommand missing from README"),
    "RL501": (Severity.ERROR, "unguarded write to a lock-guarded attribute"),
    "RL502": (Severity.ERROR, "blocking call while holding a lock"),
    "RL503": (Severity.ERROR, "lock-acquisition cycle (potential deadlock)"),
    "RL504": (Severity.ERROR, "lost-wakeup pattern (notify/wait misuse)"),
    "RL505": (Severity.ERROR, "thread started before __init__ completes"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer or linter."""

    code: str
    severity: Severity
    message: str
    #: Where the finding anchors: a layer/group name, ``file:line``, a
    #: record key ... whatever locates the defect for a human.
    site: str = ""
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        site = f" {self.site}:" if self.site else ""
        text = f"{self.code} [{self.severity.value}]{site} {self.message}"
        if self.context:
            details = ", ".join(f"{k}={v!r}"
                                for k, v in sorted(self.context.items()))
            text += f" ({details})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {"code": self.code, "severity": self.severity.value,
                "title": self.title, "message": self.message,
                "site": self.site, "context": dict(self.context)}


def diag(code: str, message: str, site: str = "",
         severity: Optional[Severity] = None, **context: Any) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from :data:`CODES`.

    Unknown codes are rejected loudly — a typo in a check would otherwise
    mint an untracked code and silently break the stability contract.
    """
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    return Diagnostic(code=code,
                      severity=severity or CODES[code][0],
                      message=message, site=site, context=dict(context))


@dataclass
class CheckReport:
    """The aggregate outcome of one ``repro check`` run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Human-readable labels of the checks that ran (for the report).
    checks_run: List[str] = field(default_factory=list)

    def extend(self, label: str, diagnostics: Sequence[Diagnostic]) -> None:
        self.checks_run.append(label)
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "CheckReport") -> None:
        """Fold another report in (the CLI aggregates one per request)."""
        self.checks_run.extend(other.checks_run)
        self.diagnostics.extend(other.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    def ok(self, strict: bool = False) -> bool:
        """Whether the run passes: no errors, and no warnings if strict."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def exit_code(self, strict: bool = False) -> int:
        """The CLI contract: 0 clean, 2 on errors (or warnings + strict)."""
        return 0 if self.ok(strict) else 2

    def render(self, verbose: bool = True) -> str:
        lines: List[str] = []
        if verbose:
            for label in self.checks_run:
                lines.append(f"check: {label}")
        for d in self.diagnostics:
            lines.append(d.render())
        lines.append(f"{len(self.errors)} errors, "
                     f"{len(self.warnings)} warnings "
                     f"({len(self.checks_run)} checks)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"checks": list(self.checks_run),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "diagnostics": [d.to_dict() for d in self.diagnostics]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
