"""RC6xx: static verification of overload-soak reports.

A soak run (:func:`repro.serve.soak.run_soak`, ``repro serve-soak``)
emits a JSON report claiming "N requests, zero wrong answers, these
sheds, these scaling events". This checker re-verifies the claims that
can be checked without re-running the soak: internal accounting must
balance, correctness and class guarantees must hold, scaling events
must respect the configured worker bounds and chain consistently, and
percentile summaries must be monotone. CI runs it on every published
``BENCH_soak.json`` so a report that drifts from its own invariants
fails loudly instead of being plotted.
"""

from __future__ import annotations

import json
from typing import Any, List

from .diagnostics import Diagnostic, diag

_REQUIRED = ("counts", "config", "latency_ms", "queue_wait_ms",
             "shed_rate", "scale_events")
_COUNT_KEYS = ("submitted", "completed", "shed", "rejected",
               "guaranteed_shed", "wrong_answers", "spot_checks")
_QUANTILE_ORDER = ("p50", "p99", "p999", "max")


def check_soak_report_dict(data: Any,
                           site: str = "soak") -> List[Diagnostic]:
    """Verify one parsed soak report; returns its diagnostics."""
    out: List[Diagnostic] = []
    if not isinstance(data, dict):
        return [diag("RC601", "soak report is not a JSON object",
                     site=site, got=type(data).__name__)]
    missing = [key for key in _REQUIRED if key not in data]
    if missing:
        return [diag("RC601", "soak report is missing required fields",
                     site=site, missing=", ".join(missing))]
    counts = data["counts"]
    if not isinstance(counts, dict):
        return [diag("RC601", "soak counts must be an object", site=site)]
    bad = [key for key in _COUNT_KEYS
           if not isinstance(counts.get(key), int)
           or isinstance(counts.get(key), bool)
           or counts.get(key, -1) < 0]
    if bad:
        return [diag("RC601", "soak counts missing or not counting numbers",
                     site=site, fields=", ".join(bad))]

    # -- correctness and class guarantees -------------------------------------
    if counts["wrong_answers"] > 0:
        out.append(diag(
            "RC602", "spot checks diverged from the reference executor",
            site=site, wrong_answers=counts["wrong_answers"],
            spot_checks=counts["spot_checks"]))
    if counts["guaranteed_shed"] > 0:
        out.append(diag(
            "RC604", "admission control shed guaranteed-class traffic",
            site=site, guaranteed_shed=counts["guaranteed_shed"]))

    # -- accounting: a drained soak resolves every request exactly once ------
    resolved = counts["completed"] + counts["shed"] + counts["rejected"]
    if resolved != counts["submitted"]:
        out.append(diag(
            "RC603", "completed + shed + rejected must equal submitted",
            site=site, submitted=counts["submitted"], resolved=resolved))
    if counts["wrong_answers"] > counts["spot_checks"]:
        out.append(diag(
            "RC603", "more wrong answers than spot checks performed",
            site=site, wrong_answers=counts["wrong_answers"],
            spot_checks=counts["spot_checks"]))
    shed_rate = data["shed_rate"]
    expect = ((counts["shed"] + counts["rejected"])
              / max(1, counts["submitted"]))
    if not isinstance(shed_rate, (int, float)) or \
            abs(float(shed_rate) - expect) > 1e-6:
        out.append(diag(
            "RC603", "shed_rate does not match the shed/rejected counts",
            site=site, shed_rate=shed_rate, expected=round(expect, 9)))

    # -- scaling events -------------------------------------------------------
    config = data["config"] if isinstance(data["config"], dict) else {}
    lo = config.get("min_workers")
    hi = config.get("max_workers")
    previous_to = None
    for i, event in enumerate(data["scale_events"]):
        if not isinstance(event, dict) or \
                event.get("action") not in ("up", "down"):
            out.append(diag("RC601", "malformed scale event", site=site,
                            index=i))
            continue
        w_from, w_to = event.get("workers_from"), event.get("workers_to")
        if not isinstance(w_from, int) or not isinstance(w_to, int):
            out.append(diag("RC601", "scale event without worker counts",
                            site=site, index=i))
            continue
        if event["action"] == "up" and w_to <= w_from or \
                event["action"] == "down" and w_to >= w_from:
            out.append(diag(
                "RC605", "scale event direction contradicts its action",
                site=site, index=i, action=event["action"],
                workers_from=w_from, workers_to=w_to))
        if isinstance(lo, int) and isinstance(hi, int) and \
                not lo <= w_to <= hi:
            out.append(diag(
                "RC605", "scale event leaves the configured worker bounds",
                site=site, index=i, workers_to=w_to,
                min_workers=lo, max_workers=hi))
        if previous_to is not None and w_from != previous_to:
            out.append(diag(
                "RC605", "scale events do not chain (from != previous to)",
                site=site, index=i, workers_from=w_from,
                previous_to=previous_to))
        previous_to = w_to

    # -- percentile monotonicity ---------------------------------------------
    for label in ("latency_ms", "queue_wait_ms"):
        quantiles = data[label]
        if not isinstance(quantiles, dict) or \
                not all(isinstance(quantiles.get(q), (int, float))
                        for q in _QUANTILE_ORDER):
            out.append(diag("RC601", f"{label} quantile summary malformed",
                            site=site))
            continue
        values = [float(quantiles[q]) for q in _QUANTILE_ORDER]
        if any(a > b + 1e-9 for a, b in zip(values, values[1:])):
            out.append(diag(
                "RC606", f"{label} percentiles are not non-decreasing",
                site=site, **{q: quantiles[q] for q in _QUANTILE_ORDER}))
    return out


def check_soak_report_file(path: Any) -> List[Diagnostic]:
    """Load ``path`` as JSON and verify it as a soak report."""
    site = str(path)
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [diag("RC601", "cannot read soak report", site=site,
                     error=str(exc))]
    return check_soak_report_dict(data, site=site)
