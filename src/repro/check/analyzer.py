"""Domain static analysis: verify dataflow invariants without executing.

The exploration/serving stack prices designs with closed-form geometry
(Section III-B); a wrong tile size or an undersized reuse buffer would
silently price an infeasible design and only surface when a simulator
runs. The functions here re-derive every invariant independently — in
milliseconds, with no NumPy execution — and report structured
:class:`~repro.check.diagnostics.Diagnostic`\\ s instead of raising:

* :func:`check_levels` — shape/stride/padding consistency through a
  chain of windowed levels (the producer/consumer contract the pyramid
  walks over);
* :func:`check_group` — one fused group: pyramid geometry re-derivation,
  tile divisibility at schedule positions, reuse/recompute buffer bounds
  against device BRAM, DSP feasibility, weight residency;
* :func:`check_partition` — a full partition: coverage, per-group
  checks, and the exact DSP-share arithmetic of
  :func:`~repro.hw.multi.design_partition`;
* :func:`check_network` — the CLI entry point, aggregating everything
  into a :class:`~repro.check.diagnostics.CheckReport`.

Resource findings are *lower bounds* (single-bank BRAM rounding, one
MAC lane per module): anything flagged RC201/RC202 is infeasible for
the real banked design too, so the analyzer never cries wolf — the
zero-false-positive contract the test suite enforces with an exhaustive
partition sweep over the model zoo.
"""

from __future__ import annotations

from math import ceil
from typing import List, Optional, Sequence, Tuple

from ..core.schedule import FusedSchedule
from ..core.costs import reuse_buffer_plans
from ..core.pyramid import PyramidGeometry, build_pyramid
from ..hw.device import DSP_PER_MAC, VIRTEX7_690T, FpgaDevice, WORDS_PER_BRAM18
from ..nn.network import Network
from ..nn.shapes import ShapeError
from ..nn.stages import Level, extract_levels, independent_units
from .diagnostics import CheckReport, Diagnostic, Severity, diag
from .hazards import check_fused_schedule, check_pipeline_schedule

#: Per-conv-module DSP floor ``design_partition`` reserves for a group.
_GROUP_DSP_FLOOR = 400


def check_levels(levels: Sequence[Level]) -> List[Diagnostic]:
    """Shape/stride/padding consistency through a chain of levels.

    Verifies, for every level, the paper's output-size rule
    ``out = (in + 2*pad - K)/S + 1`` (windows must fit and divide
    evenly), channel bookkeeping, and that each consumer's input shape
    is exactly its producer's output shape.
    """
    out: List[Diagnostic] = []
    for level in levels:
        k, s = level.kernel, level.stride
        if k <= 0 or s <= 0:
            out.append(diag("RC101", f"kernel/stride must be positive, "
                            f"got K={k} S={s}", site=level.name))
            continue
        if level.pad < 0:
            out.append(diag("RC104", f"negative padding {level.pad}",
                            site=level.name, pad=level.pad))
            continue
        if level.is_pool and level.pad:
            out.append(diag("RC104", "padding before pooling is unsupported",
                            site=level.name, pad=level.pad))
        if level.pad >= k:
            out.append(diag("RC104", f"padding {level.pad} >= kernel {k}: "
                            "windows fall entirely inside the border zeros",
                            site=level.name, severity=Severity.WARNING,
                            pad=level.pad, kernel=k))
        padded = level.padded_in_shape
        for axis, extent, got in (("height", padded.height, level.out_shape.height),
                                  ("width", padded.width, level.out_shape.width)):
            if extent < k:
                out.append(diag("RC101", f"window K={k} does not fit the "
                                f"padded input {axis} {extent}",
                                site=level.name, axis=axis, extent=extent))
                continue
            if (extent - k) % s:
                out.append(diag("RC103", f"padded input {axis} {extent} with "
                                f"K={k}, S={s} leaves a partial window",
                                site=level.name, axis=axis, extent=extent))
                continue
            want = (extent - k) // s + 1
            if got != want:
                out.append(diag("RC101", f"output {axis} {got} != "
                                f"({extent} - {k})/{s} + 1 = {want}",
                                site=level.name, axis=axis,
                                expected=want, got=got))
        if level.is_pool and level.out_channels != level.in_channels:
            out.append(diag("RC101", "pooling must preserve channels: "
                            f"{level.in_channels} -> {level.out_channels}",
                            site=level.name))
        if level.is_conv:
            g = level.groups
            if g < 1 or level.in_channels % g or level.out_channels % g:
                out.append(diag("RC101", f"groups={g} does not divide "
                                f"channels {level.in_channels}->"
                                f"{level.out_channels}", site=level.name))
    for producer, consumer in zip(levels, levels[1:]):
        if producer.out_shape != consumer.in_shape:
            out.append(diag(
                "RC101", f"{consumer.name} consumes {consumer.in_shape} but "
                f"{producer.name} produces {producer.out_shape}",
                site=consumer.name,
                producer=str(producer.out_shape),
                consumer=str(consumer.in_shape)))
    return out


def check_pyramid_geometry(levels: Sequence[Level],
                           geometry: PyramidGeometry) -> List[Diagnostic]:
    """Re-derive the pyramid backwards and compare against ``geometry``.

    Guards any *stored* geometry (e.g. inside a restored
    :class:`~repro.serve.plan.CompiledPlan`) against drift from the
    levels it claims to describe: per-level tile extents must follow
    ``D = S*D' + K - S`` (clamped to the padded map) and the step sizes
    must be the downstream stride products.
    """
    out: List[Diagnostic] = []
    if len(geometry.tiles) != len(levels):
        out.append(diag("RC106", f"geometry has {len(geometry.tiles)} tiles "
                        f"for {len(levels)} levels"))
        return out
    out_h, out_w = geometry.tip_h, geometry.tip_w
    step_h, step_w = geometry.tip_h, geometry.tip_w
    for level, tile in zip(reversed(list(levels)), reversed(geometry.tiles)):
        k, s = level.kernel, level.stride
        padded = level.padded_in_shape
        want_h = min(s * out_h + k - s, padded.height)
        want_w = min(s * out_w + k - s, padded.width)
        step_h *= s
        step_w *= s
        if tile.level.name != level.name:
            out.append(diag("RC106", f"tile bound to {tile.level.name!r}, "
                            f"expected {level.name!r}", site=level.name))
        if (tile.out_h, tile.out_w) != (out_h, out_w):
            out.append(diag("RC106", f"output tile {tile.out_h}x{tile.out_w} "
                            f"!= expected {out_h}x{out_w}", site=level.name))
        if (tile.in_h, tile.in_w) != (want_h, want_w):
            out.append(diag("RC106", f"input tile {tile.in_h}x{tile.in_w} != "
                            f"S*D' + K - S = {want_h}x{want_w}",
                            site=level.name, kernel=k, stride=s))
        if (tile.step_h, tile.step_w) != (step_h, step_w):
            out.append(diag("RC106", f"step {tile.step_h}x{tile.step_w} != "
                            f"stride product {step_h}x{step_w}",
                            site=level.name))
        out_h, out_w = tile.in_h, tile.in_w
    return out


def _group_buffer_words(levels: Sequence[Level], geometry: PyramidGeometry,
                        strategy: str) -> List[Tuple[str, int, bool]]:
    """Closed-form on-chip buffer inventory of one fused group.

    Mirrors :meth:`~repro.hw.fused_accel.FusedDesign.resources` (window
    tiles double-buffered, resident weights, BL/BT reuse buffers, store
    tile) but without running ``optimize_fused`` — banks are ignored, so
    the BRAM count derived from it lower-bounds the real banked design.
    """
    if not any(level.is_conv for level in levels):
        # Pool-only groups run on a PoolEngine: one line buffer per level
        # (kernel rows x map width x channels), nothing else. This is the
        # engine's exact inventory, not a bound.
        return [(f"line[{level.name}]",
                 level.kernel * level.in_shape.width * level.in_channels,
                 False)
                for level in levels]
    buffers: List[Tuple[str, int, bool]] = []
    for level, tile in zip(levels, geometry.tiles):
        window = tile.in_h * tile.in_w * level.in_channels
        buffers.append((f"in[{level.name}]", window, True))
        if level.is_conv and level.weight_count:
            buffers.append((f"weights[{level.name}]", level.weight_count,
                            False))
    if strategy == "reuse" and len(levels) > 0:
        for plan in reuse_buffer_plans(levels, geometry.tip_h, geometry.tip_w,
                                       include_input_level=True):
            buffers.append((f"BL[{plan.consumer_name}]", plan.bl_elements,
                            False))
            buffers.append((f"BT[{plan.consumer_name}]", plan.bt_elements,
                            False))
    out = levels[-1].out_shape
    buffers.append(("store", geometry.tip_h * geometry.tip_w * out.channels,
                    True))
    return buffers


def _bram18_lower_bound(buffers: Sequence[Tuple[str, int, bool]]) -> int:
    total = 0
    for _name, words, double in buffers:
        if words <= 0:
            continue
        total += ceil(words / WORDS_PER_BRAM18) * (2 if double else 1)
    return total


def check_group(levels: Sequence[Level], tip_h: int = 1, tip_w: int = 1,
                strategy: str = "reuse",
                device: FpgaDevice = VIRTEX7_690T,
                dsp_budget: Optional[int] = None,
                tile: Optional[Tuple[int, int]] = None,
                check_resources: bool = True,
                schedule_probes: bool = True) -> List[Diagnostic]:
    """Statically verify one fused group of ``levels``.

    Covers: level-chain consistency, tip bounds, pyramid re-derivation,
    calcparams tile divisibility and load stitching at the schedule's
    probe positions, and (with ``check_resources``) BRAM/DSP lower
    bounds plus weight residency for the group's device.
    """
    site = "+".join(level.name for level in levels) if levels else "<empty>"
    if not levels:
        return [diag("RC105", "a fused group needs at least one level")]
    out = check_levels(levels)
    if any(d.is_error for d in out):
        return out  # geometry below would just cascade

    final = levels[-1].out_shape
    if tip_h <= 0 or tip_w <= 0:
        out.append(diag("RC102", f"tip must be positive, got {tip_h}x{tip_w}",
                        site=site, tip=(tip_h, tip_w)))
        return out
    if tip_h > final.height or tip_w > final.width:
        out.append(diag("RC102", f"tip {tip_h}x{tip_w} exceeds the group's "
                        f"final output map {final.height}x{final.width}",
                        site=site, tip=(tip_h, tip_w),
                        output=(final.height, final.width)))
        return out

    try:
        geometry = build_pyramid(levels, tip_h, tip_w)
    except ShapeError as err:  # pragma: no cover - prechecks above cover this
        out.append(diag("RC106", f"pyramid construction failed: {err}",
                        site=site))
        return out
    out.extend(check_pyramid_geometry(levels, geometry))

    if schedule_probes:
        try:
            schedule = FusedSchedule(levels, tip_h, tip_w)
        except ShapeError as err:
            out.append(diag("RC103", f"calcparams schedule rejected the "
                            f"group: {err}", site=site))
        else:
            out.extend(check_fused_schedule(schedule))

    if check_resources:
        out.extend(_check_group_resources(levels, geometry, strategy, device,
                                          dsp_budget, tile, site))
    return out


def _check_group_resources(levels: Sequence[Level],
                           geometry: PyramidGeometry, strategy: str,
                           device: FpgaDevice, dsp_budget: Optional[int],
                           tile: Optional[Tuple[int, int]],
                           site: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    conv_levels = [level for level in levels if level.is_conv]

    buffers = _group_buffer_words(levels, geometry, strategy)
    bram = _bram18_lower_bound(buffers)
    if bram > device.bram18:
        worst = max(buffers, key=lambda b: b[1])
        out.append(diag(
            "RC201", f"on-chip buffers need >= {bram} BRAM18 but "
            f"{device.name} has {device.bram18} "
            f"(largest: {worst[0]} at {worst[1]:,} words)",
            site=site, bram18_needed=bram, bram18_available=device.bram18,
            largest_buffer=worst[0]))
    else:
        weight_words = sum(level.weight_count for level in levels)
        budget_words = device.bram18 * WORDS_PER_BRAM18 // 2
        if weight_words > budget_words:
            out.append(diag(
                "RC203", f"{weight_words:,} weight words exceed half of "
                f"{device.name}'s BRAM ({budget_words:,} words): weights "
                "will not stay resident alongside the feature-map buffers",
                site=site, weight_words=weight_words,
                budget_words=budget_words))

    if conv_levels:
        budget = device.dsp_slices if dsp_budget is None else dsp_budget
        control_tax = 16 * (len(levels) + 2)
        lanes = len(conv_levels)  # one MAC lane per module, the floor
        if tile is not None:
            tm, tn = tile
            for level in conv_levels:
                m = level.out_channels // level.groups
                n = level.in_channels // level.groups
                if tm > m or tn > n:
                    out.append(diag(
                        "RC205", f"tile cap ({tm}, {tn}) exceeds "
                        f"{level.name}'s per-group channels ({m}, {n}); "
                        "the cap will be clipped",
                        site=level.name, tile=(tm, tn), channels=(m, n)))
            lanes = sum(min(tm, level.out_channels // level.groups)
                        * min(tn, level.in_channels // level.groups)
                        for level in conv_levels)
        dsp = lanes * DSP_PER_MAC + control_tax
        if dsp > budget:
            detail = ("explicit tile caps" if tile is not None
                      else "one lane per module plus control")
            out.append(diag(
                "RC202", f"group needs >= {dsp} DSPs ({detail}) but the "
                f"budget is {budget}", site=site,
                dsp_needed=dsp, dsp_budget=budget, modules=len(conv_levels)))
    return out


def _split(levels: Sequence[Level],
           sizes: Sequence[int]) -> List[List[Level]]:
    groups: List[List[Level]] = []
    start = 0
    for size in sizes:
        groups.append(list(levels[start:start + size]))
        start += size
    return groups


def check_partition(levels: Sequence[Level], sizes: Sequence[int],
                    tip: int = 1, strategy: str = "reuse",
                    device: FpgaDevice = VIRTEX7_690T,
                    dsp_budget: Optional[int] = None,
                    tiles: Optional[Sequence[Optional[Tuple[int, int]]]] = None,
                    check_resources: bool = True,
                    schedule_probes: bool = True,
                    clip_tip: bool = True) -> List[Diagnostic]:
    """Statically verify a full fusion partition of ``levels``.

    Coverage first (RC105), then each group via :func:`check_group`
    with its tip clipped to the group's output map (the clamp the
    hardware designer, tuner, and plan compiler all apply), with the
    DSP budget split across conv groups exactly the way
    :func:`~repro.hw.multi.design_partition` splits it. With
    ``clip_tip=False`` an oversized tip is reported (RC102) instead of
    clamped — the right behavior for a tip the user *requested*, as
    opposed to one restored from a record that relies on the clamp.
    """
    sizes = tuple(int(s) for s in sizes)
    if not sizes or any(s <= 0 for s in sizes):
        return [diag("RC105", f"partition sizes must be positive: {sizes}",
                     sizes=sizes)]
    if sum(sizes) != len(levels):
        return [diag("RC105", f"partition {sizes} covers {sum(sizes)} units "
                     f"but the network has {len(levels)}",
                     sizes=sizes, units=len(levels))]
    if tiles is not None and len(tiles) != len(sizes):
        return [diag("RC105", f"got {len(tiles)} tile entries for "
                     f"{len(sizes)} groups", sizes=sizes)]

    groups = _split(levels, sizes)
    budget = device.dsp_slices if dsp_budget is None else dsp_budget
    out: List[Diagnostic] = []
    shares: List[Optional[int]] = [None] * len(groups)
    if check_resources:
        computed = _partition_dsp_shares(groups, budget)
        if computed is None:
            floor = _GROUP_DSP_FLOOR * sum(
                1 for group in groups for level in group if level.is_conv)
            out.append(diag(
                "RC202", f"DSP budget {budget} cannot host {len(groups)} "
                f"engines (needs at least {floor})",
                dsp_budget=budget, groups=len(groups), floor=floor))
        else:
            shares = computed

    for i, group in enumerate(groups):
        final = group[-1].out_shape
        tip_h, tip_w = tip, tip
        if clip_tip:
            tip_h, tip_w = min(tip, final.height), min(tip, final.width)
        out.extend(check_group(
            group,
            tip_h=tip_h, tip_w=tip_w,
            strategy=strategy, device=device,
            dsp_budget=shares[i],
            tile=None if tiles is None else tiles[i],
            check_resources=check_resources,
            schedule_probes=schedule_probes))
    return out


def _partition_dsp_shares(groups: Sequence[Sequence[Level]],
                          dsp_budget: int) -> Optional[List[Optional[int]]]:
    """Per-group DSP shares, mirroring ``design_partition`` exactly.

    Returns ``None`` when the budget cannot host the engines at all
    (the same condition under which ``design_partition`` raises).
    Pool-only groups get ``None`` (no DSP constraint applies).
    """
    work = [sum(level.total_ops for level in group if level.is_conv)
            for group in groups]
    total_work = sum(work) or 1
    floors = [_GROUP_DSP_FLOOR * sum(1 for level in group if level.is_conv)
              for group in groups]
    floor_total = sum(floors)
    if floor_total > dsp_budget:
        return None
    spare = dsp_budget - floor_total
    shares: List[Optional[int]] = []
    for group, floor, group_work in zip(groups, floors, work):
        if not any(level.is_conv for level in group):
            shares.append(None)
        else:
            shares.append(floor + int(spare * group_work / total_work))
    return shares


def check_network(network: Network, partition: Optional[Sequence[int]] = None,
                  tip: int = 1, strategy: str = "reuse",
                  device: FpgaDevice = VIRTEX7_690T,
                  dsp_budget: Optional[int] = None,
                  num_convs: Optional[int] = None,
                  pipeline_items: int = 64) -> CheckReport:
    """The ``repro check NETWORK`` entry point.

    Without ``partition``, the network's *dataflow* is verified on the
    layer-by-layer partition: level-chain consistency, pyramid
    re-derivation, calcparams stitching, pipeline hazards. With an
    explicit ``partition`` — a concrete design — the resource bounds
    (BRAM inventory with resident weights, ``design_partition`` DSP
    shares) are verified too; without one there is no design whose
    buffers could be sized. A capped discrete-event pipeline run feeds
    the hazard detector so schedule invariants are exercised on real
    schedules, not just closed forms.
    """
    report = CheckReport()
    sliced = (network.prefix(num_convs) if num_convs is not None
              else network.feature_extractor())
    levels = extract_levels(sliced)
    if not levels:
        report.extend(f"{sliced.name}: levels",
                      [diag("RC105", "network has no windowed levels",
                            site=sliced.name)])
        return report
    report.extend(f"{sliced.name}: {len(levels)} levels", check_levels(levels))

    explicit = partition is not None
    sizes = (tuple(int(s) for s in partition) if explicit
             else (1,) * len(independent_units(levels)))
    label = "+".join(str(s) for s in sizes)
    mode = "design" if explicit else "dataflow"
    report.extend(
        f"{sliced.name}: partition {label} (tip {tip}, {strategy}, {mode})",
        check_partition(levels, sizes, tip=tip, strategy=strategy,
                        device=device, dsp_budget=dsp_budget,
                        check_resources=explicit, clip_tip=False))

    # Drive the hazard detector over a real discrete-event schedule for
    # the partition's fused groups (capped items keep this millisecond-
    # scale; the detector sees genuine stage_finish matrices).
    if not report.errors:
        from ..hw.pipeline import StageTiming, simulate_pipeline

        hazard: List[Diagnostic] = []
        for group in _split(levels, sizes):
            final = group[-1].out_shape
            try:
                geometry = build_pyramid(group, min(tip, final.height),
                                         min(tip, final.width))
            except ShapeError:
                continue
            rows, cols = geometry.num_positions
            items = min(rows * cols, pipeline_items)
            stages = [StageTiming(t.level.name,
                                  max(t.new_in_h * t.new_in_w, 1))
                      for t in geometry.tiles]
            hazard.extend(check_pipeline_schedule(
                simulate_pipeline(stages, items)))
        report.extend(f"{sliced.name}: pipeline hazard scan "
                      f"({len(sizes)} groups)", hazard)
    return report
