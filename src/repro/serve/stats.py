"""Rolling serving statistics: latency percentiles, throughput, SLOs.

A :class:`ServeStats` is the service's always-on telemetry (unlike
:mod:`repro.obs` profiling, which is opt-in): per-request queue wait,
execute time, and total latency summarized as p50/p95/p99, plus
completion/failure/rejection totals, a batch-size histogram, a
time-bucketed :class:`~repro.obs.timeline.Timeline` of request events,
and any attached :class:`~repro.obs.slo.SLOMonitor`\\ s.

Memory is **bounded**: latency percentiles come from fixed-size
:class:`~repro.obs.timeline.RollingQuantile` windows (recent behaviour,
exact lifetime counts) and the timeline's columnar store caps resident
rows, so a million-request soak holds kilobytes, not gigabytes, while
the p50/p95/p99 summary keeps its exact historical shape.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence

from ..obs.slo import SLOMonitor, SLOTarget, render_slos
from .sanitizer import make_lock
from ..obs.timeline import RollingQuantile, Timeline


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sequence (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


#: Default latency-window size: big enough that p99 over the window is
#: meaningful, small enough that a soak's stats stay O(1) in memory.
LATENCY_WINDOW = 4096

#: Default resident-row cap for the stats timeline's columnar store.
TIMELINE_MAX_ROWS = 1 << 16


class ServeStats:
    """Thread-safe accumulator for one service's request telemetry."""

    def __init__(self, latency_window: int = LATENCY_WINDOW,
                 timeline_bucket_s: float = 0.05):
        # guards every counter, quantile window, and the SLO list
        self._lock = make_lock("serve.stats.state")
        self.submitted = 0
        self.rejected = 0
        self.shed = 0        # watermark sheds (a subset of rejected)
        self.completed = 0
        self.failed = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.queue_wait_s = RollingQuantile(window=latency_window)
        self.execute_s = RollingQuantile(window=latency_window)
        self.latency_s = RollingQuantile(window=latency_window)
        self.batch_sizes: Counter = Counter()
        self.first_submit_s: Optional[float] = None
        self.last_done_s: Optional[float] = None
        self.timeline = Timeline(bucket_s=timeline_bucket_s,
                                 max_rows=TIMELINE_MAX_ROWS)
        self.slos: List[SLOMonitor] = []

    # -- SLO wiring ------------------------------------------------------------

    def add_slo(self, target: SLOTarget) -> SLOMonitor:
        """Attach a monitor fed per-request total latency (queue+execute)."""
        monitor = SLOMonitor(target, timeline=self.timeline)
        with self._lock:
            self.slos.append(monitor)
        return monitor

    # -- recording -------------------------------------------------------------

    def record_submit(self, n: int = 1) -> None:
        with self._lock:
            self.submitted += n
            if self.first_submit_s is None:
                self.first_submit_s = time.perf_counter()
        self.timeline.record("serve.submitted", n)

    def record_rejection(self, n: int = 1) -> None:
        with self._lock:
            self.rejected += n
        self.timeline.record("serve.rejected", n)

    def record_shed(self, n: int = 1) -> None:
        """Watermark sheds: counted as rejections, tallied separately."""
        with self._lock:
            self.rejected += n
            self.shed += n
        self.timeline.record("serve.shed", n)

    def record_scale(self, event: Any) -> None:
        """One applied :class:`~repro.serve.autoscale.ScaleEvent`."""
        with self._lock:
            if event.action == "up":
                self.scale_ups += 1
            else:
                self.scale_downs += 1
        self.timeline.record(f"serve.scale_{event.action}")

    def record_aborts(self, n: int) -> None:
        """Requests failed without executing (e.g. abort at shutdown)."""
        with self._lock:
            self.failed += n
        self.timeline.record("serve.aborted", n)
        for monitor in self.slos:
            for _ in range(n):
                monitor.observe(0.0, ok=False)

    def record_batch(self, size: int, queue_waits: Sequence[float],
                     exec_s: float, failed: int = 0) -> None:
        """One drained batch: ``exec_s`` is the whole-batch execute time,
        which is the execute latency every request in it experienced."""
        with self._lock:
            self.batch_sizes[size] += 1
            for wait in queue_waits:
                self.queue_wait_s.observe(wait)
                self.execute_s.observe(exec_s)
                self.latency_s.observe(wait + exec_s)
            self.completed += size - failed
            self.failed += failed
            self.last_done_s = time.perf_counter()
        self.timeline.record("serve.completed", size - failed)
        if failed:
            self.timeline.record("serve.failed", failed)
        # every request in the batch had 'failed' split unknown per item;
        # conservatively mark the batch's failures as SLO failures and
        # the rest by their latency.
        ok_flags = [True] * (size - failed) + [False] * failed
        for monitor in self.slos:
            for wait, ok in zip(queue_waits, ok_flags):
                monitor.observe(wait + exec_s, ok=ok)

    @property
    def pending(self) -> int:
        with self._lock:
            return (self.submitted - self.rejected - self.completed
                    - self.failed)

    # -- summaries -------------------------------------------------------------

    def elapsed_s(self) -> float:
        with self._lock:
            if self.first_submit_s is None:
                return 0.0
            end = self.last_done_s
        return (end if end is not None else time.perf_counter()) \
            - self.first_submit_s

    def requests_per_s(self) -> float:
        elapsed = self.elapsed_s()
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    @staticmethod
    def _quantiles_ms(window: RollingQuantile) -> Dict[str, float]:
        return {
            "p50": window.quantile(50) * 1e3,
            "p95": window.quantile(95) * 1e3,
            "p99": window.quantile(99) * 1e3,
            "p999": window.quantile(99.9) * 1e3,
        }

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            histogram = {str(size): count
                         for size, count in sorted(self.batch_sizes.items())}
            counts = {"submitted": self.submitted, "rejected": self.rejected,
                      "completed": self.completed, "failed": self.failed}
            shed, ups, downs = self.shed, self.scale_ups, self.scale_downs
            monitors = list(self.slos)
        out = {
            **counts,
            "shed": shed,
            "shed_rate": (shed / counts["submitted"]
                          if counts["submitted"] else 0.0),
            "scale_ups": ups,
            "scale_downs": downs,
            "pending": (counts["submitted"] - counts["rejected"]
                        - counts["completed"] - counts["failed"]),
            "requests_per_s": self.requests_per_s(),
            "elapsed_s": self.elapsed_s(),
            "queue_wait_ms": self._quantiles_ms(self.queue_wait_s),
            "execute_ms": self._quantiles_ms(self.execute_s),
            "latency_ms": self._quantiles_ms(self.latency_s),
            "latency_window": self.latency_s.window,
            "batch_size_histogram": histogram,
        }
        if monitors:
            out["slo"] = [monitor.summary() for monitor in monitors]
        return out

    def render(self) -> str:
        """Human-readable stats report for CLI output."""
        s = self.summary()
        lines = [
            "serving stats",
            f"  requests : {s['submitted']} submitted, {s['completed']} ok, "
            f"{s['failed']} failed, {s['rejected']} rejected "
            f"({s['shed']} shed), {s['pending']} pending",
            f"  rate     : {s['requests_per_s']:.1f} requests/s over "
            f"{s['elapsed_s'] * 1e3:.1f} ms",
            "  queue    : p50 {p50:.2f} ms  p95 {p95:.2f} ms  p99 {p99:.2f} ms"
            .format(**s["queue_wait_ms"]),
            "  execute  : p50 {p50:.2f} ms  p95 {p95:.2f} ms  p99 {p99:.2f} ms"
            .format(**s["execute_ms"]),
            "  latency  : p50 {p50:.2f} ms  p95 {p95:.2f} ms  p99 {p99:.2f} ms"
            "  p99.9 {p999:.2f} ms".format(**s["latency_ms"]),
        ]
        if s["scale_ups"] or s["scale_downs"]:
            lines.append(f"  scaling  : {s['scale_ups']} ups, "
                         f"{s['scale_downs']} downs")
        if s["batch_size_histogram"]:
            body = "  ".join(f"{size}x{count}" for size, count
                             in s["batch_size_histogram"].items())
            lines.append(f"  batches  : {body} (size x count)")
        with self._lock:
            monitors = list(self.slos)
        if monitors:
            lines.append(render_slos(monitors))
        return "\n".join(lines)
