"""Rolling serving statistics: latency percentiles, throughput, batches.

A :class:`ServeStats` is the service's always-on telemetry (unlike
:mod:`repro.obs`, which is opt-in profiling): per-request queue wait and
execute time, completion/failure/rejection totals, and a batch-size
histogram, summarized as p50/p95/p99 latencies and requests/s. Pure
standard library, thread-safe, cheap enough to record on every batch.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sequence (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class ServeStats:
    """Thread-safe accumulator for one service's request telemetry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.queue_wait_s: List[float] = []
        self.execute_s: List[float] = []
        self.batch_sizes: Counter = Counter()
        self.first_submit_s: Optional[float] = None
        self.last_done_s: Optional[float] = None

    # -- recording -------------------------------------------------------------

    def record_submit(self, n: int = 1) -> None:
        with self._lock:
            self.submitted += n
            if self.first_submit_s is None:
                self.first_submit_s = time.perf_counter()

    def record_rejection(self, n: int = 1) -> None:
        with self._lock:
            self.rejected += n

    def record_aborts(self, n: int) -> None:
        """Requests failed without executing (e.g. abort at shutdown)."""
        with self._lock:
            self.failed += n

    def record_batch(self, size: int, queue_waits: Sequence[float],
                     exec_s: float, failed: int = 0) -> None:
        """One drained batch: ``exec_s`` is the whole-batch execute time,
        which is the execute latency every request in it experienced."""
        with self._lock:
            self.batch_sizes[size] += 1
            self.queue_wait_s.extend(queue_waits)
            self.execute_s.extend([exec_s] * size)
            self.completed += size - failed
            self.failed += failed
            self.last_done_s = time.perf_counter()

    @property
    def pending(self) -> int:
        with self._lock:
            return (self.submitted - self.rejected - self.completed
                    - self.failed)

    # -- summaries -------------------------------------------------------------

    def elapsed_s(self) -> float:
        with self._lock:
            if self.first_submit_s is None:
                return 0.0
            end = self.last_done_s
        return (end if end is not None else time.perf_counter()) \
            - self.first_submit_s

    def requests_per_s(self) -> float:
        elapsed = self.elapsed_s()
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            waits = list(self.queue_wait_s)
            execs = list(self.execute_s)
            histogram = {str(size): count
                         for size, count in sorted(self.batch_sizes.items())}
            counts = {"submitted": self.submitted, "rejected": self.rejected,
                      "completed": self.completed, "failed": self.failed}
        return {
            **counts,
            "pending": (counts["submitted"] - counts["rejected"]
                        - counts["completed"] - counts["failed"]),
            "requests_per_s": self.requests_per_s(),
            "elapsed_s": self.elapsed_s(),
            "queue_wait_ms": {
                "p50": percentile(waits, 50) * 1e3,
                "p95": percentile(waits, 95) * 1e3,
                "p99": percentile(waits, 99) * 1e3,
            },
            "execute_ms": {
                "p50": percentile(execs, 50) * 1e3,
                "p95": percentile(execs, 95) * 1e3,
                "p99": percentile(execs, 99) * 1e3,
            },
            "batch_size_histogram": histogram,
        }

    def render(self) -> str:
        """Human-readable stats report for CLI output."""
        s = self.summary()
        lines = [
            "serving stats",
            f"  requests : {s['submitted']} submitted, {s['completed']} ok, "
            f"{s['failed']} failed, {s['rejected']} rejected, "
            f"{s['pending']} pending",
            f"  rate     : {s['requests_per_s']:.1f} requests/s over "
            f"{s['elapsed_s'] * 1e3:.1f} ms",
            "  queue    : p50 {p50:.2f} ms  p95 {p95:.2f} ms  p99 {p99:.2f} ms"
            .format(**s["queue_wait_ms"]),
            "  execute  : p50 {p50:.2f} ms  p95 {p95:.2f} ms  p99 {p99:.2f} ms"
            .format(**s["execute_ms"]),
        ]
        if s["batch_size_histogram"]:
            body = "  ".join(f"{size}x{count}" for size, count
                             in s["batch_size_histogram"].items())
            lines.append(f"  batches  : {body} (size x count)")
        return "\n".join(lines)
