"""Autoscaling policy for the worker pool: a deterministic state machine.

The :class:`Autoscaler` decides *when* to add or retire workers; the
:class:`~repro.serve.worker.WorkerPool` (live threads) and the soak
harness's virtual-time event loop (simulated capacity) both apply its
decisions. Separating decision from actuation keeps the policy a pure
function of the observation sequence ``(queue_depth, now)`` — drive it
with a :class:`~repro.serve.clock.ManualClock` and the same inputs and
it emits byte-identical :class:`ScaleEvent` sequences, which is what
the replay tests and the soak's determinism gate pin.

The policy is the classic hysteresis + cooldown shape:

* **scale up** when backlog pressure (depth at/above
  ``backlog_per_worker`` × current workers) has been sustained for
  ``sustain_s`` — a burst shorter than that is absorbed by shedding
  and deadline batching instead of flapping the pool;
* **scale down** when the queue has been empty for ``idle_s``;
* both respect ``cooldown_s`` between consecutive actions and the
  ``[min_workers, max_workers]`` bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs of the hysteresis + cooldown scaling loop."""

    min_workers: int = 1
    max_workers: int = 8
    backlog_per_worker: float = 4.0  #: queued requests per worker = pressure
    sustain_s: float = 0.25          #: pressure must persist this long
    idle_s: float = 1.0              #: empty queue this long scales down
    cooldown_s: float = 0.5          #: min gap between scaling actions
    step: int = 1                    #: workers added/removed per action

    def __post_init__(self) -> None:
        if self.min_workers < 0:
            raise ConfigError("min_workers must be >= 0",
                              min_workers=self.min_workers)
        if self.max_workers < max(1, self.min_workers):
            raise ConfigError("max_workers must be >= max(1, min_workers)",
                              min_workers=self.min_workers,
                              max_workers=self.max_workers)
        if self.backlog_per_worker <= 0:
            raise ConfigError("backlog_per_worker must be positive",
                              backlog_per_worker=self.backlog_per_worker)
        if self.sustain_s < 0 or self.idle_s < 0 or self.cooldown_s < 0:
            raise ConfigError("autoscale durations must be >= 0",
                              sustain_s=self.sustain_s, idle_s=self.idle_s,
                              cooldown_s=self.cooldown_s)
        if self.step < 1:
            raise ConfigError("step must be >= 1", step=self.step)


@dataclass(frozen=True)
class ScaleEvent:
    """One applied scaling decision."""

    t: float
    action: str          #: "up" or "down"
    workers_from: int
    workers_to: int
    depth: int           #: queue depth at decision time
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {"t": self.t, "action": self.action,
                "workers_from": self.workers_from,
                "workers_to": self.workers_to,
                "depth": self.depth, "reason": self.reason}


class Autoscaler:
    """Folds ``(depth, now)`` observations into scaling decisions."""

    def __init__(self, policy: Optional[AutoscalePolicy] = None,
                 workers: Optional[int] = None):
        self.policy = policy if policy is not None else AutoscalePolicy()
        start = self.policy.min_workers if workers is None else workers
        self.workers = min(max(start, self.policy.min_workers),
                           self.policy.max_workers)
        self.events: List[ScaleEvent] = []
        self._pressure_since: Optional[float] = None
        self._idle_since: Optional[float] = None
        self._last_action_t = -math.inf

    def observe(self, depth: int, now: float) -> Optional[ScaleEvent]:
        """Fold one observation; returns the event when one fires."""
        policy = self.policy
        pressured = depth >= policy.backlog_per_worker * max(1, self.workers)
        idle = depth == 0
        if pressured:
            self._idle_since = None
            if self._pressure_since is None:
                self._pressure_since = now
        elif idle:
            self._pressure_since = None
            if self._idle_since is None:
                self._idle_since = now
        else:
            # mid-band: neither trend continues (hysteresis)
            self._pressure_since = None
            self._idle_since = None
        if now - self._last_action_t < policy.cooldown_s:
            return None
        if (pressured and self.workers < policy.max_workers
                and self._pressure_since is not None
                and now - self._pressure_since >= policy.sustain_s):
            return self._fire(now, "up",
                              min(self.workers + policy.step,
                                  policy.max_workers),
                              depth, "sustained_backlog")
        if (idle and self.workers > policy.min_workers
                and self._idle_since is not None
                and now - self._idle_since >= policy.idle_s):
            return self._fire(now, "down",
                              max(self.workers - policy.step,
                                  policy.min_workers),
                              depth, "idle")
        return None

    def _fire(self, now: float, action: str, target: int, depth: int,
              reason: str) -> ScaleEvent:
        event = ScaleEvent(t=now, action=action, workers_from=self.workers,
                           workers_to=target, depth=depth, reason=reason)
        self.workers = target
        self.events.append(event)
        self._last_action_t = now
        self._pressure_since = None
        self._idle_since = None
        return event

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.action == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e.action == "down")
