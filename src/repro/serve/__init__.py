"""``repro.serve``: batched inference serving over compiled fusion plans.

The paper's tool splits into an offline search and an online fused
evaluation; this subsystem productizes that split. Compilation
(:func:`compile_plan`) runs the exploration sweep once and freezes the
winning fusion partition into a :class:`CompiledPlan`; a
:class:`PlanCache` memoizes and persists those plans; an
:class:`InferenceService` then serves requests through a micro-batching
:class:`BatchScheduler` and a :class:`WorkerPool`, with admission
control, fault-tolerant retries, and rolling :class:`ServeStats` —
plus opt-in per-request tracing (``trace=True``) and latency SLO
monitoring (``slo=...``) built on :mod:`repro.obs`.

Overload resilience rides on the same pieces: watermark
:class:`AdmissionPolicy` sheds :data:`SHEDDABLE` traffic early
(:class:`~repro.errors.ServeShedError` carries a ``retry_after_s``
hint) while :data:`GUARANTEED` traffic is admitted to the hard cap;
deadline-aware batching flushes on per-request latency budgets; an
:class:`AutoscalePolicy` grows and shrinks the pool under a seeded
:class:`Clock`; :func:`run_soak` drives it all through a deterministic
virtual-time soak under open-loop :mod:`~repro.serve.loadgen` traces.

Quick start::

    from repro.nn.zoo import toynet
    from repro.serve import InferenceService

    with InferenceService(toynet(), workers=4, max_batch=8) as svc:
        out = svc.infer(x)
"""

from ..errors import ServeOverloadError, ServeShedError
from .plan import (
    CompiledPlan,
    PlanCache,
    PlanKey,
    compile_plan,
    make_plan_key,
)
from .sanitizer import (
    LockSanitizer,
    SanitizedCondition,
    SanitizedLock,
    Violation,
    get_sanitizer,
    make_condition,
    make_lock,
    sanitize_enabled,
)
from ..obs.slo import SLOMonitor, SLOTarget
from ..obs.tracing import Tracer, TraceSpan
from .autoscale import Autoscaler, AutoscalePolicy, ScaleEvent
from .clock import Clock, ManualClock, SystemClock
from .loadgen import (
    TRACE_KINDS,
    Arrival,
    burst_trace,
    diurnal_trace,
    make_trace,
    poisson_trace,
)
from .scheduler import (
    GUARANTEED,
    REQUEST_CLASSES,
    SHEDDABLE,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    BatchScheduler,
    ServeRequest,
)
from .service import InferenceService
from .soak import SoakReport, run_soak
from .stats import LATENCY_WINDOW, ServeStats, percentile
from .worker import STALL_S_PER_CYCLE, WorkerPool

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "Arrival",
    "Autoscaler",
    "AutoscalePolicy",
    "BatchScheduler",
    "Clock",
    "CompiledPlan",
    "GUARANTEED",
    "InferenceService",
    "LATENCY_WINDOW",
    "LockSanitizer",
    "ManualClock",
    "PlanCache",
    "PlanKey",
    "REQUEST_CLASSES",
    "STALL_S_PER_CYCLE",
    "SHEDDABLE",
    "SLOMonitor",
    "SLOTarget",
    "SanitizedCondition",
    "SanitizedLock",
    "ScaleEvent",
    "ServeOverloadError",
    "ServeRequest",
    "ServeShedError",
    "ServeStats",
    "SoakReport",
    "SystemClock",
    "TRACE_KINDS",
    "TraceSpan",
    "Tracer",
    "Violation",
    "WorkerPool",
    "burst_trace",
    "compile_plan",
    "diurnal_trace",
    "get_sanitizer",
    "make_condition",
    "make_lock",
    "make_plan_key",
    "make_trace",
    "percentile",
    "poisson_trace",
    "run_soak",
    "sanitize_enabled",
]
