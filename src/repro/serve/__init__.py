"""``repro.serve``: batched inference serving over compiled fusion plans.

The paper's tool splits into an offline search and an online fused
evaluation; this subsystem productizes that split. Compilation
(:func:`compile_plan`) runs the exploration sweep once and freezes the
winning fusion partition into a :class:`CompiledPlan`; a
:class:`PlanCache` memoizes and persists those plans; an
:class:`InferenceService` then serves requests through a micro-batching
:class:`BatchScheduler` and a :class:`WorkerPool`, with admission
control, fault-tolerant retries, and rolling :class:`ServeStats` —
plus opt-in per-request tracing (``trace=True``) and latency SLO
monitoring (``slo=...``) built on :mod:`repro.obs`.

Quick start::

    from repro.nn.zoo import toynet
    from repro.serve import InferenceService

    with InferenceService(toynet(), workers=4, max_batch=8) as svc:
        out = svc.infer(x)
"""

from ..errors import ServeOverloadError
from .plan import (
    CompiledPlan,
    PlanCache,
    PlanKey,
    compile_plan,
    make_plan_key,
)
from ..obs.slo import SLOMonitor, SLOTarget
from ..obs.tracing import Tracer, TraceSpan
from .scheduler import BatchScheduler, ServeRequest
from .service import InferenceService
from .stats import LATENCY_WINDOW, ServeStats, percentile
from .worker import STALL_S_PER_CYCLE, WorkerPool

__all__ = [
    "BatchScheduler",
    "CompiledPlan",
    "InferenceService",
    "LATENCY_WINDOW",
    "PlanCache",
    "PlanKey",
    "STALL_S_PER_CYCLE",
    "SLOMonitor",
    "SLOTarget",
    "ServeOverloadError",
    "ServeRequest",
    "ServeStats",
    "TraceSpan",
    "Tracer",
    "WorkerPool",
    "compile_plan",
    "make_plan_key",
    "percentile",
]
