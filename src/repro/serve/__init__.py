"""``repro.serve``: batched inference serving over compiled fusion plans.

The paper's tool splits into an offline search and an online fused
evaluation; this subsystem productizes that split. Compilation
(:func:`compile_plan`) runs the exploration sweep once and freezes the
winning fusion partition into a :class:`CompiledPlan`; a
:class:`PlanCache` memoizes and persists those plans; an
:class:`InferenceService` then serves requests through a micro-batching
:class:`BatchScheduler` and a :class:`WorkerPool`, with admission
control, fault-tolerant retries, and rolling :class:`ServeStats`.

Quick start::

    from repro.nn.zoo import toynet
    from repro.serve import InferenceService

    with InferenceService(toynet(), workers=4, max_batch=8) as svc:
        out = svc.infer(x)
"""

from ..errors import ServeOverloadError
from .plan import (
    CompiledPlan,
    PlanCache,
    PlanKey,
    compile_plan,
    make_plan_key,
)
from .scheduler import BatchScheduler, ServeRequest
from .service import InferenceService
from .stats import ServeStats, percentile
from .worker import WorkerPool

__all__ = [
    "BatchScheduler",
    "CompiledPlan",
    "InferenceService",
    "PlanCache",
    "PlanKey",
    "ServeOverloadError",
    "ServeRequest",
    "ServeStats",
    "WorkerPool",
    "compile_plan",
    "make_plan_key",
    "percentile",
]
