"""Runtime lock sanitizer: dynamic lock-order and hold-time checking.

The static analyzer (:mod:`repro.check.concurrency`) proves lock
discipline the AST can see; this module catches what only execution
can — the actual inter-thread interleavings of the serving stack.
:class:`SanitizedLock` and :class:`SanitizedCondition` are drop-in
wrappers around :class:`threading.Lock` / :class:`threading.Condition`
that record, per thread, the order locks are acquired in, assert the
global acquisition-order graph stays a DAG, measure per-lock wait and
hold times, and mirror every violation into :mod:`repro.obs` events.

Switched on via the environment::

    REPRO_SANITIZE=1 python -m pytest tests/serve tests/check -q

With the flag off (the default), :func:`make_lock` /
:func:`make_condition` return the plain :mod:`threading` primitives —
zero overhead — so the serve modules create every lock through these
factories unconditionally and the existing serve/soak test suites
double as a dynamic race harness whenever the flag is set.

Violation kinds:

* ``lock_order`` — a thread acquired B while holding A after some
  thread had acquired A while holding B: the order graph has a cycle,
  i.e. a latent deadlock.
* ``blocking_under_lock`` — ``Condition.wait`` entered while the
  thread still held *another* sanitized lock (the classic way a
  blocking call under a lock becomes a convoy or a deadlock).
* ``long_hold`` — a lock was held longer than the warning threshold
  (``REPRO_SANITIZE_MAX_HOLD_S``, default 0.5 s); time parked in
  ``Condition.wait`` does not count — the wait releases the lock.

Metrics (``metrics_dict()``; ``lock_wait_s`` and ``max_hold_s`` carry
bench-diff lower-is-better direction) aggregate per lock name:
acquisitions, total time spent waiting to acquire, total and maximum
hold time.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .. import obs

#: Default long-hold warning threshold in seconds (override with the
#: REPRO_SANITIZE_MAX_HOLD_S environment variable).
DEFAULT_MAX_HOLD_S = 0.5


def sanitize_enabled() -> bool:
    """Is the runtime sanitizer switched on (``REPRO_SANITIZE=1``)?"""
    return os.environ.get("REPRO_SANITIZE", "") == "1"


@dataclass(frozen=True)
class Violation:
    """One rule the runtime sanitizer saw broken."""

    kind: str            #: lock_order | blocking_under_lock | long_hold
    lock: str            #: the lock being acquired/held
    thread: str
    detail: str
    held: Tuple[str, ...] = ()

    def render(self) -> str:
        held = f" (holding {', '.join(self.held)})" if self.held else ""
        return f"[{self.kind}] {self.lock} in {self.thread}{held}: " \
               f"{self.detail}"


@dataclass
class _LockMetrics:
    acquisitions: int = 0
    lock_wait_s: float = 0.0
    hold_s: float = 0.0
    max_hold_s: float = 0.0
    contended: int = 0


class LockSanitizer:
    """Process-wide registry of sanitized-lock activity.

    One global instance backs every :class:`SanitizedLock`; tests may
    construct private instances to assert violations in isolation.
    """

    def __init__(self, max_hold_s: Optional[float] = None):
        if max_hold_s is None:
            max_hold_s = float(os.environ.get("REPRO_SANITIZE_MAX_HOLD_S",
                                              DEFAULT_MAX_HOLD_S))
        self.max_hold_s = max_hold_s
        self._state = threading.Lock()   # guards order/violations/merges
        self._tls = threading.local()    # per-thread stack + metrics
        #: every thread's private metrics dict, for merging on demand
        self._thread_metrics: List[Dict[str, _LockMetrics]] = []
        #: acquisition-order edges: first -> set of locks taken under it
        self.order: Dict[str, set] = {}
        self.violations: List[Violation] = []

    # -- per-thread state ------------------------------------------------------

    def _local(self) -> Tuple[List[str], Dict[str, _LockMetrics]]:
        """This thread's (held-lock stack, metrics) pair.

        Metrics are sharded per thread so the acquire/release fast path
        never touches the sanitizer's own lock — only nested acquires
        (order-graph edges) and violations pay for ``_state``. A
        process-wide metrics dict would otherwise serialize every
        sanitized lock through one extra lock and dominate the very
        hold times it measures.
        """
        local = getattr(self._tls, "local", None)
        if local is None:
            local = self._tls.local = ([], {})
            with self._state:
                self._thread_metrics.append(local[1])
        return local

    def held(self) -> List[str]:
        """Names of the locks the calling thread holds, oldest first."""
        return self._local()[0]

    # -- bookkeeping (called by the wrappers) ----------------------------------

    def note_acquired(self, name: str, wait_s: float) -> None:
        held, thread_metrics = self._local()
        metrics = thread_metrics.get(name)
        if metrics is None:
            metrics = thread_metrics.setdefault(name, _LockMetrics())
        metrics.acquisitions += 1
        metrics.lock_wait_s += wait_s
        if wait_s > 1e-6:
            metrics.contended += 1
        if held:  # nested acquire: update the global order graph
            with self._state:
                for prior in held:
                    if prior == name:
                        continue
                    self.order.setdefault(prior, set()).add(name)
                    if prior in self.order.get(name, ()):  # reverse edge
                        self._record_locked(Violation(
                            kind="lock_order", lock=name,
                            thread=threading.current_thread().name,
                            detail=f"acquired after {prior}, but {name} -> "
                                   f"{prior} was already observed: the "
                                   "lock order graph has a cycle",
                            held=tuple(held)))
        held.append(name)

    def note_released(self, name: str, hold_s: float) -> None:
        held, thread_metrics = self._local()
        if name in held:
            # remove the newest occurrence (RLock-style reentry safe)
            for i in range(len(held) - 1, -1, -1):
                if held[i] == name:
                    del held[i]
                    break
        metrics = thread_metrics.get(name)
        if metrics is None:
            metrics = thread_metrics.setdefault(name, _LockMetrics())
        metrics.hold_s += hold_s
        if hold_s > metrics.max_hold_s:
            metrics.max_hold_s = hold_s
        if hold_s > self.max_hold_s:
            with self._state:
                self._record_locked(Violation(
                    kind="long_hold", lock=name,
                    thread=threading.current_thread().name,
                    detail=f"held {hold_s * 1e3:.1f} ms, over the "
                           f"{self.max_hold_s * 1e3:.0f} ms threshold"))

    def note_wait(self, name: str) -> None:
        """A ``Condition.wait`` is entered on ``name``; any *other* lock
        still held by this thread blocks under it."""
        others = [held for held in self.held() if held != name]
        if others:
            with self._state:
                self._record_locked(Violation(
                    kind="blocking_under_lock", lock=name,
                    thread=threading.current_thread().name,
                    detail="Condition.wait entered while still holding "
                           + ", ".join(others),
                    held=tuple(others)))

    def _record_locked(self, violation: Violation) -> None:
        self.violations.append(violation)
        obs.add_counter("serve.sanitizer.violations")
        obs.emit_event(f"serve.sanitizer.{violation.kind}",
                       attrs={"lock": violation.lock,
                              "thread": violation.thread})

    # -- reporting -------------------------------------------------------------

    @property
    def metrics(self) -> Dict[str, _LockMetrics]:
        """Per-lock metrics merged across every thread's shard."""
        with self._state:
            merged: Dict[str, _LockMetrics] = {}
            for shard in self._thread_metrics:
                for name, m in shard.items():
                    agg = merged.get(name)
                    if agg is None:
                        agg = merged.setdefault(name, _LockMetrics())
                    agg.acquisitions += m.acquisitions
                    agg.lock_wait_s += m.lock_wait_s
                    agg.hold_s += m.hold_s
                    agg.max_hold_s = max(agg.max_hold_s, m.max_hold_s)
                    agg.contended += m.contended
            return merged

    def metrics_dict(self) -> Dict[str, Any]:
        """Machine-readable metrics (bench-diff friendly names)."""
        merged = self.metrics
        locks = {
            name: {"acquisitions": m.acquisitions,
                   "contended": m.contended,
                   "lock_wait_s": m.lock_wait_s,
                   "hold_s": m.hold_s,
                   "max_hold_s": m.max_hold_s}
            for name, m in sorted(merged.items())}
        return {"locks": locks,
                "violations": len(self.violations),
                "lock_wait_s": sum(m.lock_wait_s
                                   for m in merged.values()),
                "max_hold_s": max(
                    (m.max_hold_s for m in merged.values()),
                    default=0.0)}

    def render(self) -> str:
        data = self.metrics_dict()
        lines = [f"lock sanitizer: {data['violations']} violations, "
                 f"{data['lock_wait_s'] * 1e3:.2f} ms total lock wait, "
                 f"{data['max_hold_s'] * 1e3:.2f} ms max hold"]
        for name, m in data["locks"].items():
            lines.append(
                f"  {name}: {m['acquisitions']} acquisitions "
                f"({m['contended']} contended), wait "
                f"{m['lock_wait_s'] * 1e3:.2f} ms, max hold "
                f"{m['max_hold_s'] * 1e3:.2f} ms")
        for violation in self.violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)

    def reset(self) -> None:
        with self._state:
            self.order.clear()
            self.violations.clear()
            for shard in self._thread_metrics:
                shard.clear()


#: The process-global sanitizer every factory-made lock reports to.
_GLOBAL = LockSanitizer()


def get_sanitizer() -> LockSanitizer:
    return _GLOBAL


class SanitizedLock:
    """Drop-in ``threading.Lock`` reporting to a :class:`LockSanitizer`."""

    def __init__(self, name: str,
                 sanitizer: Optional[LockSanitizer] = None):
        self.name = name
        self._sanitizer = sanitizer if sanitizer is not None else _GLOBAL
        self._inner = threading.Lock()
        self._acquired_at = 0.0  # written only by the owning thread

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        t0 = time.perf_counter()
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            now = time.perf_counter()
            self._sanitizer.note_acquired(self.name, now - t0)
            self._acquired_at = now
        return ok

    def release(self) -> None:
        hold_s = time.perf_counter() - self._acquired_at
        self._sanitizer.note_released(self.name, hold_s)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class SanitizedCondition:
    """Drop-in ``threading.Condition`` reporting to a sanitizer.

    ``wait`` is accounted as release + re-acquire — the underlying
    condition releases its lock while parked, so idle waits must not
    count as hold time (or every idle worker would trip ``long_hold``).
    """

    def __init__(self, name: str,
                 sanitizer: Optional[LockSanitizer] = None):
        self.name = name
        self._sanitizer = sanitizer if sanitizer is not None else _GLOBAL
        self._inner = threading.Condition()
        self._acquired_at = 0.0  # written only by the owning thread

    # -- lock protocol ---------------------------------------------------------

    def acquire(self, *args: Any) -> bool:
        t0 = time.perf_counter()
        ok = self._inner.acquire(*args)
        if ok:
            now = time.perf_counter()
            self._sanitizer.note_acquired(self.name, now - t0)
            self._acquired_at = now
        return ok

    def release(self) -> None:
        hold_s = time.perf_counter() - self._acquired_at
        self._sanitizer.note_released(self.name, hold_s)
        self._inner.release()

    def __enter__(self) -> "SanitizedCondition":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    # -- condition protocol ----------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._sanitizer.note_wait(self.name)
        hold_s = time.perf_counter() - self._acquired_at
        self._sanitizer.note_released(self.name, hold_s)
        try:
            # the inner condition re-checks ownership; wait releases the
            # lock while parked and re-acquires before returning # noqa: RL504
            return self._inner.wait(timeout)  # noqa: RL502 RL504
        finally:
            self._sanitizer.note_acquired(self.name, 0.0)
            self._acquired_at = time.perf_counter()

    def notify(self, n: int = 1) -> None:
        # the caller holds this condition through the wrapper # noqa
        self._inner.notify(n)  # noqa: RL504

    def notify_all(self) -> None:
        self._inner.notify_all()  # noqa: RL504


def make_lock(name: str) -> Any:
    """A lock for the serving stack: plain ``threading.Lock`` normally,
    a :class:`SanitizedLock` under ``REPRO_SANITIZE=1``."""
    if sanitize_enabled():
        return SanitizedLock(name)
    return threading.Lock()


def make_condition(name: str) -> Any:
    """A condition variable, sanitized under ``REPRO_SANITIZE=1``."""
    if sanitize_enabled():
        return SanitizedCondition(name)
    return threading.Condition()
