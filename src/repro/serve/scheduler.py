"""Micro-batching request scheduler with admission control.

A thread-safe queue of :class:`ServeRequest` objects, sharded per plan
key so one queue per compiled plan drains into the worker pool. Batches
flush when a shard reaches ``max_batch`` or its oldest request's
*flush deadline* passes — with deadline-aware batching, that deadline
is derived from the request's latency budget (flush when the slack
left after the estimated execute time runs out) instead of the fixed
``max_wait_ms`` of classic micro-batching.

Admission control is watermark-based, not all-or-nothing:

* every request carries a class — :data:`GUARANTEED` traffic is
  admitted until the queue is hard-full, :data:`SHEDDABLE` traffic is
  *shed* earlier, once depth crosses the policy's watermark or the
  estimated wait exceeds its bound, raising
  :class:`~repro.errors.ServeShedError` with a ``retry_after_s`` hint
  (the scheduler's drain estimate);
* a hard-full queue still fast-fails everyone with
  :class:`~repro.errors.ServeOverloadError`, exactly as before.

A batch requeued after a worker crash goes back at the *front* of its
shard **and** its shard moves to the front of the flush rotation; an
age-based promotion guard additionally lets any shard whose head has
waited far past its own flush deadline preempt shards that keep
filling to ``max_batch``, so a requeued (or just unlucky) batch can
never starve behind a stream of newer arrivals. Rejections, sheds, and
batch flushes are mirrored into ``serve.*`` obs counters.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..errors import (ConfigError, ServeOverloadError, ServeShedError,
                      SimFaultError)
from .clock import SYSTEM_CLOCK, Clock
from .sanitizer import make_condition

#: Request classes: guaranteed traffic is only rejected when the queue
#: is hard-full; sheddable traffic is shed at the admission watermarks.
GUARANTEED = "guaranteed"
SHEDDABLE = "sheddable"
REQUEST_CLASSES = (GUARANTEED, SHEDDABLE)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Watermarks deciding who gets into the queue under load.

    ``max_queue`` is the hard depth cap (everyone rejected at/above
    it). ``shed_depth_fraction`` places the sheddable-class watermark:
    sheddable requests are shed once depth reaches that fraction of
    ``max_queue`` (1.0 = only shed when hard-full, the legacy
    behavior). ``shed_wait_ms`` sheds sheddable requests whenever the
    *estimated* queueing delay — depth times the EWMA of observed
    per-request service time — exceeds the bound, which catches
    overload even when the queue is deep but not full.
    """

    max_queue: int = 1024
    shed_depth_fraction: float = 1.0
    shed_wait_ms: float = math.inf
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ConfigError("max_queue must be >= 1",
                              max_queue=self.max_queue)
        if not 0.0 < self.shed_depth_fraction <= 1.0:
            raise ConfigError("shed_depth_fraction must be in (0, 1]",
                              shed_depth_fraction=self.shed_depth_fraction)
        if self.shed_wait_ms < 0:
            raise ConfigError("shed_wait_ms must be >= 0",
                              shed_wait_ms=self.shed_wait_ms)
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]",
                              ewma_alpha=self.ewma_alpha)

    @property
    def shed_depth(self) -> int:
        """The absolute queue depth at which sheddable traffic sheds."""
        return max(1, int(math.ceil(self.shed_depth_fraction
                                    * self.max_queue)))


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    admitted: bool
    shed: bool = False           #: watermark shed (vs hard-full reject)
    retry_after_s: float = 0.0   #: estimated drain time, the Retry-After hint
    reason: str = ""


class AdmissionController:
    """Applies an :class:`AdmissionPolicy`, tracking the service rate.

    Workers feed observed batch times back via :meth:`note_service`;
    the controller keeps an EWMA of seconds-per-request and uses it for
    the estimated-wait watermark and for ``retry_after_s`` hints. All
    state transitions are pure functions of the observation sequence,
    so identically-driven controllers replay identically.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._per_item_s = 0.0  # 0.0 = no service-time observation yet

    def note_service(self, items: int, seconds: float) -> None:
        """Fold one served batch (``items`` requests over ``seconds``)
        into the per-request service-time EWMA."""
        if items <= 0 or seconds < 0:
            return
        per = seconds / items
        if self._per_item_s == 0.0:
            self._per_item_s = per
        else:
            alpha = self.policy.ewma_alpha
            self._per_item_s = alpha * per + (1 - alpha) * self._per_item_s

    @property
    def per_item_s(self) -> float:
        return self._per_item_s

    def estimated_wait_s(self, depth: int) -> float:
        """Expected queueing delay for a request arriving at ``depth``."""
        return depth * self._per_item_s

    def decide(self, klass: str, depth: int) -> AdmissionDecision:
        if klass not in REQUEST_CLASSES:
            raise ConfigError(
                f"request class must be one of {REQUEST_CLASSES}",
                klass=klass)
        wait_s = self.estimated_wait_s(depth)
        if depth >= self.policy.max_queue:
            return AdmissionDecision(admitted=False, shed=False,
                                     retry_after_s=wait_s, reason="full")
        if klass == SHEDDABLE:
            if depth >= self.policy.shed_depth:
                return AdmissionDecision(admitted=False, shed=True,
                                         retry_after_s=wait_s,
                                         reason="depth_watermark")
            if wait_s * 1e3 > self.policy.shed_wait_ms:
                return AdmissionDecision(admitted=False, shed=True,
                                         retry_after_s=wait_s,
                                         reason="wait_watermark")
        return AdmissionDecision(admitted=True)


@dataclass
class ServeRequest:
    """One inference request travelling through the serving pipeline.

    ``klass`` selects the admission class (:data:`SHEDDABLE` by
    default); ``deadline_ms`` is the caller's latency budget (None =
    use the scheduler default). At enqueue time the scheduler resolves
    it into ``deadline_s`` (absolute completion deadline, inf = none)
    and ``flush_at_s`` (the batching deadline — the instant the
    request stops waiting for batch-mates).

    When the service traces requests, ``tracer``/``trace_id`` carry the
    trace context end to end: the root span brackets submit → future
    done, ``enqueue_span`` each stint in the queue (requeues open a new
    one), and ``batch_span`` the batch currently executing it.
    """

    id: int
    key: Any  # PlanKey of the compiled plan that will execute it
    x: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued_s: float = 0.0
    klass: str = SHEDDABLE
    deadline_ms: Optional[float] = None
    deadline_s: float = math.inf
    flush_at_s: float = 0.0
    tracer: Any = None  # Optional[repro.obs.tracing.Tracer]
    trace_id: int = -1
    root_span: int = -1
    enqueue_span: int = -1
    batch_span: int = -1
    requeues: int = 0


class BatchScheduler:
    """Thread-safe sharded queue: micro-batching, watermark admission,
    deadline-aware flushing."""

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0,
                 max_queue: int = 1024,
                 admission: Optional[AdmissionPolicy] = None,
                 default_deadline_ms: Optional[float] = None,
                 deadline_margin: float = 0.5,
                 promotion_factor: float = 2.0,
                 clock: Optional[Clock] = None):
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1", max_batch=max_batch)
        if max_wait_ms < 0:
            raise ConfigError("max_wait_ms must be >= 0",
                              max_wait_ms=max_wait_ms)
        if max_queue < 1:
            raise ConfigError("max_queue must be >= 1", max_queue=max_queue)
        if default_deadline_ms is not None and default_deadline_ms < 0:
            raise ConfigError("default_deadline_ms must be >= 0",
                              default_deadline_ms=default_deadline_ms)
        if not 0.0 <= deadline_margin < 1.0:
            raise ConfigError("deadline_margin must be in [0, 1)",
                              deadline_margin=deadline_margin)
        if promotion_factor < 1.0:
            raise ConfigError("promotion_factor must be >= 1",
                              promotion_factor=promotion_factor)
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.admission = AdmissionController(
            admission if admission is not None
            else AdmissionPolicy(max_queue=max_queue))
        self.max_queue = self.admission.policy.max_queue
        self.default_deadline_ms = default_deadline_ms
        self.deadline_margin = deadline_margin
        self.promotion_factor = promotion_factor
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.depth = 0
        self.shed = 0
        self.deadline_flushes = 0
        self._shards: "OrderedDict[Any, Deque[ServeRequest]]" = OrderedDict()
        self._closed = False
        # One condition guards every mutable field of the scheduler
        # (depth, shed, deadline_flushes, _shards, _closed, and the
        # admission controller's EWMA). Wakeup discipline:
        #
        # * submit() uses notify(): one new request makes at most one
        #   batch flushable, so waking one worker suffices. Safe
        #   against lost wakeups because any worker that wakes with the
        #   queue non-empty computes a *bounded* wait from the earliest
        #   flush deadline (_wait_s_locked) — an unbounded wait only
        #   ever happens on an empty queue.
        # * requeue() uses notify_all(): a crashed batch can make
        #   several shards flushable at once (the requeued shard plus
        #   any promotion reshuffle), so every worker must re-check.
        # * close() uses notify_all(): shutdown must wake every parked
        #   worker so each can observe _closed and exit.
        self._cond = make_condition("serve.scheduler.cond")

    @property
    def closed(self) -> bool:
        return self._closed

    # -- producer side ---------------------------------------------------------

    def note_service(self, items: int, seconds: float) -> None:
        """Worker feedback: one batch of ``items`` served in ``seconds``
        (drives the estimated-wait watermark and retry-after hints)."""
        with self._cond:
            self.admission.note_service(items, seconds)

    def estimated_wait_s(self) -> float:
        """Expected queueing delay for a request arriving right now."""
        with self._cond:
            return self.admission.estimated_wait_s(self.depth)

    def submit(self, request: ServeRequest) -> None:
        """Enqueue one request, shed it, or fast-fail when hard-full."""
        with self._cond:
            if self._closed:
                raise SimFaultError("scheduler is shut down",
                                    request=request.id)
            decision = self.admission.decide(request.klass, self.depth)
            if not decision.admitted:
                obs.add_counter("serve.rejected")
                if decision.shed:
                    self.shed += 1
                    obs.add_counter("serve.shed")
                    raise ServeShedError(
                        "request shed by admission control",
                        depth=self.depth, watermark=decision.reason,
                        retry_after_s=round(decision.retry_after_s, 6),
                        request=request.id, klass=request.klass)
                raise ServeOverloadError(
                    "serving queue full", depth=self.depth,
                    max_queue=self.max_queue, request=request.id,
                    retry_after_s=round(decision.retry_after_s, 6))
            request.enqueued_s = self.clock.now()
            request.flush_at_s = self._flush_at(request)
            self._shards.setdefault(request.key, deque()).append(request)
            self.depth += 1
            obs.add_counter("serve.enqueued")
            self._cond.notify()

    def _flush_at(self, request: ServeRequest) -> float:
        """The instant this request stops waiting for batch-mates.

        With a deadline (its own, or the scheduler default — typically
        the SLO latency target), the flush point is the deadline minus
        an execute-time reservation: the larger of the measured
        batch-execute estimate and ``deadline_margin`` of the budget
        (so a cold scheduler with no measurements still leaves room to
        execute). Without any deadline, the classic fixed ``max_wait``
        applies.
        """
        budget_ms = (request.deadline_ms if request.deadline_ms is not None
                     else self.default_deadline_ms)
        if budget_ms is None:
            return request.enqueued_s + self.max_wait_s
        if budget_ms < 0:
            raise ConfigError("deadline_ms must be >= 0",
                              deadline_ms=budget_ms, request=request.id)
        budget_s = budget_ms / 1000.0
        request.deadline_s = request.enqueued_s + budget_s
        exec_estimate_s = self.admission.per_item_s * self.max_batch
        headroom_s = max(budget_s * self.deadline_margin, exec_estimate_s)
        return request.enqueued_s + max(0.0, budget_s - headroom_s)

    def requeue(self, requests: List[ServeRequest]) -> None:
        """Put already-admitted requests back at the front of their shards
        (worker crash recovery); bypasses admission control. The shard
        also moves to the front of the flush rotation and the requests
        become immediately flushable, so a crashed batch is re-served
        ahead of newer arrivals instead of re-waiting behind them."""
        if not requests:
            return
        for request in requests:
            if request.tracer is not None:
                request.tracer.end(request.batch_span, status="crashed")
                request.tracer.instant("serve.requeue", request.trace_id,
                                       parent_id=request.root_span)
                request.requeues += 1
                request.enqueue_span = request.tracer.begin(
                    "serve.enqueue", request.trace_id,
                    parent_id=request.root_span, requeued=True)
        with self._cond:
            now = self.clock.now()
            for request in reversed(requests):
                request.flush_at_s = min(request.flush_at_s, now)
                self._shards.setdefault(request.key,
                                        deque()).appendleft(request)
                self._shards.move_to_end(request.key, last=False)
                self.depth += 1
            obs.add_counter("serve.requeued", len(requests))
            self._cond.notify_all()

    # -- consumer side ---------------------------------------------------------

    def next_batch(self, timeout: Optional[float] = None
                   ) -> Optional[List[ServeRequest]]:
        """Block until a batch is ready; ``None`` means shut down and empty.

        ``timeout`` (seconds) bounds the wait for *any* batch; on expiry
        with nothing flushable it returns an empty list.
        """
        deadline = None if timeout is None else self.clock.now() + timeout
        with self._cond:
            # Predicate loop: every wait re-derives its state from the
            # queue under the lock, so spurious wakeups, stolen batches
            # (another worker popped first), and notify-before-wait
            # races are all absorbed by re-checking _pop_locked.
            while True:
                batch = self._pop_locked()
                if batch is not None:
                    obs.add_counter("serve.batches")
                    obs.add_counter("serve.batched_items", len(batch))
                    return batch
                if self._closed and self.depth == 0:
                    return None
                wait = self._wait_s_locked()
                if deadline is not None:
                    remaining = deadline - self.clock.now()
                    if remaining <= 0:
                        return []
                    wait = remaining if wait is None else min(wait, remaining)
                # wait is None (unbounded) only when the queue is empty
                # — the one state where a notify must precede progress;
                # with work queued the wait is bounded by the earliest
                # flush deadline, so a missed notify costs latency, not
                # liveness.
                self._cond.wait(wait)

    def poll(self) -> Optional[List[ServeRequest]]:
        """Non-blocking :meth:`next_batch`: a ready batch or ``None``.

        The soak harness's virtual-time event loop drives the scheduler
        through this (plus :meth:`next_flush_at`) instead of blocking
        worker threads.
        """
        with self._cond:
            batch = self._pop_locked()
        if batch is not None:
            obs.add_counter("serve.batches")
            obs.add_counter("serve.batched_items", len(batch))
        return batch

    def next_flush_at(self) -> Optional[float]:
        """The earliest instant a batch becomes flushable (``None`` =
        queue empty; "now" when a shard is already full or closed)."""
        with self._cond:
            if self.depth == 0:
                return None
            now = self.clock.now()
            if self._closed:
                return now
            earliest = math.inf
            for shard in self._shards.values():
                if len(shard) >= self.max_batch:
                    return now
                earliest = min(earliest, shard[0].flush_at_s)
            return earliest

    def _pop_locked(self) -> Optional[List[ServeRequest]]:
        if self.depth == 0:
            return None
        now = self.clock.now()
        full_key = None
        overdue: List[Tuple[float, Any]] = []  # (head enqueue time, key)
        promoted_key = None
        for key, shard in self._shards.items():
            head = shard[0]
            if full_key is None and len(shard) >= self.max_batch:
                full_key = key
            if self._closed or now >= head.flush_at_s:
                overdue.append((head.enqueued_s, key))
                if promoted_key is None and self._promotable(head, now):
                    promoted_key = key
        flush_key = None
        deadline_flush = False
        if full_key is not None:
            # An over-age overdue head (a requeued crash batch, or a
            # shard starved by busier plans) preempts the full shard.
            flush_key = promoted_key if promoted_key is not None else full_key
        elif overdue:
            # oldest head first: deterministic and fair across shards
            flush_key = min(overdue)[1]
            deadline_flush = True
        if flush_key is None:
            return None
        shard = self._shards[flush_key]
        take = min(len(shard), self.max_batch)
        batch = [shard.popleft() for _ in range(take)]
        self.depth -= take
        if deadline_flush and take < self.max_batch:
            self.deadline_flushes += 1
            obs.add_counter("serve.deadline_flushes")
        if not shard:
            del self._shards[flush_key]
        else:
            # round-robin: a part-drained shard goes to the back so other
            # plans' queues get the next flush
            self._shards.move_to_end(flush_key)
        return batch

    def _promotable(self, head: ServeRequest, now: float) -> bool:
        """Age-based promotion guard: has this overdue head waited more
        than ``promotion_factor`` times its own planned flush delay
        (floored at 1 ms so zero-delay requests still get a grace
        window)? Such a shard preempts even full shards, so it cannot
        starve behind plans whose queues keep hitting ``max_batch``."""
        planned_delay = max(head.flush_at_s - head.enqueued_s, 1e-3)
        return now - head.enqueued_s >= self.promotion_factor * planned_delay

    def _wait_s_locked(self) -> Optional[float]:
        """Seconds until the earliest pending flush deadline (None =
        nothing pending, wait for a notify)."""
        if self.depth == 0:
            return None
        earliest = min(shard[0].flush_at_s for shard in self._shards.values())
        return max(earliest - self.clock.now(), 1e-4)

    # -- shutdown --------------------------------------------------------------

    def close(self, drain: bool = True) -> List[ServeRequest]:
        """Stop admissions. ``drain=True`` lets workers empty the queue
        (returns []); ``drain=False`` empties it now and returns the
        aborted requests for the caller to fail."""
        with self._cond:
            self._closed = True
            aborted: List[ServeRequest] = []
            if not drain:
                for shard in self._shards.values():
                    aborted.extend(shard)
                self._shards.clear()
                self.depth = 0
            self._cond.notify_all()
            return aborted
