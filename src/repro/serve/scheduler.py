"""Micro-batching request scheduler with admission control.

A thread-safe queue of :class:`ServeRequest` objects, sharded per plan
key so one queue per compiled plan drains into the worker pool. Batches
flush when a shard reaches ``max_batch`` or its oldest request has
waited ``max_wait_ms`` — the classic micro-batching trade between
per-request latency and the amortization a wide batch buys (see
:mod:`repro.sim.batched`).

Admission control is a bounded total depth: a submit that would exceed
``max_queue`` fast-fails with
:class:`~repro.errors.ServeOverloadError`, giving callers backpressure
immediately. Rejections and batch flushes are mirrored into
``serve.*`` obs counters.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from .. import obs
from ..errors import ConfigError, ServeOverloadError, SimFaultError


@dataclass
class ServeRequest:
    """One inference request travelling through the serving pipeline.

    When the service traces requests, ``tracer``/``trace_id`` carry the
    trace context end to end: the root span brackets submit → future
    done, ``enqueue_span`` each stint in the queue (requeues open a new
    one), and ``batch_span`` the batch currently executing it.
    """

    id: int
    key: Any  # PlanKey of the compiled plan that will execute it
    x: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued_s: float = 0.0
    tracer: Any = None  # Optional[repro.obs.tracing.Tracer]
    trace_id: int = -1
    root_span: int = -1
    enqueue_span: int = -1
    batch_span: int = -1
    requeues: int = 0


class BatchScheduler:
    """Thread-safe sharded queue with micro-batching and bounded depth."""

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0,
                 max_queue: int = 1024):
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1", max_batch=max_batch)
        if max_wait_ms < 0:
            raise ConfigError("max_wait_ms must be >= 0",
                              max_wait_ms=max_wait_ms)
        if max_queue < 1:
            raise ConfigError("max_queue must be >= 1", max_queue=max_queue)
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.max_queue = max_queue
        self.depth = 0
        self._shards: "OrderedDict[Any, Deque[ServeRequest]]" = OrderedDict()
        self._closed = False
        import threading

        self._cond = threading.Condition()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- producer side ---------------------------------------------------------

    def submit(self, request: ServeRequest) -> None:
        """Enqueue one request, or fast-fail when the queue is full."""
        with self._cond:
            if self._closed:
                raise SimFaultError("scheduler is shut down",
                                    request=request.id)
            if self.depth >= self.max_queue:
                obs.add_counter("serve.rejected")
                raise ServeOverloadError(
                    "serving queue full", depth=self.depth,
                    max_queue=self.max_queue, request=request.id)
            request.enqueued_s = time.perf_counter()
            self._shards.setdefault(request.key, deque()).append(request)
            self.depth += 1
            obs.add_counter("serve.enqueued")
            self._cond.notify()

    def requeue(self, requests: List[ServeRequest]) -> None:
        """Put already-admitted requests back at the front of their shards
        (worker crash recovery); bypasses admission control."""
        if not requests:
            return
        for request in requests:
            if request.tracer is not None:
                request.tracer.end(request.batch_span, status="crashed")
                request.tracer.instant("serve.requeue", request.trace_id,
                                       parent_id=request.root_span)
                request.requeues += 1
                request.enqueue_span = request.tracer.begin(
                    "serve.enqueue", request.trace_id,
                    parent_id=request.root_span, requeued=True)
        with self._cond:
            for request in reversed(requests):
                self._shards.setdefault(request.key,
                                        deque()).appendleft(request)
                self.depth += 1
            obs.add_counter("serve.requeued", len(requests))
            self._cond.notify_all()

    # -- consumer side ---------------------------------------------------------

    def next_batch(self, timeout: Optional[float] = None
                   ) -> Optional[List[ServeRequest]]:
        """Block until a batch is ready; ``None`` means shut down and empty.

        ``timeout`` (seconds) bounds the wait for *any* batch; on expiry
        with nothing flushable it returns an empty list.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            while True:
                batch = self._pop_locked()
                if batch is not None:
                    obs.add_counter("serve.batches")
                    obs.add_counter("serve.batched_items", len(batch))
                    return batch
                if self._closed and self.depth == 0:
                    return None
                wait = self._wait_s_locked()
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return []
                    wait = remaining if wait is None else min(wait, remaining)
                self._cond.wait(wait)

    def _pop_locked(self) -> Optional[List[ServeRequest]]:
        if self.depth == 0:
            return None
        now = time.perf_counter()
        flush_key = None
        for key, shard in self._shards.items():
            if len(shard) >= self.max_batch:
                flush_key = key
                break
            if self._closed or now - shard[0].enqueued_s >= self.max_wait_s:
                flush_key = flush_key if flush_key is not None else key
        if flush_key is None:
            return None
        shard = self._shards[flush_key]
        take = min(len(shard), self.max_batch)
        batch = [shard.popleft() for _ in range(take)]
        self.depth -= take
        if not shard:
            del self._shards[flush_key]
        else:
            # round-robin: a part-drained shard goes to the back so other
            # plans' queues get the next flush
            self._shards.move_to_end(flush_key)
        return batch

    def _wait_s_locked(self) -> Optional[float]:
        """Seconds until the oldest pending request hits its flush
        deadline (None = nothing pending, wait for a notify)."""
        if self.depth == 0:
            return None
        oldest = min(shard[0].enqueued_s for shard in self._shards.values())
        return max(oldest + self.max_wait_s - time.perf_counter(), 1e-4)

    # -- shutdown --------------------------------------------------------------

    def close(self, drain: bool = True) -> List[ServeRequest]:
        """Stop admissions. ``drain=True`` lets workers empty the queue
        (returns []); ``drain=False`` empties it now and returns the
        aborted requests for the caller to fail."""
        with self._cond:
            self._closed = True
            aborted: List[ServeRequest] = []
            if not drain:
                for shard in self._shards.values():
                    aborted.extend(shard)
                self._shards.clear()
                self.depth = 0
            self._cond.notify_all()
            return aborted
