"""Clock abstraction: real time for serving, virtual time for replay.

Everything in the serving stack that needs "now" — enqueue stamps,
deadline-batching flush times, autoscaler hysteresis windows, the soak
harness's event loop — reads it through a :class:`Clock` instead of
calling :func:`time.perf_counter` directly. Production uses
:class:`SystemClock` (monotonic, wall-paced); tests and the soak
harness use :class:`ManualClock`, which only moves when told to, so an
identically-seeded run replays the *exact* same admission, flush, and
scaling decisions — the determinism the overload tests and the soak's
repeatable shed/scale event sequences depend on.
"""

from __future__ import annotations

import time

from ..errors import ConfigError


class Clock:
    """Monotonic time source: ``now()`` in seconds, plus ``sleep()``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """The process-wide monotonic clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A clock that advances only when told to — deterministic replay.

    ``sleep`` advances instead of blocking, so code written against
    :class:`Clock` runs unmodified (and instantly) under virtual time.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ConfigError("cannot advance a clock backwards",
                              seconds=seconds)
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (no-op when in the past)."""
        if t > self._now:
            self._now = t
        return self._now


#: Shared default so components constructed without an explicit clock
#: agree on one time source.
SYSTEM_CLOCK = SystemClock()
