"""Compiled plans and the plan cache: search once, serve many inputs.

The paper splits its tool into an offline analytical search and an
online fused evaluation (Section V-A); a serving system makes the same
split explicit. A :class:`CompiledPlan` freezes everything needed to
execute one network — the chosen fusion partition (from
:func:`repro.core.explore` or an explicit spec), the per-group pyramid
geometry, and deterministic weights — so the expensive search runs once
per (network, configuration) and every subsequent request just executes.

A :class:`PlanCache` memoizes compilation keyed on
:class:`PlanKey` = (network fingerprint, strategy, tip, storage budget,
precision, weight seed, variant) with LRU eviction and byte-size
accounting, mirrors
hit/miss/eviction totals into :mod:`repro.obs` counters
(``serve.plan_cache.*``), and serializes to JSON so a warmed cache
survives restarts: the saved form stores the network description and the
chosen partition, so a restored plan performs **zero exploration work**
(``explore.partitions_scored`` stays flat on every warm path).
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.explorer import explore
from ..core.fusion import Strategy, analyze_group, units_to_levels
from ..core.pyramid import PyramidGeometry, build_pyramid
from ..errors import ConfigError
from ..faults.budget import ExplorationBudget
from ..nn.layers import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    LRNSpec,
    PadSpec,
    PoolSpec,
    ReLUSpec,
)
from ..nn.network import Network
from ..nn.shapes import TensorShape
from ..nn.stages import extract_levels, independent_units
from ..sim.batched import BatchedNetworkExecutor, preserves_exact_arithmetic
from ..sim.network_exec import NetworkExecutor
from .sanitizer import make_lock

PRECISIONS = ("int", "float")

#: Spec registry for exact JSON round-tripping (the Torch-text form
#: drops grouped-convolution and LRN parameters, so plans serialize
#: specs field-by-field instead).
_SPEC_TYPES = {cls.__name__: cls for cls in
               (ConvSpec, PoolSpec, ReLUSpec, PadSpec, LRNSpec, FCSpec)}


@dataclass(frozen=True)
class PlanKey:
    """Everything that distinguishes one compiled plan from another."""

    fingerprint: str
    strategy: str
    tip: int
    storage_budget_bytes: Optional[int]
    precision: str
    seed: int = 0
    #: Distinguishes differently sourced configurations of the same
    #: (strategy, tip): ``"default"`` for explored/explicit plans,
    #: ``"tuned:<objective>"`` for plans frozen from a tuning record.
    variant: str = "default"
    #: Plan family: ``"linear"`` for :class:`~repro.nn.network.Network`
    #: chains, ``"graph"`` for DAG networks
    #: (:class:`repro.graph.GraphNetwork`). Keyed so the two families
    #: never alias in a cache even on a fingerprint collision.
    family: str = "linear"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanKey":
        return cls(fingerprint=data["fingerprint"], strategy=data["strategy"],
                   tip=int(data["tip"]),
                   storage_budget_bytes=(None if data["storage_budget_bytes"]
                                         is None
                                         else int(data["storage_budget_bytes"])),
                   precision=data["precision"],
                   seed=int(data.get("seed", 0)),
                   variant=data.get("variant", "default"),
                   family=data.get("family", "linear"))

    def __str__(self) -> str:
        budget = ("-" if self.storage_budget_bytes is None
                  else str(self.storage_budget_bytes))
        text = (f"{self.fingerprint}/{self.strategy}/tip{self.tip}"
                f"/sb{budget}/{self.precision}/seed{self.seed}")
        if self.variant != "default":
            text += f"/{self.variant}"
        if self.family != "linear":
            text += f"/{self.family}"
        return text


def make_plan_key(network: Network, strategy: Strategy = Strategy.REUSE,
                  tip: int = 1, storage_budget_bytes: Optional[int] = None,
                  precision: str = "int", seed: int = 0,
                  variant: str = "default") -> PlanKey:
    """The cache key a compilation of ``network`` under these knobs gets.

    ``seed`` determines the plan's frozen weights, so plans compiled
    under different seeds never alias in the cache; ``variant`` keeps
    tuned plans from aliasing explored ones.
    """
    if precision not in PRECISIONS:
        raise ConfigError(f"precision must be one of {PRECISIONS}",
                          precision=precision)
    if tip < 1:
        raise ConfigError("tip must be >= 1", tip=tip)
    return PlanKey(fingerprint=network.fingerprint(), strategy=strategy.name,
                   tip=tip, storage_budget_bytes=storage_budget_bytes,
                   precision=precision, seed=seed, variant=variant,
                   family=getattr(network, "plan_family", "linear"))


def _spec_to_dict(spec: LayerSpec) -> Dict[str, Any]:
    return {"type": type(spec).__name__,
            **{f.name: getattr(spec, f.name)
               for f in dataclasses.fields(spec)}}


def _spec_from_dict(data: Dict[str, Any]) -> LayerSpec:
    kind = data.get("type")
    if kind not in _SPEC_TYPES:
        raise ConfigError(f"unknown layer spec type {kind!r} in saved plan",
                          known=sorted(_SPEC_TYPES))
    kwargs = {k: v for k, v in data.items() if k != "type"}
    return _SPEC_TYPES[kind](**kwargs)


class CompiledPlan:
    """A frozen, executable configuration for one network.

    Holds the network, its chosen fusion partition and per-group pyramid
    geometry, and the executors (deterministic weights per ``seed``).
    Execution delegates to the vectorized
    :class:`~repro.sim.batched.BatchedNetworkExecutor` when ``"int"``
    precision meets an exactness-preserving network (see
    :func:`~repro.sim.batched.preserves_exact_arithmetic`) — bit-identical
    to per-item execution in that regime — and to
    :meth:`NetworkExecutor.run_batch` otherwise.
    """

    def __init__(self, key: PlanKey, network: Network,
                 partition_sizes: Tuple[int, ...],
                 geometry: Tuple[PyramidGeometry, ...],
                 seed: int = 0, degraded: bool = False,
                 compile_s: float = 0.0):
        self.key = key
        self.network = network
        self.partition_sizes = tuple(partition_sizes)
        self.geometry = tuple(geometry)
        self.seed = seed
        self.degraded = degraded
        self.compile_s = compile_s
        integer = key.precision == "int"
        self.executor = NetworkExecutor(network, seed=seed, integer=integer)
        self.batched: Optional[BatchedNetworkExecutor] = (
            BatchedNetworkExecutor(network, params=self.executor.params)
            if integer and preserves_exact_arithmetic(network) else None)

    @property
    def byte_size(self) -> int:
        """Resident bytes the cache charges this plan for (weights + one
        input volume)."""
        weights = sum(w.nbytes + b.nbytes
                      for w, b in self.executor.params.values())
        shape = self.network.input_shape
        return weights + shape.elements * 8

    @property
    def num_groups(self) -> int:
        return len(self.partition_sizes)

    def execute(self, xs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Run a batch; outputs are bit-identical to per-item
        :meth:`NetworkExecutor.run` calls."""
        if self.batched is not None:
            return self.batched.run_batch(list(xs))
        return self.executor.run_batch(xs)

    def describe(self) -> str:
        mode = "degraded " if self.degraded else ""
        return (f"{self.network.name}: partition {self.partition_sizes} "
                f"({self.num_groups} groups, {mode}{self.key.precision} "
                f"precision, {self.byte_size / 2**10:.0f} KB)")

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        shape = self.network.input_shape
        return {
            "key": self.key.to_dict(),
            "network_name": self.network.name,
            "input_shape": [shape.channels, shape.height, shape.width],
            "layers": [_spec_to_dict(b.spec) for b in self.network],
            "partition_sizes": list(self.partition_sizes),
            "seed": self.seed,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompiledPlan":
        family = data.get("key", {}).get("family", "linear")
        if family == "graph":
            # Saved DAG plans restore through the graph family so mixed
            # cache files (PlanCache.load, process-mode workers) work.
            from ..graph.plan import CompiledGraphPlan

            return CompiledGraphPlan.from_dict(data)
        if family == "pipeline":
            # Sharded plans likewise: the saved boundaries are re-priced,
            # never re-searched.
            from ..dist.plan import PipelinePlan

            return PipelinePlan.from_dict(data)
        c, h, w = data["input_shape"]
        network = Network(data["network_name"], TensorShape(c, h, w),
                          [_spec_from_dict(d) for d in data["layers"]])
        key = PlanKey.from_dict(data["key"])
        sizes = tuple(int(s) for s in data["partition_sizes"])
        geometry = _partition_geometry(network, sizes, key.tip)
        return cls(key=key, network=network, partition_sizes=sizes,
                   geometry=geometry, seed=int(data["seed"]),
                   degraded=bool(data["degraded"]))


def _partition_geometry(network: Network, sizes: Tuple[int, ...],
                        tip: int) -> Tuple[PyramidGeometry, ...]:
    """Pyramid geometry for each fused group of the chosen partition."""
    units = independent_units(extract_levels(network.feature_extractor()))
    if sum(sizes) != len(units):
        raise ConfigError("partition does not cover the network's fusion units",
                          sizes=sizes, units=len(units),
                          network=network.name)
    geometry: List[PyramidGeometry] = []
    start = 0
    for size in sizes:
        group = units[start:start + size]
        levels = units_to_levels(group)
        # Clip the tip to the group's output map (the same clamp the
        # hardware designer and the tuner apply), so one plan-wide tip
        # works for groups whose output is smaller than the tip.
        final = levels[-1].out_shape
        geometry.append(build_pyramid(levels,
                                      tip_h=min(tip, final.height),
                                      tip_w=min(tip, final.width)))
        start += size
    return tuple(geometry)


def compile_plan(network: Network, strategy: Strategy = Strategy.REUSE,
                 tip: int = 1, storage_budget_bytes: Optional[int] = None,
                 precision: str = "int", seed: int = 0,
                 budget: Optional[ExplorationBudget] = None,
                 on_budget: str = "degrade",
                 partition_sizes: Optional[Sequence[int]] = None,
                 jobs: int = 1, tuned: Optional[Any] = None,
                 validate: bool = True,
                 devices: Optional[Sequence[Any]] = None,
                 link: Optional[Any] = None,
                 weight_items: Optional[int] = None) -> CompiledPlan:
    """Compile ``network`` into an executable plan.

    Without ``partition_sizes`` the fusion partition comes from a full
    :func:`~repro.core.explore` sweep — minimum feature-map transfer,
    constrained to ``storage_budget_bytes`` of extra on-chip storage
    when given (falling back to the minimum-storage partition if nothing
    fits). ``budget`` bounds that search; a budget-truncated sweep still
    compiles, with ``degraded=True`` recorded on the plan. With
    ``partition_sizes`` (an explicit spec, or a cache restore) no
    exploration runs at all — only the single chosen partition is
    re-analyzed for geometry.

    ``tuned`` accepts a :class:`repro.tune.TunedRecord` (anything with
    ``fingerprint``/``objective``/``partition_sizes``/``strategy``/
    ``tip`` attributes): the record's configuration overrides
    ``strategy``/``tip``/``partition_sizes`` wholesale, the plan's key
    gets variant ``"tuned:<objective>"``, and the record's fingerprint
    must match ``network`` — a tuning result never silently applies to
    a different network.

    Every compiled plan is passed through the static analyzer
    (:func:`repro.check.check_compiled_plan`) before it is returned;
    a plan with error diagnostics raises :class:`ConfigError` instead
    of entering the serving path. ``validate=False`` opts out.

    Networks of the ``"graph"`` plan family (DAGs) dispatch to
    :func:`repro.graph.plan.compile_graph_plan`; ``tuned`` records and
    explicit ``partition_sizes`` are linear-only and rejected there.

    ``devices`` (a sequence of :class:`repro.hw.DeviceSpec`) shards the
    compiled plan across a simulated device pipeline: the result is a
    :class:`repro.dist.PipelinePlan` (family ``"pipeline"``) whose
    served outputs remain bit-identical to the unsharded plan. ``link``
    (:class:`repro.hw.LinkSpec`) and ``weight_items`` tune the
    inter-device transfer model and the micro-batch weight-reuse run
    length. A ``tuned`` record carrying a ``devices`` axis (the tuner's
    device-count co-search) shards automatically onto the resource-
    neutral ``split_device(DEFAULT_DEVICE, K)`` fleet when no explicit
    ``devices`` are given; pass ``devices=()`` to force an unsharded
    compile of such a record.
    """
    if devices is None and tuned is not None:
        tuned_devices = int(getattr(tuned, "devices", 1) or 1)
        if tuned_devices > 1:
            from ..hw.device import DEFAULT_DEVICE, split_device

            devices = split_device(DEFAULT_DEVICE, tuned_devices)
    if devices:
        from ..dist.plan import DEFAULT_WEIGHT_ITEMS, compile_pipeline_plan
        from ..hw.link import DEFAULT_LINK

        return compile_pipeline_plan(
            network=network, devices=tuple(devices),
            link=link if link is not None else DEFAULT_LINK,
            weight_items=(weight_items if weight_items is not None
                          else DEFAULT_WEIGHT_ITEMS),
            validate=validate, strategy=strategy, tip=tip,
            storage_budget_bytes=storage_budget_bytes, precision=precision,
            seed=seed, budget=budget, on_budget=on_budget,
            partition_sizes=partition_sizes, jobs=jobs, tuned=tuned)
    if getattr(network, "plan_family", "linear") == "graph":
        if tuned is not None or partition_sizes is not None:
            raise ConfigError(
                "tuned records and explicit partition_sizes apply only to "
                "linear networks", network=network.name, family="graph")
        from ..graph.plan import compile_graph_plan

        return compile_graph_plan(
            network, strategy=strategy, tip=tip,
            storage_budget_bytes=storage_budget_bytes, precision=precision,
            seed=seed, jobs=jobs, validate=validate)
    variant = "default"
    if tuned is not None:
        fingerprint = network.fingerprint()
        if tuned.fingerprint != fingerprint:
            raise ConfigError(
                "tuned record fingerprint does not match the network",
                network=network.name, network_fingerprint=fingerprint,
                record_fingerprint=tuned.fingerprint)
        strategy = Strategy(tuned.strategy)
        tip = int(tuned.tip)
        partition_sizes = tuple(tuned.partition_sizes)
        variant = f"tuned:{tuned.objective}"
    key = make_plan_key(network, strategy=strategy, tip=tip,
                        storage_budget_bytes=storage_budget_bytes,
                        precision=precision, seed=seed, variant=variant)
    t0 = time.perf_counter()
    degraded = False
    with obs.span("serve.compile", network=network.name, key=str(key)):
        if partition_sizes is None:
            result = explore(network, strategy=strategy, tip_h=tip, tip_w=tip,
                             budget=budget, on_budget=on_budget, jobs=jobs)
            chosen = None
            if storage_budget_bytes is not None:
                chosen = result.best_under_storage(storage_budget_bytes)
            if chosen is None and storage_budget_bytes is not None:
                # nothing fits: serve the minimum-storage partition
                chosen = result.best_under_transfer(float("inf"))
            if chosen is None:
                chosen = result.best_under_storage(float("inf"))
            sizes = chosen.sizes
            degraded = result.degraded
        else:
            sizes = tuple(int(s) for s in partition_sizes)
            units = independent_units(
                extract_levels(network.feature_extractor()))
            if sum(sizes) != len(units):
                raise ConfigError(
                    "partition does not cover the network's fusion units",
                    sizes=sizes, units=len(units), network=network.name)
            start = 0
            for size in sizes:
                levels = units_to_levels(units[start:start + size])
                final = levels[-1].out_shape
                analyze_group(levels, strategy=strategy,
                              tip_h=min(tip, final.height),
                              tip_w=min(tip, final.width))
                start += size
        geometry = _partition_geometry(network, tuple(sizes), tip)
    plan = CompiledPlan(key=key, network=network,
                        partition_sizes=tuple(sizes), geometry=geometry,
                        seed=seed, degraded=degraded,
                        compile_s=time.perf_counter() - t0)
    if validate:
        from ..check import check_compiled_plan

        findings = [d for d in check_compiled_plan(plan, network=network)
                    if d.is_error]
        if findings:
            raise ConfigError(
                "compiled plan failed static validation: "
                + "; ".join(d.render() for d in findings[:3]),
                key=str(key), findings=len(findings))
        obs.add_counter("serve.plans_validated")
    if degraded:
        obs.add_counter("serve.degraded_plans")
    obs.add_counter("serve.plans_compiled")
    return plan


class PlanCache:
    """LRU cache of compiled plans with byte-size accounting.

    ``max_plans`` bounds the entry count and ``max_bytes`` (optional)
    the summed :attr:`CompiledPlan.byte_size`; eviction is
    least-recently-used but always leaves the most recent plan resident.
    Hits, misses, and evictions are mirrored into
    ``serve.plan_cache.{hits,misses,evictions}`` obs counters.

    Thread-safe: one lock guards the LRU order, the byte budget, and
    the hit/miss/eviction counters — the cache is shared between the
    caller thread that registers networks and any worker or background
    thread that compiles on demand. Compilation itself deliberately
    runs *outside* the lock (holding it through a full exploration
    sweep would stall every concurrent lookup); two threads missing on
    the same key may both compile, deterministically producing
    equivalent plans, and the last ``put`` wins.
    """

    def __init__(self, max_plans: int = 32,
                 max_bytes: Optional[int] = None):
        if max_plans < 1:
            raise ConfigError("plan cache needs max_plans >= 1",
                              max_plans=max_plans)
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigError("max_bytes must be positive when given",
                              max_bytes=max_bytes)
        self.max_plans = max_plans
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = make_lock("serve.plan_cache.state")
        self._plans: "OrderedDict[PlanKey, CompiledPlan]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes_locked()

    def _total_bytes_locked(self) -> int:
        return sum(plan.byte_size for plan in self._plans.values())

    def lookup(self, key: PlanKey) -> Optional[CompiledPlan]:
        """Fetch without compiling; counts a hit or miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
            else:
                self._plans.move_to_end(key)
                self.hits += 1
        obs.add_counter("serve.plan_cache.misses" if plan is None
                        else "serve.plan_cache.hits")
        return plan

    def get_or_compile(self, network: Network,
                       strategy: Strategy = Strategy.REUSE, tip: int = 1,
                       storage_budget_bytes: Optional[int] = None,
                       precision: str = "int", seed: int = 0,
                       budget: Optional[ExplorationBudget] = None,
                       on_budget: str = "degrade",
                       jobs: int = 1,
                       tuned: Optional[Any] = None,
                       partition_sizes: Optional[Sequence[int]] = None,
                       devices: Optional[Sequence[Any]] = None,
                       link: Optional[Any] = None,
                       weight_items: Optional[int] = None) -> CompiledPlan:
        """The serving entry point: memoized compilation.

        With ``devices`` the memoized artifact is the sharded
        ``"pipeline"``-family plan — its key is derived *before*
        compiling (the fleet fingerprint needs no search), so a warm
        cache never re-runs the stage balancer.
        """
        if tuned is not None:
            strategy = Strategy(tuned.strategy)
            tip = int(tuned.tip)
            if devices is None and int(getattr(tuned, "devices", 1) or 1) > 1:
                from ..hw.device import DEFAULT_DEVICE, split_device

                devices = split_device(DEFAULT_DEVICE, int(tuned.devices))
        key = make_plan_key(network, strategy=strategy, tip=tip,
                            storage_budget_bytes=storage_budget_bytes,
                            precision=precision, seed=seed,
                            variant=(f"tuned:{tuned.objective}"
                                     if tuned is not None else "default"))
        if devices:
            from ..dist.plan import DEFAULT_WEIGHT_ITEMS, pipeline_plan_key
            from ..hw.link import DEFAULT_LINK
            key = pipeline_plan_key(
                key, tuple(devices),
                link if link is not None else DEFAULT_LINK,
                (weight_items if weight_items is not None
                 else DEFAULT_WEIGHT_ITEMS))
        plan = self.lookup(key)
        if plan is not None:
            return plan
        # Compile with no lock held (see the class docstring): a
        # concurrent miss on the same key compiles redundantly but
        # deterministically; both callers serve identical plans.
        plan = compile_plan(network, strategy=strategy, tip=tip,
                            storage_budget_bytes=storage_budget_bytes,
                            precision=precision, seed=seed, budget=budget,
                            on_budget=on_budget, jobs=jobs, tuned=tuned,
                            partition_sizes=partition_sizes,
                            devices=devices, link=link,
                            weight_items=weight_items)
        self.put(plan)
        return plan

    def put(self, plan: CompiledPlan) -> None:
        """Insert (or refresh) a plan, evicting LRU entries over budget."""
        evicted = 0
        with self._lock:
            self._plans[plan.key] = plan
            self._plans.move_to_end(plan.key)
            while len(self._plans) > 1 and (
                    len(self._plans) > self.max_plans
                    or (self.max_bytes is not None
                        and self._total_bytes_locked() > self.max_bytes)):
                self._plans.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            obs.add_counter("serve.plan_cache.evictions", evicted)

    def stats_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {"plans": len(self._plans),
                    "bytes": self._total_bytes_locked(),
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Write every resident plan to ``path`` as JSON (LRU order)."""
        with self._lock:
            resident = list(self._plans.values())
        # serialize outside the lock: to_dict + file IO are slow
        payload = {"version": 1,
                   "plans": [plan.to_dict() for plan in resident]}
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def load(self, path) -> int:
        """Merge plans from ``path`` into the cache; returns the count.

        Restored plans rebuild their network, weights, and geometry from
        the saved description — no exploration work runs, so a warmed
        cache serves its first request as cheaply as its thousandth.
        """
        with open(path) as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "plans" not in payload:
            raise ConfigError("not a plan-cache file", path=str(path))
        count = 0
        for data in payload["plans"]:
            self.put(CompiledPlan.from_dict(data))
            count += 1
            obs.add_counter("serve.plan_cache.loads")
        return count
