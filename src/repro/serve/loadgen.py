"""Open-loop load generation: seeded arrival traces for the soak harness.

A trace is a list of :class:`Arrival` records — absolute arrival time,
request class, and target network index — generated *open loop*: arrival
times never depend on how fast the service answers, which is what makes
overload possible (a closed-loop client self-throttles and can never
observe shedding). Three shapes cover the soak matrix:

* :func:`poisson_trace` — memoryless steady-state load at ``rate_rps``;
* :func:`diurnal_trace` — a sinusoidal day: rate swings between
  ``(1 - depth)`` and ``(1 + depth)`` times the mean over ``period_s``,
  realized by thinning a Poisson process at the peak rate;
* :func:`burst_trace` — baseline Poisson plus periodic square-wave
  bursts at ``burst_factor`` times the rate, the adversarial input the
  autoscaler + shedding stack must absorb.

Everything is driven by ``random.Random(seed)`` — same arguments, same
trace, byte for byte — so soak runs replay exactly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List

from ..errors import ConfigError

#: Registry of trace shapes, used by ``make_trace`` and the CLI.
TRACE_KINDS = ("poisson", "diurnal", "burst")


@dataclass(frozen=True)
class Arrival:
    """One open-loop request arrival."""

    t: float            #: absolute arrival time (seconds from trace start)
    klass: str          #: "guaranteed" or "sheddable"
    network: int        #: index into the soak's network list

    def to_dict(self) -> Dict[str, Any]:
        return {"t": self.t, "klass": self.klass, "network": self.network}


def _validate(n: int, rate_rps: float, guaranteed_fraction: float,
              networks: int) -> None:
    if n < 1:
        raise ConfigError("trace needs at least one arrival", n=n)
    if rate_rps <= 0:
        raise ConfigError("arrival rate must be positive", rate_rps=rate_rps)
    if not 0.0 <= guaranteed_fraction <= 1.0:
        raise ConfigError("guaranteed_fraction must be in [0, 1]",
                          guaranteed_fraction=guaranteed_fraction)
    if networks < 1:
        raise ConfigError("trace needs at least one network",
                          networks=networks)


def _classify(rng: random.Random, guaranteed_fraction: float) -> str:
    # local import keeps loadgen importable without the scheduler's deps
    from .scheduler import GUARANTEED, SHEDDABLE
    return GUARANTEED if rng.random() < guaranteed_fraction else SHEDDABLE


def poisson_trace(n: int, rate_rps: float, *, seed: int = 0,
                  guaranteed_fraction: float = 0.1,
                  networks: int = 1) -> List[Arrival]:
    """``n`` arrivals with exponential inter-arrival gaps at ``rate_rps``."""
    _validate(n, rate_rps, guaranteed_fraction, networks)
    rng = random.Random(seed)
    t = 0.0
    out: List[Arrival] = []
    for _ in range(n):
        t += rng.expovariate(rate_rps)
        out.append(Arrival(t=t, klass=_classify(rng, guaranteed_fraction),
                           network=rng.randrange(networks)))
    return out


def diurnal_trace(n: int, rate_rps: float, *, seed: int = 0,
                  period_s: float = 60.0, depth: float = 0.8,
                  guaranteed_fraction: float = 0.1,
                  networks: int = 1) -> List[Arrival]:
    """Sinusoidal load: instantaneous rate
    ``rate_rps * (1 + depth * sin(2*pi*t/period_s))``, realized by
    thinning a Poisson process at the peak rate (Lewis & Shedler)."""
    _validate(n, rate_rps, guaranteed_fraction, networks)
    if period_s <= 0:
        raise ConfigError("diurnal period must be positive",
                          period_s=period_s)
    if not 0.0 <= depth < 1.0:
        raise ConfigError("diurnal depth must be in [0, 1)", depth=depth)
    rng = random.Random(seed)
    peak = rate_rps * (1.0 + depth)
    t = 0.0
    out: List[Arrival] = []
    while len(out) < n:
        t += rng.expovariate(peak)
        instantaneous = rate_rps * (
            1.0 + depth * math.sin(2.0 * math.pi * t / period_s))
        if rng.random() * peak <= instantaneous:
            out.append(Arrival(t=t,
                               klass=_classify(rng, guaranteed_fraction),
                               network=rng.randrange(networks)))
    return out


def burst_trace(n: int, rate_rps: float, *, seed: int = 0,
                burst_every_s: float = 5.0, burst_len_s: float = 1.0,
                burst_factor: float = 8.0,
                guaranteed_fraction: float = 0.1,
                networks: int = 1) -> List[Arrival]:
    """Baseline Poisson at ``rate_rps`` with square-wave bursts: every
    ``burst_every_s`` seconds the rate jumps to ``burst_factor`` times
    baseline for ``burst_len_s`` seconds."""
    _validate(n, rate_rps, guaranteed_fraction, networks)
    if burst_every_s <= 0 or burst_len_s <= 0:
        raise ConfigError("burst cadence must be positive",
                          burst_every_s=burst_every_s,
                          burst_len_s=burst_len_s)
    if burst_len_s >= burst_every_s:
        raise ConfigError("burst must be shorter than its period",
                          burst_every_s=burst_every_s,
                          burst_len_s=burst_len_s)
    if burst_factor < 1.0:
        raise ConfigError("burst_factor must be >= 1", burst_factor=burst_factor)
    rng = random.Random(seed)
    t = 0.0
    out: List[Arrival] = []
    while len(out) < n:
        in_burst = (t % burst_every_s) < burst_len_s
        rate = rate_rps * (burst_factor if in_burst else 1.0)
        t += rng.expovariate(rate)
        out.append(Arrival(t=t, klass=_classify(rng, guaranteed_fraction),
                           network=rng.randrange(networks)))
    return out


def make_trace(kind: str, n: int, rate_rps: float, *, seed: int = 0,
               guaranteed_fraction: float = 0.1, networks: int = 1,
               **kwargs: Any) -> List[Arrival]:
    """Dispatch on ``kind`` (one of :data:`TRACE_KINDS`)."""
    makers = {"poisson": poisson_trace, "diurnal": diurnal_trace,
              "burst": burst_trace}
    if kind not in makers:
        raise ConfigError("unknown trace kind", kind=kind,
                          choices=", ".join(TRACE_KINDS))
    return makers[kind](n, rate_rps, seed=seed,
                        guaranteed_fraction=guaranteed_fraction,
                        networks=networks, **kwargs)
