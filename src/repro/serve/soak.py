"""Virtual-time soak harness: overload + faults, at six-figure scale.

The soak drives the *real* serving control plane — the
:class:`~repro.serve.scheduler.BatchScheduler` (admission watermarks,
deadline batching, promotion guard), the
:class:`~repro.serve.autoscale.Autoscaler`, and the
:class:`~repro.faults.injector.FaultInjector` — through a discrete-event
loop on a :class:`~repro.serve.clock.ManualClock` instead of live worker
threads. Virtual time makes a 100 000-request soak run in seconds and,
more importantly, makes it **deterministic**: the same seed replays the
exact same arrival trace, fault decisions, shed sequence, and scaling
events, byte for byte, which is what the determinism gate and
``repro check --soak`` verify.

What stays real despite the simulated clock:

* scheduling — batches form, flush, shed, and promote through the
  production scheduler code path;
* correctness — every ``spot_check_every``-th completed request executes
  its compiled plan on a seeded input and compares bit-for-bit against
  an independent :class:`~repro.sim.network_exec.NetworkExecutor`
  reference (``wrong_answers`` must be zero, faults or not);
* fault pressure — injected ``dram_stall``/``transfer_corrupt``
  decisions come from the standard per-site CRC32 streams and are
  priced into batch service times, so overload and fault recovery
  compound the way they would live.

Service time is modeled per network from the paper's cost model:
:func:`~repro.core.costs.one_pass_ops` of each network's fused levels,
normalized so the zoo's mean batch-of-one service time is
``mean_service_ms``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.costs import one_pass_ops
from ..errors import ConfigError, ServeOverloadError, ServeShedError
from ..faults.injector import FaultInjector
from ..nn.network import Network
from ..nn.stages import extract_levels
from ..sim.network_exec import NetworkExecutor
from .autoscale import Autoscaler, AutoscalePolicy, ScaleEvent
from .clock import ManualClock
from .loadgen import Arrival, make_trace
from .plan import CompiledPlan, PlanCache
from .scheduler import (GUARANTEED, AdmissionPolicy, BatchScheduler,
                        ServeRequest)
from .stats import percentile

#: Virtual seconds of injected stall per stalled DRAM cycle (matches the
#: live worker's default pacing of 1e-4 s/cycle).
STALL_S_PER_CYCLE = 1e-4


def _digest(entries: Sequence[Tuple[Any, ...]]) -> str:
    """Order-sensitive digest of an event log (replay fingerprint)."""
    h = hashlib.sha256()
    for entry in entries:
        h.update(repr(entry).encode())
    return h.hexdigest()[:16]


@dataclass
class SoakReport:
    """Everything a soak run measured, JSON-ready via :meth:`to_dict`."""

    config: Dict[str, Any]
    counts: Dict[str, int]
    latency_ms: Dict[str, float]
    queue_wait_ms: Dict[str, float]
    shed_rate: float
    throughput_rps: float
    virtual_s: float
    scale_events: List[ScaleEvent]
    faults_injected: Dict[str, int]
    #: ``(request id, reason)`` per shed/reject, in arrival order.
    shed_log: List[Tuple[int, str]] = field(default_factory=list)
    spot_failures: List[int] = field(default_factory=list)

    @property
    def wrong_answers(self) -> int:
        return self.counts["wrong_answers"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": "serve_soak",
            "config": self.config,
            "counts": self.counts,
            "latency_ms": self.latency_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "shed_rate": self.shed_rate,
            "throughput_rps": self.throughput_rps,
            "virtual_s": self.virtual_s,
            "scale_events": [e.to_dict() for e in self.scale_events],
            "scale_ups": sum(1 for e in self.scale_events
                             if e.action == "up"),
            "scale_downs": sum(1 for e in self.scale_events
                               if e.action == "down"),
            "faults_injected": self.faults_injected,
            "shed_log_digest": _digest(self.shed_log),
            "scale_log_digest": _digest(
                tuple(sorted(e.to_dict().items())) for e in self.scale_events),
        }

    def save(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(self) -> str:
        c = self.counts
        lines = [
            "soak report",
            f"  requests : {c['submitted']} submitted, {c['completed']} "
            f"completed, {c['shed']} shed, {c['rejected']} rejected hard",
            f"  wrong answers: {c['wrong_answers']} "
            f"(of {c['spot_checks']} spot checks)",
            f"  guaranteed shed: {c['guaranteed_shed']}",
            f"  shed rate: {self.shed_rate:.4f}",
            "  latency  : p50 {p50:.2f} ms  p99 {p99:.2f} ms  "
            "p99.9 {p999:.2f} ms".format(**self.latency_ms),
            f"  scaling  : {sum(1 for e in self.scale_events if e.action == 'up')}"
            f" ups, {sum(1 for e in self.scale_events if e.action == 'down')}"
            f" downs (final {self.config['final_workers']} workers)",
            f"  faults   : " + (", ".join(
                f"{k}={v}" for k, v in sorted(self.faults_injected.items()))
                or "none"),
            f"  virtual  : {self.virtual_s:.2f} s simulated, "
            f"{self.throughput_rps:.0f} requests/s served",
        ]
        return "\n".join(lines)


def _service_model(networks: Sequence[Network],
                   mean_service_ms: float) -> List[float]:
    """Per-item service seconds per network, proportional to the cost
    model's one-pass arithmetic, normalized to ``mean_service_ms``."""
    ops = [max(1, one_pass_ops(extract_levels(net.feature_extractor())))
           for net in networks]
    mean_ops = sum(ops) / len(ops)
    return [mean_service_ms / 1e3 * (o / mean_ops) for o in ops]


def run_soak(networks: Sequence[Network], requests: int = 100_000, *,
             trace: str = "burst", rate_rps: float = 2000.0,
             seed: int = 0, guaranteed_fraction: float = 0.1,
             faults: Optional[FaultInjector] = None,
             max_batch: int = 8, max_queue: int = 256,
             shed_depth_fraction: float = 0.75,
             deadline_ms: float = 25.0,
             autoscale: Optional[AutoscalePolicy] = None,
             mean_service_ms: float = 1.0, batch_setup_ms: float = 0.2,
             spot_check_every: int = 1000, tick_s: float = 0.02,
             cache: Optional[PlanCache] = None,
             trace_kwargs: Optional[Dict[str, Any]] = None,
             devices: Optional[Sequence[Any]] = None,
             link: Optional[Any] = None,
             weight_items: Optional[int] = None,
             partition_sizes: Optional[Sequence[int]] = None) -> SoakReport:
    """Run one deterministic virtual-time soak; returns its report.

    ``networks`` is the serving zoo (arrivals round-robin over it by the
    trace's seeded choice); ``spot_check_every`` executes every Nth
    request for real and bit-compares against an independent reference
    (0 disables). All randomness flows from ``seed``. With ``devices``
    every plan is sharded across that simulated fleet (the
    ``"pipeline"`` family, :mod:`repro.dist`); spot checks then pin the
    sharded execution against the same single-executor reference.
    """
    if not networks:
        raise ConfigError("soak needs at least one network")
    if requests < 1:
        raise ConfigError("soak needs at least one request",
                          requests=requests)
    if mean_service_ms <= 0 or batch_setup_ms < 0:
        raise ConfigError("service model times must be positive",
                          mean_service_ms=mean_service_ms,
                          batch_setup_ms=batch_setup_ms)
    if spot_check_every < 0:
        raise ConfigError("spot_check_every must be >= 0",
                          spot_check_every=spot_check_every)
    if tick_s <= 0:
        raise ConfigError("tick_s must be positive", tick_s=tick_s)

    networks = list(networks)
    injector = faults if faults is not None else FaultInjector()
    policy = autoscale if autoscale is not None else AutoscalePolicy()
    cache = cache if cache is not None else PlanCache()
    plans: List[CompiledPlan] = [
        cache.get_or_compile(net, devices=devices, link=link,
                             weight_items=weight_items,
                             partition_sizes=partition_sizes)
        for net in networks]
    references = [NetworkExecutor(net, seed=plan.seed,
                                  integer=plan.key.precision == "int")
                  for net, plan in zip(networks, plans)]
    key_to_index = {plan.key: i for i, plan in enumerate(plans)}
    per_item_s = _service_model(networks, mean_service_ms)

    clock = ManualClock()
    scheduler = BatchScheduler(
        max_batch=max_batch, max_queue=max_queue,
        admission=AdmissionPolicy(max_queue=max_queue,
                                  shed_depth_fraction=shed_depth_fraction),
        default_deadline_ms=deadline_ms, clock=clock)
    scaler = Autoscaler(policy)

    arrivals: List[Arrival] = make_trace(
        trace, requests, rate_rps, seed=seed,
        guaranteed_fraction=guaranteed_fraction, networks=len(networks),
        **(trace_kwargs or {}))

    counts = {"submitted": 0, "completed": 0, "shed": 0, "rejected": 0,
              "guaranteed_shed": 0, "spot_checks": 0, "wrong_answers": 0,
              "batches": 0, "deadline_flushes": 0, "fault_stall_batches": 0,
              "fault_repairs": 0}
    latencies: List[float] = []
    waits: List[float] = []
    shed_log: List[Tuple[int, str]] = []
    spot_failures: List[int] = []
    spot_inputs: Dict[int, np.ndarray] = {}
    placeholder = np.empty(0)

    def _input_for(rid: int, net_index: int) -> np.ndarray:
        shape = networks[net_index].input_shape
        rng = np.random.default_rng([seed, rid])
        # integer-valued float64: the repo's exact-arithmetic convention
        # (int64 would break LRN's float scale math on gated networks)
        return rng.integers(0, 8, size=(shape.channels, shape.height,
                                        shape.width)).astype(np.float64)

    # -- discrete-event loop ---------------------------------------------------
    # busy: finish times of in-flight batches (len(busy) = busy workers)
    busy: List[Tuple[float, int]] = []
    done_payload: Dict[int, Tuple[List[ServeRequest], float]] = {}
    seq = 0
    next_arrival = 0
    next_tick = 0.0

    def _price_batch(batch: List[ServeRequest]) -> float:
        """Virtual service seconds for one batch, faults included."""
        index = key_to_index[batch[0].key]
        service = batch_setup_ms / 1e3 + per_item_s[index] * len(batch)
        for request in batch:
            site = f"serve[{request.id}]"
            stall = injector.transfer_stalls(site)
            if stall:
                service += stall * STALL_S_PER_CYCLE
                counts["fault_stall_batches"] += 1
            if injector.corrupts(site):
                # repaired by re-fetch: one extra item's worth of work
                service += per_item_s[index]
                counts["fault_repairs"] += 1
                injector.record_refetch(site)
        return service

    def _dispatch() -> None:
        nonlocal seq
        while len(busy) < scaler.workers:
            batch = scheduler.poll()
            if batch is None:
                break
            counts["batches"] += 1
            now = clock.now()
            finish = now + _price_batch(batch)
            seq += 1
            heapq.heappush(busy, (finish, seq))
            done_payload[seq] = (batch, now)

    def _complete(batch: List[ServeRequest], started_s: float) -> None:
        now = clock.now()
        scheduler.note_service(len(batch), now - started_s)
        for request in batch:
            latencies.append(now - request.enqueued_s)
            waits.append(started_s - request.enqueued_s)
            counts["completed"] += 1
            if request.id in spot_inputs:
                x = spot_inputs.pop(request.id)
                index = key_to_index[request.key]
                counts["spot_checks"] += 1
                got = plans[index].execute([x])[0]
                want = references[index].run(x)
                if not np.array_equal(got, want):
                    counts["wrong_answers"] += 1
                    spot_failures.append(request.id)

    while (next_arrival < len(arrivals) or busy or scheduler.depth > 0):
        candidates = [next_tick]
        if next_arrival < len(arrivals):
            candidates.append(arrivals[next_arrival].t)
        if busy:
            candidates.append(busy[0][0])
        if len(busy) < scaler.workers:
            # a flush deadline only matters while a worker is free to
            # take the batch; with the pool saturated the next real
            # event is a completion or a tick
            flush_at = scheduler.next_flush_at()
            if flush_at is not None:
                candidates.append(flush_at)
        clock.advance_to(max(min(candidates), clock.now()))
        now = clock.now()

        while busy and busy[0][0] <= now:
            _, done_seq = heapq.heappop(busy)
            batch, started_s = done_payload.pop(done_seq)
            _complete(batch, started_s)

        while (next_arrival < len(arrivals)
               and arrivals[next_arrival].t <= now):
            arrival = arrivals[next_arrival]
            next_arrival += 1
            rid = counts["submitted"]
            counts["submitted"] += 1
            spot = (spot_check_every > 0 and rid % spot_check_every == 0)
            x = _input_for(rid, arrival.network) if spot else placeholder
            request = ServeRequest(id=rid, key=plans[arrival.network].key,
                                   x=x, klass=arrival.klass)
            try:
                scheduler.submit(request)
            except ServeShedError as exc:
                counts["shed"] += 1
                shed_log.append((rid, exc.context.get("watermark", "shed")))
                if arrival.klass == GUARANTEED:
                    counts["guaranteed_shed"] += 1
            except ServeOverloadError:
                counts["rejected"] += 1
                shed_log.append((rid, "full"))
            else:
                if spot:
                    spot_inputs[rid] = x

        if now >= next_tick:
            scaler.observe(scheduler.depth, now)
            next_tick = now + tick_s

        _dispatch()

    counts["deadline_flushes"] = scheduler.deadline_flushes
    virtual_s = clock.now()
    lat_ms = [s * 1e3 for s in latencies]
    wait_ms = [s * 1e3 for s in waits]

    def _quantiles(values: List[float]) -> Dict[str, float]:
        return {"p50": percentile(values, 50), "p99": percentile(values, 99),
                "p999": percentile(values, 99.9),
                "max": max(values) if values else 0.0,
                "mean": (sum(values) / len(values)) if values else 0.0}

    config = {
        "networks": [net.name for net in networks],
        "requests": requests, "trace": trace, "rate_rps": rate_rps,
        "seed": seed, "guaranteed_fraction": guaranteed_fraction,
        "faults": str(injector.plan) if injector.enabled else "",
        "max_batch": max_batch, "max_queue": max_queue,
        "shed_depth_fraction": shed_depth_fraction,
        "deadline_ms": deadline_ms,
        "min_workers": policy.min_workers,
        "max_workers": policy.max_workers,
        "final_workers": scaler.workers,
        "mean_service_ms": mean_service_ms,
        "spot_check_every": spot_check_every,
        "devices": [d.name for d in devices] if devices else [],
    }
    return SoakReport(
        config=config, counts=counts,
        latency_ms=_quantiles(lat_ms), queue_wait_ms=_quantiles(wait_ms),
        shed_rate=(counts["shed"] + counts["rejected"])
        / max(1, counts["submitted"]),
        throughput_rps=counts["completed"] / virtual_s if virtual_s else 0.0,
        virtual_s=virtual_s, scale_events=list(scaler.events),
        faults_injected=dict(injector.counts),
        shed_log=shed_log, spot_failures=spot_failures)
