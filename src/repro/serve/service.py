"""The serving front end: submit inputs, get futures, drain gracefully.

:class:`InferenceService` ties the subsystem together — plan cache,
batching scheduler, worker pool, stats — behind a small synchronous +
futures API::

    from repro.serve import InferenceService
    from repro.nn.zoo import toynet

    with InferenceService(toynet(), workers=4, max_batch=8) as svc:
        y = svc.infer(x)                      # synchronous
        futures = svc.submit_batch(xs)        # pipelined
        outs = [f.result() for f in futures]

Every served output is bit-identical to a direct
``NetworkExecutor(network).run(x)`` — including under an injected
``transfer_corrupt`` fault plan, whose repairs happen inside the worker
retry loop. Shutdown is graceful by default (drain the queue, join the
workers) or immediate (``drain=False`` fails queued requests with a
diagnosed error).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.fusion import Strategy
from ..errors import ConfigError, ServeShedError, SimFaultError
from ..faults.budget import ExplorationBudget
from ..faults.injector import FaultInjector
from ..faults.retry import RetryPolicy
from ..nn.network import Network
from ..obs.slo import SLOTarget
from ..obs.tracing import Tracer
from .autoscale import AutoscalePolicy
from .clock import Clock
from .plan import CompiledPlan, PlanCache, PlanKey
from .sanitizer import make_lock
from .scheduler import SHEDDABLE, AdmissionPolicy, BatchScheduler, ServeRequest
from .stats import ServeStats
from .worker import STALL_S_PER_CYCLE, WorkerPool


def _slo_targets(slo: Any) -> List[SLOTarget]:
    """Normalize the service's ``slo`` argument to a list of targets.

    Accepts ``None``, a latency budget in milliseconds (``float``/``int``
    shorthand for a p99 target), one :class:`SLOTarget`, or a sequence
    mixing the two.
    """
    if slo is None:
        return []
    if isinstance(slo, SLOTarget):
        return [slo]
    if isinstance(slo, (int, float)) and not isinstance(slo, bool):
        return [SLOTarget(latency_ms=float(slo))]
    if isinstance(slo, (list, tuple)):
        out: List[SLOTarget] = []
        for item in slo:
            out.extend(_slo_targets(item))
        return out
    raise ConfigError("slo must be a latency in ms, an SLOTarget, or a "
                      "sequence of either", slo=repr(slo))


class InferenceService:
    """Batched inference over one or more compiled plans.

    Parameters mirror the subsystem's layers: plan knobs (``strategy``,
    ``tip``, ``storage_budget_bytes``, ``precision``, ``seed``,
    ``explore_budget``) feed the plan cache; batching knobs
    (``max_batch``, ``max_wait_ms``, ``max_queue``) feed the scheduler;
    ``workers``/``mode``/``retry``/``faults`` feed the pool. ``workers=0``
    is legal — requests queue but never execute until shutdown aborts
    them (useful for tests and for staging queues).

    Observability knobs: ``trace=True`` mints a trace per request (the
    request id doubles as the trace id) and records a span tree —
    ``serve.request`` → ``serve.enqueue`` → ``serve.batch`` →
    ``serve.execute``, with retry/requeue/stall instants — on
    ``service.tracer``, independent of the global :mod:`repro.obs`
    profiling switch. ``slo`` attaches latency SLO monitors to the
    stats (a bare number is shorthand for a p99 latency budget in
    milliseconds); ``stall_s_per_cycle`` scales how injected
    ``dram_stall`` cycles slow served requests down.

    ``devices`` shards every registered network across that fleet of
    simulated accelerators (see :mod:`repro.dist`): plans compile to
    the ``"pipeline"`` family, execute bit-identically to direct runs,
    and report per-device stage timing into the tracer. ``link`` and
    ``weight_items`` tune the inter-device link model and micro-batch
    weight amortization; both default to the :mod:`repro.dist`
    defaults.
    """

    def __init__(self, network: Optional[Network] = None, *,
                 networks: Sequence[Network] = (),
                 workers: int = 2, mode: str = "thread",
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 max_queue: int = 1024,
                 strategy: Strategy = Strategy.REUSE, tip: int = 1,
                 storage_budget_bytes: Optional[int] = None,
                 precision: str = "int", seed: int = 0,
                 explore_budget: Optional[ExplorationBudget] = None,
                 retry: Optional[RetryPolicy] = None,
                 faults: Optional[FaultInjector] = None,
                 cache: Optional[PlanCache] = None,
                 trace: bool = False,
                 slo: Any = None,
                 admission: Optional[AdmissionPolicy] = None,
                 deadline_ms: Optional[float] = None,
                 autoscale: Optional[AutoscalePolicy] = None,
                 clock: Optional[Clock] = None,
                 stall_s_per_cycle: float = STALL_S_PER_CYCLE,
                 devices: Optional[Sequence[Any]] = None,
                 link: Optional[Any] = None,
                 weight_items: Optional[int] = None,
                 partition_sizes: Optional[Sequence[int]] = None,
                 tuned: Optional[Any] = None):
        self.cache = cache if cache is not None else PlanCache()
        self.stats = ServeStats()
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        targets = _slo_targets(slo)
        for target in targets:
            self.stats.add_slo(target)
        if deadline_ms is None and targets:
            # SLO-derived default: finishing by the tightest latency
            # target is the natural per-request deadline budget.
            deadline_ms = min(t.latency_ms for t in targets)
        self.scheduler = BatchScheduler(max_batch=max_batch,
                                        max_wait_ms=max_wait_ms,
                                        max_queue=max_queue,
                                        admission=admission,
                                        default_deadline_ms=deadline_ms,
                                        clock=clock)
        self.pool = WorkerPool(self.scheduler, self._resolve_plan,
                               workers=workers, mode=mode, retry=retry,
                               faults=faults, stats=self.stats,
                               autoscale=autoscale, clock=clock,
                               stall_s_per_cycle=stall_s_per_cycle)
        self._plan_defaults = dict(strategy=strategy, tip=tip,
                                   storage_budget_bytes=storage_budget_bytes,
                                   precision=precision, seed=seed,
                                   budget=explore_budget,
                                   devices=(tuple(devices) if devices
                                            else devices),
                                   link=link, weight_items=weight_items,
                                   partition_sizes=partition_sizes,
                                   tuned=tuned)
        self._plans: Dict[PlanKey, CompiledPlan] = {}
        self._default_key: Optional[PlanKey] = None
        self._next_id = 0
        # guards _plans, _default_key, _next_id, and _shut_down
        self._lock = make_lock("serve.service.state")
        self._shut_down = False
        for net in ([network] if network is not None else []) + list(networks):
            self.register(net)

    # -- plan management -------------------------------------------------------

    def register(self, network: Network, **overrides: Any) -> PlanKey:
        """Compile (or fetch from cache) a plan for ``network``."""
        options = {**self._plan_defaults, **overrides}
        plan = self.cache.get_or_compile(network, **options)
        with self._lock:
            self._plans[plan.key] = plan
            if self._default_key is None:
                self._default_key = plan.key
        return plan.key

    def plan(self, key: Optional[PlanKey] = None) -> CompiledPlan:
        key = key if key is not None else self._default_key
        if key is None:
            raise ConfigError("no network registered with this service")
        return self._resolve_plan(key)

    def _resolve_plan(self, key: PlanKey) -> CompiledPlan:
        plan = self._plans.get(key)
        if plan is None:
            raise ConfigError("no plan registered under this key",
                              key=str(key))
        return plan

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "InferenceService":
        self.pool.start()
        return self

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(drain=exc_type is None)
        return False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait (without shutting down) until no request is pending."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while self.stats.pending > 0:
            if self.pool.workers == 0:
                return False
            if deadline is not None and time.perf_counter() > deadline:
                return False
            time.sleep(0.0005)
        return True

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service. ``drain=True`` serves everything already
        queued first; ``drain=False`` (or a zero-worker pool, which could
        never drain) fails queued requests with a diagnosed error."""
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
        if self.pool.workers == 0:
            drain = False
        aborted = self.scheduler.close(drain=drain)
        for request in aborted:
            if request.tracer is not None:
                # close the open queue stint before the root span's
                # done-callback fires (tracer.end is idempotent, so a
                # request that never reached a worker is still complete)
                request.tracer.end(request.enqueue_span, status="aborted")
                request.tracer.end(request.batch_span, status="aborted")
            if not request.future.done():
                request.future.set_exception(SimFaultError(
                    "request aborted at shutdown", request=request.id))
        if aborted:
            self.stats.record_aborts(len(aborted))
        self.pool.join(timeout=timeout)

    # -- request API -----------------------------------------------------------

    def submit(self, x: np.ndarray, key: Optional[PlanKey] = None, *,
               klass: str = SHEDDABLE,
               deadline_ms: Optional[float] = None) -> Future:
        """Enqueue one input.

        Overload surfaces as structured backpressure rather than silence:
        a watermark shed raises :class:`~repro.errors.ServeShedError`
        (sheddable class only, with a ``retry_after_s`` drain estimate)
        and a hard-full queue raises
        :class:`~repro.errors.ServeOverloadError`. ``klass`` selects the
        request class (``"guaranteed"`` requests are admitted up to the
        hard queue cap); ``deadline_ms`` overrides the service's default
        per-request latency budget for deadline-aware batching.
        """
        self.start()
        plan_key = key if key is not None else self._default_key
        if plan_key is None:
            raise ConfigError("no network registered with this service")
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
        request = ServeRequest(id=request_id, key=plan_key, x=np.asarray(x),
                               klass=klass, deadline_ms=deadline_ms)
        if self.tracer is not None:
            self._begin_trace(request)
        self.stats.record_submit()
        try:
            self.scheduler.submit(request)
        except Exception as exc:
            if isinstance(exc, ServeShedError):
                self.stats.record_shed()
            else:
                self.stats.record_rejection()
            if request.tracer is not None:
                request.tracer.end(request.enqueue_span, status="rejected")
                request.tracer.end(request.root_span, status="rejected")
            raise
        return request.future

    def _begin_trace(self, request: ServeRequest) -> None:
        """Mint the request's trace: the request id is the trace id, the
        root span brackets submit → future-done, and the first enqueue
        span opens now (workers close it when the batch picks up)."""
        tracer = self.tracer
        assert tracer is not None
        request.tracer = tracer
        request.trace_id = request.id
        request.root_span = tracer.begin("serve.request", request.id,
                                         request=request.id)
        request.enqueue_span = tracer.begin("serve.enqueue", request.id,
                                            parent_id=request.root_span)
        root_span = request.root_span

        def _close_root(future: Future) -> None:
            status = "ok"
            if future.cancelled() or future.exception() is not None:
                status = "failed"
            tracer.end(root_span, status=status)

        request.future.add_done_callback(_close_root)

    def submit_batch(self, xs: Sequence[np.ndarray],
                     key: Optional[PlanKey] = None) -> List[Future]:
        return [self.submit(x, key=key) for x in xs]

    def infer(self, x: np.ndarray, key: Optional[PlanKey] = None,
              timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous single-input inference."""
        return self.submit(x, key=key).result(timeout=timeout)

    def result(self, future: Future,
               timeout: Optional[float] = None) -> np.ndarray:
        return future.result(timeout=timeout)

    # -- reporting -------------------------------------------------------------

    def report(self) -> str:
        lines = [self.stats.render(), "plan cache"]
        stats = self.cache.stats_dict()
        lines.append(
            f"  plans    : {stats['plans']} resident "
            f"({stats['bytes'] / 2**10:.0f} KB), {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['evictions']} evictions")
        for plan in self._plans.values():
            lines.append(f"  - {plan.describe()}")
        if self.pool.respawns:
            lines.append(f"  workers  : {self.pool.respawns} respawned")
        if self.pool.scale_events:
            lines.append(
                f"  autoscale: {len(self.pool.scale_events)} events, "
                f"{self.pool.workers} workers now")
        if self.tracer is not None:
            traces = self.tracer.trace_ids()
            complete = sum(1 for tid in traces if self.tracer.complete(tid))
            lines.append(
                f"  tracing  : {len(traces)} traces recorded, "
                f"{complete} complete, {self.tracer.open_spans} spans "
                "still open")
        return "\n".join(lines)
