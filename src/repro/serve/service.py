"""The serving front end: submit inputs, get futures, drain gracefully.

:class:`InferenceService` ties the subsystem together — plan cache,
batching scheduler, worker pool, stats — behind a small synchronous +
futures API::

    from repro.serve import InferenceService
    from repro.nn.zoo import toynet

    with InferenceService(toynet(), workers=4, max_batch=8) as svc:
        y = svc.infer(x)                      # synchronous
        futures = svc.submit_batch(xs)        # pipelined
        outs = [f.result() for f in futures]

Every served output is bit-identical to a direct
``NetworkExecutor(network).run(x)`` — including under an injected
``transfer_corrupt`` fault plan, whose repairs happen inside the worker
retry loop. Shutdown is graceful by default (drain the queue, join the
workers) or immediate (``drain=False`` fails queued requests with a
diagnosed error).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.fusion import Strategy
from ..errors import ConfigError, SimFaultError
from ..faults.budget import ExplorationBudget
from ..faults.injector import FaultInjector
from ..faults.retry import RetryPolicy
from ..nn.network import Network
from .plan import CompiledPlan, PlanCache, PlanKey
from .scheduler import BatchScheduler, ServeRequest
from .stats import ServeStats
from .worker import WorkerPool


class InferenceService:
    """Batched inference over one or more compiled plans.

    Parameters mirror the subsystem's layers: plan knobs (``strategy``,
    ``tip``, ``storage_budget_bytes``, ``precision``, ``seed``,
    ``explore_budget``) feed the plan cache; batching knobs
    (``max_batch``, ``max_wait_ms``, ``max_queue``) feed the scheduler;
    ``workers``/``mode``/``retry``/``faults`` feed the pool. ``workers=0``
    is legal — requests queue but never execute until shutdown aborts
    them (useful for tests and for staging queues).
    """

    def __init__(self, network: Optional[Network] = None, *,
                 networks: Sequence[Network] = (),
                 workers: int = 2, mode: str = "thread",
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 max_queue: int = 1024,
                 strategy: Strategy = Strategy.REUSE, tip: int = 1,
                 storage_budget_bytes: Optional[int] = None,
                 precision: str = "int", seed: int = 0,
                 explore_budget: Optional[ExplorationBudget] = None,
                 retry: Optional[RetryPolicy] = None,
                 faults: Optional[FaultInjector] = None,
                 cache: Optional[PlanCache] = None):
        self.cache = cache if cache is not None else PlanCache()
        self.stats = ServeStats()
        self.scheduler = BatchScheduler(max_batch=max_batch,
                                        max_wait_ms=max_wait_ms,
                                        max_queue=max_queue)
        self.pool = WorkerPool(self.scheduler, self._resolve_plan,
                               workers=workers, mode=mode, retry=retry,
                               faults=faults, stats=self.stats)
        self._plan_defaults = dict(strategy=strategy, tip=tip,
                                   storage_budget_bytes=storage_budget_bytes,
                                   precision=precision, seed=seed,
                                   budget=explore_budget)
        self._plans: Dict[PlanKey, CompiledPlan] = {}
        self._default_key: Optional[PlanKey] = None
        self._next_id = 0
        self._lock = threading.Lock()
        self._shut_down = False
        for net in ([network] if network is not None else []) + list(networks):
            self.register(net)

    # -- plan management -------------------------------------------------------

    def register(self, network: Network, **overrides: Any) -> PlanKey:
        """Compile (or fetch from cache) a plan for ``network``."""
        options = {**self._plan_defaults, **overrides}
        plan = self.cache.get_or_compile(network, **options)
        with self._lock:
            self._plans[plan.key] = plan
            if self._default_key is None:
                self._default_key = plan.key
        return plan.key

    def plan(self, key: Optional[PlanKey] = None) -> CompiledPlan:
        key = key if key is not None else self._default_key
        if key is None:
            raise ConfigError("no network registered with this service")
        return self._resolve_plan(key)

    def _resolve_plan(self, key: PlanKey) -> CompiledPlan:
        plan = self._plans.get(key)
        if plan is None:
            raise ConfigError("no plan registered under this key",
                              key=str(key))
        return plan

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "InferenceService":
        self.pool.start()
        return self

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(drain=exc_type is None)
        return False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait (without shutting down) until no request is pending."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while self.stats.pending > 0:
            if self.pool.workers == 0:
                return False
            if deadline is not None and time.perf_counter() > deadline:
                return False
            time.sleep(0.0005)
        return True

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service. ``drain=True`` serves everything already
        queued first; ``drain=False`` (or a zero-worker pool, which could
        never drain) fails queued requests with a diagnosed error."""
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
        if self.pool.workers == 0:
            drain = False
        aborted = self.scheduler.close(drain=drain)
        for request in aborted:
            if not request.future.done():
                request.future.set_exception(SimFaultError(
                    "request aborted at shutdown", request=request.id))
        if aborted:
            self.stats.record_aborts(len(aborted))
        self.pool.join(timeout=timeout)

    # -- request API -----------------------------------------------------------

    def submit(self, x: np.ndarray, key: Optional[PlanKey] = None) -> Future:
        """Enqueue one input; fast-fails with
        :class:`~repro.errors.ServeOverloadError` when the queue is full."""
        self.start()
        plan_key = key if key is not None else self._default_key
        if plan_key is None:
            raise ConfigError("no network registered with this service")
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
        request = ServeRequest(id=request_id, key=plan_key, x=np.asarray(x))
        self.stats.record_submit()
        try:
            self.scheduler.submit(request)
        except Exception:
            self.stats.record_rejection()
            raise
        return request.future

    def submit_batch(self, xs: Sequence[np.ndarray],
                     key: Optional[PlanKey] = None) -> List[Future]:
        return [self.submit(x, key=key) for x in xs]

    def infer(self, x: np.ndarray, key: Optional[PlanKey] = None,
              timeout: Optional[float] = None) -> np.ndarray:
        """Synchronous single-input inference."""
        return self.submit(x, key=key).result(timeout=timeout)

    def result(self, future: Future,
               timeout: Optional[float] = None) -> np.ndarray:
        return future.result(timeout=timeout)

    # -- reporting -------------------------------------------------------------

    def report(self) -> str:
        lines = [self.stats.render(), "plan cache"]
        stats = self.cache.stats_dict()
        lines.append(
            f"  plans    : {stats['plans']} resident "
            f"({stats['bytes'] / 2**10:.0f} KB), {stats['hits']} hits, "
            f"{stats['misses']} misses, {stats['evictions']} evictions")
        for plan in self._plans.values():
            lines.append(f"  - {plan.describe()}")
        if self.pool.respawns:
            lines.append(f"  workers  : {self.pool.respawns} respawned")
        return "\n".join(lines)
