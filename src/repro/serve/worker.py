"""The worker pool: N workers drain batches from the scheduler.

Workers are threads by default; ``mode="process"`` additionally gives
each worker a child process executing the compiled plan, so NumPy work
that holds the GIL still overlaps across workers (the parent thread
blocks on the pipe with the GIL released). Outputs are bit-identical to
a direct :meth:`~repro.sim.network_exec.NetworkExecutor.run` either way
— thread workers share the plan's executor, process workers rebuild it
deterministically from the plan's serialized form.

Worker-level faults follow the :mod:`repro.faults` contract: when an
injector is installed, each served result may arrive "corrupted"
(``transfer_corrupt``, always detected) and is repaired by re-executing
the request under the bounded
:class:`~repro.faults.retry.RetryPolicy`; exhaustion surfaces as a
diagnosed :class:`~repro.errors.SimFaultError` on that request's future,
never as silent corruption. A worker that dies mid-batch is respawned
and its unfinished requests are requeued at the front of the line.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .. import obs
from ..errors import ConfigError, SimFaultError
from ..faults.injector import FaultInjector
from ..faults.retry import RetryPolicy
from ..faults.spec import TRANSFER_CORRUPT
from .autoscale import Autoscaler, AutoscalePolicy, ScaleEvent
from .clock import SYSTEM_CLOCK, Clock, SystemClock
from .plan import CompiledPlan
from .sanitizer import make_lock
from .scheduler import BatchScheduler, ServeRequest
from .stats import ServeStats

MODES = ("thread", "process")


def _process_main(conn, plan_state) -> None:
    """Child-process loop: rebuild the plan, execute batches off the pipe."""
    plan = CompiledPlan.from_dict(plan_state)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            conn.close()
            return
        try:
            conn.send(("ok", plan.execute(msg)))
        except Exception as err:  # diagnosed on the parent side
            conn.send(("err", f"{type(err).__name__}: {err}"))


class _ProcessClient:
    """Parent-side handle on one child process executing one plan."""

    def __init__(self, plan: CompiledPlan):
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            self._ctx = multiprocessing.get_context()
        self._state = plan.to_dict()
        self._spawn()

    def _spawn(self) -> None:
        self._conn, child_conn = self._ctx.Pipe()
        self._proc = self._ctx.Process(target=_process_main,
                                       args=(child_conn, self._state),
                                       daemon=True)
        self._proc.start()
        child_conn.close()

    def execute(self, xs: List[np.ndarray]) -> List[np.ndarray]:
        self._conn.send(xs)
        status, payload = self._conn.recv()
        if status != "ok":
            raise SimFaultError("plan execution failed in worker process",
                                detail=payload)
        return payload

    def respawn(self) -> None:
        self.close(timeout=0.1)
        self._spawn()

    def close(self, timeout: float = 1.0) -> None:
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=timeout)
        if self._proc.is_alive():
            self._proc.terminate()
        self._conn.close()


#: Wall seconds one simulated stall cycle costs a served request. With
#: the default ``dram_stall`` spec (cycles=64) one stall adds ~6.4 ms —
#: comfortably over a millisecond-scale latency SLO, which is the point:
#: injected stall bursts must be *observable* in the latency timeline.
STALL_S_PER_CYCLE = 1e-4


class WorkerPool:
    """N workers pulling batches from a :class:`BatchScheduler`."""

    def __init__(self, scheduler: BatchScheduler,
                 resolve_plan: Callable[[Any], CompiledPlan],
                 workers: int = 1, mode: str = "thread",
                 retry: Optional[RetryPolicy] = None,
                 faults: Optional[FaultInjector] = None,
                 stats: Optional[ServeStats] = None,
                 stall_s_per_cycle: float = STALL_S_PER_CYCLE,
                 autoscale: Optional[AutoscalePolicy] = None,
                 clock: Optional[Clock] = None,
                 tick_s: float = 0.02):
        if workers < 0:
            raise ConfigError("workers must be >= 0", workers=workers)
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}", mode=mode)
        if tick_s <= 0:
            raise ConfigError("tick_s must be positive", tick_s=tick_s)
        self.scheduler = scheduler
        self.resolve_plan = resolve_plan
        self.workers = workers
        self.mode = mode
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.stats = stats
        self.stall_s_per_cycle = stall_s_per_cycle
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.tick_s = tick_s
        self.autoscaler = (Autoscaler(autoscale, workers=workers)
                           if autoscale is not None else None)
        if self.autoscaler is not None:
            self.workers = self.autoscaler.workers
        self.respawns = 0
        # guards _threads, _seats, _started, workers, and respawns —
        # everything the worker threads, the autoscaler supervisor, and
        # the caller thread all touch
        self._lock = make_lock("serve.worker.pool")
        self._threads: List[threading.Thread] = []
        self._seats: Dict[int, threading.Thread] = {}
        self._started = False
        #: test hook: callable(worker_id, batch); an exception it raises is
        #: an "unexpected worker death" exercising requeue + respawn
        self.fail_hook: Optional[Callable[[int, List[ServeRequest]], None]] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for wid in range(self.workers):
                self._spawn_locked(wid)
            # The live supervisor only makes sense on real time; a
            # ManualClock pool is driven by explicit scale_tick() calls
            # (tests, the virtual-time soak), where a background ticker
            # would race the deterministic schedule.
            if (self.autoscaler is not None
                    and isinstance(self.clock, SystemClock)):
                supervisor = threading.Thread(target=self._supervise,
                                              name="serve-autoscaler",
                                              daemon=True)
                self._threads.append(supervisor)
                supervisor.start()

    def _spawn_locked(self, wid: int) -> None:
        """Seat a fresh worker thread; caller must hold ``self._lock``."""
        thread = threading.Thread(target=self._run, args=(wid,),
                                  name=f"serve-worker-{wid}", daemon=True)
        self._threads.append(thread)
        self._seats[wid] = thread
        thread.start()

    # -- autoscaling -----------------------------------------------------------

    @property
    def scale_events(self) -> List[ScaleEvent]:
        return [] if self.autoscaler is None else list(self.autoscaler.events)

    def scale_tick(self, now: Optional[float] = None) -> Optional[ScaleEvent]:
        """Run one autoscaling observation and apply its decision.

        The live supervisor thread calls this every ``tick_s``; tests
        and the soak harness call it directly with an explicit ``now``
        so scaling decisions replay deterministically.
        """
        if self.autoscaler is None:
            return None
        t = self.clock.now() if now is None else now
        with self._lock:
            if not self._started:
                return None
            event = self.autoscaler.observe(self.scheduler.depth, t)
            if event is not None:
                self.workers = event.workers_to
                if event.action == "up":
                    for wid in range(event.workers_from, event.workers_to):
                        seat = self._seats.get(wid)
                        if seat is None or not seat.is_alive():
                            self._spawn_locked(wid)
        if event is not None:
            obs.add_counter(f"serve.scale_{event.action}")
            if self.stats is not None:
                self.stats.record_scale(event)
        return event

    def _supervise(self) -> None:
        import time

        while True:
            if self.scheduler.closed and self.scheduler.depth == 0:
                return
            self.scale_tick()
            time.sleep(self.tick_s)

    def _should_retire(self, wid: int) -> bool:
        """Scale-down retirement: seats at/above the target count exit."""
        if self.autoscaler is None:
            return False
        with self._lock:
            return wid >= self.workers

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every worker to exit (scheduler must be closed)."""
        while True:
            with self._lock:
                threads = list(self._threads)
            alive = [t for t in threads if t.is_alive()]
            if not alive:
                return
            for thread in alive:
                thread.join(timeout=timeout)
            if timeout is not None:
                return

    # -- the worker loop -------------------------------------------------------

    def _run(self, wid: int) -> None:
        clients: Dict[Any, _ProcessClient] = {}
        # autoscaling pools poll with a bounded wait so retired seats
        # notice the lowered target; fixed pools block indefinitely
        timeout = self.tick_s if self.autoscaler is not None else None
        try:
            while True:
                if self._should_retire(wid):
                    return
                batch = self.scheduler.next_batch(timeout)
                if batch is None:
                    return
                if not batch:
                    continue
                try:
                    self._execute_batch(wid, batch, clients)
                except Exception:
                    # unexpected worker death: requeue what this batch
                    # still owes, then hand the seat to a fresh worker
                    pending = [r for r in batch if not r.future.done()]
                    self.scheduler.requeue(pending)
                    with self._lock:
                        self.respawns += 1
                        self._spawn_locked(wid)
                    obs.add_counter("serve.worker_respawns")
                    return
        finally:
            with self._lock:
                if self._seats.get(wid) is threading.current_thread():
                    del self._seats[wid]
            for client in clients.values():
                client.close()

    def _execute_batch(self, wid: int, batch: List[ServeRequest],
                       clients: Dict[Any, _ProcessClient]) -> None:
        import time

        plan = self.resolve_plan(batch[0].key)
        # Trace: the queue stint ends here; the batch span opens before
        # the crash hook so a dying worker leaves spans the requeue path
        # can close (scheduler.requeue marks them "crashed").
        for request in batch:
            if request.tracer is not None:
                request.tracer.end(request.enqueue_span)
                request.batch_span = request.tracer.begin(
                    "serve.batch", request.trace_id,
                    parent_id=request.root_span, worker=wid,
                    size=len(batch))
        if self.fail_hook is not None:
            self.fail_hook(wid, batch)
        execute = self._executor_for(plan, clients)
        t0 = time.perf_counter()
        queue_waits = [t0 - r.enqueued_s for r in batch]
        exec_spans: Dict[int, int] = {}
        for request in batch:
            if request.tracer is not None:
                exec_spans[request.id] = request.tracer.begin(
                    "serve.execute", request.trace_id,
                    parent_id=request.batch_span, worker=wid)
        with obs.span("serve.batch", worker=wid, size=len(batch),
                      network=plan.network.name):
            outs = self._run_with_retry(plan, execute, batch, exec_spans)
        exec_s = time.perf_counter() - t0
        self._trace_stages(plan, batch, exec_spans)
        # feed the admission controller's service-rate EWMA (estimated
        # wait watermark + retry-after hints)
        self.scheduler.note_service(len(batch), exec_s)
        failed = 0
        for request, out in zip(batch, outs):
            if request.tracer is not None:
                request.tracer.end(
                    exec_spans.get(request.id, -1),
                    status="error" if isinstance(out, Exception) else "ok")
                request.tracer.end(request.batch_span)
            if isinstance(out, Exception):
                request.future.set_exception(out)
                failed += 1
            else:
                request.future.set_result(out)
        if self.stats is not None:
            self.stats.record_batch(len(batch), queue_waits, exec_s,
                                    failed=failed)

    def _trace_stages(self, plan: CompiledPlan, batch: List[ServeRequest],
                      exec_spans: Dict[int, int]) -> None:
        """Replay a sharded plan's per-device stage windows into the trace.

        Pipeline plans record wall-clock per-stage offsets while
        executing (``last_stage_report``, raw ``perf_counter`` values).
        Emitted once per batch under the first traced request's execute
        span; each span carries a ``device`` attribute so the Chrome
        export gives every device its own lane.
        """
        report = getattr(plan, "last_stage_report", None)
        if not report:
            return
        for request in batch:
            if request.tracer is None:
                continue
            epoch = request.tracer.epoch
            parent = exec_spans.get(request.id, -1)
            for entry in report:
                request.tracer.span_at(
                    "serve.stage", request.trace_id,
                    entry["start_s"] - epoch, entry["end_s"] - epoch,
                    parent_id=parent, device=entry["device"],
                    stage=entry["stage"])
            return

    def _executor_for(self, plan: CompiledPlan,
                      clients: Dict[Any, _ProcessClient]
                      ) -> Callable[[List[np.ndarray]], List[np.ndarray]]:
        if self.mode == "thread":
            return plan.execute
        client = clients.get(plan.key)
        if client is None:
            client = clients[plan.key] = _ProcessClient(plan)

        def execute(xs: List[np.ndarray]) -> List[np.ndarray]:
            try:
                return client.execute(xs)
            except (EOFError, BrokenPipeError, OSError):
                # dead child: respawn it and retry the batch once
                client.respawn()
                with self._lock:
                    self.respawns += 1
                obs.add_counter("serve.worker_respawns")
                return client.execute(xs)

        return execute

    def _run_with_retry(self, plan: CompiledPlan, execute,
                        batch: List[ServeRequest],
                        exec_spans: Dict[int, int]) -> List:
        """Execute a batch, repairing injected per-request transfer faults.

        Each result's delivery may be corrupted (``transfer_corrupt``
        site ``serve[<request id>]`` — per-request streams, so decisions
        are deterministic whatever worker or batch carries the request).
        Corruption is detected and repaired by re-executing the request,
        bounded by the retry policy; the repaired value equals the
        original (execution is pure), keeping served outputs
        bit-identical to direct runs.

        ``dram_stall`` faults hit the same per-request sites: a tripped
        stall holds the result for ``cycles``
        × ``stall_s_per_cycle`` wall seconds — the latency burst an SLO
        monitor must catch — without touching the payload.
        """
        import time

        xs = [r.x for r in batch]
        outs: List = list(execute(xs))
        injector = self.faults
        if injector is None or not injector.enabled:
            return outs
        for idx, request in enumerate(batch):
            rid = request.id
            site = f"serve[{rid}]"
            attempt = 1
            while injector.corrupts(site):
                if attempt >= self.retry.max_attempts:
                    outs[idx] = self.retry.exhausted(site, TRANSFER_CORRUPT,
                                                     request=rid)
                    break
                injector.record_retry(
                    site, self.retry.backoff_cycles(attempt, site=site))
                obs.add_counter("serve.retries")
                if request.tracer is not None:
                    request.tracer.instant(
                        "serve.retry", request.trace_id,
                        parent_id=exec_spans.get(rid, -1), attempt=attempt)
                outs[idx] = execute([xs[idx]])[0]
                attempt += 1
            stall_cycles = injector.transfer_stalls(site)
            if stall_cycles and self.stall_s_per_cycle > 0:
                obs.add_counter("serve.stall_cycles", stall_cycles)
                if request.tracer is not None:
                    request.tracer.instant(
                        "serve.stall", request.trace_id,
                        parent_id=exec_spans.get(rid, -1),
                        value=float(stall_cycles), cycles=stall_cycles)
                time.sleep(stall_cycles * self.stall_s_per_cycle)
        return outs
