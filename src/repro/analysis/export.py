"""CSV export of the regenerated figure/table data (for plotting)."""

from __future__ import annotations

import csv
import io
from typing import Sequence

from .figures import Figure7Data, LayerSizeRow
from .tables import ComparisonTable, StrategyRow


def _write(headers: Sequence[str], rows) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def figure2_csv(rows: Sequence[LayerSizeRow]) -> str:
    """Figure 2 series as CSV (index, stage, input/output/weights MB)."""
    return _write(
        ["index", "stage", "input_mb", "output_mb", "weights_mb"],
        [(r.index, r.name, f"{r.input_mb:.4f}", f"{r.output_mb:.4f}",
          f"{r.weights_mb:.4f}") for r in rows],
    )


def figure7_csv(data: Figure7Data) -> str:
    """Figure 7 scatter as CSV (partition, storage KB, transfer MB, flags)."""
    return _write(
        ["partition", "storage_kb", "transfer_mb", "pareto", "label"],
        [("-".join(map(str, p.sizes)), f"{p.storage_kb:.2f}",
          f"{p.transfer_mb:.4f}", int(p.on_front), p.label)
         for p in data.points],
    )


def comparison_csv(table: ComparisonTable) -> str:
    """A Table I/II comparison as CSV (metric, fused, baseline)."""
    rows = [
        ("transfer_kb", f"{table.fused.transfer_kb:.1f}",
         f"{table.baseline.transfer_kb:.1f}"),
        ("kilo_cycles", f"{table.fused.kilo_cycles:.1f}",
         f"{table.baseline.kilo_cycles:.1f}"),
        ("bram", table.fused.bram, table.baseline.bram),
        ("dsp", table.fused.dsp, table.baseline.dsp),
        ("luts", table.fused.luts, table.baseline.luts),
        ("ffs", table.fused.ffs, table.baseline.ffs),
    ]
    return _write(["metric", "fused", "baseline"], rows)


def strategy_csv(rows: Sequence[StrategyRow]) -> str:
    """Section III-C rows as CSV."""
    return _write(
        ["workload", "tip", "baseline_ops", "recompute_extra_exact",
         "recompute_extra_adjacent", "reuse_storage_kb"],
        [(r.workload, r.tip, r.baseline_ops, r.recompute_extra_exact,
          r.recompute_extra_adjacent, f"{r.reuse_storage_kb:.2f}")
         for r in rows],
    )
