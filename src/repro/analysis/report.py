"""Plain-text rendering of tables, trade-off fronts, and comparisons."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .figures import Figure7Data, LayerSizeRow
from .tables import ComparisonTable, StrategyRow


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def render_figure2(rows: Sequence[LayerSizeRow]) -> str:
    body = [
        (r.index, r.name, f"{r.input_mb:.2f}", f"{r.output_mb:.2f}",
         f"{r.weights_mb:.2f}", f"{r.total_mb:.2f}")
        for r in rows
    ]
    return render_table(
        ["#", "stage", "input MB", "output MB", "weights MB", "total MB"], body)


def render_figure7(data: Figure7Data, front_only: bool = False) -> str:
    points = data.front if front_only else list(data.points)
    body = [
        (p.label or ("*" if p.on_front else ""), str(p.sizes),
         f"{p.storage_kb:.1f}", f"{p.transfer_mb:.2f}")
        for p in sorted(points, key=lambda p: (p.storage_kb, p.transfer_mb))
    ]
    header = (f"{data.network}: {data.num_partitions} partitions "
              f"({len(data.front)} Pareto-optimal)")
    table = render_table(["pt", "partition", "storage KB", "transfer MB"], body)
    return f"{header}\n{table}"


def render_comparison(table: ComparisonTable) -> str:
    rows = [
        ("KB transferred/input", f"{table.fused.transfer_kb:,.0f}",
         f"{table.baseline.transfer_kb:,.0f}"),
        ("Cycles x10^3", f"{table.fused.kilo_cycles:,.0f}",
         f"{table.baseline.kilo_cycles:,.0f}"),
        ("BRAMs", table.fused.bram, table.baseline.bram),
        ("DSP48E1", table.fused.dsp, table.baseline.dsp),
        ("LUTs", f"{table.fused.luts:,}", f"{table.baseline.luts:,}"),
        ("FFs", f"{table.fused.ffs:,}", f"{table.baseline.ffs:,}"),
    ]
    body = render_table(["", "Fused-Layer", "Baseline"], rows)
    summary = (
        f"transfer reduction {table.transfer_reduction:.1%}, "
        f"cycle ratio {table.cycle_ratio:.3f}, "
        f"BRAM delta {table.bram_increase:+d}"
    )
    return f"{table.title}\n{body}\n{summary}"


def render_strategy_rows(rows: Sequence[StrategyRow]) -> str:
    body = [
        (r.workload, r.tip, f"{r.baseline_ops / 1e6:,.0f}",
         f"{r.recompute_extra_adjacent / 1e6:,.0f}", f"{r.adjacent_factor:.2f}x",
         f"{r.recompute_extra_exact / 1e6:,.0f}", f"{r.exact_factor:.2f}x",
         f"{r.reuse_storage_kb:,.1f}")
        for r in rows
    ]
    return render_table(
        ["workload", "tip", "base Mops", "recompute extra Mops (paper model)",
         "factor", "extra Mops (exact)", "factor", "reuse KB"],
        body,
    )
