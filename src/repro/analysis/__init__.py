"""Regeneration of every figure and table in the paper's evaluation."""

from .export import comparison_csv, figure2_csv, figure7_csv, strategy_csv
from .figures import (
    Figure7Data,
    LayerSizeRow,
    PyramidLevelRow,
    TimelineEntry,
    TradeoffPoint,
    figure2_series,
    figure3_walkthrough,
    figure6_timeline,
    figure7_data,
)
from .plot import ascii_scatter, plot_figure7
from .report import (
    render_comparison,
    render_figure2,
    render_figure7,
    render_strategy_rows,
    render_table,
)
from .tables import (
    AcceleratorRow,
    ComparisonTable,
    StrategyRow,
    compare_designs,
    reuse_vs_recompute,
    section3c,
    table1,
    table2,
)

__all__ = [
    "AcceleratorRow",
    "ComparisonTable",
    "Figure7Data",
    "LayerSizeRow",
    "PyramidLevelRow",
    "StrategyRow",
    "TimelineEntry",
    "TradeoffPoint",
    "compare_designs",
    "comparison_csv",
    "figure2_csv",
    "figure2_series",
    "figure3_walkthrough",
    "figure6_timeline",
    "figure7_csv",
    "figure7_data",
    "plot_figure7",
    "render_comparison",
    "render_figure2",
    "render_figure7",
    "render_strategy_rows",
    "render_table",
    "ascii_scatter",
    "reuse_vs_recompute",
    "section3c",
    "strategy_csv",
    "table1",
    "table2",
]
