"""Regeneration of the paper's tables and the Section III-C comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.costs import (
    one_pass_ops,
    recompute_overhead_adjacent,
    recompute_overhead_ops,
    reuse_storage_bytes,
)
from ..hw.baseline import BaselineDesign, optimize_baseline
from ..hw.fused_accel import FusedDesign, optimize_fused
from ..nn.stages import Level, extract_levels
from ..nn.zoo import alexnet, vggnet_e

KB = float(2 ** 10)
MB = float(2 ** 20)


@dataclass(frozen=True)
class AcceleratorRow:
    """One column of Table I / Table II."""

    name: str
    transfer_kb: float
    kilo_cycles: float
    bram: int
    dsp: int
    luts: int
    ffs: int


@dataclass(frozen=True)
class ComparisonTable:
    """A fused-vs-baseline accelerator comparison (Table I / II)."""

    title: str
    fused: AcceleratorRow
    baseline: AcceleratorRow
    fused_design: FusedDesign
    baseline_design: BaselineDesign

    @property
    def transfer_reduction(self) -> float:
        """Fraction of off-chip traffic eliminated by fusion."""
        return 1.0 - self.fused.transfer_kb / self.baseline.transfer_kb

    @property
    def cycle_ratio(self) -> float:
        return self.fused.kilo_cycles / self.baseline.kilo_cycles

    @property
    def bram_increase(self) -> int:
        return self.fused.bram - self.baseline.bram


def _row(name: str, transfer_bytes: int, cycles: int, resources, dsp: int) -> AcceleratorRow:
    return AcceleratorRow(
        name=name,
        transfer_kb=transfer_bytes / KB,
        kilo_cycles=cycles / 1e3,
        bram=resources.bram18,
        dsp=dsp,
        luts=resources.luts,
        ffs=resources.ffs,
    )


def compare_designs(title: str, levels: Sequence[Level], baseline_dsp: int,
                    fused_dsp: int, tip_h: int = 1, tip_w: int = 1,
                    tile_candidates: Optional[Sequence[int]] = None) -> ComparisonTable:
    """Build and compare a fused and a baseline accelerator for ``levels``."""
    kwargs = {}
    if tile_candidates is not None:
        kwargs["tile_candidates"] = tuple(tile_candidates)
    baseline = optimize_baseline(levels, dsp_budget=baseline_dsp, **kwargs)
    fused = optimize_fused(levels, dsp_budget=fused_dsp, tip_h=tip_h, tip_w=tip_w)
    fused_res = fused.resources()
    base_res = baseline.resources()
    return ComparisonTable(
        title=title,
        fused=_row("fused", fused.feature_transfer_bytes, fused.total_cycles,
                   fused_res, fused.dsp),
        baseline=_row("baseline", baseline.feature_transfer_bytes,
                      baseline.total_cycles, base_res, baseline.dsp),
        fused_design=fused,
        baseline_design=baseline,
    )


def table1(tip_h: int = 1, tip_w: int = 1) -> ComparisonTable:
    """Table I: AlexNet's first two conv layers (+ReLU/pad/pool1) fused
    versus a baseline derived from [19] (~2240 DSPs)."""
    levels = extract_levels(alexnet().prefix(2))
    return compare_designs(
        "Table I: AlexNet conv1-conv2",
        levels,
        baseline_dsp=2240,
        fused_dsp=2450,
        tip_h=tip_h,
        tip_w=tip_w,
        tile_candidates=(5, 11, 13, 27, 55),
    )


def table2(tip_h: int = 4, tip_w: int = 4) -> ComparisonTable:
    """Table II: VGGNet-E's first five conv layers (+2 pools, ReLU,
    padding) fused versus the jointly-optimized baseline (~2880 DSPs).

    The fused design uses a 4x4 pyramid tip: the paper's HLS design used
    a sizable output tile (its BRAM count exceeds the baseline's by 20%,
    which a 1x1 tip's small windows cannot produce); transfer and DSP are
    tip-invariant, so only the window-buffer BRAM and the cycle count
    move with this choice.
    """
    levels = extract_levels(vggnet_e().prefix(5))
    return compare_designs(
        "Table II: VGGNet-E conv1_1-conv3_1",
        levels,
        baseline_dsp=2880,
        fused_dsp=2987,
        tip_h=tip_h,
        tip_w=tip_w,
    )


@dataclass(frozen=True)
class StrategyRow:
    """One reuse-vs-recompute comparison (Section III-C)."""

    workload: str
    tip: int
    baseline_ops: int
    recompute_extra_exact: int
    recompute_extra_adjacent: int
    reuse_storage_kb: float

    @property
    def exact_factor(self) -> float:
        return (self.baseline_ops + self.recompute_extra_exact) / self.baseline_ops

    @property
    def adjacent_factor(self) -> float:
        return (self.baseline_ops + self.recompute_extra_adjacent) / self.baseline_ops


def reuse_vs_recompute(levels: Sequence[Level], workload: str,
                       tips: Sequence[int] = (1,)) -> List[StrategyRow]:
    """Section III-C: arithmetic cost of recompute vs storage cost of reuse.

    Reports both the exact redundancy (integrating clamped pyramid
    footprints) and the paper's adjacent-overlap estimate, for each tip.
    """
    base = one_pass_ops(levels)
    rows: List[StrategyRow] = []
    for tip in tips:
        rows.append(
            StrategyRow(
                workload=workload,
                tip=tip,
                baseline_ops=base,
                recompute_extra_exact=recompute_overhead_ops(levels, tip, tip),
                recompute_extra_adjacent=recompute_overhead_adjacent(levels, tip, tip),
                reuse_storage_kb=reuse_storage_bytes(levels, tip, tip) / KB,
            )
        )
    return rows


def section3c() -> Dict[str, List[StrategyRow]]:
    """The paper's two headline reuse-vs-recompute workloads."""
    alex2 = extract_levels(alexnet().prefix(2))
    vgg_all = extract_levels(vggnet_e().feature_extractor())
    return {
        "alexnet-fuse2": reuse_vs_recompute(alex2, "AlexNet conv1-conv2", tips=(1,)),
        "vgg-fuse-all": reuse_vs_recompute(vgg_all, "VGGNet-E all conv+pool", tips=(1,)),
    }
