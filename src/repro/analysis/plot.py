"""ASCII scatter plots for terminal use (Pareto fronts, sweeps)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError


def ascii_scatter(points: Sequence[Tuple[float, float, str]],
                  width: int = 64, height: int = 20,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render labeled (x, y, marker) points on a character grid.

    Markers are single characters; later points overwrite earlier ones in
    the same cell (so draw labeled points last). Axes are annotated with
    the data ranges.
    """
    if not points:
        return "(no points)"
    if width < 8 or height < 4:
        raise ConfigError("plot must be at least 8x4",
                          width=width, height=height)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = (marker or "*")[0]

    lines = [f"{y_label}  ({y_lo:g} .. {y_hi:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  ({x_lo:g} .. {x_hi:g})")
    return "\n".join(lines)


def plot_figure7(data, width: int = 64, height: int = 20) -> str:
    """The Figure 7 scatter: '.' points, '*' Pareto, A/B/C labels."""
    points: List[Tuple[float, float, str]] = []
    for point in data.points:
        if not point.on_front and not point.label:
            points.append((point.storage_kb, point.transfer_mb, "."))
    for point in data.points:
        if point.on_front and not point.label:
            points.append((point.storage_kb, point.transfer_mb, "*"))
    for point in data.points:
        if point.label:
            points.append((point.storage_kb, point.transfer_mb, point.label))
    return ascii_scatter(points, width=width, height=height,
                         x_label="extra on-chip storage KB",
                         y_label="DRAM transfer MB")
