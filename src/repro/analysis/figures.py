"""Data generators for the paper's figures.

Each function returns plain data (lists of dataclasses/dicts) that the
benchmarks print and EXPERIMENTS.md records; no plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.explorer import ExplorationResult, explore
from ..core.fusion import Strategy
from ..core.pyramid import build_pyramid
from ..nn.network import Network
from ..nn.shapes import BYTES_PER_WORD
from ..nn.stages import extract_levels, pooling_merged_units
from ..nn.zoo import toynet, vggnet_e

MB = float(2 ** 20)
KB = float(2 ** 10)


@dataclass(frozen=True)
class LayerSizeRow:
    """One bar of Figure 2: a conv stage (pooling merged) of VGGNet-E."""

    index: int
    name: str
    input_mb: float
    output_mb: float
    weights_mb: float

    @property
    def feature_mb(self) -> float:
        return self.input_mb + self.output_mb

    @property
    def total_mb(self) -> float:
        return self.feature_mb + self.weights_mb


def figure2_series(network: Optional[Network] = None) -> List[LayerSizeRow]:
    """Input/output/weight sizes per conv stage, pooling merged (Fig. 2).

    "This data combines each pooling layer with the prior convolution
    layer; for example, layer 4 encompasses one convolutional and one
    pooling layer."
    """
    net = network if network is not None else vggnet_e()
    levels = extract_levels(net.feature_extractor())
    units = pooling_merged_units(levels)
    rows: List[LayerSizeRow] = []
    for i, unit in enumerate(units, start=1):
        rows.append(
            LayerSizeRow(
                index=i,
                name=unit.name,
                input_mb=unit.in_shape.bytes / MB,
                output_mb=unit.out_shape.bytes / MB,
                weights_mb=unit.weight_count * BYTES_PER_WORD / MB,
            )
        )
    return rows


@dataclass(frozen=True)
class PyramidLevelRow:
    """One level of the Figure 3 walkthrough pyramid."""

    name: str
    kind: str
    in_tile: Tuple[int, int]
    out_tile: Tuple[int, int]
    channels_in: int
    channels_out: int
    overlap_points_per_map: int


def figure3_walkthrough(n: int = 4, m: int = 6, p: int = 8) -> List[PyramidLevelRow]:
    """The two-layer fusion example of Figure 3 with a 1x1 tip.

    Layer 1 sees a 5x5xN input tile and produces the 3x3xM intermediate
    region; layer 2 consumes it to produce one output pixel across P
    maps. Six intermediate points per map (the blue circles) overlap
    between consecutive pyramids.
    """
    levels = extract_levels(toynet(n=n, m=m, p=p))
    geometry = build_pyramid(levels, 1, 1)
    rows: List[PyramidLevelRow] = []
    for i, tile in enumerate(geometry.tiles):
        level = tile.level
        if i + 1 < len(levels):
            consumer = geometry.tiles[i + 1]
            overlap = consumer.in_h * (consumer.in_w - consumer.step_w)
        else:
            overlap = 0
        rows.append(
            PyramidLevelRow(
                name=level.name,
                kind=level.kind,
                in_tile=(tile.in_h, tile.in_w),
                out_tile=(tile.out_h, tile.out_w),
                channels_in=level.in_channels,
                channels_out=level.out_channels,
                overlap_points_per_map=overlap,
            )
        )
    return rows


@dataclass(frozen=True)
class TradeoffPoint:
    """One scatter point of Figure 7."""

    sizes: Tuple[int, ...]
    storage_kb: float
    transfer_mb: float
    on_front: bool
    label: str = ""


@dataclass(frozen=True)
class Figure7Data:
    """The full Figure 7 scatter for one network."""

    network: str
    num_partitions: int
    points: Tuple[TradeoffPoint, ...]

    @property
    def front(self) -> List[TradeoffPoint]:
        return sorted((p for p in self.points if p.on_front),
                      key=lambda p: p.storage_kb)

    def labeled(self, label: str) -> TradeoffPoint:
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(f"no point labeled {label!r}")


def figure7_data(network: Network, num_convs: Optional[int] = None) -> Figure7Data:
    """The full storage/transfer design space of Figure 7.

    Labels the paper's three reference points: A = layer-by-layer
    (lowest storage), C = fully fused (lowest transfer), B = the Pareto
    point nearest the knee between them.
    """
    result: ExplorationResult = explore(network, num_convs=num_convs,
                                        strategy=Strategy.REUSE)
    front_keys = {id(p) for p in result.front}
    from ..core.pareto import knee_point

    knee = knee_point(list(result.front),
                      cost_x=lambda p: p.extra_storage_bytes,
                      cost_y=lambda p: p.feature_transfer_bytes)
    points = []
    for analysis in result.points:
        label = ""
        if analysis.is_layer_by_layer:
            label = "A"
        elif analysis.is_fully_fused:
            label = "C"
        elif analysis is knee:
            label = "B"
        points.append(
            TradeoffPoint(
                sizes=analysis.sizes,
                storage_kb=analysis.extra_storage_bytes / KB,
                transfer_mb=analysis.feature_transfer_bytes / MB,
                on_front=id(analysis) in front_keys,
                label=label,
            )
        )
    return Figure7Data(network=result.network_name,
                       num_partitions=result.num_partitions,
                       points=tuple(points))


@dataclass(frozen=True)
class TimelineEntry:
    """One stage-completion event in the Figure 6 timeline."""

    pyramid: int
    stage: str
    finish_cycle: int


def figure6_timeline(design, num_pyramids: int = 3) -> List[TimelineEntry]:
    """Stage completion times for the first pyramids (Figure 6 shape)."""
    from ..hw.pipeline import simulate_pipeline

    stages = design.stage_timings()
    schedule = simulate_pipeline(stages, num_pyramids)
    entries: List[TimelineEntry] = []
    for item, times in enumerate(schedule.stage_finish, start=1):
        for stage, finish in zip(stages, times):
            entries.append(TimelineEntry(pyramid=item, stage=stage.name,
                                         finish_cycle=finish))
    return entries
