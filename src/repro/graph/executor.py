"""Graph execution: a NumPy reference walk and the fused-segment path.

``run_reference`` evaluates the DAG node by node with the plain
operators from :mod:`repro.sim.ops` — no lowering involved, so it is an
independent oracle for the fused path. ``run_fused`` executes the
lowered program: each segment runs group-by-group through the unmodified
:class:`~repro.sim.fused.FusedExecutor` (pyramid schedule, reuse
buffers, fault repair), joins evaluate as NumPy elementwise/concat ops,
and a fused join replaces the body's DRAM output write with the
join-output write. In integer mode (small integer weights on float64
storage) the two paths are **bit-identical**, including under
``transfer_corrupt`` fault plans — corrupted reads are detected and
repaired inside the fused executor, never changing results.

Observability: every segment runs inside a ``graph.segment[<name>]``
span, and skip tensors retained on chip for a fused join increment the
``graph.skip_bytes_retained`` counter — so traces distinguish
fused-through skips from boundary skips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import ConfigError
from ..nn.layers import ConvSpec, FCSpec, LRNSpec, PadSpec, PoolSpec, ReLUSpec
from ..nn.shapes import ShapeError
from ..nn.stages import Level
from ..sim import ops
from ..sim.fused import FusedExecutor
from ..sim.trace import TrafficTrace
from ..sim.weights import make_input
from .explore import SegmentDecision
from .ir import INPUT, ConcatSpec, EltwiseSpec, GraphNetwork
from .lower import GraphProgram, JoinInfo, JoinStep, OpaqueStep, SegmentStep, lower_graph


def make_graph_weights(network: GraphNetwork, seed: int = 0,
                       integer: bool = False,
                       dtype=None) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Weights and biases for every parameterized node, keyed by node name.

    Follows the :func:`repro.sim.weights.make_level_weights` convention —
    one seeded generator drawn in topological order, float64 storage in
    integer mode — with one depth-driven difference: integer-mode filters
    are *single-tap*. Each output filter has exactly one nonzero weight,
    ``+1`` or ``-1``, at a random (channel, ky, kx) position, plus a
    small integer bias. Dense small-integer weights (the linear
    convention) grow activations multiplicatively with depth; a
    50-layer ResNet exceeds float64's 2^53 exact-integer range, at which
    point BLAS summation order becomes observable and fused-vs-reference
    bit-identity is luck, not a guarantee. A single-tap filter adds at
    most ``|bias|`` per layer (and one doubling per residual join), so
    activations of every zoo network stay exactly representable — while
    remaining maximally position-sensitive: any misplaced window, halo,
    or stride in the fused path shifts the sampled tap and changes the
    output.
    """
    if dtype is None:
        dtype = np.float64 if integer else np.float32
    rng = np.random.default_rng(seed)
    params: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for node in network:
        spec = node.spec
        if isinstance(spec, ConvSpec):
            shape = (spec.out_channels,
                     node.input_shapes[0].channels // spec.groups,
                     spec.kernel, spec.kernel)
        elif isinstance(spec, FCSpec):
            shape = (spec.out_features, node.input_shapes[0].elements)
        else:
            continue
        if integer:
            fan_in = int(np.prod(shape[1:]))
            w = np.zeros(shape, dtype=dtype)
            taps = rng.integers(0, fan_in, size=shape[0])
            signs = (rng.integers(0, 2, size=shape[0]) * 2 - 1)
            w.reshape(shape[0], -1)[np.arange(shape[0]), taps] = signs
            b = rng.integers(-2, 3, size=(shape[0],)).astype(dtype)
        else:
            fan_in = int(np.prod(shape[1:]))
            w = (rng.standard_normal(shape) / np.sqrt(fan_in)).astype(dtype)
            b = (rng.standard_normal(shape[0]) * 0.1).astype(dtype)
        params[node.name] = (w, b)
    return params


def fused_tip(extent: int, tip: Optional[int]) -> int:
    """The largest pyramid tip <= ``min(tip, extent)`` that divides
    ``extent`` (the fused executor requires an even grid). ``None``
    means "one pyramid": the whole map."""
    if tip is None:
        return extent
    limit = min(tip, extent)
    for t in range(limit, 0, -1):
        if extent % t == 0:
            return t
    return 1


class _SuppressedOutputTrace(TrafficTrace):
    """Trace for the final group of a fused-join segment: the body's
    DRAM output write never happens (the join consumes it on chip)."""

    def write(self, label: str, elements: int) -> None:
        if label == "output":
            return
        super().write(label, elements)


def _merge_trace(dst: Optional[TrafficTrace], src: TrafficTrace) -> None:
    if dst is None:
        return
    for kind, label, elements in src.events:
        if kind == "read":
            dst.read(label, elements)
        elif kind == "write":
            dst.write(label, elements)
        else:
            dst.compute(label, elements)


def default_decisions(program: GraphProgram) -> Tuple[SegmentDecision, ...]:
    """Fully fuse every segment and every structurally fusable join."""
    return tuple(
        SegmentDecision(sizes=(len(step.levels),),
                        join_fused=step.join is not None)
        for step in program.segments)


class GraphExecutor:
    """Reference and fused execution of a :class:`GraphNetwork`.

    Parameters
    ----------
    network:
        The DAG to execute.
    decisions:
        One :class:`~repro.graph.explore.SegmentDecision` per segment of
        the lowered program (group sizes + join policy). Defaults to
        fully fused segments with every fusable join fused.
    params:
        ``{node_name: (weights, bias)}``; generated deterministically
        from ``seed`` when omitted.
    tip:
        Pyramid tip for fused groups; per group the largest divisor of
        the output map not exceeding it is used. ``None`` (default) runs
        one pyramid per group — fastest, same arithmetic.
    faults, retry:
        Forwarded to every :class:`~repro.sim.fused.FusedExecutor`:
        ``transfer_corrupt`` faults are injected on DRAM reads and
        repaired, keeping outputs bit-identical.
    """

    def __init__(self, network: GraphNetwork,
                 decisions: Optional[Sequence[SegmentDecision]] = None,
                 params: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None,
                 seed: int = 0, integer: bool = True, tip: Optional[int] = None,
                 input_reuse: bool = True, dtype=None,
                 faults=None, retry=None,
                 program: Optional[GraphProgram] = None):
        self.network = network
        self.program = program if program is not None else lower_graph(network)
        self.seed = seed
        self.integer = integer
        self.dtype = dtype if dtype is not None else (
            np.float64 if integer else np.float32)
        self.params = params if params is not None else make_graph_weights(
            network, seed=seed, integer=integer, dtype=self.dtype)
        segments = self.program.segments
        if decisions is None:
            decisions = default_decisions(self.program)
        decisions = tuple(decisions)
        if len(decisions) != len(segments):
            raise ConfigError(
                "one decision per segment required",
                segments=len(segments), decisions=len(decisions))
        for step, decision in zip(segments, decisions):
            if sum(decision.sizes) != len(step.levels):
                raise ConfigError(
                    f"segment {step.name}: sizes {decision.sizes} do not "
                    f"cover {len(step.levels)} levels",
                    segment=step.name, sizes=decision.sizes)
            if decision.join_fused and step.join is None:
                raise ConfigError(
                    f"segment {step.name} has no fusable join",
                    segment=step.name)
        self.decisions = decisions
        self._tip = tip
        self._faults = faults
        self._retry = retry
        self._group_executors = self._build_groups(input_reuse)

    # -- construction ---------------------------------------------------------

    def _build_groups(self, input_reuse: bool) -> List[List[FusedExecutor]]:
        per_segment: List[List[FusedExecutor]] = []
        for step, decision in zip(self.program.segments, self.decisions):
            executors: List[FusedExecutor] = []
            start = 0
            for size in decision.sizes:
                levels = step.levels[start:start + size]
                group_params = {
                    lv.name: self.params[lv.name]
                    for lv in levels if lv.is_conv}
                final = levels[-1].out_shape
                executors.append(FusedExecutor(
                    list(levels), params=group_params,
                    tip_h=fused_tip(final.height, self._tip),
                    tip_w=fused_tip(final.width, self._tip),
                    integer=self.integer, input_reuse=input_reuse,
                    dtype=self.dtype, faults=self._faults,
                    retry=self._retry))
                start += size
            per_segment.append(executors)
        return per_segment

    @property
    def buffer_bytes(self) -> int:
        """Reuse-buffer footprint summed over all fused groups (computed
        lazily by each group on first run)."""
        return sum(ex.buffer_bytes
                   for group in self._group_executors for ex in group)

    def make_input(self, seed: Optional[int] = None) -> np.ndarray:
        return make_input(self.network.input_shape,
                          seed=self.seed if seed is None else seed,
                          integer=self.integer, dtype=self.dtype)

    # -- reference path -------------------------------------------------------

    def run_reference(self, x: np.ndarray,
                      trace: Optional[TrafficTrace] = None) -> np.ndarray:
        """Node-by-node NumPy evaluation straight off the IR."""
        expected = self.network.input_shape
        if x.shape != (expected.channels, expected.height, expected.width):
            raise ShapeError(f"input {x.shape} != network input {expected}")
        env: Dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=self.dtype)}
        with obs.span("graph.reference", network=self.network.name,
                      nodes=len(self.network)):
            for node in self.network:
                inputs = [env[name] for name in node.inputs]
                if trace is not None:
                    for arr in inputs:
                        trace.read(node.name, arr.size)
                out = self._apply_node(node, inputs)
                shape = node.output_shape
                if out.shape != (shape.channels, shape.height, shape.width):
                    raise ShapeError(
                        f"{node.name}: produced {out.shape}, expected {shape}")
                if trace is not None:
                    trace.write(node.name, out.size)
                env[node.name] = out
        return env[self.program.output_tensor]

    def _apply_node(self, node, inputs: List[np.ndarray]) -> np.ndarray:
        spec = node.spec
        if isinstance(spec, EltwiseSpec):
            return _eltwise(spec.op, inputs)
        if isinstance(spec, ConcatSpec):
            return np.concatenate(inputs, axis=0)
        x = inputs[0]
        if isinstance(spec, ConvSpec):
            w, b = self.params[spec.name]
            return ops.conv2d(x, w, b, stride=spec.stride, pad=spec.padding,
                              groups=spec.groups)
        if isinstance(spec, PoolSpec):
            if spec.mode == "max":
                return ops.maxpool2d(x, spec.kernel, spec.stride)
            return ops.avgpool2d(x, spec.kernel, spec.stride)
        if isinstance(spec, ReLUSpec):
            return ops.relu(x)
        if isinstance(spec, PadSpec):
            return ops.pad2d(x, spec.pad)
        if isinstance(spec, LRNSpec):
            return ops.lrn(x, size=spec.size, alpha=spec.alpha,
                           beta=spec.beta, k=spec.k)
        if isinstance(spec, FCSpec):
            w, b = self.params[spec.name]
            return ops.fully_connected(x, w, b)
        raise ShapeError(f"no operator for {spec!r}")

    # -- fused path -----------------------------------------------------------

    def run(self, x: np.ndarray,
            trace: Optional[TrafficTrace] = None) -> np.ndarray:
        return self.run_fused(x, trace)

    def run_fused(self, x: np.ndarray,
                  trace: Optional[TrafficTrace] = None) -> np.ndarray:
        """Execute the lowered program; bit-identical to
        :meth:`run_reference` in integer mode."""
        expected = self.network.input_shape
        if x.shape != (expected.channels, expected.height, expected.width):
            raise ShapeError(f"input {x.shape} != network input {expected}")
        env: Dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=self.dtype)}
        segment_idx = 0
        with obs.span("graph.run", network=self.network.name,
                      steps=len(self.program.steps)):
            for step in self.program.steps:
                if isinstance(step, SegmentStep):
                    decision = self.decisions[segment_idx]
                    executors = self._group_executors[segment_idx]
                    segment_idx += 1
                    self._run_segment(step, decision, executors, env, trace)
                elif isinstance(step, JoinStep):
                    self._run_boundary_join(step.join, env, trace)
                else:
                    self._run_opaque(step, env, trace)
        return env[self.program.output_tensor]

    def _run_segment(self, step: SegmentStep, decision: SegmentDecision,
                     executors: List[FusedExecutor],
                     env: Dict[str, np.ndarray],
                     trace: Optional[TrafficTrace]) -> None:
        with obs.span(f"graph.segment[{step.name}]",
                      levels=len(step.levels), groups=len(executors),
                      join_fused=decision.join_fused):
            current = env[step.input_tensor]
            for idx, executor in enumerate(executors):
                last = idx == len(executors) - 1
                suppress = last and decision.join_fused
                sub = (_SuppressedOutputTrace() if suppress
                       else TrafficTrace())
                current = executor.run(current, trace=sub)
                _merge_trace(trace, sub)
            env[step.output_tensor] = current
            if step.join is not None:
                if decision.join_fused:
                    self._run_fused_join(step, env, trace)
                else:
                    self._run_boundary_join(step.join, env, trace)

    def _run_fused_join(self, step: SegmentStep, env: Dict[str, np.ndarray],
                        trace: Optional[TrafficTrace]) -> None:
        join = step.join
        retained = set(step.retained_skips())
        streamed = set(step.streamed_skips())
        out = _eval_join(join, env)
        env[join.output_tensor] = out
        if trace is not None:
            for tensor in streamed:
                trace.read(join.name, env[tensor].size)
            trace.write(join.name, out.size)
        retained_bytes = sum(join.operand_bytes(t) for t in retained)
        if retained_bytes:
            obs.add_counter("graph.skip_bytes_retained", retained_bytes)
        obs.add_counter("graph.joins_fused")

    def _run_boundary_join(self, join: JoinInfo, env: Dict[str, np.ndarray],
                           trace: Optional[TrafficTrace]) -> None:
        out = _eval_join(join, env)
        env[join.output_tensor] = out
        if trace is not None:
            for tensor in join.operands:
                trace.read(join.name, env[tensor].size)
            trace.write(join.name, out.size)
        obs.add_counter("graph.joins_boundary")

    def _run_opaque(self, step: OpaqueStep, env: Dict[str, np.ndarray],
                    trace: Optional[TrafficTrace]) -> None:
        x = env[step.input_tensor]
        out = self._apply_node(step.node, [x])
        env[step.output_tensor] = out
        if trace is not None:
            trace.read(step.name, x.size)
            trace.write(step.name, out.size)

    # -- atom-granular execution ----------------------------------------------

    def exec_atoms(self) -> "List[ExecAtom]":
        """The program flattened to one executable atom per fused group.

        Joins and opaque steps *ride* on the nearest preceding group atom
        — the same convention :func:`repro.dist.stage.plan_atoms` uses for
        cost, so a pipeline stage covering atoms ``[a, b)`` executes
        exactly the work those atoms were priced for. Running the atoms
        in order via :meth:`run_atom` is bit-identical to
        :meth:`run_fused` (same operations, same order).
        """
        atoms: List[ExecAtom] = []
        segment_idx = 0
        for step in self.program.steps:
            if isinstance(step, SegmentStep):
                decision = self.decisions[segment_idx]
                executors = self._group_executors[segment_idx]
                for g in range(len(executors)):
                    atoms.append(ExecAtom(index=len(atoms),
                                          segment=segment_idx, group=g,
                                          step=step))
                if step.join is not None and not decision.join_fused:
                    atoms[-1] = atoms[-1].with_rider(("join", step.join))
                segment_idx += 1
            elif isinstance(step, JoinStep):
                if not atoms:
                    raise ConfigError(
                        "graph program has no fused group to host its "
                        "leading steps", network=self.network.name)
                atoms[-1] = atoms[-1].with_rider(("join", step.join))
            else:
                if not atoms:
                    raise ConfigError(
                        "graph program has no fused group to host its "
                        "leading steps", network=self.network.name)
                atoms[-1] = atoms[-1].with_rider(("opaque", step))
        return atoms

    def run_atom(self, atom: "ExecAtom", env: Dict[str, np.ndarray],
                 trace: Optional[TrafficTrace] = None) -> None:
        """Execute one atom against ``env`` (tensor name -> volume).

        Non-final groups of a segment publish their output under
        ``"<segment output>@<group>"``; the final group publishes the
        segment's output tensor and runs the fused join, then any riders.
        """
        step = atom.step
        decision = self.decisions[atom.segment]
        executors = self._group_executors[atom.segment]
        last = atom.group == len(executors) - 1
        src = (step.input_tensor if atom.group == 0
               else f"{step.output_tensor}@{atom.group - 1}")
        suppress = last and decision.join_fused
        sub = _SuppressedOutputTrace() if suppress else TrafficTrace()
        out = executors[atom.group].run(env[src], trace=sub)
        _merge_trace(trace, sub)
        dst = (step.output_tensor if last
               else f"{step.output_tensor}@{atom.group}")
        env[dst] = out
        if last and step.join is not None and decision.join_fused:
            self._run_fused_join(step, env, trace)
        for kind, payload in atom.riders:
            if kind == "join":
                self._run_boundary_join(payload, env, trace)
            else:
                self._run_opaque(payload, env, trace)

    def run_atoms(self, x: np.ndarray,
                  trace: Optional[TrafficTrace] = None) -> np.ndarray:
        """Run every atom in order — bit-identical to :meth:`run_fused`."""
        expected = self.network.input_shape
        if x.shape != (expected.channels, expected.height, expected.width):
            raise ShapeError(f"input {x.shape} != network input {expected}")
        env: Dict[str, np.ndarray] = {INPUT: np.asarray(x, dtype=self.dtype)}
        for atom in self.exec_atoms():
            self.run_atom(atom, env, trace)
        return env[self.program.output_tensor]


@dataclass(frozen=True)
class ExecAtom:
    """One fused group plus the join/opaque steps riding on it."""

    index: int
    segment: int
    group: int
    step: SegmentStep
    riders: Tuple[Tuple[str, object], ...] = ()

    def with_rider(self, rider: Tuple[str, object]) -> "ExecAtom":
        return ExecAtom(index=self.index, segment=self.segment,
                        group=self.group, step=self.step,
                        riders=self.riders + (rider,))


def _eltwise(op: str, arrays: List[np.ndarray]) -> np.ndarray:
    out = arrays[0]
    for arr in arrays[1:]:
        if op == "add":
            out = out + arr
        elif op == "mul":
            out = out * arr
        else:
            out = np.maximum(out, arr)
    return out


def _eval_join(join: JoinInfo, env: Dict[str, np.ndarray]) -> np.ndarray:
    arrays = [env[t] for t in join.operands]
    if join.kind == "concat":
        out = np.concatenate(arrays, axis=0)
    else:
        out = _eltwise(join.kind, arrays)
    if join.has_relu:
        out = ops.relu(out)
    return out
