"""Compiled plans for DAG networks: the ``"graph"`` plan family.

:class:`CompiledGraphPlan` is the DAG counterpart of
:class:`repro.serve.plan.CompiledPlan`: it freezes a branch-aware
configuration — one :class:`~repro.graph.explore.SegmentDecision` per
fusion segment (group sizes + join policy) — plus deterministic weights,
so the :func:`~repro.graph.explore.explore_graph` sweep runs once and
every request just executes. Its :class:`~repro.serve.plan.PlanKey`
carries ``family="graph"``, so a DAG plan can never alias a linear plan
even if their fingerprints collided; restoring from a saved dict
performs **zero exploration work** (the decisions are stored verbatim).

The serving stack dispatches here automatically:
``compile_plan``/``PlanCache.get_or_compile`` route any network with
``plan_family == "graph"`` to :func:`compile_graph_plan`, and
``CompiledPlan.from_dict`` routes saved records whose key carries the
``"graph"`` family to :meth:`CompiledGraphPlan.from_dict` — warmed
caches mix both families transparently.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.fusion import Strategy
from ..errors import ConfigError
from ..serve.plan import PlanKey, make_plan_key
from .executor import GraphExecutor
from .explore import SegmentDecision, explore_graph
from .ir import GraphNetwork
from .lower import lower_graph


class CompiledGraphPlan:
    """A frozen, executable configuration for one DAG network.

    Mirrors the :class:`~repro.serve.plan.CompiledPlan` surface the
    serving stack relies on (``key``, ``execute``, ``byte_size``,
    ``num_groups``, ``describe``, ``to_dict``/``from_dict``) so caches,
    admission control, and workers treat both families uniformly.
    """

    def __init__(self, key: PlanKey, network: GraphNetwork,
                 decisions: Tuple[SegmentDecision, ...],
                 seed: int = 0, degraded: bool = False,
                 compile_s: float = 0.0):
        if key.family != "graph":
            raise ConfigError("CompiledGraphPlan requires a 'graph' plan key",
                              key=str(key))
        self.key = key
        self.network = network
        self.program = lower_graph(network)
        self.decisions = tuple(decisions)
        self.seed = seed
        self.degraded = degraded
        self.compile_s = compile_s
        # tip=None executes one pyramid per fused group — the fastest
        # path, and bit-identical for any tip in integer mode.
        self.executor = GraphExecutor(
            network, decisions=self.decisions, seed=seed,
            integer=key.precision == "int", tip=None, program=self.program)

    @property
    def partition_sizes(self) -> Tuple[int, ...]:
        """All group sizes, flattened across segments (for uniform
        reporting alongside linear plans)."""
        return tuple(size for d in self.decisions for size in d.sizes)

    @property
    def num_groups(self) -> int:
        return len(self.partition_sizes)

    @property
    def fused_join_count(self) -> int:
        return sum(1 for d in self.decisions if d.join_fused)

    @property
    def byte_size(self) -> int:
        """Resident bytes the cache charges this plan for (weights + one
        input volume)."""
        weights = sum(w.nbytes + b.nbytes
                      for w, b in self.executor.params.values())
        shape = self.network.input_shape
        return weights + shape.elements * 8

    def execute(self, xs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Run a batch through the fused path; outputs are bit-identical
        to per-item :meth:`GraphExecutor.run_reference` calls in integer
        precision."""
        return [self.executor.run_fused(np.asarray(x)) for x in xs]

    def describe(self) -> str:
        mode = "degraded " if self.degraded else ""
        return (f"{self.network.name}: {len(self.decisions)} segments, "
                f"{self.num_groups} groups, {self.fused_join_count} fused "
                f"joins ({mode}{self.key.precision} precision, "
                f"{self.byte_size / 2**10:.0f} KB)")

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key.to_dict(),
            "graph": self.network.to_dict(),
            "decisions": [d.to_dict() for d in self.decisions],
            "seed": self.seed,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompiledGraphPlan":
        key = PlanKey.from_dict(data["key"])
        network = GraphNetwork.from_dict(data["graph"])
        decisions = tuple(SegmentDecision.from_dict(d)
                          for d in data["decisions"])
        return cls(key=key, network=network, decisions=decisions,
                   seed=int(data.get("seed", 0)),
                   degraded=bool(data.get("degraded", False)))


def compile_graph_plan(network: GraphNetwork,
                       strategy: Strategy = Strategy.REUSE,
                       tip: int = 1,
                       storage_budget_bytes: Optional[int] = None,
                       precision: str = "int", seed: int = 0,
                       decisions: Optional[Sequence[SegmentDecision]] = None,
                       jobs: int = 1,
                       validate: bool = True) -> CompiledGraphPlan:
    """Compile a DAG network into an executable plan.

    Without explicit ``decisions`` the configuration comes from a full
    :func:`~repro.graph.explore.explore_graph` sweep (branch-aware:
    per-segment partitions plus the join/storage greedy ascent under
    ``storage_budget_bytes``). With ``decisions`` — an explicit spec or
    a cache restore — no exploration runs at all.

    ``validate=True`` runs the graph static analyzer
    (:func:`repro.check.check_graph_network`) and raises
    :class:`ConfigError` on any error diagnostic.
    """
    key = make_plan_key(network, strategy=strategy, tip=tip,
                        storage_budget_bytes=storage_budget_bytes,
                        precision=precision, seed=seed)
    t0 = time.perf_counter()
    with obs.span("serve.compile", network=network.name, key=str(key),
                  family="graph"):
        if decisions is None:
            result = explore_graph(network, strategy=strategy, tip=tip,
                                   storage_budget_bytes=storage_budget_bytes,
                                   jobs=jobs)
            chosen = result.chosen.decisions
        else:
            chosen = tuple(decisions)
    plan = CompiledGraphPlan(key=key, network=network, decisions=chosen,
                             seed=seed, compile_s=time.perf_counter() - t0)
    if validate:
        from ..check import check_graph_network

        findings = [d for d in check_graph_network(network, program=plan.program)
                    if d.is_error]
        if findings:
            raise ConfigError(
                "compiled graph plan failed static validation: "
                + "; ".join(d.render() for d in findings[:3]),
                key=str(key), findings=len(findings))
        obs.add_counter("serve.plans_validated")
    obs.add_counter("serve.plans_compiled")
    return plan
